module github.com/vossketch/vos

go 1.24
