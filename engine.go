package vos

import (
	"github.com/vossketch/vos/internal/engine"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/poscache"
	"github.com/vossketch/vos/internal/wal"
)

// Engine is the sharded, pipelined ingestion engine: N independent Sketch
// shards with identical Config, one ingest goroutine per shard fed by
// buffered batch channels, and an exact merged-snapshot query path.
//
// Use it when ingest throughput must scale past one core. Because VOS
// merging is exact for any partition of the stream, a K-shard Engine
// returns (after Flush) bit-identical estimates to a single Sketch that
// consumed the whole stream — sharding costs no accuracy. For a simple
// shared sketch with reader/writer locking, see ConcurrentSketch; for the
// offline equivalent, see PartitionByUser plus Sketch.Merge.
//
// All methods are safe for concurrent use, with one lifecycle rule: no
// Process/ProcessBatch call may start after Close has begun. Once Close
// begins, writes and the context-aware query methods return
// ErrEngineClosed; Engine.QueryLocal additionally answers typed
// ErrQueryUnavailable (checkpoint-recovered engines) and
// ErrNotCoResident (users on different shards) instead of silent zero
// estimates.
//
// See internal/engine for the full model.
type Engine = engine.Engine

// EngineConfig parameterises an Engine: the per-shard sketch Config plus
// shard count, batch size, queue capacity, linger interval, the query
// snapshot staleness budget, and the position-cache size. Zero values
// select defaults (Shards = GOMAXPROCS, BatchSize = 256, QueueSize = 8192
// edges, FlushInterval = 50ms, SnapshotMaxLag = 0 i.e. exact queries,
// PositionCacheUsers = 512; set PositionCacheUsers negative to disable
// position caching). Setting Window puts the engine in sliding-window
// mode (see WindowConfig); setting Durability makes it durable (see
// DurabilityConfig) — the two compose.
type EngineConfig = engine.Config

// PositionCacheStats is a counter snapshot (hits, misses, evictions, fill)
// of the engine's shared position-table cache, from
// Engine.PositionCacheStats. A low hit rate on a serving workload means
// EngineConfig.PositionCacheUsers is sized below the hot user set.
type PositionCacheStats = poscache.Stats

// ShardStat is one engine shard's health snapshot (counters, backlog, β).
type ShardStat = metrics.ShardStat

// RateMeter converts a monotone counter (e.g. summed ShardStat.Processed)
// into windowed per-second rates for dashboards and harnesses.
type RateMeter = metrics.RateMeter

// TotalShardStats folds Engine.ShardStats into one aggregate row.
func TotalShardStats(stats []ShardStat) ShardStat { return metrics.TotalShardStats(stats) }

// ErrEngineClosed is returned by Engine.Process after Engine.Close.
var ErrEngineClosed = engine.ErrClosed

// ANNConfig enables the engine's approximate top-K index: a maintained
// banded-LSH index over packed recovered sketches, probed by
// Engine.TopKApprox instead of scanning every user. Bands (b) and Rows (r)
// trade recall against candidate count along the S-curve
// 1 − (1 − p^r)^b, where p is the fraction of recovered-sketch bits two
// users agree on; zero fields select defaults (Bands 64, Rows 16,
// RebandBudget 16384). Set it on EngineConfig.ANN.
type ANNConfig = engine.ANNConfig

// ANNStats is a health snapshot of the approximate top-K index (occupancy,
// dirty backlog, maintenance counters), from Engine.ANNStats.
type ANNStats = engine.ANNStats

// ErrNoANN is returned by Engine.TopKApprox (and the ApproxTopK service
// extension) when the backing engine was built without EngineConfig.ANN.
var ErrNoANN = engine.ErrNoANN

// NewEngine creates and starts a sharded ingestion engine. With
// EngineConfig.Durability set it behaves like OpenEngine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// MustNewEngine is NewEngine for static configurations; it panics on error.
func MustNewEngine(cfg EngineConfig) *Engine { return engine.MustNew(cfg) }

// DurabilityConfig enables the engine's write-ahead log and checkpointing:
// accepted edges are appended to a segmented, CRC-checksummed WAL under
// Dir before they are routed to the shards, Engine.Checkpoint atomically
// persists the merged sketch alongside the WAL position it covers, and
// OpenEngine recovers by loading the newest valid checkpoint and replaying
// only the WAL suffix. See the README's "Durability & recovery" section.
type DurabilityConfig = engine.DurabilityConfig

// SyncPolicy selects when WAL appends are fsynced: SyncEveryBatch (an
// acknowledged batch is durable), SyncEveryN (bounded loss window), or
// SyncOff (page-cache durability only).
type SyncPolicy = wal.SyncPolicy

// WAL sync policies for DurabilityConfig.Sync.
const (
	// SyncEveryBatch fsyncs after every accepted batch — the default and
	// safest policy: an acknowledged write survives a crash.
	SyncEveryBatch = wal.SyncEveryBatch
	// SyncEveryN fsyncs once at least DurabilityConfig.SyncEveryN edges
	// have been appended since the last sync; a crash loses at most that
	// many acknowledged edges.
	SyncEveryN = wal.SyncEveryN
	// SyncOff never fsyncs on the append path; durability is whatever the
	// OS page cache survives. Fastest, for workloads that can re-ingest.
	SyncOff = wal.SyncOff
)

// ErrEngineNoDurability is returned by Engine.Checkpoint on a memory-only
// engine and by OpenEngine when no directory is configured.
var ErrEngineNoDurability = engine.ErrNoDurability

// OpenEngine starts a durable engine backed by dir: it loads the newest
// valid checkpoint (if any), replays the WAL suffix past it, and then
// accepts new edges — so a restarted service resumes from disk instead of
// re-consuming the graph stream from origin. An empty or absent directory
// starts fresh. cfg.Durability, if non-nil, supplies the sync policy and
// segment size; its Dir field is overridden by dir.
func OpenEngine(dir string, cfg EngineConfig) (*Engine, error) {
	d := DurabilityConfig{}
	if cfg.Durability != nil {
		d = *cfg.Durability
	}
	d.Dir = dir
	cfg.Durability = &d
	return engine.Open(cfg)
}
