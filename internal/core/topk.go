package core

import (
	"context"
	"sort"

	"github.com/vossketch/vos/internal/stream"
)

// TopKResult pairs a candidate user with its similarity estimate, the unit
// a top-K similarity search returns.
type TopKResult struct {
	User     stream.User
	Estimate Estimate
}

// RankBefore reports whether a outranks b in a top-K result: higher
// estimated Jaccard first, ties broken by smaller user ID — the same total
// order similarity.TopSimilar has always used, so rankings are
// deterministic. It is exported so the engine's parallel merge sorts with
// exactly the ordering the heap used.
func RankBefore(a, b TopKResult) bool {
	if a.Estimate.Jaccard != b.Estimate.Jaccard {
		return a.Estimate.Jaccard > b.Estimate.Jaccard
	}
	return a.User < b.User
}

// better is RankBefore under the short name the heap reads naturally.
func better(a, b TopKResult) bool { return RankBefore(a, b) }

// topHeap is a bounded min-heap of TopKResult keyed by better: the root is
// the worst retained result, so offering a stream of candidates keeps the
// best n seen in O(len · log n) with no full sort or per-candidate
// allocation.
type topHeap struct {
	n  int
	xs []TopKResult
}

func newTopHeap(n int) *topHeap {
	return &topHeap{n: n, xs: make([]TopKResult, 0, n)}
}

// offer considers one candidate result.
func (h *topHeap) offer(r TopKResult) {
	if h.n <= 0 {
		return
	}
	if len(h.xs) < h.n {
		h.xs = append(h.xs, r)
		h.siftUp(len(h.xs) - 1)
		return
	}
	if !better(r, h.xs[0]) {
		return
	}
	h.xs[0] = r
	h.siftDown(0)
}

func (h *topHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		// Min-heap on better: the parent must be no better than the child.
		if !better(h.xs[p], h.xs[i]) {
			return
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *topHeap) siftDown(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h.xs) && better(h.xs[worst], h.xs[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h.xs) && better(h.xs[worst], h.xs[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.xs[i], h.xs[worst] = h.xs[worst], h.xs[i]
		i = worst
	}
}

// sorted consumes the heap and returns its contents best-first.
func (h *topHeap) sorted() []TopKResult {
	sort.Slice(h.xs, func(i, j int) bool { return better(h.xs[i], h.xs[j]) })
	return h.xs
}

// TopK returns the n candidates most similar to u — highest estimated
// Jaccard, ties broken by user ID — with their full estimates, best first.
// The probe user's virtual sketch is recovered once and every candidate is
// compared against it with the packed word-level path; a bounded min-heap
// keeps the running top n, so the search is one pass and never sorts the
// full candidate set. u itself is skipped if present among the candidates.
//
// The ranking and estimates are identical to sorting per-pair Query
// results: same recovered bits, same estimator, same tie order.
func (v *VOS) TopK(u stream.User, candidates []stream.User, n int) []TopKResult {
	return v.TopKRecovered(v.RecoverSketch(u), candidates, n)
}

// TopKRecovered is TopK against an already-recovered probe sketch: one
// pass over candidates, bounded heap, best-first result. It is the
// per-worker building block of the engine's parallel top-K, which recovers
// the probe once and hands each goroutine a candidate range. r.User() is
// skipped if present among the candidates.
func (v *VOS) TopKRecovered(r *Recovered, candidates []stream.User, n int) []TopKResult {
	out, _ := v.TopKRecoveredContext(context.Background(), r, candidates, n)
	return out
}

// cancelCheckStride is how many candidates TopKRecoveredContext streams
// between context polls. A poll is one channel select; at the paper's k a
// single candidate comparison costs microseconds, so a stride of 256 keeps
// the poll overhead unmeasurable while bounding the post-cancellation
// latency to a few hundred comparisons per worker.
const cancelCheckStride = 256

// TopKRecoveredContext is TopKRecovered with cooperative cancellation: the
// candidate loop polls ctx every cancelCheckStride candidates and returns
// ctx.Err() early when the context is cancelled, so a caller can abort a
// long scan (the engine's parallel top-K plumbs each worker's range through
// here). A context that is never cancelled adds no per-candidate work —
// context.Background's Done channel is nil and the poll is skipped.
func (v *VOS) TopKRecoveredContext(ctx context.Context, r *Recovered, candidates []stream.User, n int) ([]TopKResult, error) {
	// Clamp before the heap pre-allocates capacity n: the result can never
	// exceed the candidate count, and callers pass n straight from
	// untrusted request bodies (the /v1/topk handler).
	if n > len(candidates) {
		n = len(candidates)
	}
	if n < 0 {
		n = 0
	}
	h := newTopHeap(n)
	done := ctx.Done()
	for i, w := range candidates {
		if done != nil && i%cancelCheckStride == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if w == r.user {
			continue
		}
		h.offer(TopKResult{User: w, Estimate: v.QueryRecovered(r, w)})
	}
	return h.sorted(), nil
}
