// Package oddsketch implements the odd sketch of Mitzenmacher, Pagh and
// Pham (WWW'14): a k-bit array where bit j holds the parity of the number
// of set elements hashing to j. XOR-ing two odd sketches yields the odd
// sketch of the symmetric difference, whose size can be estimated from the
// fraction of 1-bits.
//
// The paper's method VOS builds odd sketches of user item-sets directly on
// the stream (insert and delete are both a toggle, so they cancel exactly)
// and stores them virtually in a shared array; this package provides the
// plain, dedicated-storage variant used as a building block, as a reference
// in tests, and as a static baseline.
package oddsketch

import (
	"fmt"
	"math"

	"github.com/vossketch/vos/internal/bitset"
	"github.com/vossketch/vos/internal/hashing"
)

// Sketch is an odd sketch with dedicated k-bit storage.
type Sketch struct {
	bits *bitset.Bitset
	k    int
	seed uint64
}

// New creates an empty odd sketch of k bits. Two sketches are comparable
// only if built with the same k and seed.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("oddsketch: k must be positive")
	}
	return &Sketch{bits: bitset.New(uint64(k)), k: k, seed: seed}
}

// FromItems builds the odd sketch of a set given as a slice of items.
// Items must be distinct; duplicates would cancel (parity!) rather than be
// ignored.
func FromItems(items []uint64, k int, seed uint64) *Sketch {
	s := New(k, seed)
	for _, it := range items {
		s.Toggle(it)
	}
	return s
}

// K returns the sketch size in bits.
func (s *Sketch) K() int { return s.k }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// Slot returns ψ(item), the bit position item toggles.
func (s *Sketch) Slot(item uint64) uint64 {
	return hashing.HashToRange(item, s.seed, uint64(s.k))
}

// Toggle flips the bit of item; it implements both insertion and deletion
// (the operations are identical on parities, the property VOS exploits).
func (s *Sketch) Toggle(item uint64) {
	s.bits.Flip(s.Slot(item))
}

// Bit returns bit j of the sketch.
func (s *Sketch) Bit(j int) bool { return s.bits.Get(uint64(j)) }

// OnesFraction returns the fraction of set bits.
func (s *Sketch) OnesFraction() float64 { return s.bits.OnesFraction() }

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	return &Sketch{bits: s.bits.Clone(), k: s.k, seed: s.seed}
}

// Xor replaces s with s ⊕ o, the odd sketch of the symmetric difference of
// the two underlying sets. Panics if the sketches are incompatible.
func (s *Sketch) Xor(o *Sketch) {
	s.mustMatch(o)
	s.bits.Xor(o.bits)
}

// XorOnes returns the number of bits where s and o differ, without
// materialising the XOR.
func (s *Sketch) XorOnes(o *Sketch) int {
	s.mustMatch(o)
	return int(s.bits.XorCount(o.bits))
}

func (s *Sketch) mustMatch(o *Sketch) {
	if s.k != o.k || s.seed != o.seed {
		panic(fmt.Sprintf("oddsketch: incompatible sketches (k=%d/%d seed=%#x/%#x)",
			s.k, o.k, s.seed, o.seed))
	}
}

// EstimateSymmetricDifference estimates |S₁ Δ S₂| from the two sketches.
//
// With z = popcount(s ⊕ o) and α = z/k, the WWW'14 analysis gives
// E[α] = (1 − (1−2/k)^{nΔ})/2 ≈ (1 − e^{−2·nΔ/k})/2, inverted as
//
//	n̂Δ = −(k/2)·ln(1 − 2α).
//
// When α ≥ 1/2 the sketch is saturated (nΔ ≫ k); the estimate is clamped
// to the value at α = (k−1)/(2k), the largest resolvable fraction, and
// Saturated reports the condition.
func (s *Sketch) EstimateSymmetricDifference(o *Sketch) float64 {
	z := s.XorOnes(o)
	return EstimateFromOnes(z, s.k)
}

// Saturated reports whether the pair of sketches is beyond its resolvable
// range (half or more differing bits).
func (s *Sketch) Saturated(o *Sketch) bool {
	return 2*s.XorOnes(o) >= s.k
}

// EstimateFromOnes converts a differing-bit count z out of k into the
// symmetric-difference estimate. Exposed for estimators (VOS, MinHash+odd)
// that obtain z by other means.
func EstimateFromOnes(z, k int) float64 {
	if z <= 0 {
		return 0
	}
	alpha := float64(z) / float64(k)
	maxAlpha := (float64(k) - 1) / (2 * float64(k))
	if alpha > maxAlpha {
		alpha = maxAlpha
	}
	return -float64(k) / 2 * math.Log(1-2*alpha)
}

// EstimateCardinality estimates |S| from the sketch alone: the symmetric
// difference with the empty set is the set itself, so the standard odd
// sketch inversion applies with α the sketch's own ones fraction. Useful
// as a sanity probe when no exact counter is kept; resolution degrades
// (saturates) once |S| approaches k.
func (s *Sketch) EstimateCardinality() float64 {
	return EstimateFromOnes(int(s.bits.Count()), s.k)
}
