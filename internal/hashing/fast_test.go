package hashing

import (
	"math"
	"testing"
)

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindClassic, KindFast} {
		if !k.Valid() {
			t.Fatalf("Kind %d not valid", k)
		}
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("md5"); err == nil {
		t.Fatal("ParseKind accepted an unknown family name")
	}
	if _, err := ParseKind(""); err == nil {
		t.Fatal("ParseKind accepted the empty string")
	}
	if Kind(7).Valid() {
		t.Fatal("Kind(7) reported valid")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown Kind must still stringify for error messages")
	}
}

func TestNewFastFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFastFamily(0, ...) did not panic")
		}
	}()
	NewFastFamily(0, 1)
}

// HashRangeInto must be the batched equal of HashRange at every index —
// this equality is what makes the batched fill safe to substitute on the
// hot path, and it must hold across the 32-bit paired mode, the wide mode,
// odd lengths (tail handling), and length-1 fills.
func TestFastHashRangeIntoMatchesHashRange(t *testing.T) {
	ns := []uint64{1, 2, 5, 64, 1 << 20, 1 << 24, 1 << 32, 1<<32 + 1, 1 << 40}
	ks := []int{1, 2, 3, 4, 5, 7, 8, 63, 64, 100, 6400}
	for _, n := range ns {
		for _, k := range ks {
			f := NewFastFamily(k, 0xfeed)
			dst := make([]uint64, k)
			for _, key := range []uint64{0, 1, 42, 1 << 63, 0xffffffffffffffff} {
				f.HashRangeInto(dst, key, n)
				for j := 0; j < k; j++ {
					if got, want := dst[j], f.HashRange(j, key, n); got != want {
						t.Fatalf("n=%d k=%d key=%d j=%d: batched %d != single %d", n, k, key, j, got, want)
					}
					if dst[j] >= n {
						t.Fatalf("n=%d k=%d key=%d j=%d: position %d out of range", n, k, key, j, dst[j])
					}
				}
			}
		}
	}
}

// Shorter fills must be prefixes of longer ones (poscache hands out
// variable-length prefixes of the same table).
func TestFastHashRangeIntoPrefixStable(t *testing.T) {
	f := NewFastFamily(100, 7)
	full := make([]uint64, 100)
	f.HashRangeInto(full, 99, 1<<24)
	for _, l := range []int{1, 2, 3, 50, 99} {
		part := make([]uint64, l)
		f.HashRangeInto(part, 99, 1<<24)
		for j := range part {
			if part[j] != full[j] {
				t.Fatalf("len=%d j=%d: prefix %d != full %d", l, j, part[j], full[j])
			}
		}
	}
}

// Positions must be uniform over [0, n): bucket the positions of many keys
// and check the worst bucket deviation against the Poisson standard
// deviation. Seeds are fixed, so the test is deterministic.
func TestFastFamilyUniformity(t *testing.T) {
	const (
		k       = 640
		keys    = 2000
		buckets = 1 << 10
	)
	f := NewFastFamily(k, 0xabcdef)
	counts := make([]int, buckets)
	dst := make([]uint64, k)
	for key := uint64(0); key < keys; key++ {
		f.HashRangeInto(dst, key, buckets)
		for _, p := range dst {
			counts[p]++
		}
	}
	mean := float64(k*keys) / buckets
	sigma := math.Sqrt(mean)
	for b, c := range counts {
		if dev := math.Abs(float64(c) - mean); dev > 6*sigma {
			t.Fatalf("bucket %d: count %d deviates %.1fσ from mean %.1f", b, c, dev/sigma, mean)
		}
	}
}

// Wide mode (n > 2^32) must be uniform too; bucket by high bits so the
// test exercises the full 64-bit reduction.
func TestFastFamilyUniformityWide(t *testing.T) {
	const (
		k       = 640
		keys    = 1000
		buckets = 1 << 8
	)
	n := uint64(1) << 40
	f := NewFastFamily(k, 0x1234)
	counts := make([]int, buckets)
	dst := make([]uint64, k)
	for key := uint64(0); key < keys; key++ {
		f.HashRangeInto(dst, key, n)
		for _, p := range dst {
			counts[p/(n/buckets)]++
		}
	}
	mean := float64(k*keys) / buckets
	sigma := math.Sqrt(mean)
	for b, c := range counts {
		if dev := math.Abs(float64(c) - mean); dev > 6*sigma {
			t.Fatalf("bucket %d: count %d deviates %.1fσ from mean %.1f", b, c, dev/sigma, mean)
		}
	}
}

// Two distinct keys must collide on position j at rate ≈ 1/n — the
// pairwise-independence property VOS's contamination model assumes. The
// paired 32-bit halves are the risk here (two positions share one 64-bit
// output), so check adjacent indices explicitly.
func TestFastFamilyPairwiseCollisions(t *testing.T) {
	const (
		k    = 64
		n    = 256
		keys = 4000
	)
	f := NewFastFamily(k, 0x777)
	a := make([]uint64, k)
	b := make([]uint64, k)
	collisions, samples := 0, 0
	adjEqual := 0
	for key := uint64(0); key < keys; key++ {
		f.HashRangeInto(a, key, n)
		f.HashRangeInto(b, key+keys, n)
		for j := 0; j < k; j++ {
			if a[j] == b[j] {
				collisions++
			}
			samples++
		}
		// Within one key, adjacent positions come from halves of the same
		// 64-bit output; they must still look independent.
		for j := 0; j+1 < k; j += 2 {
			if a[j] == a[j+1] {
				adjEqual++
			}
		}
	}
	rate := float64(collisions) / float64(samples)
	want := 1.0 / n
	sigma := math.Sqrt(want * (1 - want) / float64(samples))
	if math.Abs(rate-want) > 6*sigma {
		t.Errorf("cross-key collision rate %.5f, want %.5f ± %.5f", rate, want, 6*sigma)
	}
	adjRate := float64(adjEqual) / float64(keys*k/2)
	adjSigma := math.Sqrt(want * (1 - want) / float64(keys*k/2))
	if math.Abs(adjRate-want) > 6*adjSigma {
		t.Errorf("adjacent-position collision rate %.5f, want %.5f ± %.5f", adjRate, want, 6*adjSigma)
	}
}

// The fast family must be unrelated to the classic family under the same
// seed: agreement at the same (j, key) should be the 1/n chance rate, not
// elevated.
func TestFastFamilyIndependentOfClassic(t *testing.T) {
	const (
		k    = 64
		n    = 256
		keys = 4000
	)
	fast := NewFastFamily(k, 99)
	classic := NewFamily(k, 99)
	a := make([]uint64, k)
	b := make([]uint64, k)
	agree, samples := 0, 0
	for key := uint64(0); key < keys; key++ {
		fast.HashRangeInto(a, key, n)
		classic.HashRangeInto(b, key, n)
		for j := 0; j < k; j++ {
			if a[j] == b[j] {
				agree++
			}
			samples++
		}
	}
	rate := float64(agree) / float64(samples)
	want := 1.0 / n
	sigma := math.Sqrt(want * (1 - want) / float64(samples))
	if math.Abs(rate-want) > 6*sigma {
		t.Errorf("classic/fast agreement rate %.5f, want chance %.5f ± %.5f", rate, want, 6*sigma)
	}
}

// BenchmarkHashRangeIntoFast is the fast-family counterpart of
// BenchmarkHashRangeInto (hashing_test.go) — same k, range, and sink.
func BenchmarkHashRangeIntoFast(b *testing.B) {
	f := NewFastFamily(6400, 1)
	dst := make([]uint64, 6400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HashRangeInto(dst, uint64(i), 1<<24)
		benchSink += dst[i&4095]
	}
}
