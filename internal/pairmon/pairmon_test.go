package pairmon

import (
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

func watchedUsers(n int) []stream.User {
	out := make([]stream.User, n)
	for i := range out {
		out[i] = stream.User(i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	x := similarity.NewExact()
	if _, err := New(x, nil, 0); err == nil {
		t.Error("empty watch set accepted")
	}
	if _, err := New(x, []stream.User{1}, 0); err == nil {
		t.Error("single user accepted")
	}
	if _, err := New(x, []stream.User{1, 1}, 0); err == nil {
		t.Error("duplicate user accepted")
	}
	if _, err := New(x, []stream.User{1, 2}, 0); err != nil {
		t.Errorf("valid watch set rejected: %v", err)
	}
}

func TestTopMatchesExactRanking(t *testing.T) {
	// With the exact oracle underneath, Top must equal brute force.
	m, err := New(similarity.NewExact(), watchedUsers(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pair (0,1) shares 10 items, (2,3) shares 5, (4,5) shares 1;
	// all users also get private items.
	feed := func(u stream.User, items ...uint64) {
		for _, i := range items {
			m.Process(stream.Edge{User: u, Item: stream.Item(i), Op: stream.Insert})
		}
	}
	shared := func(a, b stream.User, base uint64, n int) {
		for i := 0; i < n; i++ {
			m.Process(stream.Edge{User: a, Item: stream.Item(base + uint64(i)), Op: stream.Insert})
			m.Process(stream.Edge{User: b, Item: stream.Item(base + uint64(i)), Op: stream.Insert})
		}
	}
	shared(0, 1, 1000, 10)
	shared(2, 3, 2000, 5)
	shared(4, 5, 3000, 1)
	feed(0, 10, 11)
	feed(1, 20)
	feed(2, 30)
	feed(3, 40)
	feed(4, 50)
	feed(5, 60)

	top := m.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d", len(top))
	}
	wantPairs := [][2]stream.User{{0, 1}, {2, 3}, {4, 5}}
	for i, want := range wantPairs {
		if top[i].U != want[0] || top[i].V != want[1] {
			t.Errorf("rank %d: (%d,%d), want (%d,%d)", i, top[i].U, top[i].V, want[0], want[1])
		}
	}
	if top[0].Common != 10 {
		t.Errorf("top common = %v", top[0].Common)
	}
}

func TestDeletionsDemoteAPair(t *testing.T) {
	m, _ := New(similarity.NewExact(), watchedUsers(4), 0)
	shared := func(a, b stream.User, base uint64, n int) {
		for i := 0; i < n; i++ {
			m.Process(stream.Edge{User: a, Item: stream.Item(base + uint64(i)), Op: stream.Insert})
			m.Process(stream.Edge{User: b, Item: stream.Item(base + uint64(i)), Op: stream.Insert})
		}
	}
	shared(0, 1, 100, 8)
	shared(2, 3, 200, 6)
	if top := m.Top(1); top[0].U != 0 || top[0].V != 1 {
		t.Fatalf("setup: top = %+v", top[0])
	}
	// User 0 unsubscribes most of the shared items: (2,3) takes over.
	for i := uint64(100); i < 107; i++ {
		m.Process(stream.Edge{User: 0, Item: stream.Item(i), Op: stream.Delete})
	}
	if top := m.Top(1); top[0].U != 2 || top[0].V != 3 {
		t.Errorf("after deletions top = (%d,%d), want (2,3)", top[0].U, top[0].V)
	}
}

func TestDirtyTrackingLimitsRescoring(t *testing.T) {
	m, _ := New(similarity.NewExact(), watchedUsers(10), 0)
	// Touch only user 0; a refresh must re-score exactly its 9 pairs.
	m.Process(stream.Edge{User: 0, Item: 1, Op: stream.Insert})
	m.Refresh()
	if got := m.Rescored(); got != 9 {
		t.Errorf("rescored %d pairs, want 9", got)
	}
	// No dirty users: refresh is a no-op.
	m.Refresh()
	if got := m.Rescored(); got != 9 {
		t.Errorf("no-op refresh re-scored to %d", got)
	}
	// Non-watched users never dirty anything.
	m.Process(stream.Edge{User: 999, Item: 1, Op: stream.Insert})
	m.Refresh()
	if got := m.Rescored(); got != 9 {
		t.Errorf("unwatched user caused re-scoring: %d", got)
	}
}

func TestBothEndpointsDirtyRescoredOnce(t *testing.T) {
	m, _ := New(similarity.NewExact(), watchedUsers(3), 0)
	m.Process(stream.Edge{User: 0, Item: 1, Op: stream.Insert})
	m.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert})
	m.Refresh()
	// Pairs: (0,1), (0,2), (1,2) — all touched, each exactly once.
	if got := m.Rescored(); got != 3 {
		t.Errorf("rescored %d, want 3", got)
	}
}

func TestAutomaticRefresh(t *testing.T) {
	m, _ := New(similarity.NewExact(), watchedUsers(2), 4)
	for i := 0; i < 4; i++ {
		m.Process(stream.Edge{User: 0, Item: stream.Item(i), Op: stream.Insert})
	}
	// The 4th element triggered a refresh: one pair re-scored.
	if got := m.Rescored(); got != 1 {
		t.Errorf("automatic refresh re-scored %d, want 1", got)
	}
}

func TestWithVOSEstimatorFindsPlantedPair(t *testing.T) {
	budget := similarity.Budget{K32: 100, Users: 50, Lambda: 2}
	est := similarity.MustNew(similarity.MethodVOS, budget, 3)
	m, err := New(est, watchedUsers(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Users 3 and 7: strong overlap. Everyone else: disjoint noise.
	for _, e := range gen.PlantedPair(3, 7, 150, 150, 100, 9) {
		m.Process(e)
	}
	for u := stream.User(0); u < 10; u++ {
		if u == 3 || u == 7 {
			continue
		}
		for i := 0; i < 80; i++ {
			m.Process(stream.Edge{
				User: u,
				Item: stream.Item(uint64(u)*1_000_000 + uint64(i)),
				Op:   stream.Insert,
			})
		}
	}
	top := m.Top(1)
	if top[0].U != 3 || top[0].V != 7 {
		t.Errorf("top pair = (%d,%d), want (3,7)", top[0].U, top[0].V)
	}
	if top[0].Jaccard < 0.2 {
		t.Errorf("planted pair scored %v", top[0].Jaccard)
	}
}

func TestWatchedCopy(t *testing.T) {
	m, _ := New(similarity.NewExact(), watchedUsers(3), 0)
	w := m.Watched()
	w[0] = 99
	if m.Watched()[0] == 99 {
		t.Error("Watched returned internal slice")
	}
}
