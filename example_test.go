package vos_test

import (
	"fmt"
	"time"

	"github.com/vossketch/vos"
)

// The core loop: stream subscription events through the sketch, query any
// pair at any time. Deletions are exact — the two Process calls for the
// same edge cancel completely.
func ExampleSketch() {
	sk := vos.MustNew(vos.Config{MemoryBits: 1 << 20, SketchBits: 2048, Seed: 1})

	// Users 1 and 2 share items 100-149.
	for i := 0; i < 100; i++ {
		sk.Process(vos.Edge{User: 1, Item: vos.Item(i + 100), Op: vos.Insert})
		sk.Process(vos.Edge{User: 2, Item: vos.Item(i + 150), Op: vos.Insert})
	}
	est := sk.Query(1, 2)
	fmt.Printf("cardinalities: %d and %d\n", est.CardinalityU, est.CardinalityV)
	fmt.Printf("true common items: 50, estimate within 25: %v\n",
		est.Common > 25 && est.Common < 75)
	// Output:
	// cardinalities: 100 and 100
	// true common items: 50, estimate within 25: true
}

// Insert followed by Delete of the same edge restores the sketch exactly:
// state depends only on the current graph, never on churn history.
func ExampleSketch_deletions() {
	sk := vos.MustNew(vos.Config{MemoryBits: 4096, SketchBits: 128, Seed: 7})
	before := sk.Stats()

	sk.Process(vos.Edge{User: 9, Item: 1234, Op: vos.Insert})
	sk.Process(vos.Edge{User: 9, Item: 1234, Op: vos.Delete})

	after := sk.Stats()
	fmt.Println("state restored:", before == after)
	// Output:
	// state restored: true
}

// Estimators are interchangeable behind one interface; the factory builds
// them memory-equalised the way the paper's evaluation compares them.
func ExampleNewEstimator() {
	budget := vos.Budget{K32: 100, Users: 1000, Lambda: 2}
	for _, method := range vos.Methods {
		est, err := vos.NewEstimator(method, budget, 1)
		if err != nil {
			panic(err)
		}
		est.Process(vos.Edge{User: 1, Item: 42, Op: vos.Insert})
		fmt.Printf("%s n_1=%d\n", est.Name(), est.Cardinality(1))
	}
	// Output:
	// MinHash n_1=1
	// OPH n_1=1
	// RP n_1=1
	// VOS n_1=1
}

// Sketches of stream shards merge exactly: build per-worker sketches in
// parallel and combine.
func ExampleSketch_Merge() {
	cfg := vos.Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 3}
	whole := vos.MustNew(cfg)
	shardA := vos.MustNew(cfg)
	shardB := vos.MustNew(cfg)

	edges := []vos.Edge{
		{User: 1, Item: 10, Op: vos.Insert},
		{User: 2, Item: 10, Op: vos.Insert},
		{User: 1, Item: 11, Op: vos.Insert},
		{User: 1, Item: 11, Op: vos.Delete},
	}
	for i, e := range edges {
		whole.Process(e)
		if i%2 == 0 {
			shardA.Process(e)
		} else {
			shardB.Process(e)
		}
	}
	if err := shardA.Merge(shardB); err != nil {
		panic(err)
	}
	fmt.Println("merged equals sequential:", shardA.Stats() == whole.Stats())
	// Output:
	// merged equals sequential: true
}

// The pair monitor keeps a live ranking of the most similar watched
// pairs over the stream.
func ExampleNewPairMonitor() {
	est := vos.NewExact() // any Estimator works; exact keeps the example crisp
	mon, err := vos.NewPairMonitor(est, []vos.User{1, 2, 3}, 0)
	if err != nil {
		panic(err)
	}
	// Users 1 and 2 share two items; 3 is disjoint.
	for _, e := range []vos.Edge{
		{User: 1, Item: 7, Op: vos.Insert},
		{User: 2, Item: 7, Op: vos.Insert},
		{User: 1, Item: 8, Op: vos.Insert},
		{User: 2, Item: 8, Op: vos.Insert},
		{User: 3, Item: 9, Op: vos.Insert},
	} {
		mon.Process(e)
	}
	top := mon.Top(1)[0]
	fmt.Printf("most similar: (%d, %d) with %d common items\n",
		top.U, top.V, int(top.Common))
	// Output:
	// most similar: (1, 2) with 2 common items
}

// Sliding-window similarity: edges land in the current time bucket,
// queries cover only the live window, and rotating retires the oldest
// bucket in O(sketch) — here a tumbling two-bucket window forgets the
// first bucket's subscriptions while keeping the second's.
func ExampleNewWindowed() {
	w, err := vos.NewWindowedAt(
		vos.Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 42},
		2, time.Minute, time.Unix(60, 0), // two 1-minute buckets
	)
	if err != nil {
		panic(err)
	}

	// Minute one: alice and bob both pick up item 7.
	w.Process(vos.Edge{User: 1, Item: 7, Op: vos.Insert})
	w.Process(vos.Edge{User: 2, Item: 7, Op: vos.Insert})
	fmt.Printf("minute 1: common=%.0f\n", w.Query(1, 2).CommonClamped)

	// Two minutes later the shared pick has aged out of the window; only
	// bob's fresh subscription from minute two survives.
	w.AdvanceTo(time.Unix(61, 0))
	w.Process(vos.Edge{User: 2, Item: 9, Op: vos.Insert})
	w.AdvanceTo(time.Unix(121, 0))
	fmt.Printf("minute 3: common=%.0f, bob still holds %d item\n",
		w.Query(1, 2).CommonClamped, w.Cardinality(2))
	// Output:
	// minute 1: common=1
	// minute 3: common=0, bob still holds 1 item
}

// String identifiers map into the key space with stable hashes.
func ExampleUserFromString() {
	a := vos.UserFromString("alice")
	b := vos.UserFromString("alice")
	fmt.Println("stable:", a == b)
	// Output:
	// stable: true
}
