package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func testConfig() Config {
	return Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 42}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{MemoryBits: 0, SketchBits: 10, Seed: 1},
		{MemoryBits: 100, SketchBits: 0, Seed: 1},
		{MemoryBits: 10, SketchBits: 100, Seed: 1},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(testConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(5000, 100, 2, 7)
	if cfg.MemoryBits != 32*100*5000 {
		t.Errorf("m = %d", cfg.MemoryBits)
	}
	if cfg.SketchBits != 2*32*100 {
		t.Errorf("k = %d", cfg.SketchBits)
	}
	if _, err := New(cfg); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
}

func TestProcessUpdatesCardinality(t *testing.T) {
	v := MustNew(testConfig())
	v.Process(stream.Edge{User: 1, Item: 10, Op: stream.Insert})
	v.Process(stream.Edge{User: 1, Item: 11, Op: stream.Insert})
	v.Process(stream.Edge{User: 1, Item: 10, Op: stream.Delete})
	if v.Cardinality(1) != 1 {
		t.Errorf("n_u = %d, want 1", v.Cardinality(1))
	}
	if v.Cardinality(99) != 0 {
		t.Error("unknown user should have cardinality 0")
	}
	if v.Users() != 1 {
		t.Errorf("Users() = %d", v.Users())
	}
}

func TestInsertDeleteCancellationProperty(t *testing.T) {
	// Processing any multiset of edges and then their inverses restores
	// the empty sketch exactly — the core reason VOS handles deletions.
	err := quick.Check(func(users, items []uint16) bool {
		n := len(users)
		if len(items) < n {
			n = len(items)
		}
		v := MustNew(Config{MemoryBits: 4096, SketchBits: 64, Seed: 5})
		edges := make([]stream.Edge, 0, n)
		seen := map[[2]uint16]bool{}
		for idx := 0; idx < n; idx++ {
			key := [2]uint16{users[idx], items[idx]}
			if seen[key] {
				continue // keep the stream feasible
			}
			seen[key] = true
			e := stream.Edge{User: stream.User(users[idx]), Item: stream.Item(items[idx]), Op: stream.Insert}
			edges = append(edges, e)
			v.Process(e)
		}
		for _, e := range edges {
			v.Process(stream.Edge{User: e.User, Item: e.Item, Op: stream.Delete})
		}
		st := v.Stats()
		return st.OnesCount == 0 && st.Users == 0 && st.Beta == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestDeletionInvariance(t *testing.T) {
	// A sketch that saw extra subscriptions followed by matching
	// unsubscriptions must be bit-identical to one that never saw them.
	cfg := testConfig()
	a := MustNew(cfg)
	b := MustNew(cfg)

	base := gen.PlantedPair(1, 2, 50, 50, 20, 3)
	for _, e := range base {
		a.Process(e)
		b.Process(e)
	}
	// b additionally subscribes user 1 to 500 transient items, then
	// unsubscribes all of them.
	for i := uint64(0); i < 500; i++ {
		b.Process(stream.Edge{User: 1, Item: stream.Item(7_000_000 + i), Op: stream.Insert})
	}
	for i := uint64(0); i < 500; i++ {
		b.Process(stream.Edge{User: 1, Item: stream.Item(7_000_000 + i), Op: stream.Delete})
	}

	ea := a.Query(1, 2)
	eb := b.Query(1, 2)
	if ea.Common != eb.Common || ea.Alpha != eb.Alpha || ea.Beta != eb.Beta {
		t.Errorf("deletion changed state: %+v vs %+v", ea, eb)
	}
}

func TestQueryAccuracyLowLoad(t *testing.T) {
	// Large array (β ~ 0) and a single planted pair: error should be a
	// few items on average.
	const (
		trials = 30
		sizeA  = 300
		sizeB  = 260
		common = 120
	)
	sumErr, sumJErr := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		v := MustNew(Config{MemoryBits: 1 << 20, SketchBits: 2048, Seed: uint64(trial)})
		for _, e := range gen.PlantedPair(1, 2, sizeA, sizeB, common, int64(trial)) {
			v.Process(e)
		}
		est := v.Query(1, 2)
		sumErr += math.Abs(est.Common - common)
		trueJ := float64(common) / float64(sizeA+sizeB-common)
		sumJErr += math.Abs(est.Jaccard - trueJ)
	}
	if avg := sumErr / trials; avg > 12 {
		t.Errorf("mean |ŝ−s| = %.2f for s=%d, too large", avg, common)
	}
	if avgJ := sumJErr / trials; avgJ > 0.05 {
		t.Errorf("mean Jaccard error = %.3f, too large", avgJ)
	}
}

func TestQueryAccuracyUnderLoad(t *testing.T) {
	// Background users push β up; the β-correction must keep the
	// estimator usable (this is what distinguishes VOS from a plain odd
	// sketch in shared memory).
	const (
		trials = 20
		common = 100
		size   = 150
	)
	rng := rand.New(rand.NewSource(9))
	sumErr := 0.0
	betaSeen := 0.0
	for trial := 0; trial < trials; trial++ {
		v := MustNew(Config{MemoryBits: 1 << 15, SketchBits: 512, Seed: rng.Uint64()})
		// Background: 200 users with 30 items each.
		for u := stream.User(100); u < 300; u++ {
			for j := 0; j < 30; j++ {
				v.Process(stream.Edge{User: u, Item: stream.Item(rng.Uint64()), Op: stream.Insert})
			}
		}
		for _, e := range gen.PlantedPair(1, 2, size, size, common, int64(trial)) {
			v.Process(e)
		}
		est := v.Query(1, 2)
		betaSeen = est.Beta
		sumErr += math.Abs(est.Common - common)
	}
	if betaSeen < 0.05 {
		t.Fatalf("test not exercising load: β = %.3f", betaSeen)
	}
	if avg := sumErr / trials; avg > 30 {
		t.Errorf("mean |ŝ−s| = %.2f for s=%d at β=%.3f", avg, common, betaSeen)
	}
}

func TestQuerySelfSimilarity(t *testing.T) {
	v := MustNew(testConfig())
	for i := 0; i < 50; i++ {
		v.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	est := v.Query(1, 1)
	if est.Alpha != 0 {
		t.Errorf("self alpha = %v", est.Alpha)
	}
	if est.Jaccard != 1 {
		t.Errorf("self Jaccard = %v", est.Jaccard)
	}
	if est.SymmetricDifference != 0 {
		t.Errorf("self n̂Δ = %v", est.SymmetricDifference)
	}
}

func TestQueryEmptyUsers(t *testing.T) {
	v := MustNew(testConfig())
	est := v.Query(7, 8)
	if est.Jaccard != 0 || est.CommonClamped != 0 {
		t.Errorf("empty users: %+v", est)
	}
}

func TestEstimatorConvenienceMethods(t *testing.T) {
	v := MustNew(testConfig())
	for _, e := range gen.PlantedPair(1, 2, 100, 100, 50, 1) {
		v.Process(e)
	}
	est := v.Query(1, 2)
	if v.EstimateCommonItems(1, 2) != est.Common {
		t.Error("EstimateCommonItems inconsistent with Query")
	}
	if v.EstimateJaccard(1, 2) != est.Jaccard {
		t.Error("EstimateJaccard inconsistent with Query")
	}
	if v.EstimateSymmetricDifference(1, 2) != est.SymmetricDifference {
		t.Error("EstimateSymmetricDifference inconsistent with Query")
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	cfg := testConfig()
	full := MustNew(cfg)
	shard1 := MustNew(cfg)
	shard2 := MustNew(cfg)

	edges := gen.Dynamize(
		gen.Bipartite(gen.Profile{Name: "m", Users: 40, Items: 80, Edges: 600,
			UserSkew: 1.5, ItemSkew: 1.3}, 4),
		gen.DynamizeConfig{EventProb: 0.01, DeleteFrac: 0.5, Seed: 4})
	for idx, e := range edges {
		full.Process(e)
		if idx%2 == 0 {
			shard1.Process(e)
		} else {
			shard2.Process(e)
		}
	}
	if err := shard1.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	sf, sm := full.Stats(), shard1.Stats()
	if sf.OnesCount != sm.OnesCount || sf.Beta != sm.Beta {
		t.Errorf("merged array differs: %+v vs %+v", sf, sm)
	}
	for u := stream.User(0); u < 40; u++ {
		if full.Cardinality(u) != shard1.Cardinality(u) {
			t.Errorf("user %d cardinality %d vs %d", u, full.Cardinality(u), shard1.Cardinality(u))
		}
	}
	qf, qm := full.Query(0, 1), shard1.Query(0, 1)
	if qf.Common != qm.Common {
		t.Errorf("merged query differs: %v vs %v", qf.Common, qm.Common)
	}
}

func TestMergeRejectsMismatchedConfig(t *testing.T) {
	a := MustNew(testConfig())
	b := MustNew(Config{MemoryBits: 1 << 16, SketchBits: 128, Seed: 42})
	if err := a.Merge(b); err == nil {
		t.Error("mismatched merge accepted")
	}
}

func TestBetaTracksArray(t *testing.T) {
	v := MustNew(Config{MemoryBits: 1024, SketchBits: 32, Seed: 1})
	if v.Beta() != 0 {
		t.Fatal("fresh sketch has nonzero β")
	}
	for i := 0; i < 100; i++ {
		v.Process(stream.Edge{User: stream.User(i), Item: stream.Item(i), Op: stream.Insert})
	}
	st := v.Stats()
	if v.Beta() != float64(st.OnesCount)/1024 {
		t.Errorf("β = %v, ones = %d", v.Beta(), st.OnesCount)
	}
	if st.MemoryBytes == 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func TestBiasAndVarianceApproxMatchesSimulation(t *testing.T) {
	// Monte Carlo check of the re-derived delta-method formulas (see the
	// BiasApprox doc comment for why the arXiv-printed forms are not
	// used). Plant a pair with known nΔ under background load and compare
	// the empirical mean/variance of ŝ − s with the approximations.
	const (
		trials  = 150
		k       = 256
		m       = 1 << 16
		private = 32 // per side ⇒ nΔ = 64
		common  = 100
	)
	nDelta := float64(2 * private)
	var errs []float64
	var lastBias, lastVar float64
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < trials; trial++ {
		v := MustNew(Config{MemoryBits: m, SketchBits: k, Seed: rng.Uint64()})
		// Background load to push β to a realistic level (~0.1).
		for j := 0; j < 7000; j++ {
			v.Process(stream.Edge{User: stream.User(1000 + j%500), Item: stream.Item(rng.Uint64()), Op: stream.Insert})
		}
		for _, e := range gen.PlantedPair(1, 2, common+private, common+private, common, int64(trial)) {
			v.Process(e)
		}
		est := v.Query(1, 2)
		errs = append(errs, est.Common-common)
		lastBias = v.BiasApprox(nDelta)
		lastVar = v.VarianceApprox(nDelta)
	}
	mean, variance := meanVar(errs)

	seMean := math.Sqrt(lastVar / trials)
	if math.Abs(mean-lastBias) > 4*seMean+1 {
		t.Errorf("empirical bias %.2f vs approx %.2f (se %.2f)", mean, lastBias, seMean)
	}
	if ratio := variance / lastVar; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("empirical var %.1f vs approx %.1f (ratio %.2f)", variance, lastVar, ratio)
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestMarshalRoundTrip(t *testing.T) {
	v := MustNew(testConfig())
	for _, e := range gen.PlantedPair(3, 4, 80, 90, 40, 6) {
		v.Process(e)
	}
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVOS(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != v.Config() {
		t.Error("config lost")
	}
	if got.Cardinality(3) != v.Cardinality(3) || got.Cardinality(4) != v.Cardinality(4) {
		t.Error("cardinalities lost")
	}
	qa, qb := v.Query(3, 4), got.Query(3, 4)
	if qa != qb {
		t.Errorf("queries differ after round trip: %+v vs %+v", qa, qb)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	v := MustNew(Config{MemoryBits: 1024, SketchBits: 64, Seed: 2})
	v.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert})
	data, _ := v.MarshalBinary()

	// The single user's cardinality field sits after magic(4) + config(24)
	// + user count(8) + user id(8).
	const cardOff = 4 + 3*8 + 8 + 8
	zeroCard := append([]byte(nil), data...)
	for i := 0; i < 8; i++ {
		zeroCard[cardOff+i] = 0
	}

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte{'X'}, data[1:]...),
		"truncated":  data[:20],
		"short body": data[:len(data)-3],
		// Process/Merge prune zeros, so Users() = len(card) relies on no
		// zero-cardinality entry ever loading.
		"zero cardinality": zeroCard,
	}
	for name, d := range cases {
		if _, err := UnmarshalVOS(d); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestMarshalRoundTripsNegativeCardinality pins that the zero-cardinality
// corruption check does NOT reject valid negative counters: delete-before-
// insert reordering leaves card[u] < 0 (stored as two's-complement uint64),
// and a checkpoint taken in that window must stay recoverable.
func TestMarshalRoundTripsNegativeCardinality(t *testing.T) {
	v := MustNew(Config{MemoryBits: 1024, SketchBits: 64, Seed: 2})
	v.Process(stream.Edge{User: 1, Item: 1, Op: stream.Delete}) // card[1] = -1
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVOS(data)
	if err != nil {
		t.Fatalf("negative-cardinality checkpoint rejected: %v", err)
	}
	if got.card[1] != -1 {
		t.Fatalf("card[1] = %d, want -1", got.card[1])
	}
	// The matching insert must still cancel the entry after recovery.
	got.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert})
	if got.Users() != 0 {
		t.Fatalf("Users() after cancellation = %d, want 0", got.Users())
	}
}

func TestProcessDeterministicAcrossInstances(t *testing.T) {
	cfg := testConfig()
	a, b := MustNew(cfg), MustNew(cfg)
	edges := gen.PlantedPair(1, 2, 50, 50, 25, 8)
	for _, e := range edges {
		a.Process(e)
		b.Process(e)
	}
	if a.Stats() != b.Stats() {
		t.Error("same stream, same config, different state")
	}
}

func BenchmarkProcess(b *testing.B) {
	v := MustNew(Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Process(stream.Edge{User: stream.User(i % 10000), Item: stream.Item(i), Op: stream.Insert})
	}
}

func BenchmarkQuery(b *testing.B) {
	v := MustNew(Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1})
	for _, e := range gen.PlantedPair(1, 2, 500, 500, 200, 1) {
		v.Process(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Query(1, 2)
	}
}

func TestMergeCommutativeAndAssociativeProperty(t *testing.T) {
	// Merge is XOR on arrays and addition on counters, so shard order
	// must not matter.
	cfg := Config{MemoryBits: 2048, SketchBits: 64, Seed: 9}
	err := quick.Check(func(usersA, usersB, usersC []uint8) bool {
		build := func(users []uint8, itemBase uint64) *VOS {
			v := MustNew(cfg)
			for idx, u := range users {
				v.Process(stream.Edge{
					User: stream.User(u),
					Item: stream.Item(itemBase + uint64(idx)),
					Op:   stream.Insert,
				})
			}
			return v
		}
		// (A ⊕ B) ⊕ C vs (C ⊕ B) ⊕ A — same multiset of edges.
		left := build(usersA, 0)
		if err := left.Merge(build(usersB, 1000)); err != nil {
			return false
		}
		if err := left.Merge(build(usersC, 2000)); err != nil {
			return false
		}
		right := build(usersC, 2000)
		if err := right.Merge(build(usersB, 1000)); err != nil {
			return false
		}
		if err := right.Merge(build(usersA, 0)); err != nil {
			return false
		}
		if left.Stats() != right.Stats() {
			return false
		}
		for u := 0; u < 256; u += 17 {
			if left.Cardinality(stream.User(u)) != right.Cardinality(stream.User(u)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestQueryIsReadOnly(t *testing.T) {
	v := MustNew(testConfig())
	for _, e := range gen.PlantedPair(1, 2, 60, 60, 30, 2) {
		v.Process(e)
	}
	before, _ := v.MarshalBinary()
	_ = v.Query(1, 2)
	_ = v.QueryMany(1, []stream.User{2, 3, 4})
	_ = v.EstimateJaccard(2, 1)
	_ = v.Beta()
	after, _ := v.MarshalBinary()
	if len(before) != len(after) {
		t.Fatal("query changed serialized size")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("query mutated sketch state")
		}
	}
}
