package poscache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/vossketch/vos/internal/stream"
)

// Cache is a bounded, thread-safe LRU from user to position table.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[stream.User]*list.Element
	order   *list.List // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type entry struct {
	user stream.User
	ver  uint64
	pos  []uint64
	// aux is an opaque caller value stored alongside the table; the
	// recovered-sketch path keeps the packed popcount here so a cache hit
	// skips recounting k bits. Position tables leave it zero.
	aux uint64
}

// New creates a cache holding the position tables of up to capacity users.
// capacity must be positive. Each table costs k·8 bytes (k = SketchBits),
// so total memory is bounded by capacity·k·8 bytes — size accordingly: at
// the paper's k = 6400 a table is 50 KiB, so 256 entries ≈ 12.5 MiB.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("poscache: capacity must be positive")
	}
	// No capacity hint: many sketches (every engine snapshot, every
	// experiment run) carry a cache that never fills, and pre-sized
	// buckets would tax each of them up front.
	return &Cache{
		cap:     capacity,
		entries: make(map[stream.User]*list.Element),
		order:   list.New(),
	}
}

// Cap returns the maximum number of cached users.
func (c *Cache) Cap() int { return c.cap }

// Len returns the number of cached users.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Get returns user u's cached position table and marks it most recently
// used. The returned slice is shared and must not be modified.
func (c *Cache) Get(u stream.User) ([]uint64, bool) {
	pos, _, ok := c.GetVersioned(u, 0)
	return pos, ok
}

// Put stores user u's position table, evicting the least recently used
// entry when the cache is full. The slice is retained; the caller must not
// modify it afterwards. Re-putting an existing user refreshes recency and
// replaces the table (the tables are equal anyway — positions are a pure
// function of the user).
func (c *Cache) Put(u stream.User, pos []uint64) {
	c.PutVersioned(u, 0, pos, 0)
}

// GetVersioned returns user u's cached table — and the aux value stored
// with it — only when it was stored under the same version stamp; a stale
// entry counts as a miss (it stays until replaced or evicted — it can
// never hit again, because callers only look up the current version).
// Position tables are version-free: use Get, or equivalently a constant
// stamp of 0.
func (c *Cache) GetVersioned(u stream.User, ver uint64) ([]uint64, uint64, bool) {
	c.mu.Lock()
	el, ok := c.entries[u]
	if !ok || el.Value.(*entry).ver != ver {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, 0, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*entry)
	pos, aux := e.pos, e.aux
	c.mu.Unlock()
	c.hits.Add(1)
	return pos, aux, true
}

// PutVersioned stores user u's table and an opaque aux value under a
// version stamp, evicting the least recently used entry when the cache is
// full. The slice is retained; the caller must not modify it afterwards.
// Re-putting an existing user refreshes recency and replaces table, stamp,
// and aux.
func (c *Cache) PutVersioned(u stream.User, ver uint64, pos []uint64, aux uint64) {
	c.mu.Lock()
	if el, ok := c.entries[u]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*entry)
		e.ver, e.pos, e.aux = ver, pos, aux
		c.mu.Unlock()
		return
	}
	evicted := false
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		delete(c.entries, back.Value.(*entry).user)
		c.order.Remove(back)
		evicted = true
	}
	c.entries[u] = c.order.PushFront(&entry{user: u, ver: ver, pos: pos, aux: aux})
	c.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Stats is a counter snapshot for monitoring cache effectiveness.
type Stats struct {
	// Hits and Misses count Get outcomes; a low hit rate on a serving
	// workload means the capacity is below the hot user set.
	Hits, Misses uint64
	// Evictions counts entries displaced by Put on a full cache.
	Evictions uint64
	// Len and Cap are the current and maximum entry counts.
	Len, Cap int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       c.Len(),
		Cap:       c.cap,
	}
}
