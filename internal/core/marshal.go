package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// Serialization lets a sketch built by a streaming worker be shipped to a
// query server or checkpointed. Format: magic, config, cardinality table
// (sorted by user for determinism), then the bit array.
//
// The hash family rides in the high byte of the SketchBits word — that
// byte was always zero before families existed (validate bounds k below
// 2^48), so KindClassic sketches serialize byte-identically to the
// pre-family format, and a pre-family decoder reading a KindFast sketch
// sees an absurd SketchBits and fails its k ≤ m check instead of decoding
// positions with the wrong family.

var vosMagic = [4]byte{'V', 'O', 'S', '1'}

// ErrCorrupt reports an invalid serialized sketch.
var ErrCorrupt = errors.New("core: corrupt serialized sketch")

// ErrFamilyMismatch reports an attempt to combine or load sketch state
// across different hash families — refused loudly, because the two
// families place virtual slots at unrelated array positions and a silent
// merge would XOR desynchronized state. Use errors.Is to detect it.
var ErrFamilyMismatch = errors.New("core: hash family mismatch")

// familyShift positions the family tag in the SketchBits header word.
const familyShift = 56

// MarshalBinary encodes the full sketch state.
func (v *VOS) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(vosMagic[:])

	var scratch [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		buf.Write(scratch[:])
	}
	writeU64(v.cfg.MemoryBits)
	writeU64(uint64(v.cfg.SketchBits) | uint64(v.cfg.Family)<<familyShift)
	writeU64(v.cfg.Seed)

	users := make([]stream.User, 0, len(v.card))
	for u, c := range v.card {
		if c != 0 {
			users = append(users, u)
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	writeU64(uint64(len(users)))
	for _, u := range users {
		writeU64(uint64(u))
		writeU64(uint64(v.card[u]))
	}

	arr, err := v.arr.MarshalBinary()
	if err != nil {
		return nil, err
	}
	writeU64(uint64(len(arr)))
	buf.Write(arr)
	return buf.Bytes(), nil
}

// UnmarshalVOS decodes a sketch produced by MarshalBinary.
func UnmarshalVOS(data []byte) (*VOS, error) {
	if len(data) < 4+3*8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if !bytes.Equal(data[:4], vosMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := 4
	readU64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, off)
		}
		x := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return x, nil
	}
	mem, err := readU64()
	if err != nil {
		return nil, err
	}
	kBits, err := readU64()
	if err != nil {
		return nil, err
	}
	seed, err := readU64()
	if err != nil {
		return nil, err
	}
	// A valid payload must carry the whole m-bit array, so m is bounded by
	// the input size. Check before New allocates: a corrupt (or hostile)
	// header must produce ErrCorrupt, not an out-of-memory crash.
	if mem/8 > uint64(len(data)) {
		return nil, fmt.Errorf("%w: MemoryBits %d cannot fit in %d payload bytes", ErrCorrupt, mem, len(data))
	}
	fam := hashing.Kind(kBits >> familyShift)
	kBits &= (1 << familyShift) - 1
	if !fam.Valid() {
		// Wrapped as corruption (the fuzz contract: every decode failure is
		// ErrCorrupt), with ErrFamilyMismatch in the chain so callers probing
		// for family trouble specifically can detect it too.
		return nil, fmt.Errorf("%w: unknown hash family tag %d (%w)", ErrCorrupt, uint8(fam), ErrFamilyMismatch)
	}
	if kBits > mem {
		return nil, fmt.Errorf("%w: SketchBits %d exceeds MemoryBits %d", ErrCorrupt, kBits, mem)
	}
	cfg := Config{MemoryBits: mem, SketchBits: int(kBits), Seed: seed, Family: fam}
	v, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	nUsers, err := readU64()
	if err != nil {
		return nil, err
	}
	if nUsers > uint64(len(data))/16+1 {
		return nil, fmt.Errorf("%w: implausible user count %d", ErrCorrupt, nUsers)
	}
	for i := uint64(0); i < nUsers; i++ {
		u, err := readU64()
		if err != nil {
			return nil, err
		}
		c, err := readU64()
		if err != nil {
			return nil, err
		}
		// Process/Merge prune zero-cardinality entries, so Marshal never
		// writes one — and Users() = len(card) depends on the map never
		// holding a zero. Negative counters (stored as two's-complement
		// uint64) ARE valid: delete-before-insert reordering passes through
		// them, and a checkpoint can land in that window.
		if c == 0 {
			return nil, fmt.Errorf("%w: user %d has zero cardinality", ErrCorrupt, u)
		}
		v.card[stream.User(u)] = int64(c)
	}

	arrLen, err := readU64()
	if err != nil {
		return nil, err
	}
	if uint64(len(data)-off) != arrLen {
		return nil, fmt.Errorf("%w: array payload %d bytes, header says %d", ErrCorrupt, len(data)-off, arrLen)
	}
	if err := v.arr.UnmarshalBinary(data[off:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if v.arr.Len() != cfg.MemoryBits {
		return nil, fmt.Errorf("%w: array length %d != config m %d", ErrCorrupt, v.arr.Len(), cfg.MemoryBits)
	}
	return v, nil
}
