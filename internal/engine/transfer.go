package engine

import (
	"fmt"

	"github.com/vossketch/vos/internal/core"
)

// ImportSketch merges a serialized sketch (core.VOS wire format, as
// produced by MarshalBinary on another engine) into this engine's state.
// It is the receiving half of a cluster shard handoff: the source node
// exports its engine state, the target imports it, and because VOS state
// is pure parity the target's merged sketch afterwards equals a single
// engine that consumed both streams.
//
// The imported state lands in the engine's recovery base — the same slot
// a checkpoint restores into — so shards keep holding only their own
// deltas and every query path picks it up through the existing
// base-merge. Each import publishes a fresh immutable base sketch (old
// base XOR import), so concurrent readers are never exposed to a
// half-merged array.
//
// On a durable engine the import is immediately checkpointed: the
// imported edges exist in no local WAL record, so without a covering
// checkpoint a crash after the import ack would silently lose them. The
// ack therefore means "durable here" under the engine's sync policy.
//
// Importing the same state twice XOR-cancels it — parity state has no
// idempotent union. Callers coordinating a handoff must not retry a
// completed import against the same target (see internal/cluster).
func (e *Engine) ImportSketch(data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.cfg.Window != nil {
		return fmt.Errorf("engine: ImportSketch is not supported on windowed engines: a flat sketch carries no bucket attribution to retire")
	}
	imported, err := core.UnmarshalVOS(data)
	if err != nil {
		return err
	}
	if imported.Config().Family != e.cfg.Sketch.Family {
		return fmt.Errorf("%w: imported sketch uses the %v hash family, engine is configured for %v",
			core.ErrFamilyMismatch, imported.Config().Family, e.cfg.Sketch.Family)
	}
	if imported.Config() != e.cfg.Sketch {
		return fmt.Errorf("engine: imported sketch config %+v does not match engine config %+v",
			imported.Config(), e.cfg.Sketch)
	}
	// snapMu serializes concurrent imports (the read-merge-publish below
	// must not interleave) and invalidates the cached query snapshot in
	// the same critical section the new base is published in, so no reader
	// can pair a stale snapshot decision with the new state.
	e.snapMu.Lock()
	merged := core.MustNew(e.cfg.Sketch)
	merged.SetPositionCache(e.pcache)
	if old := e.base.Load(); old != nil {
		if err := merged.Merge(old); err != nil {
			e.snapMu.Unlock()
			panic(fmt.Sprintf("engine: base merge failed: %v", err))
		}
	}
	if err := merged.Merge(imported); err != nil {
		e.snapMu.Unlock()
		return err
	}
	e.base.Store(merged)
	e.snap = nil
	e.snapMu.Unlock()

	if e.log != nil {
		// Make the import durable before acknowledging it: the imported
		// edges are in no WAL record here, so only a checkpoint covering
		// the new base survives a crash.
		if _, err := e.Checkpoint(); err != nil {
			return fmt.Errorf("engine: checkpoint after import: %w", err)
		}
	}
	return nil
}
