package gen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"github.com/vossketch/vos/internal/stream"
)

// LoadSNAP parses an edge list in the SNAP / Mislove-IMC'07 text format —
// one "<user> <item>" pair per line, whitespace separated, '#' comments
// ignored — into insert-only stream edges. This is the format the paper's
// actual datasets (YouTube, Flickr, Orkut, LiveJournal links files) are
// distributed in, so users who obtain them can replay the paper's §V
// pipeline on the real graphs:
//
//	edges, _ := gen.LoadSNAP(f)
//	edges = gen.Shuffle(edges, seed)
//	stream := gen.Dynamize(edges, gen.PaperDynamize(len(edges), seed))
//
// Duplicate pairs are dropped (the crawls contain a few), keeping the
// result feasible.
func LoadSNAP(r io.Reader) ([]stream.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []stream.Edge
	seen := make(map[edgeKey]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gen: snap line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: snap line %d: bad user: %v", lineNo, err)
		}
		i, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gen: snap line %d: bad item: %v", lineNo, err)
		}
		k := edgeKey{stream.User(u), stream.Item(i)}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, stream.Edge{User: k.User, Item: k.Item, Op: stream.Insert})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Shuffle returns a seeded uniform permutation of the edges (SNAP files
// are sorted by node ID; streams should arrive in random order, as in the
// paper's model).
func Shuffle(edges []stream.Edge, seed int64) []stream.Edge {
	out := append([]stream.Edge(nil), edges...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
