package poscache

import (
	"sync"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func table(v uint64) []uint64 { return []uint64{v, v + 1, v + 2} }

func TestGetPutHitMiss(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(1, table(10))
	pos, ok := c.Get(1)
	if !ok || pos[0] != 10 {
		t.Fatalf("Get(1) = %v, %v", pos, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Len != 1 || st.Cap != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New(3)
	c.Put(1, table(1))
	c.Put(2, table(2))
	c.Put(3, table(3))
	// Touch 1 so 2 becomes the least recently used.
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should be cached")
	}
	c.Put(4, table(4)) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	for _, u := range []stream.User{1, 3, 4} {
		if _, ok := c.Get(u); !ok {
			t.Fatalf("%d should be cached", u)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Len != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRePutRefreshesRecency(t *testing.T) {
	c := New(2)
	c.Put(1, table(1))
	c.Put(2, table(2))
	c.Put(1, table(100)) // refresh 1: now 2 is LRU
	c.Put(3, table(3))   // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	pos, ok := c.Get(1)
	if !ok || pos[0] != 100 {
		t.Fatalf("re-Put did not replace the table: %v, %v", pos, ok)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(8)
	for u := stream.User(0); u < 100; u++ {
		c.Put(u, table(uint64(u)))
		if c.Len() > 8 {
			t.Fatalf("len %d exceeds cap 8", c.Len())
		}
	}
	if st := c.Stats(); st.Len != 8 || st.Evictions != 92 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	New(0)
}

// TestConcurrentAccess races readers and writers; run under -race it pins
// the thread-safety contract the parallel top-K path relies on.
func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				u := stream.User((g*31 + i) % 64)
				if pos, ok := c.Get(u); ok {
					if pos[0] != uint64(u) {
						t.Errorf("user %d got table %v", u, pos)
						return
					}
				} else {
					c.Put(u, table(uint64(u)))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("len %d exceeds cap", c.Len())
	}
}

func TestVersionedEntriesInvalidateOnStamp(t *testing.T) {
	c := New(4)
	c.PutVersioned(1, 7, table(70), 7000)
	if _, _, ok := c.GetVersioned(1, 8); ok {
		t.Fatal("stale version stamp must miss")
	}
	pos, aux, ok := c.GetVersioned(1, 7)
	if !ok || pos[0] != 70 || aux != 7000 {
		t.Fatalf("matching stamp: %v, aux=%d, %v", pos, aux, ok)
	}
	// Re-put under a newer stamp replaces table, stamp, and aux in place.
	c.PutVersioned(1, 8, table(80), 8000)
	if _, _, ok := c.GetVersioned(1, 7); ok {
		t.Fatal("old stamp must miss after re-put")
	}
	if pos, aux, ok := c.GetVersioned(1, 8); !ok || pos[0] != 80 || aux != 8000 {
		t.Fatalf("new stamp: %v, aux=%d, %v", pos, aux, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("re-put duplicated the entry: len=%d", c.Len())
	}
}

func TestVersionedAndPlainEntriesCoexist(t *testing.T) {
	// Plain Get/Put is stamp 0; a versioned store for the same user in a
	// DIFFERENT cache is the normal usage, but within one cache the stamp
	// namespace is shared — last put wins.
	c := New(2)
	c.Put(1, table(1))
	if pos, _, ok := c.GetVersioned(1, 0); !ok || pos[0] != 1 {
		t.Fatalf("plain put invisible to stamp 0: %v %v", pos, ok)
	}
}
