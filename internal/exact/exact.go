// Package exact maintains exact per-user item sets and exact pair
// similarities over a fully dynamic graph stream. It is the ground truth
// that the paper's error metrics (AAPE over ŝ, ARMSE over Ĵ) are computed
// against, and it doubles as the reference oracle for the sketch tests.
//
// Memory is Θ(live edges), which is exactly why sketches exist — the
// package is for evaluation, not production use.
package exact

import (
	"fmt"
	"sort"

	"github.com/vossketch/vos/internal/stream"
)

// Store holds the exact item set of every user seen in the stream.
type Store struct {
	sets map[stream.User]map[stream.Item]struct{}
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{sets: make(map[stream.User]map[stream.Item]struct{})}
}

// Apply folds one stream element into the store. It returns an error for
// infeasible elements (duplicate subscription / absent unsubscription) and
// leaves the state unchanged in that case.
func (s *Store) Apply(e stream.Edge) error {
	set := s.sets[e.User]
	switch e.Op {
	case stream.Insert:
		if set == nil {
			set = make(map[stream.Item]struct{})
			s.sets[e.User] = set
		}
		if _, dup := set[e.Item]; dup {
			return fmt.Errorf("exact: duplicate subscription %s", e)
		}
		set[e.Item] = struct{}{}
	case stream.Delete:
		if set == nil {
			return fmt.Errorf("exact: unsubscription for unknown user %s", e)
		}
		if _, ok := set[e.Item]; !ok {
			return fmt.Errorf("exact: unsubscription of absent item %s", e)
		}
		delete(set, e.Item)
	default:
		return fmt.Errorf("exact: invalid op in %s", e)
	}
	return nil
}

// MustApply is Apply for feasible-by-construction streams; it panics on
// infeasible elements.
func (s *Store) MustApply(e stream.Edge) {
	if err := s.Apply(e); err != nil {
		panic(err)
	}
}

// Cardinality returns |S_u|.
func (s *Store) Cardinality(u stream.User) int {
	return len(s.sets[u])
}

// Has reports whether user u currently subscribes to item i.
func (s *Store) Has(u stream.User, i stream.Item) bool {
	_, ok := s.sets[u][i]
	return ok
}

// Items returns a copy of S_u in unspecified order.
func (s *Store) Items(u stream.User) []stream.Item {
	set := s.sets[u]
	out := make([]stream.Item, 0, len(set))
	for it := range set {
		out = append(out, it)
	}
	return out
}

// Users returns every user with at least one current subscription.
func (s *Store) Users() []stream.User {
	out := make([]stream.User, 0, len(s.sets))
	for u, set := range s.sets {
		if len(set) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// CommonItems returns s_uv = |S_u ∩ S_v| by scanning the smaller set.
func (s *Store) CommonItems(u, v stream.User) int {
	a, b := s.sets[u], s.sets[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for it := range a {
		if _, ok := b[it]; ok {
			n++
		}
	}
	return n
}

// Jaccard returns J(S_u, S_v). The Jaccard of two empty sets is defined as
// 0 here (the paper never queries such pairs; 0 keeps metrics finite).
func (s *Store) Jaccard(u, v stream.User) float64 {
	inter := s.CommonItems(u, v)
	union := len(s.sets[u]) + len(s.sets[v]) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SymmetricDifference returns |S_u Δ S_v|.
func (s *Store) SymmetricDifference(u, v stream.User) int {
	inter := s.CommonItems(u, v)
	return len(s.sets[u]) + len(s.sets[v]) - 2*inter
}

// TopUsers returns the n users with the largest current cardinality,
// breaking ties by user ID for determinism. This mirrors the paper's
// selection of the "5,000 users with largest cardinalities".
func (s *Store) TopUsers(n int) []stream.User {
	users := make([]stream.User, 0, len(s.sets))
	for u := range s.sets {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		ci, cj := len(s.sets[users[i]]), len(s.sets[users[j]])
		if ci != cj {
			return ci > cj
		}
		return users[i] < users[j]
	})
	if n > len(users) {
		n = len(users)
	}
	return users[:n]
}

// Pair is an unordered user pair; constructors normalise so U < V.
type Pair struct {
	U, V stream.User
}

// MakePair builds a normalised pair. u and v must differ.
func MakePair(u, v stream.User) Pair {
	if u == v {
		panic(fmt.Sprintf("exact: degenerate pair (%d, %d)", u, v))
	}
	if u > v {
		u, v = v, u
	}
	return Pair{U: u, V: v}
}

// PairsWithCommonItems enumerates all pairs among users that currently
// share at least minCommon items, capped at maxPairs (0 = no cap). This is
// the paper's tracked-pair selection: pairs of top-cardinality users with
// at least one common item.
func (s *Store) PairsWithCommonItems(users []stream.User, minCommon, maxPairs int) []Pair {
	var out []Pair
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			if s.CommonItems(users[i], users[j]) >= minCommon {
				out = append(out, MakePair(users[i], users[j]))
				if maxPairs > 0 && len(out) >= maxPairs {
					return out
				}
			}
		}
	}
	return out
}
