package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		a, b := SplitMix64(&s1), SplitMix64(&s2)
		if a != b {
			t.Fatalf("step %d: identical states diverged: %x vs %x", i, a, b)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of splitmix64 seeded with 1234567 (from the public
	// domain reference implementation by Sebastiano Vigna).
	state := uint64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
		0x3fbef740e9177b3f,
		0xe3b8346708cb5ecd,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// A bijection restricted to a small sample must have no collisions.
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 10000; x++ {
		y := Mix64(x)
		if prev, ok := seen[y]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, x, y)
		}
		seen[y] = x
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	// Different seeds must produce (nearly) uncorrelated functions; check
	// that the agreement rate on low bits is close to 1/2.
	agree := 0
	const n = 20000
	for x := uint64(0); x < n; x++ {
		if Hash64(x, 1)&1 == Hash64(x, 2)&1 {
			agree++
		}
	}
	frac := float64(agree) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("low-bit agreement between seeds = %.4f, want ~0.5", frac)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on average.
	var totalFlips, samples int
	for x := uint64(0); x < 2000; x++ {
		h := Hash64(x, 99)
		for b := uint(0); b < 64; b += 7 {
			h2 := Hash64(x^(1<<b), 99)
			totalFlips += popcount(h ^ h2)
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %.2f output bits flipped, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashStringMatchesBytes(t *testing.T) {
	cases := []string{"", "a", "hello world", "user:42", "\x00\xff"}
	for _, s := range cases {
		if HashString(s, 7) != HashBytes([]byte(s), 7) {
			t.Errorf("HashString(%q) != HashBytes(%q)", s, s)
		}
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("abc", 1) == HashString("abd", 1) {
		t.Error("trivially distinct strings collided")
	}
	if HashString("abc", 1) == HashString("abc", 2) {
		t.Error("same string under different seeds should differ")
	}
}

func TestReduceRange(t *testing.T) {
	err := quick.Check(func(h uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		return Reduce(h, n) < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestReduceUniform(t *testing.T) {
	// Chi-square over 16 buckets; hash a consecutive key range.
	const buckets = 16
	const n = 64000
	var counts [buckets]int
	for x := uint64(0); x < n; x++ {
		counts[HashToRange(x, 5, buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %.1f over %d buckets, too non-uniform", chi2, buckets)
	}
}

func TestFloat01Range(t *testing.T) {
	err := quick.Check(func(h uint64) bool {
		f := Float01(h)
		return f >= 0 && f < 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
	if Float01(0) != 0 {
		t.Errorf("Float01(0) = %v, want 0", Float01(0))
	}
}

func TestFamilyMembersDiffer(t *testing.T) {
	f := NewFamily(8, 77)
	if f.K() != 8 {
		t.Fatalf("K() = %d, want 8", f.K())
	}
	for j := 1; j < f.K(); j++ {
		same := 0
		for x := uint64(0); x < 1000; x++ {
			if f.Hash(0, x) == f.Hash(j, x) {
				same++
			}
		}
		if same > 0 {
			t.Errorf("members 0 and %d agree on %d/1000 64-bit outputs", j, same)
		}
	}
}

func TestFamilyDeterministicAcrossConstructions(t *testing.T) {
	a := NewFamily(4, 123)
	b := NewFamily(4, 123)
	for j := 0; j < 4; j++ {
		for x := uint64(0); x < 100; x++ {
			if a.Hash(j, x) != b.Hash(j, x) {
				t.Fatalf("family member %d not reproducible", j)
			}
		}
	}
}

func TestFamilyHashRange(t *testing.T) {
	f := NewFamily(3, 9)
	for j := 0; j < 3; j++ {
		for x := uint64(0); x < 1000; x++ {
			if v := f.HashRange(j, x, 10); v >= 10 {
				t.Fatalf("HashRange out of range: %d", v)
			}
		}
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFamily(0, …) should panic")
		}
	}()
	NewFamily(0, 1)
}

func TestTwoUniversalFieldClosed(t *testing.T) {
	tu := NewTwoUniversal(321)
	err := quick.Check(func(x uint64) bool {
		return tu.Hash(x) < MersennePrime61
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTwoUniversalLinearity(t *testing.T) {
	// h(x) = a*x + b mod p, so h(x) - h(0) = a*x mod p and consequently
	// h(2x) - h(0) = 2*(h(x) - h(0)) mod p for x in the field.
	tu := NewTwoUniversal(5)
	h0 := tu.Hash(0)
	for x := uint64(1); x < 1000; x++ {
		hx := tu.Hash(x)
		h2x := tu.Hash(2 * x)
		lhs := mod61Add(h2x, MersennePrime61-h0) // h(2x) - h(0)
		rhs := mod61Add(hx, MersennePrime61-h0)  // h(x) - h(0)
		rhs = mod61Add(rhs, rhs)                 // doubled
		if lhs != rhs {
			t.Fatalf("linearity violated at x=%d: %d vs %d", x, lhs, rhs)
		}
	}
}

func TestTwoUniversalPairwiseCollisions(t *testing.T) {
	// Over many seeds, P(h(x) mod 64 == h(y) mod 64) should be ~1/64 for
	// fixed x != y (pairwise independence).
	const trials = 8000
	collide := 0
	for s := uint64(0); s < trials; s++ {
		tu := NewTwoUniversal(s)
		if tu.HashRange(17, 64) == tu.HashRange(90001, 64) {
			collide++
		}
	}
	frac := float64(collide) / trials
	if math.Abs(frac-1.0/64) > 0.01 {
		t.Errorf("pairwise collision rate = %.4f, want ~%.4f", frac, 1.0/64)
	}
}

func TestMulMod61AgainstBigIntStyle(t *testing.T) {
	// Verify the 128-bit folding against naive double-and-add arithmetic.
	naive := func(a, b uint64) uint64 {
		r := uint64(0)
		a = mod61(a)
		b = mod61(b)
		for b > 0 {
			if b&1 == 1 {
				r = mod61Add(r, a)
			}
			a = mod61Add(a, a)
			b >>= 1
		}
		return r
	}
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {MersennePrime61 - 1, MersennePrime61 - 1},
		{123456789, 987654321}, {1 << 60, 1 << 60}, {MersennePrime61 - 1, 2},
	}
	for _, c := range cases {
		if got, want := mulMod61(c[0], c[1]), naive(c[0], c[1]); got != want {
			t.Errorf("mulMod61(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
	err := quick.Check(func(a, b uint64) bool {
		a = mod61(a)
		b = mod61(b)
		return mulMod61(a, b) == naive(a, b)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestHashRangeIntoMatchesHashRange(t *testing.T) {
	f := NewFamily(257, 42)
	for _, n := range []uint64{1, 2, 1 << 10, 1<<24 - 3, 1 << 63} {
		for _, key := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
			// Full family and a short prefix (dst shorter than K).
			for _, k := range []int{257, 1, 64} {
				dst := make([]uint64, k)
				f.HashRangeInto(dst, key, n)
				for j, got := range dst {
					if want := f.HashRange(j, key, n); got != want {
						t.Fatalf("HashRangeInto k=%d n=%d key=%#x member %d = %d, want %d",
							k, n, key, j, got, want)
					}
				}
			}
		}
	}
}

// benchSink keeps benchmark results live: HashRangeInto is inlineable, so
// without a consumer the compiler deletes most of the measured work.
var benchSink uint64

func BenchmarkHashRangePerMember(b *testing.B) {
	f := NewFamily(6400, 1)
	dst := make([]uint64, 6400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = f.HashRange(j, uint64(i), 1<<24)
		}
		benchSink += dst[i&4095]
	}
}

func BenchmarkHashRangeInto(b *testing.B) {
	f := NewFamily(6400, 1)
	dst := make([]uint64, 6400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.HashRangeInto(dst, uint64(i), 1<<24)
		benchSink += dst[i&4095]
	}
}
