package pairmon

import (
	"fmt"
	"sort"

	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// ScoredPair is one ranked pair.
type ScoredPair struct {
	U, V    stream.User
	Jaccard float64
	Common  float64
}

// Monitor tracks similarity scores for all pairs of a watched user set.
type Monitor struct {
	est     similarity.Estimator
	watched []stream.User
	index   map[stream.User]int // watched user -> position
	// scores is a flat upper-triangular matrix of pair scores.
	scores []ScoredPair
	dirty  map[stream.User]struct{}
	// refreshEvery triggers an automatic Refresh after this many
	// processed elements; 0 disables automatic refresh.
	refreshEvery int
	sinceRefresh int
	rescored     uint64
}

// New creates a monitor over the watched users (at least two, distinct).
func New(est similarity.Estimator, watched []stream.User, refreshEvery int) (*Monitor, error) {
	if len(watched) < 2 {
		return nil, fmt.Errorf("pairmon: need at least two watched users, got %d", len(watched))
	}
	index := make(map[stream.User]int, len(watched))
	for pos, u := range watched {
		if _, dup := index[u]; dup {
			return nil, fmt.Errorf("pairmon: duplicate watched user %d", u)
		}
		index[u] = pos
	}
	n := len(watched)
	m := &Monitor{
		est:          est,
		watched:      append([]stream.User(nil), watched...),
		index:        index,
		scores:       make([]ScoredPair, n*(n-1)/2),
		dirty:        make(map[stream.User]struct{}),
		refreshEvery: refreshEvery,
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.scores[m.pairIdx(i, j)] = ScoredPair{U: watched[i], V: watched[j]}
		}
	}
	return m, nil
}

// pairIdx maps watched positions (i < j) to the flat triangular index.
func (m *Monitor) pairIdx(i, j int) int {
	n := len(m.watched)
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// Process forwards one element to the estimator and tracks dirtiness.
func (m *Monitor) Process(e stream.Edge) {
	m.est.Process(e)
	if _, ok := m.index[e.User]; ok {
		m.dirty[e.User] = struct{}{}
	}
	m.sinceRefresh++
	if m.refreshEvery > 0 && m.sinceRefresh >= m.refreshEvery {
		m.Refresh()
	}
}

// Refresh re-scores every pair containing a dirty watched user and clears
// the dirty set. Cost: O(|dirty| · |watched| · query).
func (m *Monitor) Refresh() {
	m.sinceRefresh = 0
	if len(m.dirty) == 0 {
		return
	}
	// Re-score each dirty-involving pair exactly once even when both
	// endpoints are dirty.
	done := make(map[int]struct{})
	for u := range m.dirty {
		i := m.index[u]
		for j := 0; j < len(m.watched); j++ {
			if j == i {
				continue
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			idx := m.pairIdx(a, b)
			if _, ok := done[idx]; ok {
				continue
			}
			done[idx] = struct{}{}
			p := &m.scores[idx]
			p.Jaccard = m.est.EstimateJaccard(p.U, p.V)
			p.Common = m.est.EstimateCommonItems(p.U, p.V)
			m.rescored++
		}
	}
	m.dirty = make(map[stream.User]struct{})
}

// Top returns the n highest-Jaccard pairs (ties by common items, then by
// user IDs for determinism). Call Refresh first — or rely on automatic
// refresh — for scores reflecting the latest stream position; Top itself
// forces a refresh of outstanding dirty users.
func (m *Monitor) Top(n int) []ScoredPair {
	m.Refresh()
	out := append([]ScoredPair(nil), m.scores...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jaccard != out[j].Jaccard {
			return out[i].Jaccard > out[j].Jaccard
		}
		if out[i].Common != out[j].Common {
			return out[i].Common > out[j].Common
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// Watched returns the watched users in registration order.
func (m *Monitor) Watched() []stream.User {
	return append([]stream.User(nil), m.watched...)
}

// Rescored returns the number of pair re-scorings performed, exposed for
// the maintenance-cost tests.
func (m *Monitor) Rescored() uint64 { return m.rescored }
