// Package gen generates the workloads of the paper's evaluation: synthetic
// bipartite subscription graphs whose shape follows the four Mislove et al.
// (IMC'07) online social networks, and the Trièst-style (KDD'16) fully
// dynamic stream transformation with mass-deletion events.
//
// Substitution note (see README.md, "Reproducing the paper"): the original datasets are crawls of
// YouTube, Flickr, Orkut and LiveJournal. They are not redistributable here,
// so each is replaced by a generated graph that preserves the published
// shape — relative user counts, average degree, and a heavy-tailed degree
// distribution — at a configurable scale. Every competing method consumes
// only the resulting edge sequence, so relative accuracy and runtime, which
// is what the paper's figures compare, carry over.
package gen

import "fmt"

// Profile describes a dataset's shape: its size at paper scale and the
// skew of its degree distributions. Scaled shrinks it for laptop runs.
type Profile struct {
	// Name of the original dataset.
	Name string
	// Users and Items are the node counts at full (paper) scale. The
	// Mislove graphs are social follow graphs; the paper treats the
	// followed side as items, so Items ≈ Users.
	Users, Items uint64
	// Edges is the full-scale subscription count.
	Edges uint64
	// UserSkew is the Zipf exponent of the user degree distribution
	// (Mislove et al. report out-degree power-law coefficients ~1.5-2).
	UserSkew float64
	// ItemSkew is the Zipf exponent of item popularity; heavier skew
	// means top items are shared by more users, raising pair overlap.
	ItemSkew float64
}

// The four profiles of the paper's §V at published full scale
// (node/edge counts from Mislove et al., IMC'07, rounded).
var (
	YouTube = Profile{
		Name: "YouTube", Users: 1_157_827, Items: 1_157_827,
		Edges: 4_945_382, UserSkew: 1.63, ItemSkew: 1.30,
	}
	Flickr = Profile{
		Name: "Flickr", Users: 1_846_198, Items: 1_846_198,
		Edges: 22_613_981, UserSkew: 1.74, ItemSkew: 1.35,
	}
	Orkut = Profile{
		Name: "Orkut", Users: 3_072_441, Items: 3_072_441,
		Edges: 223_534_301, UserSkew: 1.50, ItemSkew: 1.30,
	}
	LiveJournal = Profile{
		Name: "LiveJournal", Users: 5_284_457, Items: 5_284_457,
		Edges: 77_402_652, UserSkew: 1.59, ItemSkew: 1.32,
	}
)

// Profiles lists the four datasets in the order the paper plots them.
var Profiles = []Profile{YouTube, Flickr, Orkut, LiveJournal}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown dataset profile %q", name)
}

// Scaled returns a copy of the profile shrunk by factor f (0 < f <= 1):
// node counts scale by f and edge counts by f as well, preserving average
// degree. Skews are unchanged. Counts are floored at small minimums so even
// extreme scales remain usable.
func (p Profile) Scaled(f float64) Profile {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("gen: scale factor %v out of (0, 1]", f))
	}
	s := p
	s.Users = maxU64(uint64(float64(p.Users)*f), 100)
	s.Items = maxU64(uint64(float64(p.Items)*f), 100)
	s.Edges = maxU64(uint64(float64(p.Edges)*f), 1000)
	// Average degree cannot exceed the item universe.
	if s.Edges > s.Users*s.Items {
		s.Edges = s.Users * s.Items
	}
	return s
}

// AvgDegree returns Edges/Users, the mean subscriptions per user.
func (p Profile) AvgDegree() float64 {
	return float64(p.Edges) / float64(p.Users)
}

func (p Profile) String() string {
	return fmt.Sprintf("%s{|U|=%d |I|=%d |E|=%d deg=%.1f}",
		p.Name, p.Users, p.Items, p.Edges, p.AvgDegree())
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
