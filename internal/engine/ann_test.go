package engine

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
)

// annConfig builds a small ANN-enabled engine config: a band structure
// loose enough that a planted cluster's mates reliably collide on the
// 512-bit test sketches.
func annConfig(shards int) Config {
	return Config{
		Sketch: testConfig(),
		Shards: shards,
		ANN:    &ANNConfig{Bands: 16, Rows: 8},
	}
}

// plantedClusterEdges builds one heavy cluster (every member shares the
// first common items, then a private tail) over a light background
// population, returning the edges and each user's item list so tests can
// unsubscribe users edge by edge.
func plantedClusterEdges(mates, size, common, background, bgSize int) ([]stream.Edge, map[stream.User][]stream.Item) {
	items := make(map[stream.User][]stream.Item)
	var edges []stream.Edge
	next := uint64(common)
	for u := stream.User(0); u < stream.User(mates); u++ {
		for j := 0; j < common; j++ {
			items[u] = append(items[u], stream.Item(j))
		}
		for j := 0; j < size-common; j++ {
			items[u] = append(items[u], stream.Item(next))
			next++
		}
	}
	bgBase := uint64(1 << 30)
	for u := stream.User(mates); u < stream.User(mates+background); u++ {
		for j := 0; j < bgSize; j++ {
			items[u] = append(items[u], stream.Item(bgBase))
			bgBase++
		}
	}
	for u, its := range items {
		for _, it := range its {
			edges = append(edges, stream.Edge{User: u, Item: it, Op: stream.Insert})
		}
	}
	return edges, items
}

func TestTopKApproxRequiresANN(t *testing.T) {
	e, err := New(Config{Sketch: testConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.ANNEnabled() {
		t.Error("ANNEnabled on an engine without Config.ANN")
	}
	if _, ok := e.ANNStats(); ok {
		t.Error("ANNStats ok on an engine without Config.ANN")
	}
	if _, err := e.TopKApprox(1, 5); err != ErrNoANN {
		t.Errorf("TopKApprox error = %v, want ErrNoANN", err)
	}
}

// TestTopKApproxSubsetOrderedPrefix pins the correctness contract: the
// approximate result is exactly what the exact ranking produces over the
// candidate set — same total order (core.RankBefore), estimates identical
// to the engine's own pairwise answers — and on this planted workload the
// cluster mates are all found.
func TestTopKApproxSubsetOrderedPrefix(t *testing.T) {
	const mates, topN = 8, 5
	edges, _ := plantedClusterEdges(mates, 200, 180, 200, 4)
	e, err := New(annConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	for probe := stream.User(0); probe < mates; probe++ {
		// Asking for "everything" exposes the ranked candidate set.
		all, err := e.TopKApprox(probe, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		for _, r := range all {
			if r.User < mates {
				found++
			}
		}
		if found != mates-1 {
			t.Fatalf("probe %d: %d of %d cluster mates in candidates", probe, found, mates-1)
		}

		approx, err := e.TopKApprox(probe, topN)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) != topN {
			t.Fatalf("probe %d: got %d results, want %d", probe, len(approx), topN)
		}
		for i, r := range approx {
			if i > 0 && core.RankBefore(r, approx[i-1]) {
				t.Fatalf("probe %d: result out of order at rank %d", probe, i)
			}
			if q := e.Query(probe, r.User); q != r.Estimate {
				t.Fatalf("probe %d: estimate for %d differs from Query", probe, r.User)
			}
		}
		// Prefix parity with the exact scan restricted to the candidates.
		cands := make([]stream.User, len(all))
		for i, r := range all {
			cands[i] = r.User
		}
		exact := e.TopK(probe, cands, topN)
		if len(exact) != len(approx) {
			t.Fatalf("probe %d: exact-over-candidates length %d vs approx %d", probe, len(exact), len(approx))
		}
		for i := range exact {
			if exact[i] != approx[i] {
				t.Fatalf("probe %d: rank %d differs: exact %+v approx %+v", probe, i, exact[i], approx[i])
			}
		}
	}

	st, ok := e.ANNStats()
	if !ok || st.Indexed == 0 || st.Probes == 0 || st.Rebands == 0 {
		t.Fatalf("implausible ANNStats after probing: %+v ok=%v", st, ok)
	}
}

// TestTopKApproxNeverSurfacesDeletedUser pins the asymmetric staleness
// contract, in the spirit of core's TestRecoveredCacheInvalidatedByWrites:
// a write landing between one probe (which banded the index) and the next
// must never let the index surface a deleted user or a stale similarity —
// even with RebandBudget 1, where the band entries themselves stay stale
// for many probes.
func TestTopKApproxNeverSurfacesDeletedUser(t *testing.T) {
	const mates = 8
	edges, items := plantedClusterEdges(mates, 200, 180, 40, 4)
	cfg := annConfig(2)
	cfg.ANN.RebandBudget = 1 // maintenance can never catch up: filter must save us
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if _, err := e.TopKApprox(0, mates); err != nil {
		t.Fatal(err) // first probe builds the index (build ignores the budget)
	}

	// Unsubscribe a mate from everything, then rewrite another mate's tail
	// — both between probes, neither rebandable within budget 1.
	gone := stream.User(3)
	var del []stream.Edge
	for _, it := range items[gone] {
		del = append(del, stream.Edge{User: gone, Item: it, Op: stream.Delete})
	}
	rewritten := stream.User(5)
	for j := 0; j < 40; j++ {
		del = append(del, stream.Edge{User: rewritten, Item: stream.Item(1<<40 + uint64(j)), Op: stream.Insert})
	}
	if err := e.ProcessBatch(del); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if c := e.Cardinality(gone); c != 0 {
		t.Fatalf("deleted user still has cardinality %d", c)
	}

	for probe := 0; probe < 2*mates; probe++ {
		res, err := e.TopKApprox(0, mates)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.User == gone {
				t.Fatalf("probe %d surfaced fully deleted user %d: %+v", probe, gone, r)
			}
			if q := e.Query(0, r.User); q != r.Estimate {
				t.Fatalf("probe %d reported stale similarity for %d", probe, r.User)
			}
		}
	}
	st, _ := e.ANNStats()
	if st.Rebands <= uint64(mates) {
		t.Fatalf("budgeted maintenance should creep forward: %+v", st)
	}
}

// TestTopKApproxWindowRotation pins rotation invalidation: retiring the
// bucket holding a user's whole subscription set must (a) immediately stop
// that user surfacing — via the live-cardinality filter, long before the
// budget re-bands anyone — and (b) mark the membership for re-banding.
func TestTopKApproxWindowRotation(t *testing.T) {
	clk := newFakeClock(time.Unix(100, 0))
	cfg := windowConfig(2, 2, clk)
	cfg.ANN = &ANNConfig{Bands: 16, Rows: 8}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	edges, _ := plantedClusterEdges(4, 100, 90, 20, 4)
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	res, err := e.TopKApprox(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("pre-rotation probe found %d mates, want 3", len(res))
	}

	// Rotate the whole population out of the window.
	clk.Set(time.Unix(100, 0).Add(5 * time.Second))
	if steps := e.AdvanceWindowTo(clk.Now()); steps == 0 {
		t.Fatal("window did not rotate")
	}
	res, err = e.TopKApprox(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("post-rotation probe surfaced retired users: %+v", res)
	}
	st, _ := e.ANNStats()
	if st.Rotations == 0 {
		t.Fatalf("rotation not observed by the index: %+v", st)
	}
}

// TestTopKApproxDuringIngest races index maintenance against concurrent
// ingest, approximate probes, and window rotation under the race detector,
// in the style of TestTopKDuringIngest: the only assertions are shape and
// the estimate/order contract, since the workload is racing.
func TestTopKApproxDuringIngest(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	clk := newFakeClock(time.Unix(100, 0))
	cfg := Config{
		Sketch: core.Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 13},
		Shards: 2,
		Window: &WindowConfig{Buckets: 3, BucketDuration: time.Second, Now: clk.Now},
		ANN:    &ANNConfig{Bands: 8, Rows: 8, RebandBudget: 32},
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := feasibleStream(5000, 300, 0.2, 17)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, ed := range edges {
			if err := e.Process(ed); err != nil {
				t.Errorf("Process: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := e.TopKApprox(stream.User(i%300), 5)
			if err != nil {
				t.Errorf("TopKApprox: %v", err)
				return
			}
			if len(res) > 5 {
				t.Errorf("got %d results, want <= 5", len(res))
				return
			}
			for j := 1; j < len(res); j++ {
				if core.RankBefore(res[j], res[j-1]) {
					t.Errorf("racing result out of order at %d", j)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= 4; i++ {
			clk.Set(time.Unix(100, 0).Add(time.Duration(i) * 700 * time.Millisecond))
			e.AdvanceWindowTo(clk.Now())
		}
	}()
	wg.Wait()
	e.Flush()
	if _, err := e.TopKApprox(7, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopKApproxContext(t.Context(), 7, 5); err != ErrClosed {
		t.Fatalf("TopKApproxContext after Close = %v, want ErrClosed", err)
	}
}
