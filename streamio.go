package vos

import (
	"io"

	"github.com/vossketch/vos/internal/stream"
)

// Stream persistence: two interchange formats for recorded graph streams.
//
// The text format is one element per line, "<op> <user> <item>" with op in
// {+, -}; '#' comments and blank lines are ignored. The binary format is a
// compact varint encoding with a magic header, suitable for multi-million
// element workloads (see cmd/streamgen).

// WriteStreamText writes edges in the text format.
func WriteStreamText(w io.Writer, edges []Edge) error {
	return stream.WriteText(w, edges)
}

// ReadStreamText parses the text format.
func ReadStreamText(r io.Reader) ([]Edge, error) {
	return stream.ReadText(r)
}

// WriteStreamBinary writes edges in the binary format.
func WriteStreamBinary(w io.Writer, edges []Edge) error {
	return stream.WriteBinary(w, edges)
}

// ReadStreamBinary parses the binary format, validating header and
// framing.
func ReadStreamBinary(r io.Reader) ([]Edge, error) {
	return stream.ReadBinary(r)
}

// PartitionByUser splits a stream into n shards by user hash; every shard
// is feasible when the input is, and any method's per-shard state can be
// built independently (for VOS, shards Merge back exactly).
func PartitionByUser(edges []Edge, n int, seed uint64) [][]Edge {
	return stream.PartitionByUser(edges, n, seed)
}

// RoundRobin splits a stream element-by-element; only order-insensitive,
// partition-exact sketches (VOS) should consume such shards. See
// stream.RoundRobin.
func RoundRobin(edges []Edge, n int) [][]Edge {
	return stream.RoundRobin(edges, n)
}
