package vos

import (
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// Estimator is the common interface of every similarity estimation method
// in this module: the VOS sketch, the three baselines the paper compares
// against (MinHash, OPH, RP), and the exact oracle. It lets applications
// and benchmarks swap methods without code changes.
type Estimator = similarity.Estimator

// Budget is the paper's memory-equalisation model: every method receives
// m = 32·K32·Users bits in total. See similarity.Budget.
type Budget = similarity.Budget

// Method names accepted by NewEstimator.
const (
	// MethodVOS selects the paper's sketch (this module's core).
	MethodVOS = similarity.MethodVOS
	// MethodMinHash selects the MinHash baseline with the §III dynamic
	// extension (k hash functions, O(k) updates, deletion-biased).
	MethodMinHash = similarity.MethodMinHash
	// MethodOPH selects one permutation hashing with the §III dynamic
	// extension (O(1) updates, deletion-biased).
	MethodOPH = similarity.MethodOPH
	// MethodRP selects random pairing (k uniform samplers per user,
	// O(k) updates, unbiased but high-variance).
	MethodRP = similarity.MethodRP
	// MethodExact selects the exact oracle (unbounded memory).
	MethodExact = similarity.MethodExact
)

// Methods lists the four sketch methods in the paper's plotting order.
var Methods = similarity.Methods

// NewEstimator builds a similarity estimator of the given method under a
// memory budget. Method names are case-insensitive.
func NewEstimator(method string, budget Budget, seed uint64) (Estimator, error) {
	return similarity.New(method, budget, seed)
}

// MustNewEstimator is NewEstimator for static configurations; it panics on
// error.
func MustNewEstimator(method string, budget Budget, seed uint64) Estimator {
	return similarity.MustNew(method, budget, seed)
}

// NewExact builds the exact ground-truth oracle. Its estimates are exact
// values; memory grows with the live graph.
func NewExact() Estimator { return similarity.NewExact() }

// TopSimilar returns the n users among candidates most similar to u under
// the estimator's Jaccard estimate, most similar first.
func TopSimilar(est Estimator, u User, candidates []User, n int) []User {
	return similarity.TopSimilar(est, u, candidates, n)
}

// ProcessAll folds a batch of elements into an estimator, a convenience
// for replaying recorded streams.
func ProcessAll(est Estimator, edges []Edge) {
	for _, e := range edges {
		est.Process(e)
	}
}

// Validate checks that an edge sequence is feasible (no duplicate
// subscriptions, no unsubscriptions of absent edges) and returns the first
// violation, or nil. The sketches assume feasible input.
func Validate(edges []Edge) error { return stream.Validate(edges) }
