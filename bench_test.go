// Top-level benchmark harness: one testing.B benchmark per figure panel of
// the paper's evaluation (§V), plus the repository's ablations (see README.md). Each
// benchmark regenerates the corresponding figure's quantity — per-element
// update cost for Figure 2, final AAPE/ARMSE (reported via b.ReportMetric)
// for Figure 3 — at laptop scale.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// For the full-resolution figures (larger scales, bigger k sweeps), use
// cmd/vosbench, which prints the complete tables.
package vos_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/experiments"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/server"
)

// benchOptions shrink the workloads so a full -bench=. pass stays in the
// minutes range; vosbench runs the full-size versions.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:        0.004,
		Seed:         2,
		K32:          100,
		Lambda:       2,
		TopUsers:     60,
		MinCommon:    1,
		MaxPairs:     200,
		Checkpoints:  6,
		RuntimeUsers: 500,
		RuntimeEdges: 20_000,
		RuntimeKs:    []int{1, 10, 100, 1000},
	}
}

// benchStream memoises the Figure 2 runtime workload.
var benchStreamCache []vos.Edge

func benchStream(b *testing.B) []vos.Edge {
	b.Helper()
	if benchStreamCache == nil {
		p := gen.YouTube
		p.Users = 500
		p.Items = 2000
		p.Edges = 20_000
		base := gen.Bipartite(p, 2)
		benchStreamCache = gen.Dynamize(base, gen.PaperDynamize(len(base), 3))
	}
	return benchStreamCache
}

// BenchmarkFig2a regenerates Figure 2(a): per-element update cost on the
// YouTube-shaped workload as k sweeps, for all four methods. ns/op is the
// figure's y-axis (the paper plots seconds for a fixed stream, which is
// ns/edge times stream length).
func BenchmarkFig2a(b *testing.B) {
	edges := benchStream(b)
	for _, k := range benchOptions().RuntimeKs {
		for _, method := range vos.Methods {
			b.Run(fmt.Sprintf("k=%d/%s", k, method), func(b *testing.B) {
				est := vos.MustNewEstimator(method,
					vos.Budget{K32: k, Users: 500, Lambda: 2}, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					est.Process(edges[i%len(edges)])
				}
			})
		}
	}
}

// BenchmarkFig2b regenerates Figure 2(b): per-element update cost at the
// largest swept k on each dataset-shaped workload.
func BenchmarkFig2b(b *testing.B) {
	opts := benchOptions()
	k := opts.RuntimeKs[len(opts.RuntimeKs)-1]
	for _, p := range gen.Profiles {
		rp := p
		rp.Users = opts.RuntimeUsers
		rp.Items = opts.RuntimeUsers * 4
		rp.Edges = opts.RuntimeEdges
		base := gen.Bipartite(rp, opts.Seed)
		edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))
		for _, method := range vos.Methods {
			b.Run(fmt.Sprintf("%s/%s", p.Name, method), func(b *testing.B) {
				est := vos.MustNewEstimator(method,
					vos.Budget{K32: k, Users: int(opts.RuntimeUsers), Lambda: 2}, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					est.Process(edges[i%len(edges)])
				}
			})
		}
	}
}

// accuracyBench runs the §V accuracy protocol once per iteration and
// reports the requested final metric for every method as custom benchmark
// metrics (AAPE_<method> or ARMSE_<method>).
func accuracyBench(b *testing.B, p gen.Profile, metric string) {
	opts := benchOptions()
	var last *experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range similarity.Methods {
		var v float64
		if metric == "AAPE" {
			v = last.AAPE.Get(m).Last()
		} else {
			v = last.ARMSE.Get(m).Last()
		}
		b.ReportMetric(v, metric+"_"+m)
	}
}

// BenchmarkFig3a regenerates Figure 3(a): the AAPE-over-time experiment on
// YouTube (final AAPE per method reported as metrics; the full trajectory
// comes from `vosbench -experiment fig3a`).
func BenchmarkFig3a(b *testing.B) {
	accuracyBench(b, gen.YouTube, "AAPE")
}

// BenchmarkFig3c regenerates Figure 3(c): ARMSE over time on YouTube.
func BenchmarkFig3c(b *testing.B) {
	accuracyBench(b, gen.YouTube, "ARMSE")
}

// BenchmarkFig3b regenerates Figure 3(b): final AAPE on each dataset.
func BenchmarkFig3b(b *testing.B) {
	for _, p := range gen.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			accuracyBench(b, p, "AAPE")
		})
	}
}

// BenchmarkFig3d regenerates Figure 3(d): final ARMSE on each dataset.
func BenchmarkFig3d(b *testing.B) {
	for _, p := range gen.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			accuracyBench(b, p, "ARMSE")
		})
	}
}

// BenchmarkAblLambda regenerates the λ-sensitivity ablation; the table
// itself comes from `vosbench -experiment abl-lambda`.
func BenchmarkAblLambda(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblLambda(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblLoad regenerates the array-load ablation.
func BenchmarkAblLoad(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblLoad(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblDense regenerates the densification ablation.
func BenchmarkAblDense(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblDense(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblDelBias regenerates the deletion-pressure bias ablation.
func BenchmarkAblDelBias(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblDelBias(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ingestStream memoises a larger feasible workload for the ingestion
// benchmarks (the Figure 2 stream is too short to exercise backpressure).
var ingestStreamCache []vos.Edge

func ingestStream(b *testing.B) []vos.Edge {
	b.Helper()
	if ingestStreamCache == nil {
		p := gen.YouTube
		p.Users = 20_000
		p.Items = 100_000
		p.Edges = 400_000
		base := gen.Bipartite(p, 7)
		ingestStreamCache = gen.Dynamize(base, gen.PaperDynamize(len(base), 8))
	}
	return ingestStreamCache
}

// ingestConfig is the paper-scale accuracy configuration used by all
// ingestion benchmarks, so their numbers are comparable.
func ingestConfig() vos.Config {
	return vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1}
}

// BenchmarkWindowedIngest measures the sliding-window write path: each
// edge lands in the current bucket AND the live merged view (the hashes
// are computed once; two bit flips, two counter bumps), so the expected
// cost is under 2x BenchmarkSequentialIngest, still O(1) per edge.
func BenchmarkWindowedIngest(b *testing.B) {
	edges := ingestStream(b)
	w, err := vos.NewWindowed(ingestConfig(), 8, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Process(edges[i%len(edges)])
	}
}

// BenchmarkWindowRotate measures retiring one bucket at paper scale
// (m=2^24): an O(sketch) Unmerge pass plus the bucket reset, independent
// of how many edges the bucket absorbed. Each iteration refills the
// current bucket (untimed) and times only the rotation.
func BenchmarkWindowRotate(b *testing.B) {
	edges := ingestStream(b)
	w, err := vos.NewWindowed(ingestConfig(), 8, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	const fill = 50_000
	pos := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < fill; j++ {
			w.Process(edges[pos%len(edges)])
			pos++
		}
		b.StartTimer()
		w.Rotate()
	}
}

// BenchmarkSequentialIngest is the single-goroutine, single-sketch
// baseline the sharded engine competes with.
func BenchmarkSequentialIngest(b *testing.B) {
	edges := ingestStream(b)
	sk := vos.MustNew(ingestConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Process(edges[i%len(edges)])
	}
}

// BenchmarkMutexIngest measures the global-RWMutex ConcurrentSketch under
// parallel writers: every Process serialises on one lock, so adding cores
// does not add throughput — the bottleneck the Engine removes.
func BenchmarkMutexIngest(b *testing.B) {
	edges := ingestStream(b)
	cs, err := vos.NewConcurrent(ingestConfig())
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			cs.Process(edges[i%uint64(len(edges))])
		}
	})
}

// BenchmarkEngineIngest measures sharded-engine ingest at 1/2/4/8 shards
// with parallel producers. On a multicore machine, ns/op should fall
// (throughput rise) monotonically from 1 to 4 shards while worker cost
// dominates; on a single core the sub-benchmarks collapse to parity, which
// is the scaling floor. Edges flow through ProcessBatch in chunks, the
// high-throughput path, and each sub-benchmark ends with a Flush so the
// timing covers applied edges, not just enqueued ones.
func BenchmarkEngineIngest(b *testing.B) {
	edges := ingestStream(b)
	const chunk = 512
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := vos.MustNewEngine(vos.EngineConfig{
				Sketch: ingestConfig(),
				Shards: shards,
			})
			defer eng.Close()
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]vos.Edge, 0, chunk)
				for pb.Next() {
					i := next.Add(1)
					buf = append(buf, edges[i%uint64(len(edges))])
					if len(buf) == chunk {
						if err := eng.ProcessBatch(buf); err != nil {
							b.Error(err)
							return
						}
						buf = buf[:0]
					}
				}
				if len(buf) > 0 {
					if err := eng.ProcessBatch(buf); err != nil {
						b.Error(err)
					}
				}
			})
			eng.Flush()
			b.StopTimer()
		})
	}
}

// BenchmarkEngineIngestDurable measures the WAL overhead per sync policy:
// the same ProcessBatch workload as BenchmarkEngineIngest (2 shards)
// flowing through a durable engine with the write-ahead log enabled. The
// gap to the memory-only engine is the price of durability; the gap
// between policies is the price of the fsync schedule — SyncOff pays only
// the record encode+write, SyncEveryN amortises fsyncs over 4096 edges,
// SyncEveryBatch fsyncs per 512-edge chunk (acknowledged = durable).
func BenchmarkEngineIngestDurable(b *testing.B) {
	edges := ingestStream(b)
	const chunk = 512
	policies := []struct {
		name string
		d    vos.DurabilityConfig
	}{
		{"sync=off", vos.DurabilityConfig{Sync: vos.SyncOff}},
		{"sync=every4096", vos.DurabilityConfig{Sync: vos.SyncEveryN, SyncEveryN: 4096}},
		{"sync=everybatch", vos.DurabilityConfig{Sync: vos.SyncEveryBatch}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			eng, err := vos.OpenEngine(b.TempDir(), vos.EngineConfig{
				Sketch:     ingestConfig(),
				Shards:     2,
				Durability: &p.d,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]vos.Edge, 0, chunk)
				for pb.Next() {
					i := next.Add(1)
					buf = append(buf, edges[i%uint64(len(edges))])
					if len(buf) == chunk {
						if err := eng.ProcessBatch(buf); err != nil {
							b.Error(err)
							return
						}
						buf = buf[:0]
					}
				}
				if len(buf) > 0 {
					if err := eng.ProcessBatch(buf); err != nil {
						b.Error(err)
					}
				}
			})
			eng.Flush()
			b.StopTimer()
		})
	}
}

// BenchmarkCheckpoint measures the stop-the-world cost of persisting the
// merged sketch at the paper-scale configuration — what a production
// deployment pays per checkpoint interval.
func BenchmarkCheckpoint(b *testing.B) {
	edges := ingestStream(b)
	eng, err := vos.OpenEngine(b.TempDir(), vos.EngineConfig{
		Sketch:     ingestConfig(),
		Shards:     2,
		Durability: &vos.DurabilityConfig{Sync: vos.SyncOff},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	if err := eng.ProcessBatch(edges[:100_000]); err != nil {
		b.Fatal(err)
	}
	eng.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCost measures the O(k) pair-query cost of VOS at the
// paper's accuracy configuration (k = 6400 virtual bits), the counterpart
// to the O(1) update cost of Figure 2.
func BenchmarkQueryCost(b *testing.B) {
	sk := vos.MustNew(vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1})
	for i := 0; i < 500; i++ {
		sk.Process(vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		sk.Process(vos.Edge{User: 2, Item: vos.Item(i + 250), Op: vos.Insert})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimateSink = sk.Query(1, 2)
	}
}

// estimateSink keeps query results live so the inliner cannot delete the
// measured work.
var estimateSink vos.Estimate

// querySketch builds the paper-scale read-path fixture: m = 2^24, k =
// 6400, a probe user (1) plus 1000 candidate users (2..1001) with planted
// subscriptions, the top-N-of-1000 shape the materialized path is built
// for.
func querySketch(b *testing.B) (*vos.Sketch, []vos.User) {
	b.Helper()
	sk := vos.MustNew(vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1})
	for i := 0; i < 500; i++ {
		sk.Process(vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
	}
	candidates := make([]vos.User, 1000)
	for c := 0; c < 1000; c++ {
		u := vos.User(c + 2)
		candidates[c] = u
		for i := 0; i < 20; i++ {
			// Overlap the probe's item range so Jaccard varies by candidate.
			sk.Process(vos.Edge{User: u, Item: vos.Item(c + i*30), Op: vos.Insert})
		}
	}
	return sk, candidates
}

// BenchmarkQueryPair compares one pair query on the three read paths: the
// scalar per-bit baseline (2k seeded hashes + 2k single-bit probes), the
// uncached materialized path (batched hashing, packed gather, word-level
// XOR/popcount), and the warm materialized path (position tables and
// packed recovered sketches cached, so a repeat pair comparison on a
// quiescent sketch is ~k/64 word operations). All three return
// bit-identical estimates (TestQueryParityPerBitVsMaterialized).
func BenchmarkQueryPair(b *testing.B) {
	sk, _ := querySketch(b)
	b.Run("perbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			estimateSink = sk.QueryPerBit(1, 2)
		}
	})
	b.Run("materialized-nocache", func(b *testing.B) {
		sk.SetPositionCache(nil)
		sk.SetRecoveredCacheCapacity(-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			estimateSink = sk.Query(1, 2)
		}
	})
	b.Run("materialized-warm", func(b *testing.B) {
		sk.EnablePositionCache(16)
		sk.SetRecoveredCacheCapacity(0) // default
		sk.Query(1, 2)                  // warm both caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			estimateSink = sk.Query(1, 2)
		}
		sk.SetPositionCache(nil)
	})
}

// topKSink keeps top-K results live.
var topKSink []vos.TopKResult

// BenchmarkTopK measures the issue's headline workload — top 10 of 1000
// candidates at the paper-scale configuration — on the per-bit baseline
// (per-pair scalar queries plus a full sort, the pre-materialization
// TopSimilar shape), the sequential materialized heap (cold and warm
// position cache), and the engine's parallel fan-out over the merged
// snapshot. All paths return identical rankings and estimates.
func BenchmarkTopK(b *testing.B) {
	sk, candidates := querySketch(b)
	const n = 10
	b.Run("perbit-sort-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ests := make([]vos.Estimate, len(candidates))
			for c, w := range candidates {
				ests[c] = sk.QueryPerBit(1, w)
			}
			idx := make([]int, len(candidates))
			for c := range idx {
				idx[c] = c
			}
			sort.Slice(idx, func(x, y int) bool {
				if ests[idx[x]].Jaccard != ests[idx[y]].Jaccard {
					return ests[idx[x]].Jaccard > ests[idx[y]].Jaccard
				}
				return candidates[idx[x]] < candidates[idx[y]]
			})
			topKSink = topKSink[:0]
			for _, c := range idx[:n] {
				topKSink = append(topKSink, vos.TopKResult{User: candidates[c], Estimate: ests[c]})
			}
		}
	})
	b.Run("materialized-nocache", func(b *testing.B) {
		sk.SetPositionCache(nil)
		sk.SetRecoveredCacheCapacity(-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			topKSink = sk.TopK(1, candidates, n)
		}
	})
	b.Run("materialized-warm", func(b *testing.B) {
		sk.EnablePositionCache(1024 + 1)
		sk.SetRecoveredCacheCapacity(0)
		sk.TopK(1, candidates, n) // warm both caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			topKSink = sk.TopK(1, candidates, n)
		}
		sk.SetPositionCache(nil)
	})
	b.Run("engine", func(b *testing.B) {
		eng := vos.MustNewEngine(vos.EngineConfig{
			Sketch:             vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1},
			Shards:             2,
			PositionCacheUsers: 1024 + 1,
		})
		defer eng.Close()
		for i := 0; i < 500; i++ {
			if err := eng.Process(vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert}); err != nil {
				b.Fatal(err)
			}
		}
		for c := 0; c < 1000; c++ {
			for i := 0; i < 20; i++ {
				if err := eng.Process(vos.Edge{User: vos.User(c + 2), Item: vos.Item(c + i*30), Op: vos.Insert}); err != nil {
					b.Fatal(err)
				}
			}
		}
		eng.Flush()
		eng.TopK(1, candidates, n) // build the snapshot and warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			topKSink = eng.TopK(1, candidates, n)
		}
	})
}

// wireFixture starts an engine-backed /v1/ server on a loopback httptest
// listener with a client over it — the fixture for the serving benchmarks,
// which measure the HTTP+JSON/binary wire overhead on top of the
// in-process paths benchmarked above.
func wireFixture(b *testing.B, cfg vos.EngineConfig, clOpts client.Options) (*vos.Engine, *client.Client, func()) {
	b.Helper()
	eng, err := vos.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	cl := client.New(ts.URL, clOpts)
	return eng, cl, func() {
		cl.Close()
		ts.Close()
		eng.Close()
	}
}

// BenchmarkServerIngest measures acknowledged ingest through the full wire
// path — client binary batching → HTTP → server decode → engine — in
// ns/edge, the number to put beside BenchmarkEngineIngest's in-process
// cost. One iteration ships one 512-edge batch synchronously (the client's
// linger ticker is disabled so batch boundaries are deterministic).
func BenchmarkServerIngest(b *testing.B) {
	const batch = 512
	eng, cl, cleanup := wireFixture(b, vos.EngineConfig{
		Sketch: vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1},
		Shards: 2,
	}, client.Options{BatchSize: batch, Linger: -1})
	defer cleanup()
	_ = eng
	ctx := context.Background()
	edges := make([]vos.Edge, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range edges {
			// Fresh (user, item) pairs per iteration keep the stream
			// feasible-shaped without touching the timer.
			edges[j] = vos.Edge{
				User: vos.User(uint64(j) % 997),
				Item: vos.Item(uint64(i)*batch + uint64(j)),
				Op:   vos.Insert,
			}
		}
		if err := cl.Ingest(ctx, edges); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/edge")
}

// BenchmarkClientTopK measures the issue's headline query — top 10 of 1000
// candidates at paper scale — through client→server→engine over loopback,
// the remote counterpart of BenchmarkTopK/engine. The engine's caches are
// warmed first, so the measured gap to the in-process number is wire cost
// (JSON encode/decode + HTTP round-trip), not sketch work.
func BenchmarkClientTopK(b *testing.B) {
	eng, cl, cleanup := wireFixture(b, vos.EngineConfig{
		Sketch:             vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 1},
		Shards:             2,
		PositionCacheUsers: 1024 + 1,
	}, client.Options{Linger: -1})
	defer cleanup()
	ctx := context.Background()
	var edges []vos.Edge
	for i := 0; i < 500; i++ {
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
	}
	candidates := make([]vos.User, 1000)
	for c := 0; c < 1000; c++ {
		candidates[c] = vos.User(c + 2)
		for i := 0; i < 20; i++ {
			edges = append(edges, vos.Edge{User: vos.User(c + 2), Item: vos.Item(c + i*30), Op: vos.Insert})
		}
	}
	if err := cl.Ingest(ctx, edges); err != nil {
		b.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		b.Fatal(err)
	}
	eng.TopK(1, candidates, 10) // build the snapshot, warm the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := cl.TopK(ctx, 1, candidates, 10)
		if err != nil {
			b.Fatal(err)
		}
		topKSink = top
	}
}
