// Compare kernels: the word-blocked inner loops behind Gather,
// GatherXorCount, and XorCountWords.
//
// Two implementations of each kernel live here, both always compiled:
//
//   - the *Ref form is the portable scalar loop — one index, one probe, one
//     read-modify-write per bit. It is the reference semantics: simple
//     enough to audit, and the form the equivalence tests trust.
//   - the *Blocked form is the throughput shape: indices consumed in
//     64-bit-output blocks through fixed-size array pointers (one bounds
//     check per block), four independent probe chains per step so the
//     out-of-order window can keep many array-word loads in flight (the
//     shared array spills L1/L2 at paper scale, so the kernel is bound by
//     memory-level parallelism, not ALU work), and the packed output word
//     built in registers — the scalar loop's per-bit read-modify-write of
//     the output word is a store-to-load dependency that serializes 64
//     probes; accumulating in registers removes it.
//
// Which form backs the public methods is decided per-platform by the
// dispatch shims (kernels_fast.go, kernels_portable.go): the blocked form
// on 64-bit targets where it is a measured win, the reference form
// elsewhere and under the purego build tag, which exists so CI can run the
// whole suite against the reference implementation. The two forms must be
// indistinguishable (results AND panics); kernels_test.go cross-checks
// them on random and adversarial patterns regardless of which one the
// build dispatches to.

package bitset

import (
	"fmt"
	"math/bits"
)

// panicRange reports an out-of-range gather index with the same message as
// Bitset.check, so the blocked and reference kernels fail identically.
func panicRange(i, n uint64) {
	panic(fmt.Sprintf("bitset: index %d out of range [0, %d)", i, n))
}

// gatherWordsRef is the reference gather: dstW bit j = src bit idx[j].
// Returns the number of 1-bits gathered. dstW must be zeroed, with
// ceil(len(idx)/64) words.
func gatherWordsRef(dstW, src []uint64, n uint64, idx []uint64) uint64 {
	for j, p := range idx {
		if p >= n {
			panicRange(p, n)
		}
		dstW[j>>6] |= ((src[p>>6] >> (p & 63)) & 1) << (uint(j) & 63)
	}
	ones := uint64(0)
	for _, w := range dstW {
		ones += uint64(bits.OnesCount64(w))
	}
	return ones
}

// gatherWordsBlocked is the blocked gather; see the package comment for the
// shape. Semantics identical to gatherWordsRef.
func gatherWordsBlocked(dstW, src []uint64, n uint64, idx []uint64) uint64 {
	ones := uint64(0)
	j := 0
	for ; j+64 <= len(idx); j += 64 {
		blk := (*[64]uint64)(idx[j:])
		var a0, a1, a2, a3 uint64
		for s := 0; s < 64; s += 4 {
			p0, p1, p2, p3 := blk[s], blk[s+1], blk[s+2], blk[s+3]
			if p0 >= n || p1 >= n || p2 >= n || p3 >= n {
				gatherCheck4(p0, p1, p2, p3, n)
			}
			a0 |= ((src[p0>>6] >> (p0 & 63)) & 1) << uint(s)
			a1 |= ((src[p1>>6] >> (p1 & 63)) & 1) << uint(s+1)
			a2 |= ((src[p2>>6] >> (p2 & 63)) & 1) << uint(s+2)
			a3 |= ((src[p3>>6] >> (p3 & 63)) & 1) << uint(s+3)
		}
		acc := (a0 | a1) | (a2 | a3)
		dstW[j>>6] = acc
		ones += uint64(bits.OnesCount64(acc))
	}
	if j < len(idx) {
		var acc uint64
		for s := 0; j+s < len(idx); s++ {
			p := idx[j+s]
			if p >= n {
				panicRange(p, n)
			}
			acc |= ((src[p>>6] >> (p & 63)) & 1) << uint(s)
		}
		dstW[j>>6] = acc
		ones += uint64(bits.OnesCount64(acc))
	}
	return ones
}

// gatherCheck4 panics for the first out-of-range index among four, in
// index order, matching the reference kernel's failure exactly.
func gatherCheck4(p0, p1, p2, p3, n uint64) {
	for _, p := range [4]uint64{p0, p1, p2, p3} {
		if p >= n {
			panicRange(p, n)
		}
	}
}

// gatherXorCountRef is the reference fused gather-and-compare: the number
// of positions j where src bit idx[j] differs from bit j of the packed
// words ows. Tail bits of ows past len(idx) must be zero.
func gatherXorCountRef(src []uint64, n uint64, idx []uint64, ows []uint64) uint64 {
	ones := uint64(0)
	var acc uint64
	j := 0
	for len(idx)-j >= 64 {
		acc = 0
		for s := 0; s < 64; s++ {
			p := idx[j+s]
			if p >= n {
				panicRange(p, n)
			}
			acc |= ((src[p>>6] >> (p & 63)) & 1) << uint(s)
		}
		ones += uint64(bits.OnesCount64(acc ^ ows[j>>6]))
		j += 64
	}
	if j < len(idx) {
		acc = 0
		for s := 0; j+s < len(idx); s++ {
			p := idx[j+s]
			if p >= n {
				panicRange(p, n)
			}
			acc |= ((src[p>>6] >> (p & 63)) & 1) << uint(s)
		}
		ones += uint64(bits.OnesCount64(acc ^ ows[j>>6]))
	}
	return ones
}

// gatherXorCountBlocked is the blocked fused gather-and-compare. Semantics
// identical to gatherXorCountRef.
func gatherXorCountBlocked(src []uint64, n uint64, idx []uint64, ows []uint64) uint64 {
	ones := uint64(0)
	j := 0
	for ; j+64 <= len(idx); j += 64 {
		blk := (*[64]uint64)(idx[j:])
		var a0, a1, a2, a3 uint64
		for s := 0; s < 64; s += 4 {
			p0, p1, p2, p3 := blk[s], blk[s+1], blk[s+2], blk[s+3]
			if p0 >= n || p1 >= n || p2 >= n || p3 >= n {
				gatherCheck4(p0, p1, p2, p3, n)
			}
			a0 |= ((src[p0>>6] >> (p0 & 63)) & 1) << uint(s)
			a1 |= ((src[p1>>6] >> (p1 & 63)) & 1) << uint(s+1)
			a2 |= ((src[p2>>6] >> (p2 & 63)) & 1) << uint(s+2)
			a3 |= ((src[p3>>6] >> (p3 & 63)) & 1) << uint(s+3)
		}
		acc := (a0 | a1) | (a2 | a3)
		ones += uint64(bits.OnesCount64(acc ^ ows[j>>6]))
	}
	if j < len(idx) {
		var acc uint64
		for s := 0; j+s < len(idx); s++ {
			p := idx[j+s]
			if p >= n {
				panicRange(p, n)
			}
			acc |= ((src[p>>6] >> (p & 63)) & 1) << uint(s)
		}
		ones += uint64(bits.OnesCount64(acc ^ ows[j>>6]))
	}
	return ones
}

// xorCountWordsRef is the reference XOR-popcount over two equal-length
// word slices. It is also the dispatched kernel on every build: unlike the
// gathers this loop reads both operands sequentially and the compiler
// already emits a popcount per word, so it runs at throughput — blocked
// multi-accumulator variants were measured slower at every size (100 to
// 8192 words) and are deliberately not kept.
func xorCountWordsRef(a, b []uint64) uint64 {
	ones := uint64(0)
	for i, w := range a {
		ones += uint64(bits.OnesCount64(w ^ b[i]))
	}
	return ones
}
