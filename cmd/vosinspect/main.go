// Command vosinspect builds, saves, inspects and queries VOS sketches from
// recorded stream files, demonstrating the production workflow: a stream
// worker builds and checkpoints the sketch, a query service loads it and
// answers similarity queries.
//
// Usage:
//
//	# build a sketch from a stream file (see cmd/streamgen)
//	vosinspect -stream youtube.stream -m 4194304 -k 6400 -o youtube.vos
//
//	# inspect a saved sketch
//	vosinspect -sketch youtube.vos
//
//	# query a user pair against a saved sketch
//	vosinspect -sketch youtube.vos -query 17,42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/vossketch/vos"
)

func main() {
	var (
		streamPath = flag.String("stream", "", "binary stream file to build from")
		memBits    = flag.Uint64("m", 1<<22, "shared array size in bits")
		kBits      = flag.Int("k", 6400, "virtual sketch size in bits")
		seed       = flag.Uint64("seed", 1, "sketch seed")
		out        = flag.String("o", "", "write the built sketch to this file")
		sketchPath = flag.String("sketch", "", "saved sketch file to inspect/query")
		query      = flag.String("query", "", "user pair to query, as \"u,v\"")
	)
	flag.Parse()

	var sk *vos.Sketch
	switch {
	case *streamPath != "":
		f, err := os.Open(*streamPath)
		if err != nil {
			fatal(err)
		}
		edges, err := vos.ReadStreamBinary(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sk, err = vos.New(vos.Config{MemoryBits: *memBits, SketchBits: *kBits, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for _, e := range edges {
			sk.Process(e)
		}
		fmt.Printf("built sketch from %d stream elements\n", len(edges))
		if *out != "" {
			data, err := sk.MarshalBinary()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("saved to %s (%d bytes)\n", *out, len(data))
		}
	case *sketchPath != "":
		data, err := os.ReadFile(*sketchPath)
		if err != nil {
			fatal(err)
		}
		sk, err = vos.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	st := sk.Stats()
	fmt.Printf("memory:      %d bits (%d bytes on wire)\n", st.MemoryBits, st.MemoryBytes)
	fmt.Printf("virtual k:   %d bits\n", st.SketchBits)
	fmt.Printf("array load:  β = %.4f (%d ones)\n", st.Beta, st.OnesCount)
	fmt.Printf("users:       %d with nonzero cardinality\n", st.Users)

	if *query != "" {
		u, v, err := parsePair(*query)
		if err != nil {
			fatal(err)
		}
		est := sk.Query(u, v)
		fmt.Printf("query (%d, %d):\n", u, v)
		fmt.Printf("  cardinalities:     n_u = %d, n_v = %d\n", est.CardinalityU, est.CardinalityV)
		fmt.Printf("  common items ŝ:    %.2f (clamped %.2f)\n", est.Common, est.CommonClamped)
		fmt.Printf("  jaccard Ĵ:         %.4f\n", est.Jaccard)
		fmt.Printf("  symmetric diff:    %.2f\n", est.SymmetricDifference)
		fmt.Printf("  diagnostics:       α = %.4f, β = %.4f, saturated = %v\n",
			est.Alpha, est.Beta, est.Saturated)
	}
}

func parsePair(s string) (vos.User, vos.User, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"u,v\", got %q", s)
	}
	u, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return vos.User(u), vos.User(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vosinspect:", err)
	os.Exit(1)
}
