package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

func testEngineConfig() vos.EngineConfig {
	return vos.EngineConfig{
		Sketch:    vos.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 7},
		Shards:    3,
		BatchSize: 64,
	}
}

// feasibleStream generates n edges over the given user count with delFrac
// unsubscriptions of live edges, so every prefix is feasible.
func feasibleStream(n, users int, delFrac float64, seed int64) []vos.Edge {
	rng := rand.New(rand.NewSource(seed))
	type key struct {
		u vos.User
		i vos.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]vos.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Delete})
			continue
		}
		k := key{vos.User(rng.Intn(users)), vos.Item(rng.Uint64() % 100_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Insert})
	}
	return out
}

// newWired builds an engine-backed server plus a client over a loopback
// listener. The cleanup order matters: client first (flushes), then
// listener, then engine.
func newWired(t *testing.T, opts server.Options, clOpts client.Options) (*vos.Engine, *client.Client, string) {
	t.Helper()
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), opts))
	cl := client.New(ts.URL, clOpts)
	t.Cleanup(func() {
		cl.Close()
		ts.Close()
		eng.Close()
	})
	return eng, cl, ts.URL
}

// TestWireParity is the acceptance gate: the same insert+delete stream fed
// once to an in-process engine and once through client→server→engine must
// produce bit-identical answers for similarity, top-K, and cardinality.
// Estimates are comparable structs of float64s, so == is bit equality
// (JSON carries shortest-round-trip decimals, no precision is lost).
func TestWireParity(t *testing.T) {
	ctx := context.Background()
	direct, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	_, cl, _ := newWired(t, server.Options{}, client.Options{BatchSize: 100})

	edges := feasibleStream(12_000, 80, 0.3, 5)
	if err := direct.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	direct.Flush()
	if err := cl.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	for u := vos.User(0); u < 30; u++ {
		for v := u + 1; v < 30; v += 5 {
			got, err := cl.Similarity(ctx, u, v)
			if err != nil {
				t.Fatalf("Similarity(%d,%d): %v", u, v, err)
			}
			if want := direct.Query(u, v); got != want {
				t.Fatalf("Similarity(%d,%d) over the wire %+v, in-process %+v", u, v, got, want)
			}
		}
		gotCard, err := cl.Cardinality(ctx, u)
		if err != nil {
			t.Fatalf("Cardinality(%d): %v", u, err)
		}
		if want := direct.Cardinality(u); gotCard != want {
			t.Fatalf("Cardinality(%d) over the wire %d, in-process %d", u, gotCard, want)
		}
	}

	candidates := make([]vos.User, 60)
	for i := range candidates {
		candidates[i] = vos.User(i)
	}
	gotTop, err := cl.TopK(ctx, 3, candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantTop := direct.TopK(3, candidates, 10)
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatalf("TopK over the wire %+v, in-process %+v", gotTop, wantTop)
	}

	gotStats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := direct.Stats(); gotStats != want {
		t.Fatalf("Stats over the wire %+v, in-process %+v", gotStats, want)
	}
}

// TestStatsHashFamilyOnWire: /v1/stats reports the sketch's hash family
// and the client decodes it back to the typed value, for both families —
// so operators can confirm what a remote daemon was configured with before
// pointing checkpointed state at it.
func TestStatsHashFamilyOnWire(t *testing.T) {
	ctx := context.Background()
	for _, fam := range []vos.HashFamily{vos.FamilyClassic, vos.FamilyFast} {
		cfg := testEngineConfig()
		cfg.Sketch.Family = fam
		eng, err := vos.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
		cl := client.New(ts.URL, client.Options{})

		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var wire server.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if wire.HashFamily != fam.String() {
			t.Errorf("hash_family on the wire = %q, want %q", wire.HashFamily, fam.String())
		}
		st, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Family != fam {
			t.Errorf("client Stats().Family = %v, want %v", st.Family, fam)
		}
		cl.Close()
		ts.Close()
		eng.Close()
	}
	// An absent hash_family (a server predating the field) decodes to the
	// classic family rather than an error.
	var old server.StatsResponse
	if err := json.Unmarshal([]byte(`{"memory_bits":1024,"sketch_bits":64}`), &old); err != nil {
		t.Fatal(err)
	}
	if got := old.Stats().Family; got != vos.FamilyClassic {
		t.Errorf("absent hash_family decodes to %v, want classic", got)
	}
}

// TestIngestFormats: the JSON single-object, JSON array, and NDJSON bodies
// all land edges, and all agree with the binary path the client uses.
func TestIngestFormats(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	defer ts.Close()

	post := func(contentType, body string) (*http.Response, server.IngestResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+server.RouteEdges, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack server.IngestResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
				t.Fatal(err)
			}
		}
		return resp, ack
	}

	if resp, ack := post(server.ContentTypeJSON, `{"user":1,"item":10}`); resp.StatusCode != 200 || ack.Accepted != 1 {
		t.Fatalf("single JSON edge: status %d, ack %+v", resp.StatusCode, ack)
	}
	if resp, ack := post(server.ContentTypeJSON, `[{"user":1,"item":11},{"user":2,"item":10,"op":"+"}]`); resp.StatusCode != 200 || ack.Accepted != 2 {
		t.Fatalf("JSON array: status %d, ack %+v", resp.StatusCode, ack)
	}
	if resp, ack := post(server.ContentTypeNDJSON, "{\"user\":1,\"item\":12}\n\n{\"user\":1,\"item\":12,\"op\":\"-\"}\n"); resp.StatusCode != 200 || ack.Accepted != 2 {
		t.Fatalf("NDJSON: status %d, ack %+v", resp.StatusCode, ack)
	}

	cl := client.New(ts.URL, client.Options{})
	defer cl.Close()
	card, err := cl.Cardinality(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if card != 2 { // items 10, 11 live; 12 inserted then deleted
		t.Fatalf("cardinality after mixed-format ingest = %d, want 2", card)
	}
}

// errorCode POSTs/GETs raw and returns status plus envelope code.
func errorCode(t *testing.T, method, url, contentType, body string) (int, string) {
	t.Helper()
	var req *http.Request
	var err error
	if body == "" {
		req, err = http.NewRequest(method, url, nil)
	} else {
		req, err = http.NewRequest(method, url, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: non-envelope error body: %v", method, url, err)
	}
	return resp.StatusCode, env.Error.Code
}

// TestErrorEnvelope walks the 4xx surface: every failure is the typed
// envelope with the right code.
func TestErrorEnvelope(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{MaxBatchBytes: 1 << 10}))
	defer ts.Close()

	cases := []struct {
		name, method, path, ct, body string
		status                       int
		code                         string
	}{
		{"malformed JSON edge", "POST", server.RouteEdges, server.ContentTypeJSON, `{"user":`, 400, server.CodeBadRequest},
		{"unknown op", "POST", server.RouteEdges, server.ContentTypeJSON, `{"user":1,"item":2,"op":"x"}`, 400, server.CodeBadRequest},
		{"unknown field", "POST", server.RouteEdges, server.ContentTypeJSON, `{"user":1,"itm":2}`, 400, server.CodeBadRequest},
		{"NDJSON unknown field", "POST", server.RouteEdges, server.ContentTypeNDJSON, "{\"usr\":1,\"item\":2}\n", 400, server.CodeBadRequest},
		{"NDJSON concatenated objects", "POST", server.RouteEdges, server.ContentTypeNDJSON, "{\"user\":1,\"item\":2}{\"user\":3,\"item\":4}\n", 400, server.CodeBadRequest},
		{"JSON trailing garbage", "POST", server.RouteEdges, server.ContentTypeJSON, `{"user":1,"item":2}{"user":3,"item":4}`, 400, server.CodeBadRequest},
		{"JSON array trailing garbage", "POST", server.RouteEdges, server.ContentTypeJSON, `[{"user":1,"item":2}]]`, 400, server.CodeBadRequest},
		{"forged binary count", "POST", server.RouteEdges, server.ContentTypeBinary, "VOSSTRM1\x80\x80\x80\x80\x04", 400, server.CodeBadRequest},
		{"bad content type", "POST", server.RouteEdges, "text/csv", "1,2,+", 400, server.CodeBadRequest},
		{"bad binary", "POST", server.RouteEdges, server.ContentTypeBinary, "not the magic", 400, server.CodeBadRequest},
		{"malformed topk", "POST", server.RouteTopK, server.ContentTypeJSON, `{"user":}`, 400, server.CodeBadRequest},
		{"empty candidates", "POST", server.RouteTopK, server.ContentTypeJSON, `{"user":1,"candidates":[],"n":3}`, 400, server.CodeBadRequest},
		{"bad similarity params", "GET", server.RouteSimilarity + "?u=alice&v=2", "", "", 400, server.CodeBadRequest},
		{"missing cardinality param", "GET", server.RouteCardinality, "", "", 400, server.CodeBadRequest},
		{"wrong method", "GET", server.RouteEdges, "", "", 405, server.CodeMethodNotAllowed},
		{"no such route", "GET", "/v2/edges", "", "", 404, server.CodeNotFound},
		{"oversized batch", "POST", server.RouteEdges, server.ContentTypeJSON, `[` + strings.Repeat(`{"user":1,"item":2},`, 100) + `{"user":1,"item":2}]`, 413, server.CodeTooLarge},
		{"checkpoint on memory-only engine", "POST", server.RouteCheckpoint, "", "", 501, server.CodeUnsupported},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := errorCode(t, tc.method, ts.URL+tc.path, tc.ct, tc.body)
			if status != tc.status || code != tc.code {
				t.Fatalf("got %d/%s, want %d/%s", status, code, tc.status, tc.code)
			}
		})
	}
}

// TestBinaryWorstCaseTooLarge: a binary batch whose worst-case decoded
// footprint (~13x wire bytes) exceeds the whole in-flight budget can never
// be admitted, so it must get a deterministic 413 telling the caller to
// split — not an unwinnable 429 loop, and no decode-sized allocation.
func TestBinaryWorstCaseTooLarge(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{
		MaxBatchBytes:    1 << 20,
		MaxInFlightBytes: 1 << 20,
	}))
	defer ts.Close()

	// 512 KiB wire is under MaxBatchBytes but holds up to 512Ki/2 edges,
	// a ~6 MiB decoded slice — far over the 1 MiB budget. The body is
	// never read, so junk bytes suffice.
	status, code := errorCode(t, http.MethodPost, ts.URL+server.RouteEdges,
		server.ContentTypeBinary, strings.Repeat("x", 512<<10))
	if status != http.StatusRequestEntityTooLarge || code != server.CodeTooLarge {
		t.Fatalf("unadmittable binary batch: got %d/%s, want 413/%s", status, code, server.CodeTooLarge)
	}
}

// TestChunkedBinaryRequiresLength: a binary body of unknown length would
// have to charge the cap-derived worst case (~13x MaxBatchBytes) no matter
// how small it really is, so the server demands Content-Length up front.
func TestChunkedBinaryRequiresLength(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+server.RouteEdges, &chunkedReader{s: "VOSSTRM1"})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusLengthRequired || env.Error.Code != server.CodeBadRequest {
		t.Fatalf("chunked binary: got %d/%s, want 411/%s", resp.StatusCode, env.Error.Code, server.CodeBadRequest)
	}
}

// TestCancelledContext: a request whose context is already cancelled gets
// the canceled envelope — the service saw ctx.Err(), not a zero answer.
func TestCancelledContext(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(vos.NewEngineService(eng), server.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, path := range []string{
		server.RouteSimilarity + "?u=1&v=2",
		server.RouteCardinality + "?user=1",
		server.RouteStats,
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var env server.ErrorEnvelope
		if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if rec.Code != server.StatusClientClosedRequest || env.Error.Code != server.CodeCanceled {
			t.Fatalf("%s with cancelled ctx: got %d/%s, want %d/%s",
				path, rec.Code, env.Error.Code, server.StatusClientClosedRequest, server.CodeCanceled)
		}
	}

	body, _ := json.Marshal(server.TopKRequest{User: 1, Candidates: []uint64{2, 3}, N: 1})
	req := httptest.NewRequest(http.MethodPost, server.RouteTopK, bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", server.ContentTypeJSON)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != server.StatusClientClosedRequest {
		t.Fatalf("topk with cancelled ctx: status %d, want %d", rec.Code, server.StatusClientClosedRequest)
	}
}

// blockingService blocks Ingest until released — the deterministic way to
// hold in-flight bytes and observe backpressure.
type blockingService struct {
	vos.SimilarityService
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (b *blockingService) Ingest(ctx context.Context, edges []vos.Edge) error {
	b.once.Do(func() { close(b.entered) })
	<-b.release // closed channel after release: later ingests pass through
	return nil
}

// TestBackpressure: while one ingest holds the whole in-flight budget, a
// second gets 429/backpressure with a Retry-After hint; after release it
// succeeds.
func TestBackpressure(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	blocker := &blockingService{
		SimilarityService: vos.NewEngineService(eng),
		entered:           make(chan struct{}),
		release:           make(chan struct{}),
	}
	ts := httptest.NewServer(server.New(blocker, server.Options{
		MaxBatchBytes:    1 << 10,
		MaxInFlightBytes: 1 << 10,
	}))
	defer ts.Close()

	body := `{"user":1,"item":2}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Chunked (no Content-Length) charges the full MaxBatchBytes, so
		// this one request drains the budget no matter how small it is.
		req, err := http.NewRequest(http.MethodPost, ts.URL+server.RouteEdges, &chunkedReader{s: body})
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", server.ContentTypeJSON)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
	}()
	<-blocker.entered

	status, code := errorCode(t, http.MethodPost, ts.URL+server.RouteEdges, server.ContentTypeJSON, body)
	if status != http.StatusTooManyRequests || code != server.CodeBackpressure {
		t.Fatalf("concurrent ingest got %d/%s, want 429/%s", status, code, server.CodeBackpressure)
	}

	close(blocker.release)
	wg.Wait()
	resp, err := http.Post(ts.URL+server.RouteEdges, server.ContentTypeJSON, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after release: status %d", resp.StatusCode)
	}
}

// chunkedReader defeats net/http's Content-Length sniffing so the request
// goes out chunked.
type chunkedReader struct{ s string }

func (r *chunkedReader) Read(p []byte) (int, error) {
	if r.s == "" {
		return 0, io.EOF
	}
	n := copy(p, r.s)
	r.s = r.s[n:]
	return n, nil
}

func (r *chunkedReader) Close() error { return nil }

// TestHealthAndDrain: readiness flips on Drain, drained servers reject API
// calls with 503/unavailable but keep answering health probes.
func TestHealthAndDrain(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(vos.NewEngineService(eng), server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, server.HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h server.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}
	if status, h := get(server.RouteHealthz); status != 200 || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", status, h)
	}
	if status, h := get(server.RouteReadyz); status != 200 || h.Status != "ok" {
		t.Fatalf("readyz: %d %+v", status, h)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, h := get(server.RouteReadyz); status != 503 || h.Status != "draining" {
		t.Fatalf("readyz while draining: %d %+v", status, h)
	}
	if status, h := get(server.RouteHealthz); status != 200 || h.Status != "ok" {
		t.Fatalf("healthz while draining: %d %+v", status, h)
	}
	if status, code := errorCode(t, http.MethodGet, ts.URL+server.RouteSimilarity+"?u=1&v=2", "", ""); status != 503 || code != server.CodeDraining {
		t.Fatalf("query while draining: %d/%s, want 503/%s", status, code, server.CodeDraining)
	}
	// Idempotent.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestClosedEngine: queries against a closed engine surface ErrClosed as
// 503/unavailable — the typed replacement for racing Close into a panic or
// a zero estimate.
func TestClosedEngine(t *testing.T) {
	eng, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	defer ts.Close()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if status, code := errorCode(t, http.MethodGet, ts.URL+server.RouteSimilarity+"?u=1&v=2", "", ""); status != 503 || code != server.CodeUnavailable {
		t.Fatalf("query on closed engine: %d/%s, want 503/%s", status, code, server.CodeUnavailable)
	}
	if status, code := errorCode(t, http.MethodPost, ts.URL+server.RouteEdges, server.ContentTypeJSON, `{"user":1,"item":2}`); status != 503 || code != server.CodeUnavailable {
		t.Fatalf("ingest on closed engine: %d/%s, want 503/%s", status, code, server.CodeUnavailable)
	}
}

// TestMetricsEndpoint: counters move, errors are counted, and the rate
// window arms on first scrape.
func TestMetricsEndpoint(t *testing.T) {
	_, cl, base := newWired(t, server.Options{}, client.Options{})
	ctx := context.Background()
	if err := cl.Ingest(ctx, []vos.Edge{{User: 1, Item: 2, Op: vos.Insert}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Similarity(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Similarity(ctx, 1, 3); err != nil {
		t.Fatal(err)
	}

	// One bad request to move an error counter.
	if status, _ := errorCode(t, http.MethodGet, base+server.RouteSimilarity+"?u=x&v=2", "", ""); status != 400 {
		t.Fatalf("setup bad request: %d", status)
	}

	resp, err := http.Get(base + server.RouteMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	sim := m.Endpoints[server.RouteSimilarity]
	if sim.Requests != 3 || sim.Errors != 1 {
		t.Fatalf("similarity metrics %+v, want 3 requests / 1 error", sim)
	}
	if ing := m.Endpoints[server.RouteEdges]; ing.Requests != 1 || ing.Errors != 0 {
		t.Fatalf("ingest metrics %+v, want 1 request / 0 errors", ing)
	}
	if m.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", m.UptimeSeconds)
	}
}
