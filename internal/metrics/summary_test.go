package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Mean != 3 || s.P50 != 3 || s.Max != 5 {
		t.Errorf("summary %+v", s)
	}
	if s.P90 < 4 || s.P90 > 5 {
		t.Errorf("p90 = %v", s.P90)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSummarizeRejectsBadInput(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestSummarizeSingleElement(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.P50 != 7 || s.P99 != 7 || s.Max != 7 {
		t.Errorf("single-element summary %+v", s)
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Max == sorted[len(sorted)-1] &&
			s.P50 >= sorted[0]
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestAbsoluteAndRelativeErrors(t *testing.T) {
	truth := []float64{10, 0, 20}
	est := []float64{12, 5, 15}
	abs := AbsoluteErrors(truth, est)
	if abs[0] != 2 || abs[1] != 5 || abs[2] != 5 {
		t.Errorf("abs = %v", abs)
	}
	rel := RelativeErrors(truth, est)
	if len(rel) != 2 || rel[0] != 0.2 || rel[1] != 0.25 {
		t.Errorf("rel = %v (zero-truth pair must be skipped)", rel)
	}
}

func TestErrorsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"abs": func() { AbsoluteErrors([]float64{1}, nil) },
		"rel": func() { RelativeErrors([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
