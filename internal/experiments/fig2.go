package experiments

import (
	"fmt"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/minhash"
	"github.com/vossketch/vos/internal/oph"
	"github.com/vossketch/vos/internal/rp"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// Figure 2 measures sketch update runtime: panel (a) sweeps the register
// count k on the YouTube workload, panel (b) fixes the largest k and runs
// every dataset. The paper's claim under test is the complexity class —
// VOS and OPH update in O(1) per element while MinHash and RP pay O(k) —
// so the deliverable is the growth shape and the method ordering, not the
// absolute seconds of the authors' testbed.
//
// Two laptop adaptations, both documented in README.md:
//
//   - The runtime workload fixes the user count (Options.RuntimeUsers) and
//     stream length (RuntimeEdges) per profile shape, because a per-user
//     O(k)-register layout at k = 10⁵ over the full scaled user set would
//     need tens of GB. Update cost per element does not depend on the user
//     count, so the measurement is unaffected.
//   - VOS's shared array is capped at fig2MaxMemoryBits for the same
//     reason; VOS update cost is independent of m (one hash, one flip).

const fig2MaxMemoryBits = uint64(1) << 28 // 32 MiB array cap for the sweep

// runtimeWorkload generates the Figure 2 stream for a profile: the
// profile's shape (skews, average degree) at a fixed user count and
// element budget.
func runtimeWorkload(p gen.Profile, opts Options) []stream.Edge {
	opts = opts.normalized()
	rp := p
	rp.Users = opts.RuntimeUsers
	rp.Items = opts.RuntimeUsers * 4
	rp.Edges = opts.RuntimeEdges
	if rp.Edges > rp.Users*rp.Items {
		rp.Edges = rp.Users * rp.Items
	}
	base := gen.Bipartite(rp, opts.Seed)
	cfg := gen.PaperDynamize(len(base), opts.Seed+1)
	return gen.Dynamize(base, cfg)
}

// updater is the minimal surface the runtime harness needs.
type updater interface {
	Process(e stream.Edge)
}

// buildForRuntime constructs one method at register count k for the
// runtime workload, applying the memory caps described above.
func buildForRuntime(method string, k int, users uint64, seed uint64) updater {
	switch method {
	case similarity.MethodVOS:
		mem := 32 * uint64(k) * users
		if mem > fig2MaxMemoryBits {
			mem = fig2MaxMemoryBits
		}
		kv := 2 * 32 * k // λ = 2, irrelevant for update cost
		if uint64(kv) > mem {
			kv = int(mem)
		}
		return core.MustNew(core.Config{MemoryBits: mem, SketchBits: kv, Seed: seed})
	case similarity.MethodMinHash:
		return minhash.New(k, seed)
	case similarity.MethodOPH:
		return oph.New(k, seed)
	case similarity.MethodRP:
		return rp.New(k, seed)
	default:
		panic(fmt.Sprintf("experiments: unknown runtime method %q", method))
	}
}

// MeasureUpdateTime processes the whole stream through the updater and
// returns the wall-clock duration.
func MeasureUpdateTime(u updater, edges []stream.Edge) time.Duration {
	start := time.Now()
	for _, e := range edges {
		u.Process(e)
	}
	return time.Since(start)
}

// Fig2a regenerates Figure 2(a): update runtime on the YouTube workload
// as k sweeps over Options.RuntimeKs, for all four methods.
func Fig2a(opts Options) (*Table, error) {
	opts = opts.normalized()
	edges := runtimeWorkload(opts.profile(), opts)

	t := &Table{
		ID:     "fig2a",
		Title:  fmt.Sprintf("Runtime vs sketch size k (%s workload)", opts.Dataset),
		Header: []string{"k", "method", "seconds", "ns/edge"},
	}
	t.AddNote("workload: %s shape, %d users, %d elements, seed %d",
		opts.Dataset, opts.RuntimeUsers, len(edges), opts.Seed)
	t.AddNote("expected shape: VOS and OPH flat in k (O(1)); MinHash and RP linear in k (O(k))")

	for _, k := range opts.RuntimeKs {
		for _, method := range similarity.Methods {
			u := buildForRuntime(method, k, opts.RuntimeUsers, uint64(opts.Seed))
			d := MeasureUpdateTime(u, edges)
			t.AddRow(
				fmt.Sprintf("%d", k),
				method,
				fmt.Sprintf("%.4f", d.Seconds()),
				fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(len(edges))),
			)
		}
	}
	return t, nil
}

// Fig2b regenerates Figure 2(b): update runtime at the largest swept k on
// all four dataset workloads.
func Fig2b(opts Options) (*Table, error) {
	opts = opts.normalized()
	k := opts.RuntimeKs[len(opts.RuntimeKs)-1]

	t := &Table{
		ID:     "fig2b",
		Title:  fmt.Sprintf("Runtime at k = %d on all datasets", k),
		Header: []string{"dataset", "method", "seconds", "ns/edge"},
	}
	t.AddNote("workload: each profile's shape, %d users, %d elements, seed %d",
		opts.RuntimeUsers, opts.RuntimeEdges, opts.Seed)

	for _, p := range gen.Profiles {
		edges := runtimeWorkload(p, opts)
		for _, method := range similarity.Methods {
			u := buildForRuntime(method, k, opts.RuntimeUsers, uint64(opts.Seed))
			d := MeasureUpdateTime(u, edges)
			t.AddRow(
				p.Name,
				method,
				fmt.Sprintf("%.4f", d.Seconds()),
				fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(len(edges))),
			)
		}
	}
	return t, nil
}
