package netproto

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzVOSSTRM1Frame throws adversarial datagrams at the frame decoder:
// truncated, oversized, bad-magic, bad-version, forged-count, and mutated
// valid frames. The decoder must never panic, never allocate from a
// forged length, and reject everything malformed with ErrBadFrame.
func FuzzVOSSTRM1Frame(f *testing.F) {
	good, err := AppendDataFrame(nil, 0x1122334455667788, 42, FlagAckRequest, testEdges(5))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(good))
	f.Add(AppendAckFrame(nil, Ack{Session: 3, EchoSeq: 4, Highest: 9, Applied: 5, Gaps: 1, Replays: 2}))
	f.Add(good[:HeaderSize-3])          // truncated header
	f.Add(good[:len(good)-1])           // truncated payload
	f.Add(make([]byte, MaxFrameSize+7)) // oversized
	f.Add([]byte("VOSDGRM1 but then garbage follows the magic"))
	badVersion := bytes.Clone(good)
	badVersion[8] = 0x7f
	f.Add(badVersion)
	forgedCount := bytes.Clone(good)
	forgedCount[28], forgedCount[29], forgedCount[30], forgedCount[31] = 0xff, 0xff, 0xff, 0xff
	f.Add(forgedCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("rejection is not ErrBadFrame: %v", err)
			}
			return
		}
		switch fr.Type {
		case TypeData:
			edges, err := fr.DecodeEdges()
			if err != nil {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("payload rejection is not ErrBadFrame: %v", err)
				}
				return
			}
			if len(edges) != int(fr.Count) {
				t.Fatalf("decoded %d edges from a frame claiming %d", len(edges), fr.Count)
			}
		case TypeAck:
			// A header-validated ack has a fixed-size payload; decoding it
			// must always succeed.
			if _, err := fr.DecodeAck(); err != nil {
				t.Fatalf("validated ack failed to decode: %v", err)
			}
		default:
			t.Fatalf("DecodeFrame accepted unknown type %d", fr.Type)
		}
	})
}
