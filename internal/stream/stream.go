// Package stream defines the fully dynamic bipartite graph-stream model of
// the paper: a sequence of elements (u, i, a) where u is a user, i an item,
// and a ∈ {insert, delete} a subscription or unsubscription.
//
// The package provides the element and source types shared by every sketch
// and every experiment, a feasibility validator (the paper restricts
// attention to feasible streams: no duplicate subscriptions, no deletion of
// absent edges), stream statistics, and text/binary codecs so generated
// workloads can be persisted and replayed.
package stream

import (
	"fmt"
)

// User identifies a user node of the bipartite graph.
type User uint64

// Item identifies an item node of the bipartite graph.
type Item uint64

// Op is an edge action: subscription or unsubscription.
type Op uint8

const (
	// Insert is the "+" action: user subscribes to item.
	Insert Op = iota
	// Delete is the "−" action: user unsubscribes from item.
	Delete
)

// String returns the paper's notation for the action.
func (op Op) String() string {
	switch op {
	case Insert:
		return "+"
	case Delete:
		return "-"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Valid reports whether op is a defined action.
func (op Op) Valid() bool { return op == Insert || op == Delete }

// Edge is one stream element e(t) = (u, i, a).
type Edge struct {
	User User
	Item Item
	Op   Op
}

// String renders the element in the paper's (u, i, ±) notation.
func (e Edge) String() string {
	return fmt.Sprintf("(%d, %d, %s)", e.User, e.Item, e.Op)
}

// Source is a pull-based stream of edges. Next returns the next element and
// true, or a zero Edge and false when the stream is exhausted. Sources are
// single-pass unless documented otherwise.
type Source interface {
	Next() (Edge, bool)
}

// SliceSource replays a fixed slice of edges. It is resettable, making it
// suitable for multi-method comparisons that must consume the identical
// stream.
type SliceSource struct {
	edges []Edge
	pos   int
}

// NewSliceSource wraps edges in a Source. The slice is not copied.
func NewSliceSource(edges []Edge) *SliceSource {
	return &SliceSource{edges: edges}
}

// Next implements Source.
func (s *SliceSource) Next() (Edge, bool) {
	if s.pos >= len(s.edges) {
		return Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of elements.
func (s *SliceSource) Len() int { return len(s.edges) }

// FuncSource adapts a closure to the Source interface.
type FuncSource func() (Edge, bool)

// Next implements Source.
func (f FuncSource) Next() (Edge, bool) { return f() }

// Collect drains a source into a slice. Useful for tests and for staging
// generated streams before persisting them.
func Collect(s Source) []Edge {
	var out []Edge
	for {
		e, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// CollectN drains at most n elements from a source.
func CollectN(s Source, n int) []Edge {
	out := make([]Edge, 0, n)
	for len(out) < n {
		e, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// ForEach applies fn to every element of the source.
func ForEach(s Source, fn func(Edge)) {
	for {
		e, ok := s.Next()
		if !ok {
			return
		}
		fn(e)
	}
}

// Stats accumulates summary statistics of a stream: element counts by
// action and the set of distinct users and items observed. It is itself a
// streaming structure — feed it edges with Observe.
type Stats struct {
	Inserts  uint64
	Deletes  uint64
	users    map[User]struct{}
	items    map[Item]struct{}
	liveEdge int64 // inserts - deletes, the number of live edges if feasible
}

// NewStats creates an empty statistics accumulator.
func NewStats() *Stats {
	return &Stats{
		users: make(map[User]struct{}),
		items: make(map[Item]struct{}),
	}
}

// Observe folds one element into the statistics.
func (st *Stats) Observe(e Edge) {
	if e.Op == Insert {
		st.Inserts++
		st.liveEdge++
	} else {
		st.Deletes++
		st.liveEdge--
	}
	st.users[e.User] = struct{}{}
	st.items[e.Item] = struct{}{}
}

// Elements returns the total number of observed stream elements.
func (st *Stats) Elements() uint64 { return st.Inserts + st.Deletes }

// Users returns the number of distinct users observed.
func (st *Stats) Users() int { return len(st.users) }

// Items returns the number of distinct items observed.
func (st *Stats) Items() int { return len(st.items) }

// LiveEdges returns inserts minus deletes; for a feasible stream this is the
// number of edges currently present in the graph.
func (st *Stats) LiveEdges() int64 { return st.liveEdge }

// String summarises the statistics.
func (st *Stats) String() string {
	return fmt.Sprintf("elements=%d (+%d/−%d) users=%d items=%d live=%d",
		st.Elements(), st.Inserts, st.Deletes, st.Users(), st.Items(), st.liveEdge)
}
