package gen

import (
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func tinyProfile() Profile {
	return Profile{
		Name: "tiny", Users: 500, Items: 800, Edges: 5000,
		UserSkew: 1.6, ItemSkew: 1.3,
	}
}

func TestProfileByName(t *testing.T) {
	for _, want := range []string{"YouTube", "Flickr", "Orkut", "LiveJournal"} {
		p, err := ProfileByName(want)
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if p.Name != want {
			t.Errorf("got %q", p.Name)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileScaled(t *testing.T) {
	s := YouTube.Scaled(0.01)
	if s.Users == 0 || s.Edges == 0 {
		t.Fatal("scaled to zero")
	}
	if s.Users > YouTube.Users/50 {
		t.Errorf("users %d not scaled down", s.Users)
	}
	// Average degree approximately preserved.
	ratio := s.AvgDegree() / YouTube.AvgDegree()
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("avg degree ratio %v after scaling", ratio)
	}
	if s.Edges > s.Users*s.Items {
		t.Error("edges exceed complete graph")
	}
}

func TestProfileScaledPanics(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%v) should panic", f)
				}
			}()
			YouTube.Scaled(f)
		}()
	}
}

func TestBipartiteShape(t *testing.T) {
	p := tinyProfile()
	edges := Bipartite(p, 1)

	// Edge count near target.
	if got, want := float64(len(edges)), float64(p.Edges); got < want*0.9 || got > want*1.1 {
		t.Errorf("edge count %d, want ~%d", len(edges), p.Edges)
	}
	// All inserts, all IDs in range, no duplicate (u, i).
	seen := make(map[edgeKey]struct{}, len(edges))
	for _, e := range edges {
		if e.Op != stream.Insert {
			t.Fatalf("non-insert %s in static graph", e)
		}
		if uint64(e.User) >= p.Users || uint64(e.Item) >= p.Items {
			t.Fatalf("out of range %s", e)
		}
		k := edgeKey{e.User, e.Item}
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate edge %s", e)
		}
		seen[k] = struct{}{}
	}
	if err := stream.Validate(edges); err != nil {
		t.Fatalf("static graph infeasible: %v", err)
	}
}

func TestBipartiteDeterministic(t *testing.T) {
	p := tinyProfile()
	a := Bipartite(p, 7)
	b := Bipartite(p, 7)
	if len(a) != len(b) {
		t.Fatal("lengths differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	c := Bipartite(p, 8)
	sameLen := len(a) == len(c)
	samePrefix := true
	for i := 0; samePrefix && sameLen && i < 50 && i < len(a); i++ {
		samePrefix = a[i] == c[i]
	}
	if sameLen && samePrefix {
		t.Error("different seeds produced the same stream prefix")
	}
}

func TestBipartiteDegreeSkew(t *testing.T) {
	// The degree distribution should be heavy-tailed: the busiest 10% of
	// users should own well more than 10% of edges.
	p := Profile{Name: "skewtest", Users: 2000, Items: 5000, Edges: 30000,
		UserSkew: 1.6, ItemSkew: 1.3}
	edges := Bipartite(p, 3)
	deg := make(map[stream.User]int)
	for _, e := range edges {
		deg[e.User]++
	}
	counts := make([]int, 0, len(deg))
	for _, d := range deg {
		counts = append(counts, d)
	}
	// Selection-free check: mass of users with degree > 3x mean.
	mean := float64(len(edges)) / float64(len(counts))
	heavy := 0
	for _, d := range counts {
		if float64(d) > 3*mean {
			heavy += d
		}
	}
	frac := float64(heavy) / float64(len(edges))
	if frac < 0.05 {
		t.Errorf("heavy users own %.1f%% of edges; distribution not skewed", frac*100)
	}
}

func TestBipartiteTinyUniverse(t *testing.T) {
	// Degree forced to saturate the item universe: must still terminate
	// and produce a feasible graph.
	p := Profile{Name: "sat", Users: 10, Items: 5, Edges: 50,
		UserSkew: 1.5, ItemSkew: 1.2}
	edges := Bipartite(p, 1)
	if err := stream.Validate(edges); err != nil {
		t.Fatal(err)
	}
	if len(edges) != 50 {
		t.Errorf("complete graph should have 50 edges, got %d", len(edges))
	}
}

func TestDynamizeFeasibleAndDeletes(t *testing.T) {
	base := Bipartite(tinyProfile(), 2)
	cfg := DynamizeConfig{EventProb: 0.002, DeleteFrac: 0.5, Reinsert: false, Seed: 3}
	out := Dynamize(base, cfg)
	if err := stream.Validate(out); err != nil {
		t.Fatalf("dynamized stream infeasible: %v", err)
	}
	st := stream.NewStats()
	for _, e := range out {
		st.Observe(e)
	}
	if st.Deletes == 0 {
		t.Error("no deletions generated at q=0.002 over 5000 edges")
	}
	if st.Inserts != uint64(len(base)) {
		t.Errorf("inserts %d != base %d without reinsertion", st.Inserts, len(base))
	}
}

func TestDynamizeReinsertRestoresGraph(t *testing.T) {
	base := Bipartite(tinyProfile(), 2)
	cfg := DynamizeConfig{EventProb: 0.001, DeleteFrac: 0.5, Reinsert: true, Seed: 3}
	out := Dynamize(base, cfg)
	if err := stream.Validate(out); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// Final live set must equal the base edge set.
	live := make(map[edgeKey]struct{})
	for _, e := range out {
		k := edgeKey{e.User, e.Item}
		if e.Op == stream.Insert {
			live[k] = struct{}{}
		} else {
			delete(live, k)
		}
	}
	if len(live) != len(base) {
		t.Fatalf("final graph has %d edges, base %d", len(live), len(base))
	}
	for _, e := range base {
		if _, ok := live[edgeKey{e.User, e.Item}]; !ok {
			t.Fatalf("edge %s lost", e)
		}
	}
}

func TestDynamizeZeroProbIsIdentity(t *testing.T) {
	base := Bipartite(tinyProfile(), 9)
	out := Dynamize(base, DynamizeConfig{EventProb: 0, DeleteFrac: 0.5, Seed: 1})
	if len(out) != len(base) {
		t.Fatalf("q=0 changed length: %d vs %d", len(out), len(base))
	}
	for i := range base {
		if out[i] != base[i] {
			t.Fatalf("q=0 reordered the stream at %d", i)
		}
	}
}

func TestDynamizeRejectsBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"delete in base": func() {
			Dynamize([]stream.Edge{{User: 1, Item: 1, Op: stream.Delete}},
				DynamizeConfig{EventProb: 0.1, DeleteFrac: 0.5})
		},
		"bad q": func() {
			Dynamize(nil, DynamizeConfig{EventProb: 2, DeleteFrac: 0.5})
		},
		"bad d": func() {
			Dynamize(nil, DynamizeConfig{EventProb: 0.1, DeleteFrac: -1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPaperDynamizeParameters(t *testing.T) {
	cfg := PaperDynamize(3_000_000, 1)
	if cfg.DeleteFrac != 0.5 {
		t.Errorf("d = %v, want 0.5", cfg.DeleteFrac)
	}
	if cfg.EventProb <= 0 || cfg.EventProb > 0.01 {
		t.Errorf("q = %v out of expected range", cfg.EventProb)
	}
	if cfg.Reinsert {
		t.Error("paper model should not reinsert")
	}
	// Expected events = q * base ≈ 3.
	if ev := cfg.EventProb * 3_000_000; ev < 2.5 || ev > 3.5 {
		t.Errorf("expected events %v, want ~3", ev)
	}
}

func TestChurnFeasible(t *testing.T) {
	base := Bipartite(tinyProfile(), 5)
	out := Churn(base, 0.3, 7)
	if err := stream.Validate(out); err != nil {
		t.Fatalf("churn stream infeasible: %v", err)
	}
	st := stream.NewStats()
	for _, e := range out {
		st.Observe(e)
	}
	if st.Deletes == 0 {
		t.Error("churn produced no deletions")
	}
	// Reinsertion makes the final graph equal the base graph.
	if st.LiveEdges() != int64(len(base)) {
		t.Errorf("live %d != base %d", st.LiveEdges(), len(base))
	}
}

func TestChurnPanicsNearOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic at churn=0.99")
		}
	}()
	Churn(nil, 0.99, 1)
}

func TestPlantedPair(t *testing.T) {
	edges := PlantedPair(1, 2, 100, 80, 30, 5)
	if err := stream.Validate(edges); err != nil {
		t.Fatal(err)
	}
	setA := make(map[stream.Item]struct{})
	setB := make(map[stream.Item]struct{})
	for _, e := range edges {
		switch e.User {
		case 1:
			setA[e.Item] = struct{}{}
		case 2:
			setB[e.Item] = struct{}{}
		default:
			t.Fatalf("unexpected user %d", e.User)
		}
	}
	if len(setA) != 100 || len(setB) != 80 {
		t.Fatalf("sizes %d/%d", len(setA), len(setB))
	}
	common := 0
	for it := range setA {
		if _, ok := setB[it]; ok {
			common++
		}
	}
	if common != 30 {
		t.Errorf("common = %d, want 30", common)
	}
}

func TestPlantedPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("impossible overlap should panic")
		}
	}()
	PlantedPair(1, 2, 5, 5, 6, 1)
}

func TestPlantedJaccard(t *testing.T) {
	for _, j := range []float64{0, 0.1, 0.5, 0.9, 1} {
		c := PlantedJaccard(1000, j)
		if c < 0 || c > 1000 {
			t.Fatalf("common %d out of range", c)
		}
		got := float64(c) / float64(2000-c)
		if diff := got - j; diff > 0.002 || diff < -0.002 {
			t.Errorf("J target %v realised %v", j, got)
		}
	}
}

func TestDeleteSome(t *testing.T) {
	items := []stream.Item{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	dels := DeleteSome(1, items, 0.5, 3)
	if len(dels) == 0 || len(dels) == len(items) {
		t.Skipf("degenerate draw (len=%d); acceptable for fixed seed", len(dels))
	}
	for _, e := range dels {
		if e.Op != stream.Delete || e.User != 1 {
			t.Fatalf("bad deletion %s", e)
		}
	}
}

func TestEdgeSetSampleAll(t *testing.T) {
	s := newEdgeSet(4)
	s.add(1, 1)
	s.add(1, 2)
	s.add(2, 1)
	s.remove(1, 1)
	s.remove(9, 9) // absent: no-op
	if s.size() != 2 {
		t.Fatalf("size = %d", s.size())
	}
	victims := s.sample(randSource(1), 1)
	if len(victims) != 2 {
		t.Errorf("frac=1 sampled %d of 2", len(victims))
	}
	if got := s.sample(randSource(1), 0); got != nil {
		t.Errorf("frac=0 sampled %d", len(got))
	}
}
