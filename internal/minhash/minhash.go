// Package minhash implements the MinHash baseline (Broder et al.) together
// with the fully-dynamic extension described in the paper's §III, and the
// b-bit minwise signature compaction of Li & König (WWW'10).
//
// MinHash keeps, per user, k registers holding the minimum hash value of
// the user's items under k independent hash functions; the fraction of
// matching registers estimates the Jaccard coefficient. Updating a register
// on insertion is exact, but on deletion the true second-minimum is
// unrecoverable without the full set, so the §III extension simply empties
// a register whose minimum item is unsubscribed. That makes the register a
// non-uniform sample once deletions occur — the sampling bias the paper
// demonstrates and VOS removes. This package intentionally reproduces that
// bias; it is the baseline, not a fix.
package minhash

import (
	"fmt"
	"math"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// register is one MinHash slot: the current minimum hash and the item that
// achieves it (needed to detect deletion of the minimum).
type register struct {
	hash     uint64
	item     stream.Item
	occupied bool
}

// Sketch is a dynamic MinHash structure over all users of a stream.
type Sketch struct {
	k      int
	family *hashing.Family
	regs   map[stream.User][]register
	card   map[stream.User]int64
}

// New creates a MinHash sketch with k registers per user.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("minhash: k must be positive")
	}
	return &Sketch{
		k:      k,
		family: hashing.NewFamily(k, seed),
		regs:   make(map[stream.User][]register),
		card:   make(map[stream.User]int64),
	}
}

// K returns the number of registers per user.
func (s *Sketch) K() int { return s.k }

// BitsPerUser returns the §V memory accounting: k registers of 32 bits.
func (s *Sketch) BitsPerUser() uint64 { return 32 * uint64(s.k) }

// Process folds one element into the sketch in O(k): every register
// evaluates its own hash function on the item.
func (s *Sketch) Process(e stream.Edge) {
	regs := s.regs[e.User]
	if regs == nil {
		regs = make([]register, s.k)
		s.regs[e.User] = regs
	}
	switch e.Op {
	case stream.Insert:
		s.card[e.User]++
		for j := 0; j < s.k; j++ {
			h := s.family.Hash(j, uint64(e.Item))
			if !regs[j].occupied || h < regs[j].hash {
				regs[j] = register{hash: h, item: e.Item, occupied: true}
			}
		}
	case stream.Delete:
		s.card[e.User]--
		for j := 0; j < s.k; j++ {
			// §III case 2: the register's minimum item disappears and
			// the true new minimum is unknowable — empty the register.
			if regs[j].occupied && regs[j].item == e.Item {
				regs[j].occupied = false
			}
		}
	}
}

// Cardinality returns the tracked n_u.
func (s *Sketch) Cardinality(u stream.User) int64 { return s.card[u] }

// EstimateJaccard returns the §III estimator: the fraction of register
// pairs that are both occupied and equal, over k.
func (s *Sketch) EstimateJaccard(u, v stream.User) float64 {
	ru, rv := s.regs[u], s.regs[v]
	if ru == nil || rv == nil {
		return 0
	}
	matches := 0
	for j := 0; j < s.k; j++ {
		if ru[j].occupied && rv[j].occupied && ru[j].hash == rv[j].hash {
			matches++
		}
	}
	return float64(matches) / float64(s.k)
}

// EstimateCommonItems converts the Jaccard estimate through the paper's
// identity s = J·(n_u+n_v)/(J+1).
func (s *Sketch) EstimateCommonItems(u, v stream.User) float64 {
	j := s.EstimateJaccard(u, v)
	return j * float64(s.card[u]+s.card[v]) / (j + 1)
}

// FromSet builds the static MinHash signature of an item set, the classic
// (insertion-only) use of the method; used by tests and by BBitSignature.
func FromSet(items []stream.Item, k int, seed uint64) *Sketch {
	s := New(k, seed)
	for _, it := range items {
		s.Process(stream.Edge{User: 0, Item: it, Op: stream.Insert})
	}
	return s
}

// Signature returns the k register hash values of user u; empty registers
// yield MaxUint64. Exposed for compaction layers (b-bit, odd-sketch-over-
// MinHash) and diagnostics.
func (s *Sketch) Signature(u stream.User) []uint64 {
	regs := s.regs[u]
	out := make([]uint64, s.k)
	for j := range out {
		if regs != nil && regs[j].occupied {
			out[j] = regs[j].hash
		} else {
			out[j] = math.MaxUint64
		}
	}
	return out
}

// BBitSignature is the b-bit minwise compaction: only the lowest b bits of
// every register are stored. Collisions of truncated values inflate the
// match count; Jaccard converts back with the Li–König correction.
type BBitSignature struct {
	b    uint
	k    int
	bits []uint64 // packed b-bit values
}

// NewBBit compacts a user's signature to b bits per register (1 ≤ b ≤ 32).
func NewBBit(s *Sketch, u stream.User, b uint) *BBitSignature {
	if b < 1 || b > 32 {
		panic(fmt.Sprintf("minhash: b = %d out of [1, 32]", b))
	}
	sig := s.Signature(u)
	mask := uint64(1)<<b - 1
	out := &BBitSignature{b: b, k: s.k, bits: make([]uint64, s.k)}
	for j, h := range sig {
		out.bits[j] = h & mask
	}
	return out
}

// BitsTotal returns the storage cost in bits, the quantity b-bit hashing
// optimises.
func (g *BBitSignature) BitsTotal() uint64 { return uint64(g.k) * uint64(g.b) }

// EstimateJaccard applies the collision correction
// Ĵ = (m − c)/(1 − c) with m the match fraction and c = 2^−b the accidental
// collision rate of truncated values.
func (g *BBitSignature) EstimateJaccard(o *BBitSignature) float64 {
	if g.b != o.b || g.k != o.k {
		panic("minhash: incompatible b-bit signatures")
	}
	matches := 0
	for j := 0; j < g.k; j++ {
		if g.bits[j] == o.bits[j] {
			matches++
		}
	}
	m := float64(matches) / float64(g.k)
	c := 1 / float64(uint64(1)<<g.b)
	j := (m - c) / (1 - c)
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}
