// Package core implements VOS (virtual odd sketch), the paper's primary
// contribution: a similarity sketch for fully dynamic bipartite graph
// streams with O(1) per-edge processing and O(k) per-pair queries.
//
// State (paper §IV):
//
//   - a shared bit array A of m bits,
//   - an item hash ψ : I → {1..k} selecting which of the k virtual odd
//     sketch slots an item toggles,
//   - k user hashes f_1 … f_k : U → {1..m} placing each user's k virtual
//     slots in A,
//   - a per-user cardinality counter n_u,
//   - β, the fraction of 1-bits in A (maintained O(1) by the bitset).
//
// Processing an element (u, i, ±) flips the single bit A[f_ψ(i)(u)] and
// adjusts n_u — insertion and deletion are the same XOR toggle, which is
// why VOS, unlike MinHash/OPH, has no deletion bias.
//
// Queries recover the two users' virtual odd sketches from A, observe the
// fraction α of differing bits, correct for the contamination β caused by
// sharing the array, and invert the odd sketch estimator to obtain the
// symmetric difference, the common-item count, and the Jaccard coefficient.
package core

import (
	"fmt"
	"math"
	"sync"

	"github.com/vossketch/vos/internal/bitset"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/poscache"
	"github.com/vossketch/vos/internal/stream"
)

// Config parameterises a VOS sketch.
type Config struct {
	// MemoryBits is m, the length of the shared bit array A.
	MemoryBits uint64
	// SketchBits is k, the virtual odd sketch size per user. The paper
	// sets it λ times the per-user bit budget of the 32-bit-register
	// baselines (λ = 2 in §V): k = λ·32·k_registers.
	SketchBits int
	// Seed makes the sketch reproducible; two sketches are mergeable and
	// comparable only when built from identical Config values.
	Seed uint64
	// Family selects the position-generation backend for the k user hashes
	// f_1 … f_k. The zero value (hashing.KindClassic) is the original
	// k-independent-seeds family; hashing.KindFast fills a position table
	// with O(1) amortized hash work per slot (see internal/hashing's fast
	// family). The two families place users' virtual slots at unrelated
	// positions, so the family is part of the sketch's identity: it is
	// serialized in sketch and checkpoint headers, and merge/compare/load
	// across families is refused (ErrFamilyMismatch) rather than silently
	// desynchronizing XOR state.
	Family hashing.Kind
}

// PaperConfig builds the §V memory-equalised configuration: baselines give
// each of numUsers users k32 registers of 32 bits, so m = 32·k32·numUsers,
// and VOS uses a virtual sketch of k = λ·32·k32 bits.
func PaperConfig(numUsers int, k32 int, lambda int, seed uint64) Config {
	return Config{
		MemoryBits: 32 * uint64(k32) * uint64(numUsers),
		SketchBits: lambda * 32 * k32,
		Seed:       seed,
	}
}

func (c Config) validate() error {
	if c.MemoryBits == 0 {
		return fmt.Errorf("core: MemoryBits must be positive")
	}
	if c.SketchBits <= 0 {
		return fmt.Errorf("core: SketchBits must be positive")
	}
	if uint64(c.SketchBits) > c.MemoryBits {
		return fmt.Errorf("core: virtual sketch (%d bits) larger than the shared array (%d bits)",
			c.SketchBits, c.MemoryBits)
	}
	// The serialized header stores the family tag in the high byte of the
	// SketchBits word (see marshal.go), so k must leave that byte clear.
	if uint64(c.SketchBits) >= 1<<48 {
		return fmt.Errorf("core: virtual sketch (%d bits) exceeds the supported maximum (2^48)", c.SketchBits)
	}
	if !c.Family.Valid() {
		return fmt.Errorf("core: unknown hash family %v", c.Family)
	}
	return nil
}

// VOS is the sketch. It is not safe for concurrent mutation; wrap with a
// mutex or shard by stream partition and Merge (see Merge). Read-only
// methods (Query, QueryMany, TopK, Recover*, Cardinality, Beta, Stats) may
// run concurrently with each other on a quiescent sketch — the engine's
// merged snapshots and the parallel top-K path rely on this.
type VOS struct {
	cfg Config
	arr *bitset.Bitset
	// Exactly one of slots/fslots is non-nil, per cfg.Family. They stay
	// concrete (a branch on the hot path, not an interface) so the per-edge
	// position computation keeps inlining into Process.
	slots  *hashing.Family     // KindClassic: f_1 … f_k, one member per virtual slot
	fslots *hashing.FastFamily // KindFast: one strong hash + splitmix64 expansion
	card   map[stream.User]int64

	// fastMemo caches per-user fast-family expansion states for the
	// single-slot ingest path: real streams repeat users heavily, so the
	// direct-mapped table turns the per-edge Hash64 into a multiply-indexed
	// load on repeats. It is written by Process/ProcessBatch ONLY — the
	// read paths (position, fillPositions) must not touch it, because
	// read-only methods may run concurrently on a quiescent sketch and a
	// memo write would race. nil when the family is classic (or in the
	// no-memo benchmark baseline); positions are identical either way.
	fastMemo []fastMemoEntry

	// pos optionally caches per-user position tables (see Positions).
	// nil means positions are recomputed per call. The cache is
	// thread-safe, so attaching one keeps the read paths race-clean.
	pos *poscache.Cache

	// posScratch pools k-word position buffers for the cache-less query
	// path, so a transient query allocates no table (see lookupPositions).
	posScratch sync.Pool

	// rec caches packed recovered sketches (see batch.go). Entries are
	// stamped with version, so any write invalidates all of them at once;
	// on a quiescent sketch a repeat pair comparison is then a pure
	// XOR+popcount over ~k/64 words. nil disables.
	rec *poscache.Cache
	// version counts writes (Process, Merge). It stamps recovered-sketch
	// cache entries; it is not serialized and restarts from zero on load,
	// which is safe because a loaded sketch starts with an empty cache.
	version uint64
}

// defaultRecoveredCacheEntries bounds the recovered-sketch cache a new
// sketch gets. Entries cost k/8 bytes (800 B at the paper's k = 6400, so
// the default is ≈3 MiB at paper scale) — small enough to enable by
// default, unlike position tables, which are 64× larger per user.
const defaultRecoveredCacheEntries = 4096

// New creates an empty VOS sketch. It returns an error for degenerate
// configurations.
func New(cfg Config) (*VOS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	v := &VOS{
		cfg:  cfg,
		arr:  bitset.New(cfg.MemoryBits),
		card: make(map[stream.User]int64),
		rec:  poscache.New(defaultRecoveredCacheEntries),
	}
	if cfg.Family == hashing.KindFast {
		v.fslots = hashing.NewFastFamily(cfg.SketchBits, cfg.Seed)
		v.fastMemo = make([]fastMemoEntry, 1<<fastMemoBits)
	} else {
		v.slots = hashing.NewFamily(cfg.SketchBits, cfg.Seed)
	}
	return v, nil
}

// fastMemoBits sizes the ingest-path state memo: 1024 direct-mapped
// entries (24 KiB) — enough that a shard's working set of hot users mostly
// sticks, small enough to live in L1/L2 next to the ingest loop.
const fastMemoBits = 10

// fastMemoEntry is one memoized (user key → expansion state) pair. live
// distinguishes an empty slot from user 0.
type fastMemoEntry struct {
	key   uint64
	state uint64
	live  bool
}

// fastState returns the fast-family expansion state for key through the
// ingest-path memo (mutating it — callers are the write paths, which are
// single-threaded by contract). A direct-mapped table keeps the lookup one
// multiply and one load; collisions simply overwrite.
func (v *VOS) fastState(key uint64) uint64 {
	if v.fastMemo == nil {
		return v.fslots.State(key)
	}
	e := &v.fastMemo[(key*0x9e3779b97f4a7c15)>>(64-fastMemoBits)]
	if e.live && e.key == key {
		return e.state
	}
	st := v.fslots.State(key)
	*e = fastMemoEntry{key: key, state: st, live: true}
	return st
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *VOS {
	v, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Config returns the sketch configuration.
func (v *VOS) Config() Config { return v.cfg }

// K returns the virtual sketch size k.
func (v *VOS) K() int { return v.cfg.SketchBits }

// MemoryBits returns m.
func (v *VOS) MemoryBits() uint64 { return v.cfg.MemoryBits }

// SetPositionCache attaches a position cache to the materialized read
// path (nil detaches). Position tables depend only on the user key and the
// sketch's Seed/MemoryBits/SketchBits, so one cache may be shared across
// sketches with identical Config — the engine shares a single cache
// between its shards and every merged snapshot. Sharing across different
// configs returns wrong positions; don't.
func (v *VOS) SetPositionCache(c *poscache.Cache) { v.pos = c }

// EnablePositionCache attaches a fresh private position cache holding up
// to entries users. Each entry costs SketchBits·8 bytes (50 KiB at the
// paper's k = 6400); see poscache.New for sizing guidance.
func (v *VOS) EnablePositionCache(entries int) { v.pos = poscache.New(entries) }

// PositionCache returns the attached position cache, or nil.
func (v *VOS) PositionCache() *poscache.Cache { return v.pos }

// SetRecoveredCacheCapacity resizes the recovered-sketch cache: entries
// packed recovered sketches (k/8 bytes each) are kept, stamped by write
// version, so repeat queries on a quiescent sketch skip hashing AND array
// probing. 0 restores the default (4096 entries); negative disables the
// cache. Resizing discards cached sketches.
func (v *VOS) SetRecoveredCacheCapacity(entries int) {
	switch {
	case entries < 0:
		v.rec = nil
	case entries == 0:
		v.rec = poscache.New(defaultRecoveredCacheEntries)
	default:
		v.rec = poscache.New(entries)
	}
}

// RecoveredCacheStats reports the recovered-sketch cache counters; ok is
// false when the cache is disabled.
func (v *VOS) RecoveredCacheStats() (st poscache.Stats, ok bool) {
	if v.rec == nil {
		return poscache.Stats{}, false
	}
	return v.rec.Stats(), true
}

// slot returns ψ(item) ∈ [0, k).
func (v *VOS) slot(i stream.Item) int {
	return int(hashing.HashToRange(uint64(i), v.cfg.Seed^0x5f4dcc3b5aa765d6, uint64(v.cfg.SketchBits)))
}

// position returns f_j(u) ∈ [0, m).
func (v *VOS) position(u stream.User, j int) uint64 {
	if v.fslots != nil {
		return v.fslots.HashRange(j, uint64(u), v.cfg.MemoryBits)
	}
	return v.slots.HashRange(j, uint64(u), v.cfg.MemoryBits)
}

// fillPositions writes f_0(u) … f_{len(dst)-1}(u) into dst with the active
// family's batched fill — the one hashing entry point of every
// position-table materialisation (poscache fills, sketch recovery, the
// cache-less query path).
func (v *VOS) fillPositions(dst []uint64, u stream.User) {
	if v.fslots != nil {
		v.fslots.HashRangeInto(dst, uint64(u), v.cfg.MemoryBits)
		return
	}
	v.slots.HashRangeInto(dst, uint64(u), v.cfg.MemoryBits)
}

// Process folds one stream element into the sketch in O(1): one hash for
// ψ, one for f_j, one bit flip, one counter update.
func (v *VOS) Process(e stream.Edge) {
	v.version++ // invalidates every cached recovered sketch
	j := v.slot(e.Item)
	if v.fslots != nil {
		v.arr.Flip(hashing.PositionFromState(v.fastState(uint64(e.User)), j, v.cfg.MemoryBits))
	} else {
		v.arr.Flip(v.position(e.User, j))
	}
	v.bump(e.User, opDelta(e.Op))
}

// ProcessBatch folds a slice of stream elements into the sketch — the same
// state transition as calling Process per element, with the per-edge
// overheads (write-version bump, method dispatch) hoisted out of the loop.
// The engine's shard workers apply their queued batches through this.
func (v *VOS) ProcessBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	v.version++ // one write event: invalidates every cached recovered sketch
	if v.fslots != nil {
		for _, e := range edges {
			j := v.slot(e.Item)
			v.arr.Flip(hashing.PositionFromState(v.fastState(uint64(e.User)), j, v.cfg.MemoryBits))
			v.bump(e.User, opDelta(e.Op))
		}
		return
	}
	for _, e := range edges {
		j := v.slot(e.Item)
		v.arr.Flip(v.slots.HashRange(j, uint64(e.User), v.cfg.MemoryBits))
		v.bump(e.User, opDelta(e.Op))
	}
}

// opDelta maps an action onto its cardinality delta.
func opDelta(op stream.Op) int64 {
	if op == stream.Insert {
		return 1
	}
	return -1
}

// bump adjusts n_u by d. A user whose subscriptions all cancelled out
// holds no sketch state at all; dropping the counter entry keeps memory
// proportional to active users on long-running streams. The prune fires on
// both ops so sketch state is fully order-independent: under sharded
// ingestion a user's delete may be applied before the matching insert
// (counter goes -1 then back to 0), and the insert must erase the entry
// too. One map lookup, then one store or delete — `v.card[u] += d`
// followed by a zero check would traverse the map a second time on every
// edge of the hot ingest loop.
func (v *VOS) bump(u stream.User, d int64) {
	if c := v.card[u] + d; c == 0 {
		delete(v.card, u)
	} else {
		v.card[u] = c
	}
}

// Cardinality returns n_u, the tracked number of items user u currently
// subscribes to. For feasible streams this is exact.
func (v *VOS) Cardinality(u stream.User) int64 { return v.card[u] }

// ForEachUser calls fn for every user with live sketch state (a nonzero
// cardinality counter — zero counters are pruned on every write) in
// unspecified order, stopping early when fn returns false. fn must not
// write the sketch. The engine's approximate top-K index enumerates a
// merged snapshot through this to seed its initial build.
func (v *VOS) ForEachUser(fn func(u stream.User, card int64) bool) {
	for u, c := range v.card {
		if !fn(u, c) {
			return
		}
	}
}

// Beta returns β, the current fraction of 1-bits in the shared array.
func (v *VOS) Beta() float64 { return v.arr.OnesFraction() }

// Users returns the number of users with a nonzero cardinality counter.
// Process and Merge prune zero-cardinality entries on every operation, so
// the map never holds a zero and its length is the answer in O(1).
func (v *VOS) Users() int { return len(v.card) }

// RecoverBit returns Ô_u[j] = A[f_j(u)], the rebuilt bit j of user u's
// virtual odd sketch.
func (v *VOS) RecoverBit(u stream.User, j int) bool {
	return v.arr.Get(v.position(u, j))
}

// xorOnes counts the slots where the two users' recovered sketches differ.
func (v *VOS) xorOnes(u, w stream.User) int {
	z := 0
	for j := 0; j < v.cfg.SketchBits; j++ {
		if v.arr.GetBit(v.position(u, j)) != v.arr.GetBit(v.position(w, j)) {
			z++
		}
	}
	return z
}

// Estimate bundles every quantity a similarity query produces, so callers
// can inspect the intermediate values (α, β) the paper's formulas use.
type Estimate struct {
	// Common is ŝ_uv, the estimated number of common items (paper eq. for
	// ŝ; may be negative or exceed min(n_u, n_v) in the tails — see
	// CommonClamped).
	Common float64
	// CommonClamped is Common restricted to the feasible range
	// [0, min(n_u, n_v)], the value the Jaccard estimate is derived from.
	CommonClamped float64
	// Jaccard is Ĵ = ŝ/(n_u + n_v − ŝ) using the clamped ŝ, in [0, 1].
	Jaccard float64
	// SymmetricDifference is n̂Δ.
	SymmetricDifference float64
	// Alpha is the observed fraction of differing recovered bits.
	Alpha float64
	// Beta is the array load at query time.
	Beta float64
	// CardinalityU and CardinalityV are the tracked n_u, n_v.
	CardinalityU, CardinalityV int64
	// Saturated reports that α or β was clamped away from 1/2, i.e. the
	// sketch is overloaded for this pair and the estimate is a floor.
	Saturated bool
}

// Query estimates the similarity of users u and w in O(k). It runs on the
// materialized read path: u's virtual sketch is recovered once into packed
// words and w's recovered bits are XOR-popcounted against it a word at a
// time (see batch.go), with position tables served from the attached cache
// when one is present. The result is bit-identical to QueryPerBit.
func (v *VOS) Query(u, w stream.User) Estimate {
	return v.QueryRecovered(v.RecoverSketch(u), w)
}

// QueryPerBit is the scalar reference implementation of Query: 2k seeded
// hash evaluations and 2k single-bit array probes, one virtual slot at a
// time, exactly the paper's description and this package's original read
// path. It allocates nothing and touches no cache. It is retained as the
// parity oracle for the materialized path (the two must agree bit for bit,
// since α is computed from the same recovered bits) and as the baseline
// the query benchmarks compare against.
func (v *VOS) QueryPerBit(u, w stream.User) Estimate {
	return v.estimateFrom(v.xorOnes(u, w), v.card[u], v.card[w], v.Beta())
}

// estimateFrom computes the full Estimate from the differing-slot count z,
// the two cardinalities, and the array load — the §IV estimator chain
// shared by Query and the batch path.
func (v *VOS) estimateFrom(z int, nu, nv int64, beta float64) Estimate {
	k := float64(v.cfg.SketchBits)
	alpha := float64(z) / k

	// |1−2α| and |1−2β| enter logarithms; clamp them a half-step above
	// zero (the resolution of the underlying counts) so estimates stay
	// finite. The paper's ŝ expression already takes absolute values.
	saturated := false
	absA := math.Abs(1 - 2*alpha)
	if absA < 1/(2*k) {
		absA = 1 / (2 * k)
		saturated = true
	}
	absB := math.Abs(1 - 2*beta)
	if absB < 1/(2*float64(v.cfg.MemoryBits)) {
		absB = 1 / (2 * float64(v.cfg.MemoryBits))
		saturated = true
	}

	// n̂Δ = −k·(ln(1−2α) − 2·ln(1−2β)) / 2
	nDelta := -k * (math.Log(absA) - 2*math.Log(absB)) / 2
	if nDelta < 0 {
		nDelta = 0
	}
	// ŝ = (n_u+n_v)/2 + k·(ln|1−2α| − 2·ln|1−2β|)/4
	common := float64(nu+nv)/2 + k*(math.Log(absA)-2*math.Log(absB))/4

	clamped := common
	maxCommon := float64(nu)
	if nv < nu {
		maxCommon = float64(nv)
	}
	if clamped < 0 {
		clamped = 0
	}
	if clamped > maxCommon {
		clamped = maxCommon
	}
	jac := 0.0
	if union := float64(nu+nv) - clamped; union > 0 {
		jac = clamped / union
	}
	if jac < 0 {
		jac = 0
	} else if jac > 1 {
		jac = 1
	}

	return Estimate{
		Common:              common,
		CommonClamped:       clamped,
		Jaccard:             jac,
		SymmetricDifference: nDelta,
		Alpha:               alpha,
		Beta:                beta,
		CardinalityU:        nu,
		CardinalityV:        nv,
		Saturated:           saturated,
	}
}

// EstimateCommonItems returns ŝ_uv (unclamped, the paper's estimator).
func (v *VOS) EstimateCommonItems(u, w stream.User) float64 {
	return v.Query(u, w).Common
}

// EstimateJaccard returns Ĵ(S_u, S_w) in [0, 1].
func (v *VOS) EstimateJaccard(u, w stream.User) float64 {
	return v.Query(u, w).Jaccard
}

// EstimateSymmetricDifference returns n̂Δ = |S_u Δ S_w| estimated.
func (v *VOS) EstimateSymmetricDifference(u, w stream.User) float64 {
	return v.Query(u, w).SymmetricDifference
}

// Merge folds other into v. Merging is exact for any partition of a stream
// across sketches with identical configurations: the shared arrays XOR
// (parities add mod 2) and the cardinality counters add. After Merge, v
// equals the sketch of the concatenated streams.
func (v *VOS) Merge(other *VOS) error {
	if v.cfg.Family != other.cfg.Family {
		return fmt.Errorf("%w: cannot merge %v-family sketch into %v-family sketch",
			ErrFamilyMismatch, other.cfg.Family, v.cfg.Family)
	}
	if v.cfg != other.cfg {
		return fmt.Errorf("core: cannot merge sketches with different configs (%+v vs %+v)",
			v.cfg, other.cfg)
	}
	v.version++ // invalidates every cached recovered sketch
	v.arr.Xor(other.arr)
	for u, c := range other.card {
		v.card[u] += c
		if v.card[u] == 0 {
			delete(v.card, u)
		}
	}
	return nil
}

// Unmerge removes other's contribution from v — the inverse of Merge. XOR
// is self-inverse, so the shared arrays XOR exactly as in Merge while the
// cardinality counters subtract; after v.Merge(o) followed by v.Unmerge(o),
// v is bit-identical to its state before the Merge. This is the O(sketch)
// primitive behind sliding windows: re-XORing a retired time bucket out of
// the merged view deletes every edge it absorbed at once, with no per-edge
// bookkeeping (see Window).
func (v *VOS) Unmerge(other *VOS) error {
	if v.cfg.Family != other.cfg.Family {
		return fmt.Errorf("%w: cannot unmerge %v-family sketch from %v-family sketch",
			ErrFamilyMismatch, other.cfg.Family, v.cfg.Family)
	}
	if v.cfg != other.cfg {
		return fmt.Errorf("core: cannot unmerge sketches with different configs (%+v vs %+v)",
			v.cfg, other.cfg)
	}
	v.version++ // invalidates every cached recovered sketch
	v.arr.Xor(other.arr)
	for u, c := range other.card {
		v.bump(u, -c)
	}
	return nil
}

// Reset returns the sketch to its empty state in place, keeping the
// configuration, the allocated array, and any attached caches (recovered-
// sketch cache entries are version-stamped, so the reset invalidates them).
func (v *VOS) Reset() {
	v.version++
	v.arr.Reset()
	clear(v.card)
}

// BiasApprox returns the analytic approximation of E[ŝ] − s at symmetric
// difference nDelta under the current array load β.
//
// Derivation note: the arXiv text prints E(ŝ) ≈ s + 1/8 − k·β·e^{2nΔ/k}/
// (1−2β)² − e^{4nΔ/k}/(8(1−2β)⁴), whose middle term grows with k·β and
// contradicts the paper's own experiments (it would put the bias in the
// hundreds for §V's parameters). Re-deriving via the delta method on
// α ~ Binomial(k, p)/k with 1−2p = (1−2β)²e^{−2nΔ/k} gives
//
//	E[ŝ] − s ≈ 1/8 − e^{4nΔ/k} / (8·(1−2β)⁴),
//
// which coincides with the printed expression at β = 0 and matches Monte
// Carlo simulation (see TestBiasApproxMatchesSimulation). We implement the
// re-derived form.
func (v *VOS) BiasApprox(nDelta float64) float64 {
	k := float64(v.cfg.SketchBits)
	c := 1 - 2*v.Beta()
	return 1.0/8 - math.Exp(4*nDelta/k)/(8*c*c*c*c)
}

// VarianceApprox returns the analytic approximation of Var[ŝ] at symmetric
// difference nDelta under the current array load β:
//
//	Var[ŝ] ≈ −k/16 + k·e^{4nΔ/k} / (16·(1−2β)⁴),
//
// again the delta-method form (see BiasApprox for why the printed variant's
// extra k²β term is not implemented); at β = 0 it reduces to the odd sketch
// variance k·(e^{4nΔ/k} − 1)/16 of Mitzenmacher et al.
func (v *VOS) VarianceApprox(nDelta float64) float64 {
	k := float64(v.cfg.SketchBits)
	c := 1 - 2*v.Beta()
	return -k/16 + k*math.Exp(4*nDelta/k)/(16*c*c*c*c)
}

// Stats summarises sketch state for diagnostics.
type Stats struct {
	MemoryBits  uint64
	SketchBits  int
	OnesCount   uint64
	Beta        float64
	Users       int
	MemoryBytes uint64

	// Family is the active position-generation backend (Config.Family).
	Family hashing.Kind

	// WindowSeconds and WindowBuckets describe the sliding window when the
	// state comes from a windowed sketch or engine: the window span
	// B·bucketDuration in seconds and the bucket count B. Both are zero on
	// an unwindowed (append-forever) sketch.
	WindowSeconds float64
	WindowBuckets int
}

// Stats returns a snapshot of the sketch's state.
func (v *VOS) Stats() Stats {
	return Stats{
		MemoryBits:  v.cfg.MemoryBits,
		SketchBits:  v.cfg.SketchBits,
		OnesCount:   v.arr.Count(),
		Beta:        v.Beta(),
		Users:       v.Users(),
		MemoryBytes: (v.cfg.MemoryBits+7)/8 + uint64(len(v.card))*16,
		Family:      v.cfg.Family,
	}
}
