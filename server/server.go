package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/admit"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/stream"
)

// Routes, all under the /v1/ version prefix.
const (
	RouteEdges       = "/v1/edges"       // POST: ingest (JSON, NDJSON, or binary)
	RouteSimilarity  = "/v1/similarity"  // GET ?u=&v=
	RouteTopK        = "/v1/topk"        // POST TopKRequest
	RouteCardinality = "/v1/cardinality" // GET ?user=
	RouteStats       = "/v1/stats"       // GET
	RouteCheckpoint  = "/v1/checkpoint"  // POST (durable engines only)
	RouteHealthz     = "/v1/healthz"     // GET liveness
	RouteReadyz      = "/v1/readyz"      // GET readiness (503 while draining)
	RouteMetrics     = "/v1/metrics"     // GET per-endpoint counters

	// Backend-side cluster state-transfer routes, served when the backing
	// service implements vos.StateExporter / vos.StateImporter (an
	// engine-backed vosd does; 501 otherwise). The gateway uses them for
	// scatter-gather queries and shard handoff.
	RouteClusterSketch = "/v1/cluster/sketch" // GET: serialized engine state (binary)
	RouteClusterImport = "/v1/cluster/import" // POST: merge serialized state (handoff target)
)

// Gateway-tier routes, registered by internal/cluster.Gateway.Handler on
// vosgw, never by this package's New — a backend has no ring to serve.
// They are declared here so the route table (and the CI route-harvest
// check against docs/openapi.yaml) has one home.
const (
	RouteClusterRing       = "/v1/cluster/ring"       // GET: the live shard→node table
	RouteClusterHandoff    = "/v1/cluster/handoff"    // POST HandoffRequest: move a shard
	RouteClusterCheckpoint = "/v1/cluster/checkpoint" // POST: cluster-wide checkpoint → manifest
)

// HeaderPartial marks a degraded scatter-gather response: "true" means
// part of the cluster state was unreachable and the body covers only the
// reachable portion (see vos.PartialTopK). Absent on complete answers.
const HeaderPartial = "X-Vos-Partial"

// HeaderBatchTs optionally carries a whole ingest batch's event time as
// fractional Unix seconds — the header equivalent of the per-edge "ts"
// field, and the only way to timestamp the binary VOSSTRM1 format (whose
// frames carry no time). Against a windowed service the largest of the
// header and per-edge timestamps advances the sliding window before the
// batch is ingested; unwindowed services ignore it.
const HeaderBatchTs = "X-Vos-Batch-Ts"

// Ingest content types accepted by POST /v1/edges.
const (
	// ContentTypeJSON carries one EdgeJSON object or a JSON array of them.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON carries one EdgeJSON object per line.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeBinary carries the VOSSTRM1 binary stream format
	// (stream.WriteBinary) — the compact, fast path the Go client uses.
	ContentTypeBinary = "application/octet-stream"
)

// Options tunes the server. The zero value selects the defaults.
type Options struct {
	// MaxBatchBytes caps a single ingest request body; larger payloads get
	// 413/too_large. Default 8 MiB.
	MaxBatchBytes int64
	// MaxInFlightBytes bounds the memory of concurrently executing ingest
	// requests — the backpressure budget. On admission each request
	// charges its worst-case footprint: wire bytes plus the largest edge
	// slice the body could decode to (compact binary bodies decode at up
	// to ~12x amplification, so a binary request holds up to 13x its wire
	// size until parsing reveals the real count), keeping the budget a
	// bound on decoded memory, not just bodies. When admission would
	// exceed the budget, the server answers 429/backpressure with a
	// Retry-After hint instead of buffering without bound; a single batch
	// whose worst case exceeds the whole budget gets 413/too_large (it
	// could never be admitted — with an explicit budget, the largest
	// acceptable binary batch is about MaxInFlightBytes/13 wire bytes).
	// Default 128 MiB, sized so one maximal binary batch under the
	// default MaxBatchBytes (13 x 8 MiB = 104 MiB) is admissible.
	MaxInFlightBytes int64
	// Admission, when non-nil, replaces the controller the server would
	// build from the two byte limits above — the way vosd makes the HTTP
	// handlers and the UDP listener share one process-wide ingest budget.
	// The controller's own limits win over MaxBatchBytes/MaxInFlightBytes.
	Admission *admit.Controller
	// UDPStats, when non-nil, is polled by /v1/stats to report the UDP
	// ingest plane's counters alongside the engine's (vosd wires it to the
	// datagram receiver when -udp-listen is set).
	UDPStats func() metrics.UDPStats
	// Logger, when non-nil, receives one line per request: method, route,
	// status, duration, and body size.
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 8 << 20
	}
	if o.MaxInFlightBytes <= 0 {
		o.MaxInFlightBytes = 128 << 20
	}
	if o.MaxInFlightBytes < o.MaxBatchBytes {
		// A budget smaller than one full batch would deadlock chunked
		// requests, which charge MaxBatchBytes up front.
		o.MaxInFlightBytes = o.MaxBatchBytes
	}
	return o
}

// endpointStats is one route's counters. RateMeter is not concurrency-safe
// on its own, so everything sits behind the mutex.
type endpointStats struct {
	mu       sync.Mutex
	requests uint64
	errors   uint64
	totalNS  int64
	meter    metrics.RateMeter
}

// Server is an http.Handler serving the /v1/ API over a
// vos.SimilarityService. Create with New; all methods are safe for
// concurrent use.
type Server struct {
	svc vos.SimilarityService
	opt Options
	mux *http.ServeMux

	// adm is the ingest admission budget (guards memory, not correctness:
	// the service itself applies its own backpressure by blocking when
	// shard queues fill). Possibly shared with other ingest transports via
	// Options.Admission.
	adm *admit.Controller

	// draining and inFlight share drainMu: requests are admitted
	// (inFlight.Add under RLock, after re-checking the flag) only while
	// draining is false, and Drain flips the flag under Lock — so every
	// admitted request is visible to Drain's Wait, with no
	// check-then-register window.
	draining bool
	drainMu  sync.RWMutex
	inFlight sync.WaitGroup

	start time.Time
	// byRoute/routeList are filled in New and immutable afterwards; each
	// endpointStats carries its own lock.
	byRoute   map[string]*endpointStats
	routeList []string
}

// New builds a Server over svc. The handler is ready immediately; pair it
// with an http.Server (or httptest) owned by the caller.
func New(svc vos.SimilarityService, opt Options) *Server {
	opt = opt.withDefaults()
	adm := opt.Admission
	if adm == nil {
		adm = admit.NewController(opt.MaxBatchBytes, opt.MaxInFlightBytes)
	} else {
		// An injected controller owns the limits; the handler-side checks
		// (MaxBytesReader, chunked-length substitution) must agree with it.
		opt.MaxBatchBytes = adm.MaxBatchBytes()
		opt.MaxInFlightBytes = adm.MaxInFlightBytes()
	}
	s := &Server{
		svc:     svc,
		opt:     opt,
		mux:     http.NewServeMux(),
		adm:     adm,
		start:   time.Now(),
		byRoute: make(map[string]*endpointStats),
	}
	s.handle(RouteEdges, http.MethodPost, s.handleEdges)
	s.handle(RouteSimilarity, http.MethodGet, s.handleSimilarity)
	s.handle(RouteTopK, http.MethodPost, s.handleTopK)
	s.handle(RouteCardinality, http.MethodGet, s.handleCardinality)
	s.handle(RouteStats, http.MethodGet, s.handleStats)
	s.handle(RouteCheckpoint, http.MethodPost, s.handleCheckpoint)
	s.handle(RouteClusterSketch, http.MethodGet, s.handleClusterSketch)
	s.handle(RouteClusterImport, http.MethodPost, s.handleClusterImport)
	s.handle(RouteMetrics, http.MethodGet, s.handleMetrics)
	// Health endpoints bypass the drain gate: a draining instance is still
	// alive, and readiness must keep answering (with 503) so load
	// balancers see the flip.
	s.mux.HandleFunc(RouteHealthz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
	})
	s.mux.HandleFunc(RouteReadyz, func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
	})
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such route: "+r.URL.Path)
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// admit registers a request with the in-flight group unless the server is
// draining. The flag check and the Add happen under the same lock Drain
// uses to flip the flag, so Drain's Wait can never miss a request that
// was admitted (and the WaitGroup never sees an Add racing a Wait at
// counter zero).
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.inFlight.Add(1)
	return true
}

// Drain takes the server out of rotation: /v1/readyz flips to 503, new API
// requests are rejected with 503/unavailable, and Drain blocks until every
// in-flight request has finished or ctx expires. It does not close the
// backing service — the caller shuts the engine down after Drain returns,
// so queries admitted before the flip still answer from live state. Drain
// is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusWriter captures the status code for logging and error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handle registers an instrumented route: method gate, drain gate,
// in-flight tracking, per-endpoint counters, optional request log.
func (s *Server) handle(route, method string, h http.HandlerFunc) {
	st := &endpointStats{}
	s.byRoute[route] = st
	s.routeList = append(s.routeList, route)
	s.mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		func() {
			if r.Method != method {
				w.Header().Set("Allow", method)
				writeError(sw, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
					fmt.Sprintf("%s requires %s", route, method))
				return
			}
			if !s.admit() {
				writeError(sw, http.StatusServiceUnavailable, CodeDraining, "server is draining")
				return
			}
			defer s.inFlight.Done()
			h(sw, r)
		}()
		d := time.Since(t0)
		st.mu.Lock()
		st.requests++
		if sw.status >= 400 {
			st.errors++
		}
		st.totalNS += d.Nanoseconds()
		st.mu.Unlock()
		if s.opt.Logger != nil {
			s.opt.Logger.Printf("%s %s %d %s %dB", r.Method, route, sw.status, d, r.ContentLength)
		}
	})
}

// --- ingest ---

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	// Admission control (internal/admit): charge this request's worst-case
	// memory — wire bytes (declared, or the per-request cap for chunked
	// bodies of unknown length) plus the largest edge slice the body could
	// decode to — against the in-flight budget before reading a byte. The
	// hold is trimmed to the real footprint once parsing reveals the edge
	// count. Only the length handling is HTTP-specific: chunked binary
	// would have to charge the cap's worst case — a fixed ~13x
	// MaxBatchBytes no matter how small the body, which under a tight
	// budget rejects requests that splitting cannot save. Binary senders
	// buffer batches anyway (the Go client does), so demand the length
	// instead of guessing.
	wire := r.ContentLength
	isBinary := normalizeCT(r.Header.Get("Content-Type")) == ContentTypeBinary
	if wire < 0 {
		if isBinary {
			writeError(w, http.StatusLengthRequired, CodeBadRequest,
				"binary ingest requires Content-Length")
			return
		}
		wire = s.opt.MaxBatchBytes
	}
	hold, admitErr := s.adm.Admit(wire, isBinary)
	if admitErr != nil {
		var tooLarge *admit.BatchTooLargeError
		var overBudget *admit.BudgetExceededError
		switch {
		case errors.As(admitErr, &tooLarge), errors.As(admitErr, &overBudget):
			// Retrying cannot help either way — tell the caller to split
			// (the charge scales with the declared size, so splitting
			// always helps).
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, admitErr.Error())
		default: // admit.ErrBackpressure: transient, so a retry hint
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, CodeBackpressure,
				"in-flight ingest byte budget exhausted; retry after a delay")
		}
		return
	}
	defer hold.Close()

	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBatchBytes)
	edges, maxTs, err := decodeEdges(r.Header.Get("Content-Type"), body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if hdr := r.Header.Get(HeaderBatchTs); hdr != "" {
		ts, err := strconv.ParseFloat(hdr, 64)
		if err != nil || !validUnixSeconds(ts) {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				HeaderBatchTs+" must be positive fractional unix seconds before year 2262")
			return
		}
		if ts > maxTs {
			maxTs = ts
		}
	}
	// Trim the pessimistic hold to the real footprint, freeing budget for
	// concurrent requests while the engine ingests.
	hold.Trim(len(edges))
	// Timestamped ingest drives event time: the batch's largest timestamp
	// rotates a windowed service forward before the edges land, so the
	// window tracks stream time even when it outruns the wall clock.
	// Unwindowed services accept the timestamps and ignore them.
	if maxTs > 0 {
		if wsvc, ok := s.svc.(vos.Windowed); ok {
			if err := wsvc.AdvanceWindow(r.Context(), unixSeconds(maxTs)); err != nil && !errors.Is(err, vos.ErrNoWindow) {
				s.writeServiceError(w, err)
				return
			}
		}
	}
	if err := s.svc.Ingest(r.Context(), edges); err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: len(edges)})
}

// maxUnixSeconds bounds the ts/at wire fields: the largest fractional
// Unix second whose nanosecond form fits int64 (≈ year 2262). Values past
// it would overflow the conversion to an unspecified — on amd64, far
// PAST — instant, flipping a far-future timestamp into the far past.
const maxUnixSeconds = float64(math.MaxInt64) / 1e9

// validUnixSeconds reports whether ts is a usable wire timestamp:
// positive, finite, and within the int64-nanosecond range.
func validUnixSeconds(ts float64) bool {
	return ts > 0 && !math.IsInf(ts, 0) && !math.IsNaN(ts) && ts < maxUnixSeconds
}

// unixSeconds converts fractional Unix seconds to a time.Time. Callers
// validate with validUnixSeconds first.
func unixSeconds(ts float64) time.Time {
	return time.Unix(0, int64(ts*1e9))
}

// normalizeCT strips parameters, surrounding space, and case from a
// Content-Type header value.
func normalizeCT(contentType string) string {
	if i := strings.IndexByte(contentType, ';'); i >= 0 {
		contentType = contentType[:i]
	}
	return strings.TrimSpace(strings.ToLower(contentType))
}

// decodeEdges parses an ingest body in any of the three accepted formats.
// The second return is the largest per-edge event timestamp seen
// (fractional Unix seconds; 0 when none) — the binary format carries no
// timestamps, so its batches are timestamped with HeaderBatchTs instead.
func decodeEdges(contentType string, body io.Reader) ([]vos.Edge, float64, error) {
	switch normalizeCT(contentType) {
	case ContentTypeBinary:
		edges, err := stream.ReadBinary(body)
		if err != nil {
			return nil, 0, fmt.Errorf("binary body: %w", err)
		}
		return edges, 0, nil
	case ContentTypeNDJSON:
		return decodeNDJSON(body)
	case ContentTypeJSON, "", "text/json":
		return decodeJSONEdges(body)
	default:
		return nil, 0, fmt.Errorf("unsupported Content-Type %q (want %s, %s, or %s)",
			contentType, ContentTypeJSON, ContentTypeNDJSON, ContentTypeBinary)
	}
}

// decodeJSONEdges accepts either a single EdgeJSON object (single-event
// ingest) or an array of them (batch).
func decodeJSONEdges(body io.Reader) ([]vos.Edge, float64, error) {
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, 0, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, 0, errors.New("empty body")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if trimmed[0] == '[' {
		var ws []EdgeJSON
		if err := dec.Decode(&ws); err != nil {
			return nil, 0, fmt.Errorf("bad JSON edge array: %w", err)
		}
		if err := expectExhausted(dec); err != nil {
			return nil, 0, fmt.Errorf("bad JSON edge array: %w", err)
		}
		return edgesFromWire(ws)
	}
	var one EdgeJSON
	if err := dec.Decode(&one); err != nil {
		return nil, 0, fmt.Errorf("bad JSON edge: %w", err)
	}
	if err := expectExhausted(dec); err != nil {
		return nil, 0, fmt.Errorf("bad JSON edge: %w", err)
	}
	return edgesFromWire([]EdgeJSON{one})
}

// expectExhausted rejects input left over after a complete JSON value —
// Decoder.Decode stops at the value's end, so without this check
// concatenated or corrupted payloads would be silently half-ingested.
func expectExhausted(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// decodeNDJSON parses one EdgeJSON per line; blank lines are skipped.
func decodeNDJSON(body io.Reader) ([]vos.Edge, float64, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var ws []EdgeJSON
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		// Same strictness as the JSON array path: a misspelled field must
		// be rejected, not silently ingested as the zero user/item, and a
		// line holding more than one value is corruption, not a batch.
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var e EdgeJSON
		if err := dec.Decode(&e); err != nil {
			return nil, 0, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		if err := expectExhausted(dec); err != nil {
			return nil, 0, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		ws = append(ws, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("ndjson: %w", err)
	}
	return edgesFromWire(ws)
}

func edgesFromWire(ws []EdgeJSON) ([]vos.Edge, float64, error) {
	out := make([]vos.Edge, len(ws))
	maxTs := 0.0
	for i, w := range ws {
		e, err := w.Edge()
		if err != nil {
			return nil, 0, fmt.Errorf("edge %d: %w", i, err)
		}
		if w.Ts != 0 && !validUnixSeconds(w.Ts) {
			return nil, 0, fmt.Errorf("edge %d: ts must be positive unix seconds before year 2262, got %v", i, w.Ts)
		}
		if w.Ts > maxTs {
			maxTs = w.Ts
		}
		out[i] = e
	}
	return out, maxTs, nil
}

// --- queries ---

// checkAt enforces the query-time window guard for an "at" instant given
// as fractional Unix seconds (0 = no constraint, always fine). It writes
// the error response and returns false when the query cannot be served:
// "bad_request" when the backing service has no window to check against,
// "outside_window" when at predates the live window — the edges that
// would answer it have been retired. Instants inside (or ahead of) the
// window are served from the live view.
func (s *Server) checkAt(w http.ResponseWriter, r *http.Request, at float64) bool {
	if at == 0 {
		return true
	}
	if !validUnixSeconds(at) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "at must be positive unix seconds before year 2262")
		return false
	}
	wsvc, ok := s.svc.(vos.Windowed)
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "at requires a sliding-window service; this service retains the whole stream")
		return false
	}
	info, err := wsvc.WindowInfo(r.Context())
	if err != nil {
		if errors.Is(err, vos.ErrNoWindow) {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "at requires a sliding-window service; this service retains the whole stream")
		} else {
			s.writeServiceError(w, err)
		}
		return false
	}
	if t := unixSeconds(at); t.Before(info.Start) {
		writeError(w, http.StatusUnprocessableEntity, CodeOutsideWindow,
			fmt.Sprintf("instant %s predates the live window (starts %s, spans %s)",
				t.UTC().Format(time.RFC3339Nano), info.Start.UTC().Format(time.RFC3339Nano), info.Span()))
		return false
	}
	return true
}

func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	u, okU := parseID(r.URL.Query().Get("u"))
	v, okV := parseID(r.URL.Query().Get("v"))
	if !okU || !okV {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "u and v must be unsigned integers")
		return
	}
	if atStr := r.URL.Query().Get("at"); atStr != "" {
		at, err := strconv.ParseFloat(atStr, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "at must be fractional unix seconds")
			return
		}
		if !s.checkAt(w, r, at) {
			return
		}
	}
	est, err := s.svc.Similarity(r.Context(), vos.User(u), vos.User(v))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateToWire(est))
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req TopKRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON body: "+err.Error())
		return
	}
	var top []vos.TopKResult
	switch req.Mode {
	case "", "exact":
		if req.N <= 0 || len(req.Candidates) == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "need n > 0 and a non-empty candidates list")
			return
		}
		if !s.checkAt(w, r, req.At) {
			return
		}
		candidates := make([]vos.User, len(req.Candidates))
		for i, c := range req.Candidates {
			candidates[i] = vos.User(c)
		}
		if pt, ok := s.svc.(vos.PartialTopK); ok {
			// Degraded-read capable backends (the cluster gateway) answer
			// even with part of the state unreachable; incompleteness is
			// surfaced as a header so the body shape stays identical.
			results, complete, err := pt.TopKPartial(r.Context(), vos.User(req.User), candidates, req.N)
			if err != nil {
				s.writeServiceError(w, err)
				return
			}
			if !complete {
				w.Header().Set(HeaderPartial, "true")
			}
			top = results
		} else {
			var err error
			top, err = s.svc.TopK(r.Context(), vos.User(req.User), candidates, req.N)
			if err != nil {
				s.writeServiceError(w, err)
				return
			}
		}
	case "ann":
		if req.N <= 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "need n > 0")
			return
		}
		if len(req.Candidates) != 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, `mode "ann" is candidates-free; omit the candidates list`)
			return
		}
		ann, ok := s.svc.(vos.ApproxTopK)
		if !ok {
			writeError(w, http.StatusNotImplemented, CodeUnsupported, "backing service does not support approximate top-K")
			return
		}
		if !s.checkAt(w, r, req.At) {
			return
		}
		var err error
		top, err = ann.TopKApprox(r.Context(), vos.User(req.User), req.N)
		if err != nil {
			s.writeServiceError(w, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf(`mode must be "exact" or "ann", got %q`, req.Mode))
		return
	}
	out := make([]TopKResultJSON, len(top))
	for i, res := range top {
		out[i] = TopKResultJSON{User: uint64(res.User), Estimate: EstimateToWire(res.Estimate)}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCardinality(w http.ResponseWriter, r *http.Request) {
	u, ok := parseID(r.URL.Query().Get("user"))
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "user must be an unsigned integer")
		return
	}
	card, err := s.svc.Cardinality(r.Context(), vos.User(u))
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CardinalityResponse{User: u, Cardinality: card})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Stats(r.Context())
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	resp := StatsToWire(st)
	if s.opt.UDPStats != nil {
		udp := UDPStatsToWire(s.opt.UDPStats())
		resp.UDP = &udp
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- cluster state transfer ---

// maxImportBytes caps a POST /v1/cluster/import body. A serialized sketch
// is array + cardinality map — far under this for any real config — but
// the cap keeps a malicious body from buffering without bound (imports
// are rare control-plane transfers, deliberately not charged against the
// ingest admission budget).
const maxImportBytes = 1 << 30

func (s *Server) handleClusterSketch(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.svc.(vos.StateExporter)
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeUnsupported, "backing service does not export sketch state")
		return
	}
	data, err := exp.ExportSketch(r.Context())
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleClusterImport(w http.ResponseWriter, r *http.Request) {
	imp, ok := s.svc.(vos.StateImporter)
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeUnsupported, "backing service does not import sketch state")
		return
	}
	if ct := normalizeCT(r.Header.Get("Content-Type")); ct != ContentTypeBinary {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("cluster import takes %s, got %q", ContentTypeBinary, ct))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxImportBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if err := imp.ImportSketch(r.Context(), data); err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ImportResponse{Bytes: len(data)})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ck, ok := s.svc.(vos.Checkpointer)
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeUnsupported, "backing service does not support checkpoints")
		return
	}
	pos, err := ck.Checkpoint(r.Context())
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Position: pos})
}

// --- metrics ---

// EndpointMetrics is one route's row in the /v1/metrics response.
type EndpointMetrics struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// AvgLatencyMS is the lifetime mean handler latency.
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	// RequestsPerSec is the request rate since the previous /v1/metrics
	// scrape (0 on the first scrape) — the RateMeter window.
	RequestsPerSec float64 `json:"requests_per_sec"`
}

// MetricsResponse is the GET /v1/metrics answer.
type MetricsResponse struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	out := MetricsResponse{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		Endpoints:     make(map[string]EndpointMetrics, len(s.routeList)),
	}
	for _, route := range s.routeList {
		st := s.byRoute[route]
		st.mu.Lock()
		m := EndpointMetrics{
			Requests:       st.requests,
			Errors:         st.errors,
			RequestsPerSec: st.meter.Observe(st.requests, now),
		}
		if st.requests > 0 {
			m.AvgLatencyMS = float64(st.totalNS) / float64(st.requests) / 1e6
		}
		st.mu.Unlock()
		out.Endpoints[route] = m
	}
	writeJSON(w, http.StatusOK, out)
}

// --- shared plumbing ---

// writeServiceError maps a service error onto the typed envelope.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeError(w, status, code, err.Error())
}

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// for "the client cancelled the request": no standard 4xx fits, and 5xx
// would page an operator for client behavior.
const StatusClientClosedRequest = 499

// statusFor maps service-layer errors to HTTP status + envelope code.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeTimeout
	case errors.Is(err, vos.ErrEngineNoDurability):
		// A memory-only engine satisfies Checkpointer but cannot deliver:
		// the capability, not the instance, is missing.
		return http.StatusNotImplemented, CodeUnsupported
	case errors.Is(err, vos.ErrNoANN):
		// Same shape for approximate top-K: an engine-backed service
		// satisfies ApproxTopK, but the engine has no band index.
		return http.StatusNotImplemented, CodeUnsupported
	case errors.Is(err, vos.ErrOutsideWindow):
		// Well-formed but unanswerable: the requested instant's edges have
		// been retired from the sliding window.
		return http.StatusUnprocessableEntity, CodeOutsideWindow
	case errors.Is(err, vos.ErrNoWindow):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, vos.ErrCorruptSketch), errors.Is(err, vos.ErrFamilyMismatch):
		// Cluster import of undecodable or cross-family state: the request
		// body is at fault, not the server.
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, vos.ErrClosed), errors.Is(err, vos.ErrQueryUnavailable):
		return http.StatusServiceUnavailable, CodeUnavailable
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

func parseID(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	x, err := strconv.ParseUint(s, 10, 64)
	return x, err == nil
}
