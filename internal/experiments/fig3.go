package experiments

import (
	"fmt"

	"github.com/vossketch/vos/internal/exact"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/similarity"
)

// Figure 3 measures estimation accuracy under the paper's §V protocol:
// all methods share the memory budget m = 32·K32·|U| bits (VOS with
// λ = Lambda), the workload is the dynamized dataset stream, the tracked
// pairs are those among the TopUsers highest-cardinality users sharing at
// least MinCommon items, AAPE scores the common-item estimates ŝ and
// ARMSE the Jaccard estimates Ĵ.
//
// Panels: (a) AAPE over time on YouTube, (b) final AAPE on all datasets,
// (c) ARMSE over time on YouTube, (d) final ARMSE on all datasets.

// AccuracyResult holds one dataset's accuracy trajectories for every
// method, plus the workload provenance the tables report.
type AccuracyResult struct {
	Dataset      string
	Elements     int
	Deletes      int
	Pairs        int
	MedianCommon int
	AAPE         *metrics.Collector // per-method series over stream time
	ARMSE        *metrics.Collector
}

// RunAccuracy executes the §V accuracy protocol on one dataset profile.
func RunAccuracy(p gen.Profile, opts Options) (*AccuracyResult, error) {
	opts = opts.normalized()
	ds := BuildDataset(p, opts)
	pairs, median, err := TrackedPairs(ds, opts)
	if err != nil {
		return nil, err
	}
	tracker, err := exact.NewPairTracker(pairs)
	if err != nil {
		return nil, err
	}
	budget := similarity.Budget{K32: opts.K32, Users: int(ds.Profile.Users), Lambda: opts.Lambda}
	ests, err := similarity.NewAll(budget, uint64(opts.Seed))
	if err != nil {
		return nil, err
	}

	res := &AccuracyResult{
		Dataset:      ds.Profile.Name,
		Elements:     len(ds.Edges),
		Deletes:      ds.Deletes,
		Pairs:        len(pairs),
		MedianCommon: median,
		AAPE:         metrics.NewCollector(),
		ARMSE:        metrics.NewCollector(),
	}

	every := len(ds.Edges) / opts.Checkpoints
	if every == 0 {
		every = 1
	}
	truthS := make([]float64, len(pairs))
	truthJ := make([]float64, len(pairs))
	estS := make([]float64, len(pairs))
	estJ := make([]float64, len(pairs))

	for idx, e := range ds.Edges {
		tracker.MustApply(e)
		for _, est := range ests {
			est.Process(e)
		}
		t := uint64(idx + 1)
		if (idx+1)%every == 0 || idx == len(ds.Edges)-1 {
			for i := range pairs {
				truthS[i] = float64(tracker.CommonItems(i))
				truthJ[i] = tracker.Jaccard(i)
			}
			for _, est := range ests {
				for i, pr := range pairs {
					estS[i] = est.EstimateCommonItems(pr.U, pr.V)
					estJ[i] = est.EstimateJaccard(pr.U, pr.V)
				}
				res.AAPE.Record(est.Name(), t, metrics.AAPE(truthS, estS))
				res.ARMSE.Record(est.Name(), t, metrics.ARMSE(truthJ, estJ))
			}
		}
	}
	return res, nil
}

func (r *AccuracyResult) annotate(t *Table, opts Options) {
	t.AddNote("dataset %s: %d elements (%d deletions), %d tracked pairs (median s = %d)",
		r.Dataset, r.Elements, r.Deletes, r.Pairs, r.MedianCommon)
	t.AddNote("memory-equalised: m = 32·%d·|U| bits for every method; VOS λ = %d; seed %d",
		opts.K32, opts.Lambda, opts.Seed)
}

// seriesTable renders one collector as a t-by-method table.
func seriesTable(id, title, metric string, r *AccuracyResult, opts Options) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"t"}, similarity.Methods...),
	}
	r.annotate(t, opts)
	series := make(map[string]*metrics.Series, len(similarity.Methods))
	var nPoints int
	for _, m := range similarity.Methods {
		s := r.get(metric).Get(m)
		series[m] = s
		nPoints = len(s.Points)
	}
	for i := 0; i < nPoints; i++ {
		row := []string{fmt.Sprintf("%d", series[similarity.Methods[0]].Points[i].T)}
		for _, m := range similarity.Methods {
			row = append(row, fmt.Sprintf("%.4f", series[m].Points[i].Value))
		}
		t.AddRow(row...)
	}
	return t
}

func (r *AccuracyResult) get(metric string) *metrics.Collector {
	if metric == "AAPE" {
		return r.AAPE
	}
	return r.ARMSE
}

// Fig3TimeSeries regenerates Figures 3(a) and 3(c): AAPE and ARMSE over
// stream time on the YouTube dataset.
func Fig3TimeSeries(opts Options) (aape, armse *Table, err error) {
	opts = opts.normalized()
	r, err := RunAccuracy(opts.profile(), opts)
	if err != nil {
		return nil, nil, err
	}
	aape = seriesTable("fig3a", fmt.Sprintf("AAPE of ŝ over time (%s, k = %d)", opts.Dataset, opts.K32),
		"AAPE", r, opts)
	armse = seriesTable("fig3c", fmt.Sprintf("ARMSE of Ĵ over time (%s, k = %d)", opts.Dataset, opts.K32),
		"ARMSE", r, opts)
	return aape, armse, nil
}

// Fig3Final regenerates Figures 3(b) and 3(d): final-time AAPE and ARMSE
// on all four datasets.
func Fig3Final(opts Options) (aape, armse *Table, err error) {
	opts = opts.normalized()
	aape = &Table{
		ID:     "fig3b",
		Title:  fmt.Sprintf("Final AAPE of ŝ on all datasets (k = %d)", opts.K32),
		Header: append([]string{"dataset"}, similarity.Methods...),
	}
	armse = &Table{
		ID:     "fig3d",
		Title:  fmt.Sprintf("Final ARMSE of Ĵ on all datasets (k = %d)", opts.K32),
		Header: append([]string{"dataset"}, similarity.Methods...),
	}
	for _, p := range gen.Profiles {
		r, err := RunAccuracy(p, opts)
		if err != nil {
			return nil, nil, err
		}
		r.annotate(aape, opts)
		r.annotate(armse, opts)
		rowA := []string{p.Name}
		rowR := []string{p.Name}
		for _, m := range similarity.Methods {
			rowA = append(rowA, fmt.Sprintf("%.4f", r.AAPE.Get(m).Last()))
			rowR = append(rowR, fmt.Sprintf("%.4f", r.ARMSE.Get(m).Last()))
		}
		aape.AddRow(rowA...)
		armse.AddRow(rowR...)
	}
	return aape, armse, nil
}
