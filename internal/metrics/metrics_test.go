package metrics

import (
	"math"
	"testing"
)

func TestAAPE(t *testing.T) {
	truth := []float64{100, 200, 50}
	est := []float64{110, 180, 50}
	// |10|/100 + |20|/200 + 0 = 0.1 + 0.1 + 0 over 3 = 0.0667
	want := (0.1 + 0.1 + 0) / 3
	if got := AAPE(truth, est); math.Abs(got-want) > 1e-12 {
		t.Errorf("AAPE = %v, want %v", got, want)
	}
}

func TestAAPESkipsZeroTruth(t *testing.T) {
	got := AAPE([]float64{0, 10}, []float64{5, 20})
	if got != 1.0 {
		t.Errorf("AAPE = %v, want 1.0 (zero-truth pair skipped)", got)
	}
	if !math.IsNaN(AAPE([]float64{0}, []float64{1})) {
		t.Error("all-zero truth should give NaN")
	}
}

func TestARMSE(t *testing.T) {
	truth := []float64{0.5, 0.1}
	est := []float64{0.7, 0.1}
	want := math.Sqrt(0.04 / 2)
	if got := ARMSE(truth, est); math.Abs(got-want) > 1e-12 {
		t.Errorf("ARMSE = %v, want %v", got, want)
	}
	if !math.IsNaN(ARMSE(nil, nil)) {
		t.Error("empty ARMSE should be NaN")
	}
}

func TestMAEAndBias(t *testing.T) {
	truth := []float64{10, 20}
	est := []float64{12, 16}
	if got := MAE(truth, est); got != 3 {
		t.Errorf("MAE = %v", got)
	}
	if got := MeanBias(truth, est); got != -1 {
		t.Errorf("MeanBias = %v", got)
	}
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(MeanBias(nil, nil)) {
		t.Error("empty inputs should be NaN")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"aape":  func() { AAPE([]float64{1}, nil) },
		"armse": func() { ARMSE([]float64{1}, nil) },
		"mae":   func() { MAE([]float64{1}, nil) },
		"bias":  func() { MeanBias([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if !math.IsNaN(s.Last()) {
		t.Error("empty series Last should be NaN")
	}
	s.Add(10, 0.5)
	s.Add(20, 0.25)
	if s.Last() != 0.25 || len(s.Points) != 2 {
		t.Errorf("series state: %+v", s)
	}
	if s.Points[0].T != 10 {
		t.Errorf("first point T = %d", s.Points[0].T)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Record("VOS", 1, 0.1)
	c.Record("MinHash", 1, 0.2)
	c.Record("VOS", 2, 0.05)
	all := c.Series()
	if len(all) != 2 || all[0].Name != "VOS" || all[1].Name != "MinHash" {
		t.Fatalf("series order: %v", all)
	}
	if got := c.Get("VOS").Last(); got != 0.05 {
		t.Errorf("VOS last = %v", got)
	}
	if c.Get("nope") != nil {
		t.Error("missing series should be nil")
	}
}
