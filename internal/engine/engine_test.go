package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
)

func testConfig() core.Config {
	return core.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 7}
}

// feasibleStream generates n edges over the given user count with delFrac
// unsubscriptions of live edges, so every prefix is feasible.
func feasibleStream(n, users int, delFrac float64, seed int64) []stream.Edge {
	rng := rand.New(rand.NewSource(seed))
	type key struct {
		u stream.User
		i stream.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]stream.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, stream.Edge{User: k.u, Item: k.i, Op: stream.Delete})
			continue
		}
		k := key{stream.User(rng.Intn(users)), stream.Item(rng.Uint64() % 100_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, stream.Edge{User: k.u, Item: k.i, Op: stream.Insert})
	}
	return out
}

// TestAccuracyParity is the headline guarantee: a K-shard engine returns
// identical estimates to a single sketch over the same insert+delete
// stream, for every K.
func TestAccuracyParity(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(20_000, 200, 0.25, 11)

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	for _, shards := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e := MustNew(Config{Sketch: cfg, Shards: shards, BatchSize: 64})
			defer e.Close()
			if err := e.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			e.Flush()

			st, est := single.Stats(), e.Stats()
			if st.OnesCount != est.OnesCount || st.Beta != est.Beta || st.Users != est.Users {
				t.Fatalf("merged stats diverge: single %+v vs engine %+v", st, est)
			}
			for u := stream.User(0); u < 40; u++ {
				for v := u + 1; v < 40; v += 7 {
					if got, want := e.Query(u, v), single.Query(u, v); got != want {
						t.Fatalf("Query(%d,%d) = %+v, single sketch %+v", u, v, got, want)
					}
				}
				if got, want := e.Cardinality(u), single.Cardinality(u); got != want {
					t.Fatalf("Cardinality(%d) = %d, want %d", u, got, want)
				}
			}
		})
	}
}

// TestShardingMatchesPartitionByUser pins the routing contract: the
// engine's shard sketches equal plain sketches built over
// stream.PartitionByUser with the engine's routing seed.
func TestShardingMatchesPartitionByUser(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(5_000, 100, 0.2, 5)
	const shards = 4

	e := MustNew(Config{Sketch: cfg, Shards: shards})
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	parts := stream.PartitionByUser(edges, shards, e.Config().RouteSeed)
	for i, part := range parts {
		want := core.MustNew(cfg)
		for _, ed := range part {
			want.Process(ed)
		}
		e.shards[i].skMu.RLock()
		got := e.shards[i].sk.Stats()
		e.shards[i].skMu.RUnlock()
		if got != want.Stats() {
			t.Fatalf("shard %d state %+v, PartitionByUser sketch %+v", i, got, want.Stats())
		}
	}
}

// TestQueryLocal checks the co-residence routing and that with all state
// on one shard the local answer equals the global one.
func TestQueryLocal(t *testing.T) {
	cfg := testConfig()
	e := MustNew(Config{Sketch: cfg, Shards: 4})
	defer e.Close()

	// Find two users owned by the same shard and stream only them, so the
	// owning shard's array equals the merged array.
	u := stream.User(1)
	v := u + 1
	for e.ShardOf(v) != e.ShardOf(u) {
		v++
	}
	var w stream.User // a user on a different shard
	for w = v + 1; e.ShardOf(w) == e.ShardOf(u); w++ {
	}

	for i := 0; i < 300; i++ {
		if err := e.Process(stream.Edge{User: u, Item: stream.Item(i), Op: stream.Insert}); err != nil {
			t.Fatal(err)
		}
		if err := e.Process(stream.Edge{User: v, Item: stream.Item(i + 100), Op: stream.Insert}); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()

	local, err := e.QueryLocal(u, v)
	if err != nil {
		t.Fatalf("QueryLocal on co-resident users: %v", err)
	}
	if global := e.Query(u, v); local != global {
		t.Fatalf("single-shard stream: local %+v != global %+v", local, global)
	}
	if _, err := e.QueryLocal(u, w); !errors.Is(err, ErrNotCoResident) {
		t.Fatalf("QueryLocal across shards: want ErrNotCoResident, got %v", err)
	}
}

// TestConcurrentProducersAndQueries hammers the engine from several
// producers while queries run — the -race target — then verifies parity.
func TestConcurrentProducersAndQueries(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(24_000, 150, 0.25, 9)
	e := MustNew(Config{Sketch: cfg, Shards: 3, BatchSize: 32, QueueSize: 256})
	defer e.Close()

	const producers = 4
	per := len(edges) / producers
	var produce sync.WaitGroup
	for p := 0; p < producers; p++ {
		produce.Add(1)
		go func(chunk []stream.Edge) {
			defer produce.Done()
			for len(chunk) > 0 {
				n := 100
				if n > len(chunk) {
					n = len(chunk)
				}
				if err := e.ProcessBatch(chunk[:n]); err != nil {
					t.Error(err)
					return
				}
				chunk = chunk[n:]
			}
		}(edges[p*per : (p+1)*per])
	}
	stopQ := make(chan struct{})
	var query sync.WaitGroup
	query.Add(1)
	go func() { // concurrent readers on snapshot, local, and stats paths
		defer query.Done()
		for {
			select {
			case <-stopQ:
				return
			default:
			}
			_ = e.Query(1, 2)
			_, _ = e.QueryLocal(3, 4)
			_ = e.ShardStats()
			_ = e.Cardinality(5)
		}
	}()
	produce.Wait()
	close(stopQ)
	query.Wait()
	e.Flush()

	single := core.MustNew(cfg)
	for _, ed := range edges[:per*producers] {
		single.Process(ed)
	}
	if got, want := e.Query(10, 20), single.Query(10, 20); got != want {
		t.Fatalf("post-concurrency Query = %+v, want %+v", got, want)
	}
}

// TestLingerFlushesPartialBatches verifies an idle stream's tail becomes
// visible without an explicit Flush, via the background ticker.
func TestLingerFlushesPartialBatches(t *testing.T) {
	e := MustNew(Config{
		Sketch: testConfig(), Shards: 2,
		BatchSize: 1024, FlushInterval: 2 * time.Millisecond,
	})
	defer e.Close()
	if err := e.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Cardinality(1) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pending edge never applied by linger ticker")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseDrainsAndRejects: Close applies everything buffered, later
// Process calls fail, and Close is idempotent.
func TestCloseDrainsAndRejects(t *testing.T) {
	e := MustNew(Config{Sketch: testConfig(), Shards: 2, BatchSize: 512})
	for i := 0; i < 100; i++ {
		if err := e.Process(stream.Edge{User: stream.User(i % 5), Item: stream.Item(i), Op: stream.Insert}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := e.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert}); err != ErrClosed {
		t.Fatalf("Process after Close = %v, want ErrClosed", err)
	}
	if err := e.ProcessBatch([]stream.Edge{{User: 1, Item: 1}}); err != ErrClosed {
		t.Fatalf("ProcessBatch after Close = %v, want ErrClosed", err)
	}
	total := uint64(0)
	for _, st := range e.ShardStats() {
		if st.Backlog() != 0 {
			t.Fatalf("shard %d has backlog %d after Close", st.Shard, st.Backlog())
		}
		total += st.Processed
	}
	if total != 100 {
		t.Fatalf("processed %d edges, want 100", total)
	}
}

// TestSnapshotStaleness: with a lag budget the snapshot is reused, and a
// zero budget re-merges as soon as new edges apply.
func TestSnapshotStaleness(t *testing.T) {
	e := MustNew(Config{
		Sketch: testConfig(), Shards: 2, BatchSize: 1,
		SnapshotMaxLag: 1 << 62,
	})
	defer e.Close()
	if err := e.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	first := e.snapshot()
	if err := e.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if e.snapshot() != first {
		t.Fatal("snapshot rebuilt despite a huge staleness budget")
	}

	e2 := MustNew(Config{Sketch: testConfig(), Shards: 2, BatchSize: 1})
	defer e2.Close()
	if err := e2.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e2.Flush()
	a := e2.snapshot()
	if err := e2.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e2.Flush()
	if e2.snapshot() == a {
		t.Fatal("zero-lag snapshot not rebuilt after new edges")
	}
	if e2.Cardinality(1) != 2 {
		t.Fatalf("cardinality = %d, want 2", e2.Cardinality(1))
	}
}

// TestMarshalRoundTrip: the engine's merged snapshot restores as a plain
// sketch with identical estimates.
func TestMarshalRoundTrip(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(3_000, 50, 0.2, 21)
	e := MustNew(Config{Sketch: cfg, Shards: 3})
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.UnmarshalVOS(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Query(1, 2), e.Query(1, 2); got != want {
		t.Fatalf("restored Query = %+v, want %+v", got, want)
	}
}

// TestBatchCarving pins the queue-bound contract: no matter how large the
// slice handed to ProcessBatch, channel batches are exactly BatchSize
// edges and the pending residue stays below one batch — so QueueSize
// (rounded to whole batches) really bounds the edges buffered per shard.
func TestBatchCarving(t *testing.T) {
	const batch = 4
	e := MustNew(Config{
		Sketch: testConfig(), Shards: 1,
		BatchSize: batch, QueueSize: 64, FlushInterval: -1,
	})
	defer e.Close()
	edges := make([]stream.Edge, 10)
	for i := range edges {
		edges[i] = stream.Edge{User: stream.User(i), Item: stream.Item(i), Op: stream.Insert}
	}
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	s := e.shards[0]
	s.pendMu.Lock()
	residue := len(s.pend)
	s.pendMu.Unlock()
	if residue >= batch {
		t.Fatalf("pending residue %d, want < BatchSize %d", residue, batch)
	}
	e.Flush()
	if got := s.processed.Load(); got != 10 {
		t.Fatalf("processed %d edges, want 10", got)
	}
}

// TestBadConfig propagates sketch validation.
func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Sketch: core.Config{MemoryBits: 0, SketchBits: 8}}); err == nil {
		t.Fatal("degenerate sketch config accepted")
	}
}

// TestFlushRacingClose pins the lifecycle fix: Flush running concurrently
// with Close must neither panic (send on a closed shard channel) nor hang
// (batch parked behind an exited worker) — once Close has begun, Flush
// returns and Close's own drain applies everything buffered. Several
// rounds because the window is a few instructions wide.
func TestFlushRacingClose(t *testing.T) {
	for round := 0; round < 25; round++ {
		e := MustNew(Config{Sketch: testConfig(), Shards: 2, BatchSize: 64, FlushInterval: time.Millisecond})
		// Leave partial batches pending so Flush and Close both have
		// hand-over work to race on.
		for i := 0; i < 100; i++ {
			if err := e.Process(stream.Edge{User: stream.User(i % 7), Item: stream.Item(i), Op: stream.Insert}); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for f := 0; f < 3; f++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				e.Flush()
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := e.Close(); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
		// Close drained everything regardless of how the race resolved.
		for _, s := range e.shards {
			if got, want := s.processed.Load(), s.enqueued.Load(); got != want {
				t.Fatalf("round %d: shard drained %d of %d edges after Close", round, got, want)
			}
		}
	}
}
