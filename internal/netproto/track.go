package netproto

// WindowSize is the per-session reorder/replay window: a frame whose
// sequence number is within WindowSize of the highest seen can still be
// applied late (reordering) or recognized as a duplicate (replay); older
// frames are dropped as stale because the tracker can no longer tell a
// late original from a replay — and applying a replay would corrupt XOR
// parity, so uncertainty resolves to dropping.
const WindowSize = 64

// Verdict is the tracker's ruling on one data frame.
type Verdict uint8

const (
	// VerdictApply: first sight of this sequence — fold the batch in.
	VerdictApply Verdict = iota
	// VerdictReplay: this sequence was already applied — drop the batch
	// (applying an XOR batch twice would silently corrupt parity).
	VerdictReplay
	// VerdictStale: older than the reorder window — drop the batch (it
	// cannot be proven fresh). A sender reusing a session id after a
	// restart lands here; restarts must mint a fresh session id.
	VerdictStale
)

// SessionCounters is one session's delivery ledger.
type SessionCounters struct {
	// Highest is the highest sequence number seen.
	Highest uint64
	// Applied counts frames ruled VerdictApply.
	Applied uint64
	// Late counts the subset of Applied that arrived out of order (their
	// sequence was below Highest when they arrived).
	Late uint64
	// Gaps counts frames confirmed lost: sequences that slid out of the
	// reorder window without ever arriving. Confirmation is lazy — a
	// missing sequence is counted once WindowSize newer frames have
	// passed it, so the newest holes are still pending, not yet gaps.
	Gaps uint64
	// Replays counts duplicates dropped.
	Replays uint64
	// Stale counts frames dropped as older than the reorder window.
	Stale uint64
}

// sessionState is SessionCounters plus the reorder window bitmap: bit i
// set means sequence (Highest - i) was applied, for i in [0, WindowSize).
// start is the first sequence observed; window positions serially before
// it were never covered by the session and are not gap candidates.
type sessionState struct {
	SessionCounters
	window   uint64
	start    uint64
	lastTick uint64
}

// slideGaps confirms gaps for the d window positions about to slide out:
// each zero bit leaving the window is a sequence that never arrived. Only
// positions at or after the session's first frame count — a session that
// opened at sequence s never covered s-1 and below.
func (s *sessionState) slideGaps(d uint64) {
	if d > WindowSize {
		d = WindowSize
	}
	for j := uint64(WindowSize - d); j < WindowSize; j++ {
		p := s.Highest - j
		if s.window&(uint64(1)<<j) == 0 && p-s.start < 1<<63 {
			s.Gaps++
		}
	}
}

// Tracker rules on per-session sequence numbers. The session table is
// bounded: at capacity, the least-recently-active session is evicted (its
// counters fold into the evicted totals; if its sender is still alive,
// its next frame restarts the session from that frame's sequence).
// Not safe for concurrent use — the Receiver serializes access.
type Tracker struct {
	maxSessions int
	sessions    map[uint64]*sessionState
	tick        uint64
	evicted     uint64

	// Aggregate counters across all sessions ever seen (evicted included).
	totals SessionCounters
}

// NewTracker builds a Tracker holding at most maxSessions concurrent
// sessions (<= 0 selects 1024).
func NewTracker(maxSessions int) *Tracker {
	if maxSessions <= 0 {
		maxSessions = 1024
	}
	return &Tracker{
		maxSessions: maxSessions,
		sessions:    make(map[uint64]*sessionState, maxSessions),
	}
}

// Sessions returns the number of live sessions.
func (t *Tracker) Sessions() int { return len(t.sessions) }

// Evicted returns how many sessions have been evicted at capacity.
func (t *Tracker) Evicted() uint64 { return t.evicted }

// Totals returns the aggregate counters across every session ever seen.
// Highest is meaningless across sessions and is left zero.
func (t *Tracker) Totals() SessionCounters {
	agg := t.totals
	agg.Highest = 0
	for _, s := range t.sessions {
		agg.Applied += s.Applied
		agg.Late += s.Late
		agg.Gaps += s.Gaps
		agg.Replays += s.Replays
		agg.Stale += s.Stale
	}
	return agg
}

// Session returns one live session's counters.
func (t *Tracker) Session(session uint64) (SessionCounters, bool) {
	s, ok := t.sessions[session]
	if !ok {
		return SessionCounters{}, false
	}
	return s.SessionCounters, true
}

// Observe rules on sequence seq of session. Sequence comparison is
// serial-number arithmetic (distance < 2^63 means newer), so a session
// whose counter wraps past 2^64 keeps working — the wrapped 0 is "newer"
// than the pre-wrap maximum.
func (t *Tracker) Observe(session, seq uint64) Verdict {
	t.tick++
	s, ok := t.sessions[session]
	if !ok {
		s = t.insert(session)
		s.Highest = seq
		s.start = seq
		s.window = 1
		s.Applied++
		s.lastTick = t.tick
		return VerdictApply
	}
	s.lastTick = t.tick

	d := seq - s.Highest // wrapping distance
	switch {
	case d == 0:
		s.Replays++
		return VerdictReplay
	case d < 1<<63:
		// Newer: slide the window forward by d. Set bits pushed past
		// WindowSize leave as applied history; zero bits that leave are
		// sequences that never arrived — confirmed lost. A jump past the
		// whole window additionally confirms the skipped sequences that
		// don't even land in the new window (the newest WindowSize-1 of
		// them stay pending as zero bits, confirmable later).
		s.slideGaps(d)
		if d >= WindowSize {
			s.Gaps += d - WindowSize
			s.window = 1
		} else {
			s.window = s.window<<d | 1
		}
		s.Highest = seq
		s.Applied++
		return VerdictApply
	default:
		// Older than Highest: late arrival, replay, or too old to tell.
		off := s.Highest - seq
		if off >= WindowSize {
			s.Stale++
			return VerdictStale
		}
		bit := uint64(1) << off
		if s.window&bit != 0 {
			s.Replays++
			return VerdictReplay
		}
		s.window |= bit
		s.Applied++
		s.Late++
		return VerdictApply
	}
}

// AckFor builds the ack answering a FlagAckRequest on (session, echoSeq).
// It reflects the session's ledger after the frame was ruled on; unknown
// sessions (possible only after an eviction race) answer zeros.
func (t *Tracker) AckFor(session, echoSeq uint64) Ack {
	a := Ack{Session: session, EchoSeq: echoSeq}
	if s, ok := t.sessions[session]; ok {
		a.Highest = s.Highest
		a.Applied = s.Applied
		a.Gaps = s.Gaps
		a.Replays = s.Replays
	}
	return a
}

// insert adds a fresh session, evicting the least-recently-active one at
// capacity. Eviction is a linear scan: the table is small (default 1024)
// and eviction only fires when a new sender arrives at capacity, not per
// frame.
func (t *Tracker) insert(session uint64) *sessionState {
	if len(t.sessions) >= t.maxSessions {
		var oldest uint64
		var oldestTick uint64
		first := true
		for id, s := range t.sessions {
			if first || s.lastTick < oldestTick {
				oldest, oldestTick, first = id, s.lastTick, false
			}
		}
		old := t.sessions[oldest]
		t.totals.Applied += old.Applied
		t.totals.Late += old.Late
		t.totals.Gaps += old.Gaps
		t.totals.Replays += old.Replays
		t.totals.Stale += old.Stale
		delete(t.sessions, oldest)
		t.evicted++
	}
	s := &sessionState{}
	t.sessions[session] = s
	return s
}
