package engine

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
)

// TestImportSketchParity is the handoff exactness bar: split a fully
// dynamic stream across two donor engines, export both, import both into
// a third engine that ingested nothing — the receiver must serialize and
// answer bit-identically to a single sketch over the whole stream.
func TestImportSketchParity(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(12_000, 150, 0.25, 31)

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	donorA := MustNew(Config{Sketch: cfg, Shards: 2})
	donorB := MustNew(Config{Sketch: cfg, Shards: 3})
	defer donorA.Close()
	defer donorB.Close()
	for _, ed := range edges {
		dst := donorA
		if ed.User%2 == 1 {
			dst = donorB
		}
		if err := dst.Process(ed); err != nil {
			t.Fatal(err)
		}
	}

	recv := MustNew(Config{Sketch: cfg, Shards: 2})
	defer recv.Close()
	for _, donor := range []*Engine{donorA, donorB} {
		state, err := donor.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := recv.ImportSketch(state); err != nil {
			t.Fatal(err)
		}
	}

	assertParity(t, recv, single, 50)
	got, err := recv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("receiver serializes differently from the whole-stream sketch")
	}
}

// TestImportSketchThenIngest: imported state and locally ingested edges
// must compose — the import lands in the recovery base, shards keep their
// own deltas, and the merge covers both.
func TestImportSketchThenIngest(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(8_000, 100, 0.2, 17)
	half := len(edges) / 2

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	donor := MustNew(Config{Sketch: cfg, Shards: 2})
	defer donor.Close()
	if err := donor.ProcessBatch(edges[:half]); err != nil {
		t.Fatal(err)
	}
	donor.Flush()
	state, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	recv := MustNew(Config{Sketch: cfg, Shards: 3})
	defer recv.Close()
	if err := recv.ImportSketch(state); err != nil {
		t.Fatal(err)
	}
	if err := recv.ProcessBatch(edges[half:]); err != nil {
		t.Fatal(err)
	}
	recv.Flush()
	assertParity(t, recv, single, 40)
}

// TestImportSketchRejects covers the refusal surface: corrupt bytes carry
// the typed core.ErrCorrupt, family mismatches the typed
// core.ErrFamilyMismatch, differing sketch configs and windowed engines
// are refused outright, and a closed engine answers ErrClosed.
func TestImportSketchRejects(t *testing.T) {
	cfg := testConfig()
	donor := core.MustNew(cfg)
	donor.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert})
	state, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("corrupt", func(t *testing.T) {
		e := MustNew(Config{Sketch: cfg, Shards: 1})
		defer e.Close()
		bad := append([]byte(nil), state...)
		bad[0] ^= 0xFF // magic
		if err := e.ImportSketch(bad); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("bad-magic import: want ErrCorrupt, got %v", err)
		}
		if err := e.ImportSketch(state[:10]); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("truncated import: want ErrCorrupt, got %v", err)
		}
		if err := e.ImportSketch(state[:len(state)-3]); !errors.Is(err, core.ErrCorrupt) {
			t.Fatalf("clipped-array import: want ErrCorrupt, got %v", err)
		}
	})

	t.Run("family mismatch", func(t *testing.T) {
		e := MustNew(Config{Sketch: fastTestConfig(), Shards: 1})
		defer e.Close()
		if err := e.ImportSketch(state); !errors.Is(err, core.ErrFamilyMismatch) {
			t.Fatalf("cross-family import: want ErrFamilyMismatch, got %v", err)
		}
	})

	t.Run("config mismatch", func(t *testing.T) {
		other := cfg
		other.SketchBits = cfg.SketchBits * 2
		e := MustNew(Config{Sketch: other, Shards: 1})
		defer e.Close()
		err := e.ImportSketch(state)
		if err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Fatalf("cross-config import: want config mismatch error, got %v", err)
		}
	})

	t.Run("windowed", func(t *testing.T) {
		e := MustNew(Config{
			Sketch:        cfg,
			Shards:        1,
			Window:        &WindowConfig{Buckets: 4, BucketDuration: time.Second},
			FlushInterval: -1,
		})
		defer e.Close()
		err := e.ImportSketch(state)
		if err == nil || !strings.Contains(err.Error(), "windowed") {
			t.Fatalf("windowed import: want refusal, got %v", err)
		}
	})

	t.Run("closed", func(t *testing.T) {
		e := MustNew(Config{Sketch: cfg, Shards: 1})
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.ImportSketch(state); !errors.Is(err, ErrClosed) {
			t.Fatalf("import into closed engine: want ErrClosed, got %v", err)
		}
	})
}

// TestImportSketchDurable pins the durability contract of the import ack:
// the imported edges exist in no local WAL record, so the ack must mean a
// covering checkpoint was written — a hard stop right after the ack, then
// a recovery from disk, must still show the imported state.
func TestImportSketchDurable(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(6_000, 80, 0.2, 23)

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}
	donor := MustNew(Config{Sketch: cfg, Shards: 2})
	defer donor.Close()
	if err := donor.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	donor.Flush()
	state, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	recv := MustOpen(durableConfig(dir, 2))
	if err := recv.ImportSketch(state); err != nil {
		t.Fatal(err)
	}
	// No Flush, no Close: hard stop the instant after the import acked.
	_ = recv

	recovered := MustOpen(durableConfig(dir, 2))
	defer recovered.Close()
	assertParity(t, recovered, single, 40)
}

// TestImportSketchDoubleCancels documents the non-idempotence hazard the
// cluster tier must design around: importing the same state twice
// XOR-cancels the parity array (similarity state returns to empty) while
// the summed cardinality counters double-count — corruption, not a no-op.
func TestImportSketchDoubleCancels(t *testing.T) {
	cfg := testConfig()
	donor := MustNew(Config{Sketch: cfg, Shards: 1})
	defer donor.Close()
	if err := donor.ProcessBatch(feasibleStream(2_000, 40, 0.2, 5)); err != nil {
		t.Fatal(err)
	}
	donor.Flush()
	state, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	recv := MustNew(Config{Sketch: cfg, Shards: 1})
	defer recv.Close()
	if err := recv.ImportSketch(state); err != nil {
		t.Fatal(err)
	}
	if err := recv.ImportSketch(state); err != nil {
		t.Fatal(err)
	}
	if st := recv.Stats(); st.OnesCount != 0 {
		t.Fatalf("parity array after double import has %d set bits, want 0 (cancelled)", st.OnesCount)
	}
	for u := stream.User(0); u < 40; u += 3 {
		if got, want := recv.Cardinality(u), 2*donor.Cardinality(u); got != want {
			t.Fatalf("Cardinality(%d) after double import = %d, want double-counted %d", u, got, want)
		}
	}
}
