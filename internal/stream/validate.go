package stream

import "fmt"

// FeasibilityError reports the first violation of the paper's feasibility
// restriction found in a stream.
type FeasibilityError struct {
	Position int  // zero-based element index
	Edge     Edge // the offending element
}

// Error implements the error interface.
func (e *FeasibilityError) Error() string {
	verb := "duplicate subscription"
	if e.Edge.Op == Delete {
		verb = "unsubscription of absent edge"
	}
	return fmt.Sprintf("stream: infeasible element %s at position %d: %s",
		e.Edge, e.Position, verb)
}

// Validator checks feasibility online: (u,i,+) is legal only when (u,i) is
// absent, (u,i,−) only when present. It maintains the live edge set, so
// memory is proportional to the current graph, not the stream length.
type Validator struct {
	live map[Edge]struct{} // keyed with Op forced to Insert
	pos  int
}

// NewValidator creates an empty validator.
func NewValidator() *Validator {
	return &Validator{live: make(map[Edge]struct{})}
}

// Observe checks one element and folds it into the live-edge state. It
// returns a *FeasibilityError on violation; state is not updated in that
// case, so the caller may skip the element and continue.
func (v *Validator) Observe(e Edge) error {
	key := Edge{User: e.User, Item: e.Item, Op: Insert}
	_, present := v.live[key]
	switch e.Op {
	case Insert:
		if present {
			err := &FeasibilityError{Position: v.pos, Edge: e}
			v.pos++
			return err
		}
		v.live[key] = struct{}{}
	case Delete:
		if !present {
			err := &FeasibilityError{Position: v.pos, Edge: e}
			v.pos++
			return err
		}
		delete(v.live, key)
	default:
		err := fmt.Errorf("stream: invalid op %d at position %d", e.Op, v.pos)
		v.pos++
		return err
	}
	v.pos++
	return nil
}

// LiveEdges returns the number of edges currently present.
func (v *Validator) LiveEdges() int { return len(v.live) }

// Validate checks an entire edge slice and returns the first violation, or
// nil if the stream is feasible.
func Validate(edges []Edge) error {
	v := NewValidator()
	for _, e := range edges {
		if err := v.Observe(e); err != nil {
			return err
		}
	}
	return nil
}

// ValidatingSource wraps a Source and panics on the first infeasible
// element. It is meant for tests and generators, where an infeasible stream
// is a bug rather than an input condition.
type ValidatingSource struct {
	src Source
	v   *Validator
}

// NewValidatingSource wraps src.
func NewValidatingSource(src Source) *ValidatingSource {
	return &ValidatingSource{src: src, v: NewValidator()}
}

// Next implements Source.
func (s *ValidatingSource) Next() (Edge, bool) {
	e, ok := s.src.Next()
	if !ok {
		return e, false
	}
	if err := s.v.Observe(e); err != nil {
		panic(err)
	}
	return e, true
}
