package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

func fastMemoCfg() Config {
	return Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 42, Family: hashing.KindFast}
}

// memoEdges builds a churny workload over more users than the memo has
// slots, so hits, misses, collisions, and overwrites all occur.
func memoEdges(n int) []stream.Edge {
	rng := rand.New(rand.NewSource(7))
	edges := make([]stream.Edge, n)
	for i := range edges {
		u := stream.User(rng.Intn(3 * (1 << fastMemoBits)))
		op := stream.Insert
		if rng.Intn(3) == 0 {
			op = stream.Delete
		}
		edges[i] = stream.Edge{User: u, Item: stream.Item(rng.Intn(5000)), Op: op}
	}
	return edges
}

// TestFastMemoMatchesReadPath: the memoized ingest path must land every
// flip exactly where the memo-free read path (position) says it belongs —
// otherwise queries would recover a different sketch than ingest built.
func TestFastMemoMatchesReadPath(t *testing.T) {
	edges := memoEdges(20_000)

	v := MustNew(fastMemoCfg()) // memoized Process
	for _, e := range edges {
		v.Process(e)
	}

	w := MustNew(fastMemoCfg()) // oracle: flips via the read-path position()
	for _, e := range edges {
		j := w.slot(e.Item)
		w.arr.Flip(w.position(e.User, j))
		w.bump(e.User, opDelta(e.Op))
	}
	w.version = v.version

	got, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("memoized ingest diverged from the read-path position table")
	}
}

// TestFastMemoBatchMatchesSingle: ProcessBatch (memoized loop) equals
// per-edge Process, and a no-memo sketch equals both.
func TestFastMemoBatchMatchesSingle(t *testing.T) {
	edges := memoEdges(10_000)

	batch := MustNew(fastMemoCfg())
	batch.ProcessBatch(edges)

	single := MustNew(fastMemoCfg())
	for _, e := range edges {
		single.Process(e)
	}
	single.version = batch.version

	noMemo := MustNew(fastMemoCfg())
	noMemo.fastMemo = nil // benchmark baseline path: State per edge
	noMemo.ProcessBatch(edges)

	a, _ := batch.MarshalBinary()
	b, _ := single.MarshalBinary()
	c, _ := noMemo.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("ProcessBatch diverged from per-edge Process under the memo")
	}
	if !bytes.Equal(a, c) {
		t.Fatal("memoized ingest diverged from the memo-less path")
	}
}

// TestFastMemoCollisionOverwrite pins the direct-mapped overwrite: two
// users alternating in the same slot must still resolve to their own
// states every time.
func TestFastMemoCollisionOverwrite(t *testing.T) {
	v := MustNew(fastMemoCfg())
	// Find two users that collide in the memo index.
	idx := func(u uint64) uint64 { return (u * 0x9e3779b97f4a7c15) >> (64 - fastMemoBits) }
	var a, b uint64
	target := idx(1)
	a = 1
	for u := uint64(2); ; u++ {
		if idx(u) == target {
			b = u
			break
		}
	}
	for i := 0; i < 100; i++ {
		for _, u := range []uint64{a, b} {
			if got, want := v.fastState(u), v.fslots.State(u); got != want {
				t.Fatalf("iteration %d: fastState(%d) = %#x, want %#x", i, u, got, want)
			}
		}
	}
}

// benchmarkIngest drives ProcessBatch over a recurring-user workload.
func benchmarkIngest(b *testing.B, memo bool) {
	v := MustNew(fastMemoCfg())
	if !memo {
		v.fastMemo = nil
	}
	edges := make([]stream.Edge, 4096)
	for i := range edges {
		// 64 hot users — the shape the memo exists for.
		edges[i] = stream.Edge{User: stream.User(i % 64), Item: stream.Item(i), Op: stream.Insert}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ProcessBatch(edges)
	}
	b.SetBytes(int64(len(edges)))
}

// BenchmarkFastIngest{Memo,NoMemo} measure the full ingest loop — where
// the memo's saving competes with the slot hash, the bitset flip, and the
// cardinality-map update; BenchmarkFastPosition{Memo,NoMemo} isolate the
// single-slot position computation itself, the part the memo accelerates
// (a memo hit replaces the per-edge Hash64 state derivation with one
// multiply-indexed load).
func BenchmarkFastIngestMemo(b *testing.B)   { benchmarkIngest(b, true) }
func BenchmarkFastIngestNoMemo(b *testing.B) { benchmarkIngest(b, false) }

var benchPosSink uint64

func benchmarkPosition(b *testing.B, memo bool) {
	v := MustNew(fastMemoCfg())
	if !memo {
		v.fastMemo = nil
	}
	k := uint64(v.cfg.SketchBits)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint64(i) & 63 // recurring hot users: the memo's target shape
		sink += hashing.PositionFromState(v.fastState(u), int(uint64(i)%k), v.cfg.MemoryBits)
	}
	benchPosSink = sink
}

func BenchmarkFastPositionMemo(b *testing.B)   { benchmarkPosition(b, true) }
func BenchmarkFastPositionNoMemo(b *testing.B) { benchmarkPosition(b, false) }
