package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

// buildVosd compiles the daemon once per test binary into a temp dir.
func buildVosd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vosd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/vosd: %v\n%s", err, out)
	}
	return bin
}

// startVosd launches the daemon on an ephemeral port over dataDir and
// returns its base URL plus a stop function (SIGTERM + wait — the graceful
// path, which writes a final checkpoint).
func startVosd(t *testing.T, bin, dataDir string, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-dir", dataDir}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon prints "vosd listening on http://ADDR (...)" once serving.
	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("vosd never reported its listen address (scan err: %v)", sc.Err())
	}
	go func() { // keep draining so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("vosd did not exit within 30s of SIGTERM")
		}
	}
	t.Cleanup(stop)
	return base, stop
}

// startVosdUDP is startVosd with -udp-listen: it additionally captures the
// "vosd udp ingest on ADDR" line and returns the datagram address.
func startVosdUDP(t *testing.T, bin, dataDir string) (string, string, func()) {
	t.Helper()
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-udp-listen", "127.0.0.1:0", "-dir", dataDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	base, udpAddr := "", ""
	for (base == "" || udpAddr == "") && sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.Fields(line[i+len("listening on "):])[0]
		}
		if i := strings.Index(line, "udp ingest on "); i >= 0 {
			udpAddr = strings.Fields(line[i+len("udp ingest on "):])[0]
		}
	}
	if base == "" || udpAddr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("vosd never reported both addresses (http=%q udp=%q, scan err: %v)", base, udpAddr, sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("vosd did not exit within 30s of SIGTERM")
		}
	}
	t.Cleanup(stop)
	return base, udpAddr, stop
}

// TestVosdUDPSmoke drives the real binary's datagram plane end to end:
// UDP ingest with acks, delivery confirmed clean, then HTTP queries over
// the same state and the /v1/stats UDP ledger.
func TestVosdUDPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildVosd(t)
	base, udpAddr, stop := startVosdUDP(t, bin, t.TempDir())
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	uc, err := client.NewUDP(udpAddr, client.UDPOptions{BatchSize: 64, AckEvery: 4, AckWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	var edges []vos.Edge
	for i := 0; i < 250; i++ {
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		edges = append(edges, vos.Edge{User: 2, Item: vos.Item(i + 125), Op: vos.Insert})
	}
	if err := uc.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := uc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	ust := uc.Stats()
	if !ust.Acked || ust.LastAck.Gaps != 0 || ust.LastAck.Replays != 0 {
		t.Fatalf("udp delivery not confirmed clean: %+v", ust)
	}
	if err := uc.Close(); err != nil {
		t.Fatal(err)
	}

	// The same state answers over HTTP: UDP and HTTP are one engine.
	cl := client.New(base, client.Options{})
	defer cl.Close()
	if card, err := cl.Cardinality(ctx, 1); err != nil || card != 250 {
		t.Fatalf("cardinality(1) after UDP ingest = %d, %v; want 250", card, err)
	}
	sim, err := cl.Similarity(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Jaccard <= 0 {
		t.Fatalf("overlapping users estimate %+v, want positive jaccard", sim)
	}

	// /v1/stats carries the UDP ledger when the plane is on.
	resp, err := http.Get(base + server.RouteStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UDP == nil {
		t.Fatal("/v1/stats has no udp section with -udp-listen on")
	}
	if st.UDP.EdgesApplied != 500 || st.UDP.FramesApplied == 0 {
		t.Fatalf("udp stats: %+v, want 500 edges applied", st.UDP)
	}
	if st.UDP.GapsDetected != 0 || st.UDP.ReplaysDropped != 0 || st.UDP.Malformed != 0 || st.UDP.AdmitRejected != 0 {
		t.Fatalf("loopback clean delivery reported loss: %+v", st.UDP)
	}
}

// TestVosdSmoke is the CI end-to-end gate: build the daemon, ingest a
// dynamic stream through the client, checkpoint, restart the process, and
// verify the recovered daemon answers bit-identically to the pre-restart
// one.
func TestVosdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := buildVosd(t)
	dataDir := t.TempDir()
	ctx, cancelCtx := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCtx()

	base, stop := startVosd(t, bin, dataDir)
	cl := client.New(base, client.Options{BatchSize: 128})

	// Two overlapping users plus churn, including unsubscriptions.
	var edges []vos.Edge
	for i := 0; i < 300; i++ {
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		edges = append(edges, vos.Edge{User: 2, Item: vos.Item(i + 150), Op: vos.Insert})
	}
	for u := vos.User(10); u < 40; u++ {
		for i := 0; i < 15; i++ {
			edges = append(edges, vos.Edge{User: u, Item: vos.Item(int(u)*1000 + i), Op: vos.Insert})
		}
	}
	if err := cl.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint deletes live only in the WAL suffix until shutdown.
	var dels []vos.Edge
	for i := 150; i < 200; i++ {
		dels = append(dels, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Delete})
	}
	if err := cl.Ingest(ctx, dels); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	before, err := cl.Similarity(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	beforeCard, err := cl.Cardinality(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if beforeCard != 250 {
		t.Fatalf("cardinality(1) = %d, want 250", beforeCard)
	}
	candidates := []vos.User{2, 10, 11, 12, 13, 14}
	beforeTop, err := cl.TopK(ctx, 1, candidates, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(beforeTop) != 3 || beforeTop[0].User != 2 {
		t.Fatalf("topk before restart: %+v (want user 2 first)", beforeTop)
	}
	cl.Close()
	stop()

	// Restart over the same directory: recovery = checkpoint + WAL suffix.
	base2, stop2 := startVosd(t, bin, dataDir)
	cl2 := client.New(base2, client.Options{})
	defer cl2.Close()
	after, err := cl2.Similarity(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("recovered similarity %+v != pre-restart %+v", after, before)
	}
	afterCard, err := cl2.Cardinality(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if afterCard != beforeCard {
		t.Fatalf("recovered cardinality %d != pre-restart %d", afterCard, beforeCard)
	}
	afterTop, err := cl2.TopK(ctx, 1, candidates, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(afterTop) != fmt.Sprint(beforeTop) {
		t.Fatalf("recovered topk %+v != pre-restart %+v", afterTop, beforeTop)
	}
	stop2()
}

// TestVosdBadFlags: a bad -sync value fails fast instead of starting a
// daemon with silent defaults.
func TestVosdBadFlags(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir(), "-sync", "sometimes"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -sync value accepted")
	}
	if err := run([]string{"-window", "-1s"}, &strings.Builder{}); err == nil {
		t.Fatal("negative -window accepted")
	}
	if err := run([]string{"-window", "1m", "-buckets", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("-buckets 0 accepted with -window")
	}
	if err := run([]string{"-window", "1s", "-buckets", "7"}, &strings.Builder{}); err == nil {
		t.Fatal("-window not divisible by -buckets accepted")
	}
}

// TestVosdWindowSmoke drives the real binary in sliding-window mode:
// ingest, confirm the stats advertise the window, retire everything with
// a far-future event timestamp, and confirm the state emptied.
func TestVosdWindowSmoke(t *testing.T) {
	bin := buildVosd(t)
	url, stop := startVosd(t, bin, t.TempDir(), "-window", "1h", "-buckets", "4")
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(url, client.Options{Linger: -1})
	defer cl.Close()

	if err := cl.Ingest(ctx, []vos.Edge{
		{User: 1, Item: 10, Op: vos.Insert},
		{User: 2, Item: 10, Op: vos.Insert},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WindowSeconds != 3600 || st.WindowBuckets != 4 {
		t.Fatalf("stats window = (%v s, %d buckets), want (3600 s, 4)", st.WindowSeconds, st.WindowBuckets)
	}
	if card, err := cl.Cardinality(ctx, 1); err != nil || card != 1 {
		t.Fatalf("cardinality = %d, %v; want 1", card, err)
	}

	// Event time a day ahead retires the whole window.
	if err := cl.AdvanceWindow(ctx, time.Now().Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if card, err := cl.Cardinality(ctx, 1); err != nil || card != 0 {
		t.Fatalf("cardinality after aging out = %d, %v; want 0", card, err)
	}
}
