package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/netproto"
	"github.com/vossketch/vos/internal/stream"
)

// startReceiver runs a netproto.Receiver on loopback, collecting every
// applied edge, and returns its address.
func startReceiver(t *testing.T) (addr string, edges func() []stream.Edge) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []stream.Edge
	recv := netproto.NewReceiver(pc, netproto.Config{
		Sink: func(batch []stream.Edge) error {
			mu.Lock()
			got = append(got, batch...)
			mu.Unlock()
			return nil
		},
	})
	done := make(chan error, 1)
	go func() { done <- recv.Run() }()
	t.Cleanup(func() {
		if err := recv.Close(); err != nil {
			t.Errorf("receiver close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("receiver run: %v", err)
		}
	})
	return recv.Addr().String(), func() []stream.Edge {
		mu.Lock()
		defer mu.Unlock()
		return append([]stream.Edge(nil), got...)
	}
}

// TestUDPClientEndToEnd: edges buffered through Ingest and confirmed by
// Flush arrive at the receiver exactly once, in order, and the final ack
// reports a clean ledger.
func TestUDPClientEndToEnd(t *testing.T) {
	addr, edges := startReceiver(t)
	c, err := NewUDP(addr, UDPOptions{BatchSize: 8, AckEvery: 2, AckWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 50
	sent := make([]vos.Edge, n)
	for i := range sent {
		sent[i] = vos.Edge{User: vos.User(i % 5), Item: vos.Item(i), Op: vos.Insert}
	}
	// Two Ingest calls exercise the partial-batch carry between them.
	if err := c.Ingest(ctx, sent[:13]); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, sent[13:]); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if !st.Acked {
		t.Fatal("Flush returned without an ack")
	}
	if st.LastAck.Gaps != 0 || st.LastAck.Replays != 0 {
		t.Fatalf("clean loopback delivery reported gaps=%d replays=%d", st.LastAck.Gaps, st.LastAck.Replays)
	}
	if st.EdgesSent != n {
		t.Fatalf("EdgesSent = %d, want %d", st.EdgesSent, n)
	}
	if st.AcksReceived == 0 || len(c.TakeRTTs()) == 0 {
		t.Fatalf("expected ack RTT samples, stats %+v", st)
	}

	got := edges()
	if len(got) != n {
		t.Fatalf("receiver applied %d edges, want %d", len(got), n)
	}
	for i, e := range got {
		if e != sent[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, e, sent[i])
		}
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, sent[:1]); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := c.Flush(ctx); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// TestUDPClientAckWindowOverflow: against a receiver that never answers,
// the outstanding-ack window fills, each further send abandons the oldest
// request after AckTimeout (counted, not deadlocked), and the closing
// Flush reports that delivery was never confirmed.
func TestUDPClientAckWindowOverflow(t *testing.T) {
	// A bound socket nobody reads: sends succeed, acks never come.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	c, err := NewUDP(pc.LocalAddr().String(), UDPOptions{
		BatchSize:  1,
		AckEvery:   1,
		AckWindow:  1,
		AckTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.Ingest(ctx, []vos.Edge{{User: 1, Item: vos.Item(i), Op: vos.Insert}}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.FramesSent != 3 {
		t.Fatalf("FramesSent = %d, want 3 (abandonment must not block sends)", st.FramesSent)
	}
	// Frames 1 and 2 each found the 1-slot window full and abandoned the
	// previous request.
	if st.AcksAbandoned != 2 {
		t.Fatalf("AcksAbandoned = %d, want 2", st.AcksAbandoned)
	}
	err = c.Close()
	if err == nil || !strings.Contains(err.Error(), "no ack") {
		t.Fatalf("Close against a silent receiver = %v, want unconfirmed-delivery error", err)
	}
}

// TestUDPClientAcksDisabled: AckEvery < 0 turns the client into pure
// fire-and-forget — no ack goroutine, Flush returns without waiting, and
// edges still arrive.
func TestUDPClientAcksDisabled(t *testing.T) {
	addr, edges := startReceiver(t)
	c, err := NewUDP(addr, UDPOptions{BatchSize: 4, AckEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sent := make([]vos.Edge, 10)
	for i := range sent {
		sent[i] = vos.Edge{User: 7, Item: vos.Item(i), Op: vos.Insert}
	}
	if err := c.Ingest(ctx, sent); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.AcksRequested != 0 || st.Acked {
		t.Fatalf("acks disabled but stats show %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(edges()) < len(sent) {
		if time.Now().After(deadline) {
			t.Fatalf("receiver applied %d of %d edges", len(edges()), len(sent))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
