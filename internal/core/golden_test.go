package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/vossketch/vos/internal/hashing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixture files")

// goldenSketch builds the fixed sketch the VOS1 wire-format fixture pins:
// a small config with inserts, a delete, and a cancelled-out user, so the
// fixture exercises the cardinality table and the bit array.
func goldenSketch() *VOS {
	v := MustNew(Config{MemoryBits: 512, SketchBits: 32, Seed: 99})
	for i := uint64(0); i < 8; i++ {
		v.Process(edgeFor(1, i, true))
	}
	for i := uint64(4); i < 10; i++ {
		v.Process(edgeFor(2, i, true))
	}
	v.Process(edgeFor(1, 7, false)) // a real unsubscription
	v.Process(edgeFor(3, 1, true))  // user 3 cancels out entirely
	v.Process(edgeFor(3, 1, false))
	return v
}

// TestGoldenVOS1Format pins the VOS1 sketch wire format with checked-in
// fixture bytes: an encoder change surfaces as a byte diff against the
// fixture, and a decoder change surfaces as a failure to restore it —
// instead of silent incompatibility with previously checkpointed sketches.
func TestGoldenVOS1Format(t *testing.T) {
	path := filepath.Join("testdata", "vos1_sketch.golden")
	data, err := goldenSketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("VOS1 wire format changed: encoder produced %d bytes, fixture has %d.\n"+
			"If the change is intentional, bump the format magic and regenerate with -update.",
			len(data), len(want))
	}

	// The checked-in bytes must also decode to the expected state — this
	// is what guards decoder drift against sketches already on disk.
	restored, err := UnmarshalVOS(want)
	if err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
	ref := goldenSketch()
	if restored.Config() != ref.Config() || restored.Stats() != ref.Stats() {
		t.Fatalf("fixture decodes to %+v, want %+v", restored.Stats(), ref.Stats())
	}
	if got, want := restored.Cardinality(1), int64(7); got != want {
		t.Fatalf("fixture Cardinality(1) = %d, want %d", got, want)
	}
	if got := restored.Cardinality(3); got != 0 {
		t.Fatalf("fixture Cardinality(3) = %d, want 0 (cancelled out)", got)
	}
	if got, want := restored.Query(1, 2), ref.Query(1, 2); got != want {
		t.Fatalf("fixture Query(1,2) = %+v, want %+v", got, want)
	}
}

// goldenFastSketch is goldenSketch under the fast hash family: same edge
// sequence, different position generation, family tag in the header.
func goldenFastSketch() *VOS {
	v := MustNew(Config{MemoryBits: 512, SketchBits: 32, Seed: 99, Family: hashing.KindFast})
	for i := uint64(0); i < 8; i++ {
		v.Process(edgeFor(1, i, true))
	}
	for i := uint64(4); i < 10; i++ {
		v.Process(edgeFor(2, i, true))
	}
	v.Process(edgeFor(1, 7, false))
	v.Process(edgeFor(3, 1, true))
	v.Process(edgeFor(3, 1, false))
	return v
}

// TestGoldenVOS1FastFamily pins the fast-family wire encoding (and, by
// construction, the fast position generator itself: any change to its
// output moves array bits and shows up as a fixture diff). This is the
// compatibility guarantee that checkpointed fast-family sketches stay
// loadable across releases.
func TestGoldenVOS1FastFamily(t *testing.T) {
	path := filepath.Join("testdata", "vos1_sketch_fast.golden")
	data, err := goldenFastSketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("fast-family VOS1 encoding changed: encoder produced %d bytes, fixture has %d.\n"+
			"This breaks previously checkpointed fast-family sketches. If intentional,\n"+
			"bump the family tag (treat it as a new family) and regenerate with -update.",
			len(data), len(want))
	}
	restored, err := UnmarshalVOS(want)
	if err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
	ref := goldenFastSketch()
	if restored.Config() != ref.Config() || restored.Stats() != ref.Stats() {
		t.Fatalf("fixture decodes to %+v, want %+v", restored.Stats(), ref.Stats())
	}
	if restored.Config().Family != hashing.KindFast {
		t.Fatalf("fixture family = %v, want fast", restored.Config().Family)
	}
	if got, want := restored.Query(1, 2), ref.Query(1, 2); got != want {
		t.Fatalf("fixture Query(1,2) = %+v, want %+v", got, want)
	}
}
