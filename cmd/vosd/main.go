// Command vosd is the VOS similarity daemon: a durable sharded engine
// (vos.OpenEngine) behind the versioned /v1/ HTTP API (package server).
// It is the deployment shape the module builds toward — ingest a fully
// dynamic subscription stream over the network, answer similarity and
// top-K queries during ingestion, survive restarts via WAL + checkpoints.
//
// Typical invocations:
//
//	vosd -listen :8080 -dir /var/lib/vosd                 # durable
//	vosd -listen :8080                                    # memory-only
//	vosd -dir /var/lib/vosd -sync off -checkpoint-interval 30s
//	vosd -listen :8080 -window 1h -buckets 60             # sliding window
//	vosd -listen :8080 -ann                               # approximate top-K
//	vosd -listen :8080 -udp-listen :9090                  # + datagram ingest
//
// With -window the daemon serves sliding-window similarity: queries cover
// only the last -window of stream time, advanced by the wall clock and by
// timestamped ingest (the ts fields / X-Vos-Batch-Ts header of POST
// /v1/edges), with older edges retired in O(sketch) per bucket rotation.
// Checkpoints then persist per-bucket state, so -window and -buckets must
// match the directory's previous life.
//
// With -ann the engine maintains a banded-LSH index over recovered
// sketches and POST /v1/topk accepts mode "ann" — candidates-free top-K
// probing only colliding index buckets instead of scanning a supplied
// candidate list. -ann-bands/-ann-rows shape the S-curve (see the README's
// "Approximate top-K" section); without -ann, mode "ann" answers 501.
//
// With -udp-listen the daemon additionally accepts VOSSTRM1 datagram
// ingest (package client's UDPClient, internal/netproto): a fire-and-forget
// UDP plane sharing the HTTP handlers' admission budget, with per-session
// sequence tracking so lost, reordered, or replayed batches are detected
// and counted — surfaced on /v1/stats and in protocol acks — instead of
// silently corrupting the XOR sketch. Its address is printed on stdout
// once bound ("vosd udp ingest on ...").
//
// On SIGINT/SIGTERM the daemon drains gracefully: readiness flips to 503,
// in-flight requests finish (bounded by -drain-timeout), the listener
// closes, and the engine shuts down — writing a final checkpoint when
// durable, so the next start replays no WAL. The listen address is printed
// on stdout once serving ("vosd listening on http://..."), which scripts
// and the smoke test use with -listen 127.0.0.1:0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/admit"
	"github.com/vossketch/vos/internal/netproto"
	"github.com/vossketch/vos/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the exit code, so tests can drive the daemon.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vosd", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:8080", "TCP listen address (use port 0 for an ephemeral port)")
		udpListen = fs.String("udp-listen", "", "UDP listen address for VOSSTRM1 datagram ingest (empty disables; use port 0 for an ephemeral port)")
		dir       = fs.String("dir", "", "durability directory (WAL + checkpoints); empty runs memory-only")

		memoryBits = fs.Uint64("memory-bits", 1<<22, "m, shared array size in bits")
		sketchBits = fs.Int("sketch-bits", 4096, "k, virtual sketch size in bits")
		seed       = fs.Uint64("seed", 1, "sketch seed (identical config required to merge or recover)")
		hashFamily = fs.String("hash-family", "classic", `position hash family: "classic" or "fast" (part of the sketch identity; must match any existing checkpoint)`)

		shards     = fs.Int("shards", 0, "ingest shards (0 = GOMAXPROCS)")
		batchSize  = fs.Int("batch-size", 0, "edges per shard batch (0 = default 256)")
		queueSize  = fs.Int("queue-size", 0, "per-shard queue capacity in edges (0 = default 8192)")
		linger     = fs.Duration("flush-interval", 0, "partial-batch linger interval (0 = default 50ms)")
		maxLag     = fs.Uint64("snapshot-max-lag", 0, "query snapshot staleness budget in applied edges (0 = exact)")
		cacheUsers = fs.Int("position-cache-users", 0, "position-table cache entries (0 = default 512, negative disables)")

		window  = fs.Duration("window", 0, "sliding-window span: queries cover only the last this-much stream time (0 = retain everything)")
		buckets = fs.Int("buckets", 60, "sliding-window bucket count; rotation granularity is window/buckets (requires -window)")

		ann             = fs.Bool("ann", false, `maintain the approximate top-K index (enables POST /v1/topk mode "ann")`)
		annBands        = fs.Int("ann-bands", 0, "LSH bands b of the approximate top-K index (0 = default 64; requires -ann)")
		annRows         = fs.Int("ann-rows", 0, "LSH rows r per band (0 = default 16; requires -ann)")
		annRebandBudget = fs.Int("ann-reband-budget", 0, "stale users re-banded per ANN probe (0 = default 16384, negative unbounded; requires -ann)")

		syncMode   = fs.String("sync", "batch", `WAL fsync policy: "batch", "interval", or "off"`)
		syncEveryN = fs.Int("sync-every-n", 0, `edges between fsyncs under -sync interval (0 = default 4096)`)
		segBytes   = fs.Int64("segment-bytes", 0, "WAL segment rotation threshold (0 = default 64 MiB)")
		ckptEvery  = fs.Duration("checkpoint-interval", 0, "automatic checkpoint period (0 disables; durable only)")

		maxBatchBytes    = fs.Int64("max-batch-bytes", 0, "per-request ingest body cap (0 = default 8 MiB)")
		maxInFlightBytes = fs.Int64("max-inflight-bytes", 0, "summed worst-case in-flight ingest memory (wire + decoded) before backpressure (0 = default 128 MiB)")
		readTimeout      = fs.Duration("read-timeout", 30*time.Second, "max time to read a full request, headers and body (0 disables)")
		drainTimeout     = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		verbose          = fs.Bool("verbose", false, "log one line per request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	family, err := vos.ParseHashFamily(*hashFamily)
	if err != nil {
		return fmt.Errorf("vosd: -hash-family: %w", err)
	}
	cfg := vos.EngineConfig{
		Sketch:             vos.Config{MemoryBits: *memoryBits, SketchBits: *sketchBits, Seed: *seed, Family: family},
		Shards:             *shards,
		BatchSize:          *batchSize,
		QueueSize:          *queueSize,
		FlushInterval:      *linger,
		SnapshotMaxLag:     *maxLag,
		PositionCacheUsers: *cacheUsers,
	}
	if *window > 0 {
		if *buckets < 1 {
			return fmt.Errorf("vosd: -buckets must be at least 1 (got %d)", *buckets)
		}
		if *window%time.Duration(*buckets) != 0 {
			return fmt.Errorf("vosd: -window (%v) must be a multiple of -buckets (%d)", *window, *buckets)
		}
		cfg.Window = &vos.WindowConfig{
			Buckets:        *buckets,
			BucketDuration: *window / time.Duration(*buckets),
		}
	} else if *window < 0 {
		return fmt.Errorf("vosd: -window must not be negative (got %v)", *window)
	}
	if *ann {
		cfg.ANN = &vos.ANNConfig{Bands: *annBands, Rows: *annRows, RebandBudget: *annRebandBudget}
	} else if *annBands != 0 || *annRows != 0 || *annRebandBudget != 0 {
		return fmt.Errorf("vosd: -ann-bands/-ann-rows/-ann-reband-budget require -ann")
	}
	var eng *vos.Engine
	if *dir != "" {
		d := vos.DurabilityConfig{SyncEveryN: *syncEveryN, SegmentBytes: *segBytes}
		switch *syncMode {
		case "batch":
			d.Sync = vos.SyncEveryBatch
		case "interval":
			d.Sync = vos.SyncEveryN
		case "off":
			d.Sync = vos.SyncOff
		default:
			return fmt.Errorf("vosd: -sync must be batch, interval, or off (got %q)", *syncMode)
		}
		cfg.Durability = &d
		eng, err = vos.OpenEngine(*dir, cfg)
	} else {
		eng, err = vos.NewEngine(cfg)
	}
	if err != nil {
		return err
	}

	// One admission controller for every ingest transport: the HTTP
	// handlers and the UDP receiver draw on the same in-flight byte
	// budget, so -max-inflight-bytes bounds the process, not a plane.
	adm := admit.NewController(*maxBatchBytes, *maxInFlightBytes)
	svc := vos.NewEngineService(eng)
	opts := server.Options{Admission: adm}
	if *verbose {
		opts.Logger = log.New(os.Stderr, "vosd: ", log.LstdFlags)
	}

	var udpRecv *netproto.Receiver
	udpRunErr := make(chan error, 1)
	if *udpListen != "" {
		pc, err := net.ListenPacket("udp", *udpListen)
		if err != nil {
			eng.Close()
			return fmt.Errorf("vosd: -udp-listen: %w", err)
		}
		udpRecv = netproto.NewReceiver(pc, netproto.Config{
			Sink:  func(edges []vos.Edge) error { return svc.Ingest(context.Background(), edges) },
			Admit: adm,
		})
		go func() { udpRunErr <- udpRecv.Run() }()
		opts.UDPStats = udpRecv.Stats
	}
	srv := server.New(svc, opts)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		if udpRecv != nil {
			udpRecv.Close()
		}
		eng.Close()
		return err
	}
	// ReadTimeout matters for more than hygiene: handleEdges charges the
	// in-flight ingest byte budget up front, so without a body deadline a
	// handful of clients trickling bytes could hold the whole budget and
	// starve ingest behind 429s. The timeout bounds how long any one
	// request can sit on its slice of the budget.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	windowDesc := "off"
	if *window > 0 {
		windowDesc = fmt.Sprintf("%v/%d buckets", *window, *buckets)
	}
	fmt.Fprintf(stdout, "vosd listening on http://%s (shards=%d, durable=%v, window=%s, ann=%v)\n",
		ln.Addr(), eng.Shards(), *dir != "", windowDesc, *ann)
	if udpRecv != nil {
		fmt.Fprintf(stdout, "vosd udp ingest on %s (VOSSTRM1 datagrams)\n", udpRecv.Addr())
	}

	// Periodic checkpoints bound restart replay time; each one truncates
	// the covered WAL prefix.
	stopCkpt := make(chan struct{})
	if *ckptEvery > 0 && *dir != "" {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-t.C:
					if pos, err := eng.Checkpoint(); err != nil {
						log.Printf("vosd: periodic checkpoint: %v", err)
					} else if *verbose {
						log.Printf("vosd: checkpoint at position %d", pos)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		close(stopCkpt)
		if udpRecv != nil {
			udpRecv.Close()
		}
		eng.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "vosd: %v — draining\n", s)
	}

	// Graceful shutdown: out of rotation, finish in-flight work, close the
	// listener, then close the engine (final checkpoint when durable). The
	// UDP plane closes first — Close waits for the frame being applied, so
	// no datagram batch races the engine teardown.
	close(stopCkpt)
	if udpRecv != nil {
		if err := udpRecv.Close(); err != nil {
			log.Printf("vosd: udp close: %v", err)
		}
		if err := <-udpRunErr; err != nil {
			log.Printf("vosd: udp receiver: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("vosd: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("vosd: http shutdown: %v", err)
	}
	if err := eng.Close(); err != nil {
		return fmt.Errorf("vosd: engine close: %w", err)
	}
	fmt.Fprintln(stdout, "vosd: stopped")
	return nil
}
