package core

import (
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func buildBatchSketch(t *testing.T) *VOS {
	t.Helper()
	v := MustNew(Config{MemoryBits: 1 << 18, SketchBits: 1024, Seed: 4})
	for _, e := range gen.PlantedPair(1, 2, 200, 200, 120, 6) {
		v.Process(e)
	}
	for _, e := range gen.PlantedPair(1, 3, 1, 90, 0, 7) {
		if e.User == 3 { // user 1 already populated above
			v.Process(e)
		}
	}
	return v
}

func TestQueryManyMatchesQuery(t *testing.T) {
	v := buildBatchSketch(t)
	candidates := []stream.User{2, 3, 4, 1}
	batch := v.QueryMany(1, candidates)
	if len(batch) != len(candidates) {
		t.Fatalf("got %d estimates", len(batch))
	}
	for i, w := range candidates {
		single := v.Query(1, w)
		if batch[i] != single {
			t.Errorf("candidate %d: batch %+v != single %+v", w, batch[i], single)
		}
	}
}

func TestRecoveredReuse(t *testing.T) {
	v := buildBatchSketch(t)
	r := v.Recover(1)
	if r.User() != 1 {
		t.Errorf("User() = %d", r.User())
	}
	a := v.QueryRecovered(r, 2)
	b := v.QueryRecovered(r, 2)
	if a != b {
		t.Error("repeated QueryRecovered not deterministic")
	}
	if a != v.Query(1, 2) {
		t.Error("QueryRecovered differs from Query")
	}
}

func TestRecoverMatchesRecoverBit(t *testing.T) {
	v := buildBatchSketch(t)
	r := v.Recover(2)
	for j := 0; j < v.K(); j++ {
		if r.bits.Get(uint64(j)) != v.RecoverBit(2, j) {
			t.Fatalf("slot %d differs", j)
		}
	}
}

func TestQueryManyEmptyCandidates(t *testing.T) {
	v := buildBatchSketch(t)
	if got := v.QueryMany(1, nil); len(got) != 0 {
		t.Errorf("nil candidates produced %d estimates", len(got))
	}
}

func BenchmarkQueryManyVsLoop(b *testing.B) {
	v := MustNew(Config{MemoryBits: 1 << 20, SketchBits: 6400, Seed: 4})
	for _, e := range gen.PlantedPair(1, 2, 300, 300, 100, 6) {
		v.Process(e)
	}
	candidates := make([]stream.User, 100)
	for i := range candidates {
		candidates[i] = stream.User(i + 2)
	}
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range candidates {
				_ = v.Query(1, w)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = v.QueryMany(1, candidates)
		}
	})
}
