package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	b := New(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset: len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	for _, i := range []uint64{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
		if b.GetBit(i) != 1 {
			t.Errorf("GetBit(%d) = %d", i, b.GetBit(i))
		}
	}
	if b.Get(1) || b.GetBit(63) != 0 {
		t.Error("unset bits read as set")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Errorf("after clear: get=%v count=%d", b.Get(64), b.Count())
	}
	// Idempotence of Set/Clear must not corrupt the count.
	b.Set(0)
	b.Clear(64)
	if b.Count() != 2 {
		t.Errorf("idempotent ops changed count to %d", b.Count())
	}
}

func TestFlip(t *testing.T) {
	b := New(100)
	if !b.Flip(42) {
		t.Error("flip of 0 should return true")
	}
	if b.Flip(42) {
		t.Error("flip of 1 should return false")
	}
	if b.Count() != 0 {
		t.Errorf("double flip left count %d", b.Count())
	}
}

func TestFlipTwiceIsIdentityProperty(t *testing.T) {
	err := quick.Check(func(idxs []uint64) bool {
		b := New(512)
		ref := New(512)
		for _, i := range idxs {
			i %= 512
			b.Flip(i)
			b.Flip(i)
		}
		return b.Equal(ref) && b.Count() == 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCountMatchesNaiveProperty(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		const n = 300
		b := New(n)
		naive := make([]bool, n)
		for _, op := range ops {
			i := uint64(op) % n
			switch op % 3 {
			case 0:
				b.Set(i)
				naive[i] = true
			case 1:
				b.Clear(i)
				naive[i] = false
			case 2:
				b.Flip(i)
				naive[i] = !naive[i]
			}
		}
		want := uint64(0)
		for i, v := range naive {
			if v != b.Get(uint64(i)) {
				return false
			}
			if v {
				want++
			}
		}
		return b.Count() == want
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestOnesFraction(t *testing.T) {
	b := New(1000)
	for i := uint64(0); i < 250; i++ {
		b.Set(i * 4)
	}
	if got := b.OnesFraction(); got != 0.25 {
		t.Errorf("OnesFraction = %v, want 0.25", got)
	}
}

func TestXor(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(199)
	a.Xor(b)
	if !a.Get(1) || a.Get(100) || !a.Get(199) {
		t.Error("xor content wrong")
	}
	if a.Count() != 2 {
		t.Errorf("xor count = %d, want 2", a.Count())
	}
}

func TestXorCountMatchesXor(t *testing.T) {
	err := quick.Check(func(xs, ys []uint16) bool {
		const n = 257
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Flip(uint64(x) % n)
		}
		for _, y := range ys {
			b.Flip(uint64(y) % n)
		}
		want := a.XorCount(b)
		c := a.Clone()
		c.Xor(b)
		return c.Count() == want
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestXorSelfIsZero(t *testing.T) {
	b := New(500)
	for i := uint64(0); i < 500; i += 3 {
		b.Set(i)
	}
	c := b.Clone()
	b.Xor(c)
	if b.Count() != 0 {
		t.Errorf("x ^ x has %d ones", b.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Error("mutating clone affected original")
	}
	if !c.Get(5) {
		t.Error("clone lost bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	if !a.Equal(b) {
		t.Error("fresh equal-length bitsets should be equal")
	}
	a.Set(3)
	if a.Equal(b) {
		t.Error("different contents reported equal")
	}
	if a.Equal(New(101)) {
		t.Error("different lengths reported equal")
	}
}

func TestReset(t *testing.T) {
	b := New(128)
	for i := uint64(0); i < 128; i++ {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("reset left %d ones", b.Count())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []uint64{1, 63, 64, 65, 1000} {
		b := New(n)
		for i := uint64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("n=%d: marshal: %v", n, err)
		}
		var got Bitset
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if !got.Equal(b) || got.Count() != b.Count() {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := New(100)
	b.Set(7)
	data, _ := b.MarshalBinary()

	cases := map[string]func() []byte{
		"truncated":    func() []byte { return data[:8] },
		"bad magic":    func() []byte { d := append([]byte(nil), data...); d[0] ^= 0xff; return d },
		"short body":   func() []byte { return data[:len(data)-1] },
		"long body":    func() []byte { return append(append([]byte(nil), data...), 0) },
		"tail bit set": func() []byte { d := append([]byte(nil), data...); d[len(d)-1] |= 0x80; return d },
		"zero length": func() []byte {
			d := append([]byte(nil), data[:12]...)
			for i := 4; i < 12; i++ {
				d[i] = 0
			}
			return d
		},
	}
	for name, fn := range cases {
		var got Bitset
		if err := got.UnmarshalBinary(fn()); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestPanicsOutOfRange(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"get":           func() { b.Get(10) },
		"set":           func() { b.Set(10) },
		"clear":         func() { b.Clear(10) },
		"flip":          func() { b.Flip(10) },
		"xor mismatch":  func() { b.Xor(New(11)) },
		"xorcount":      func() { b.XorCount(New(11)) },
		"zero-size new": func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkFlip(b *testing.B) {
	bs := New(1 << 20)
	for i := 0; i < b.N; i++ {
		bs.Flip(uint64(i) & (1<<20 - 1))
	}
}

func BenchmarkXorCount(b *testing.B) {
	x := New(1 << 16)
	y := New(1 << 16)
	for i := uint64(0); i < 1<<16; i += 7 {
		x.Set(i)
		y.Set(i + 1)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.XorCount(y)
	}
	_ = sink
}

func TestGatherMatchesPerBitReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(10_000)
	for i := 0; i < 3000; i++ {
		b.Set(uint64(rng.Intn(10_000)))
	}
	// Lengths straddling word boundaries, including the empty-tail and
	// tail-only cases.
	for _, k := range []int{1, 63, 64, 65, 128, 200, 6400} {
		idx := make([]uint64, k)
		for j := range idx {
			idx[j] = uint64(rng.Intn(10_000))
		}
		g := b.Gather(idx)
		if g.Len() != uint64(k) {
			t.Fatalf("k=%d: Gather len = %d", k, g.Len())
		}
		ones := uint64(0)
		for j, p := range idx {
			if g.Get(uint64(j)) != b.Get(p) {
				t.Fatalf("k=%d: gathered bit %d = %v, array bit %d = %v",
					k, j, g.Get(uint64(j)), p, b.Get(p))
			}
			if b.Get(p) {
				ones++
			}
		}
		if g.Count() != ones {
			t.Fatalf("k=%d: Gather count = %d, want %d", k, g.Count(), ones)
		}
	}
}

func TestGatherXorCountMatchesMaterialised(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := New(10_000)
	for i := 0; i < 3000; i++ {
		b.Set(uint64(rng.Intn(10_000)))
	}
	for _, k := range []int{1, 63, 64, 65, 127, 200, 6400} {
		idx := make([]uint64, k)
		for j := range idx {
			idx[j] = uint64(rng.Intn(10_000))
		}
		o := New(uint64(k))
		for j := 0; j < k; j++ {
			if rng.Intn(2) == 1 {
				o.Set(uint64(j))
			}
		}
		want := b.Gather(idx).XorCount(o)
		if got := b.GatherXorCount(idx, o); got != want {
			t.Fatalf("k=%d: GatherXorCount = %d, want %d", k, got, want)
		}
	}
}

func TestGatherXorCountLengthMismatchPanics(t *testing.T) {
	b := New(100)
	o := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	b.GatherXorCount(make([]uint64, 6), o)
}

func TestGatherOutOfRangePanics(t *testing.T) {
	b := New(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	b.Gather([]uint64{0, 100})
}
