package vos_test

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"github.com/vossketch/vos"
)

func TestQuickstartFlow(t *testing.T) {
	sk := vos.MustNew(vos.Config{MemoryBits: 1 << 20, SketchBits: 2048, Seed: 1})
	alice := vos.UserFromString("alice")
	bob := vos.UserFromString("bob")

	for i := 0; i < 200; i++ {
		sk.Process(vos.Edge{User: alice, Item: vos.Item(i), Op: vos.Insert})
	}
	for i := 100; i < 300; i++ {
		sk.Process(vos.Edge{User: bob, Item: vos.Item(i), Op: vos.Insert})
	}
	// Alice unsubscribes [0, 50): sets are now [50, 200) and [100, 300).
	for i := 0; i < 50; i++ {
		sk.Process(vos.Edge{User: alice, Item: vos.Item(i), Op: vos.Delete})
	}
	est := sk.Query(alice, bob)
	if math.Abs(est.Common-100) > 25 {
		t.Errorf("common ≈ %f, want ~100", est.Common)
	}
	trueJ := 100.0 / 250.0
	if math.Abs(est.Jaccard-trueJ) > 0.12 {
		t.Errorf("jaccard ≈ %f, want ~%f", est.Jaccard, trueJ)
	}
	if est.CardinalityU != 150 || est.CardinalityV != 200 {
		t.Errorf("cardinalities %d/%d", est.CardinalityU, est.CardinalityV)
	}
}

func TestStringKeysStable(t *testing.T) {
	if vos.UserFromString("x") != vos.UserFromString("x") {
		t.Error("UserFromString unstable")
	}
	if vos.ItemFromString("x") == vos.ItemFromString("y") {
		t.Error("distinct items collided")
	}
	if uint64(vos.UserFromString("x")) == uint64(vos.ItemFromString("x")) {
		t.Error("user and item key spaces should differ")
	}
}

func TestEstimatorFactoryAllMethods(t *testing.T) {
	b := vos.Budget{K32: 50, Users: 100, Lambda: 2}
	for _, m := range append([]string{vos.MethodExact}, vos.Methods...) {
		est, err := vos.NewEstimator(m, b, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		est.Process(vos.Edge{User: 1, Item: 1, Op: vos.Insert})
		if est.Cardinality(1) != 1 {
			t.Errorf("%s: cardinality broken", m)
		}
	}
}

func TestProcessAllAndValidate(t *testing.T) {
	edges := []vos.Edge{
		{User: 1, Item: 1, Op: vos.Insert},
		{User: 2, Item: 1, Op: vos.Insert},
		{User: 1, Item: 1, Op: vos.Delete},
	}
	if err := vos.Validate(edges); err != nil {
		t.Fatalf("feasible stream rejected: %v", err)
	}
	est := vos.NewExact()
	vos.ProcessAll(est, edges)
	if est.Cardinality(1) != 0 || est.Cardinality(2) != 1 {
		t.Error("ProcessAll misapplied")
	}
	bad := []vos.Edge{{User: 1, Item: 1, Op: vos.Delete}}
	if vos.Validate(bad) == nil {
		t.Error("infeasible stream accepted")
	}
}

func TestTopSimilarFacade(t *testing.T) {
	est := vos.NewExact()
	vos.ProcessAll(est, []vos.Edge{
		{User: 1, Item: 10, Op: vos.Insert},
		{User: 2, Item: 10, Op: vos.Insert},
		{User: 3, Item: 99, Op: vos.Insert},
	})
	got := vos.TopSimilar(est, 1, []vos.User{2, 3}, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("TopSimilar = %v", got)
	}
}

func TestSerializationFacade(t *testing.T) {
	sk := vos.MustNew(vos.Config{MemoryBits: 4096, SketchBits: 128, Seed: 9})
	sk.Process(vos.Edge{User: 5, Item: 6, Op: vos.Insert})
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := vos.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality(5) != 1 {
		t.Error("round trip lost state")
	}
}

func TestConcurrentSketch(t *testing.T) {
	c, err := vos.NewConcurrent(vos.Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Process(vos.Edge{
					User: vos.User(w),
					Item: vos.Item(w*1000 + i),
					Op:   vos.Insert,
				})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = c.Query(0, 1)
				_ = c.Beta()
			}
		}()
	}
	wg.Wait()
	if c.Cardinality(0) != 500 {
		t.Errorf("cardinality %d after concurrent writes", c.Cardinality(0))
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := vos.Unmarshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cardinality(3) != 500 {
		t.Error("snapshot lost state")
	}
}

func TestConcurrentMergeShards(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 7}
	main, err := vos.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shard := vos.MustNew(cfg)
	shard.Process(vos.Edge{User: 1, Item: 2, Op: vos.Insert})
	if err := main.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if main.Cardinality(1) != 1 {
		t.Error("merge lost state")
	}
	bad := vos.MustNew(vos.Config{MemoryBits: 1 << 14, SketchBits: 128, Seed: 7})
	if err := main.Merge(bad); err == nil {
		t.Error("mismatched merge accepted")
	}
}

func TestStreamIOFacade(t *testing.T) {
	edges := []vos.Edge{
		{User: 1, Item: 2, Op: vos.Insert},
		{User: 1, Item: 2, Op: vos.Delete},
	}
	var txt, bin bytes.Buffer
	if err := vos.WriteStreamText(&txt, edges); err != nil {
		t.Fatal(err)
	}
	if err := vos.WriteStreamBinary(&bin, edges); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := vos.ReadStreamText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := vos.ReadStreamBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range edges {
		if fromTxt[i] != edges[i] || fromBin[i] != edges[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestPaperConfigFacade(t *testing.T) {
	cfg := vos.PaperConfig(1000, 100, 2, 5)
	if cfg.MemoryBits != 32*100*1000 || cfg.SketchBits != 6400 {
		t.Errorf("PaperConfig = %+v", cfg)
	}
}

func TestNeighborSketchFacade(t *testing.T) {
	sk, err := vos.NewNeighborSketch(vos.Config{MemoryBits: 1 << 18, SketchBits: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Users 1 and 2 both befriend users 10-29; then 1 unfriends half.
	for v := vos.User(10); v < 30; v++ {
		sk.MustProcess(vos.GraphEdge{U: 1, V: v, Op: vos.Insert})
		sk.MustProcess(vos.GraphEdge{U: 2, V: v, Op: vos.Insert})
	}
	for v := vos.User(10); v < 20; v++ {
		sk.MustProcess(vos.GraphEdge{U: 1, V: v, Op: vos.Delete})
	}
	if sk.Degree(1) != 10 || sk.Degree(2) != 20 {
		t.Errorf("degrees %d/%d", sk.Degree(1), sk.Degree(2))
	}
	est := sk.Query(1, 2)
	// True common neighbors: 10 (IDs 20-29). Tolerate sketch noise.
	if est.Common < 2 || est.Common > 18 {
		t.Errorf("common neighbors ≈ %.1f, want ~10", est.Common)
	}
	dir, err := vos.NewDirectedNeighborSketch(vos.Config{MemoryBits: 4096, SketchBits: 128, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir.MustProcess(vos.GraphEdge{U: 5, V: 6, Op: vos.Insert})
	if dir.Degree(6) != 0 {
		t.Error("directed sketch should not add reverse edge")
	}
}
