package core

import (
	"github.com/vossketch/vos/internal/bitset"
	"github.com/vossketch/vos/internal/stream"
)

// Materialized queries: the paper's read path recovers a user's k virtual
// bits by evaluating k seeded hashes and probing k single bits of the
// shared array, per user, per query — at k = 6400 the hashing alone
// dominates the query. This file materializes the read path instead:
//
//   - Positions returns the user's immutable position table f_1(u)…f_k(u)
//     (a pure function of user, seed, and m), filled with the batched
//     hashing.Family.HashRangeInto loop and served from the attached
//     poscache.Cache when one is present, so hot users skip hashing
//     entirely;
//   - RecoverSketch gathers those k bits once into a packed k-bit bitset;
//   - QueryRecovered compares a candidate against the packed sketch with
//     a fused gather + XOR + popcount, ~k/64 word operations instead of a
//     per-bit comparison loop.
//
// Every path computes the differing-slot count z from the same recovered
// bits the scalar path reads, so estimates are bit-identical to
// QueryPerBit — pinned by TestQueryParityPerBitVsMaterialized.

// Positions returns user u's position table [f_1(u), …, f_k(u)], each in
// [0, m). The table depends only on the user and the sketch Config, never
// on the array contents, so it stays valid across updates and merges. The
// returned slice may be shared with the position cache: callers must treat
// it as read-only.
func (v *VOS) Positions(u stream.User) []uint64 {
	if v.pos != nil {
		if p, ok := v.pos.Get(u); ok {
			return p
		}
	}
	p := make([]uint64, v.cfg.SketchBits)
	v.fillPositions(p, u)
	if v.pos != nil {
		v.pos.Put(u, p)
	}
	return p
}

// lookupPositions is Positions for transient use inside a single query: a
// cache hit (or a miss that fills the cache) returns the durable table,
// while the cache-less path fills a pooled scratch buffer instead of
// allocating k words per query. scratch reports which case happened; when
// true the caller must hand the slice back via releasePositions as soon as
// the query is done with it. sync.Pool is concurrency-safe, so the read
// paths stay race-clean.
func (v *VOS) lookupPositions(u stream.User) (pos []uint64, scratch bool) {
	if v.pos != nil {
		return v.Positions(u), false
	}
	p, ok := v.posScratch.Get().(*[]uint64)
	if !ok {
		buf := make([]uint64, v.cfg.SketchBits)
		p = &buf
	}
	v.fillPositions(*p, u)
	return *p, true
}

// releasePositions returns a scratch table to the pool.
func (v *VOS) releasePositions(p []uint64) { v.posScratch.Put(&p) }

// Recovered is a dense snapshot of one user's virtual odd sketch, reusable
// across queries against a fixed sketch state. It is invalidated by any
// subsequent write — Process or Merge — (the shared array changes
// underneath it); re-recover after updates.
type Recovered struct {
	user stream.User
	bits *bitset.Bitset
	card int64
	beta float64
}

// User returns the user the snapshot belongs to.
func (r *Recovered) User() stream.User { return r.user }

// Card returns the user's cardinality n_u at recovery time.
func (r *Recovered) Card() int64 { return r.card }

// Words exposes the packed recovered sketch as 64-bit words — bit j of
// the virtual sketch lives at words[j/64] >> (j%64). The slice aliases the
// snapshot's (and possibly the recovered-sketch cache's) backing memory:
// callers must treat it as read-only. It is the banding surface of the
// approximate top-K index (internal/lsh.BandIndex).
func (r *Recovered) Words() []uint64 { return r.bits.UnsafeWords() }

// RecoverSketch snapshots user u's virtual odd sketch Ô_u as k packed bits
// together with the cardinality and array load at recovery time. Bit j of
// the result is A[f_j(u)], gathered word-by-word from the shared array —
// or taken straight from the recovered-sketch cache when u was already
// recovered at the current write version.
func (v *VOS) RecoverSketch(u stream.User) *Recovered {
	return &Recovered{
		user: u,
		bits: v.recoverBits(u),
		card: v.card[u],
		beta: v.Beta(),
	}
}

// recoverBits returns u's packed recovered sketch, serving and filling the
// versioned cache. Cached words are wrapped without copying; the resulting
// bitset is read-only by the Recovered contract.
func (v *VOS) recoverBits(u stream.User) *bitset.Bitset {
	if v.rec != nil {
		if ws, ones, ok := v.rec.GetVersioned(u, v.version); ok {
			return bitset.FromWordsCountedUnsafe(ws, uint64(v.cfg.SketchBits), ones)
		}
	}
	bits := v.gatherBits(u)
	if v.rec != nil {
		v.rec.PutVersioned(u, v.version, bits.UnsafeWords(), bits.Count())
	}
	return bits
}

// gatherBits materialises u's packed recovered sketch from the shared
// array, bypassing the recovered-sketch cache.
func (v *VOS) gatherBits(u stream.User) *bitset.Bitset {
	pos, scratch := v.lookupPositions(u)
	bits := v.arr.Gather(pos)
	if scratch {
		v.releasePositions(pos)
	}
	return bits
}

// Recover is RecoverSketch under its original name, kept for callers of
// the pre-materialization API.
func (v *VOS) Recover(u stream.User) *Recovered { return v.RecoverSketch(u) }

// QueryRecovered estimates the similarity between a recovered snapshot
// and user w, equivalent to Query(r.User(), w) against the sketch state
// at recovery time. When w's recovered sketch is cached at the current
// write version the comparison is a pure XOR+popcount over ~k/64 words —
// no hashing, no array probes; otherwise w's bits are gathered (and
// cached), fused with the XOR 64 virtual slots at a time.
func (v *VOS) QueryRecovered(r *Recovered, w stream.User) Estimate {
	if v.rec != nil {
		// Hot path: compare the packed snapshots word for word, straight
		// off the cached slice — no gather, no allocation, no recount.
		if ws, _, ok := v.rec.GetVersioned(w, v.version); ok {
			return v.estimateFrom(int(r.bits.XorCountWords(ws)), r.card, v.card[w], r.beta)
		}
		// Miss: materialise w's bits (rather than fusing the XOR into the
		// gather) so the cache warms and the next pass runs probe-free.
		bits := v.gatherBits(w)
		v.rec.PutVersioned(w, v.version, bits.UnsafeWords(), bits.Count())
		return v.estimateFrom(int(r.bits.XorCount(bits)), r.card, v.card[w], r.beta)
	}
	pos, scratch := v.lookupPositions(w)
	z := v.arr.GatherXorCount(pos, r.bits)
	if scratch {
		v.releasePositions(pos)
	}
	return v.estimateFrom(int(z), r.card, v.card[w], r.beta)
}

// QueryMany estimates u against every candidate in one pass, recovering u
// once. The result order matches candidates; querying u against itself
// yields the degenerate self estimate like Query does.
func (v *VOS) QueryMany(u stream.User, candidates []stream.User) []Estimate {
	r := v.RecoverSketch(u)
	out := make([]Estimate, len(candidates))
	for i, w := range candidates {
		out[i] = v.QueryRecovered(r, w)
	}
	return out
}
