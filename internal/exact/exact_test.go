package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.MustApply(stream.Edge{User: 1, Item: 10, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 1, Item: 11, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 2, Item: 10, Op: stream.Insert})

	if s.Cardinality(1) != 2 || s.Cardinality(2) != 1 {
		t.Fatalf("cardinalities %d/%d", s.Cardinality(1), s.Cardinality(2))
	}
	if !s.Has(1, 10) || s.Has(2, 11) {
		t.Error("Has wrong")
	}
	if s.CommonItems(1, 2) != 1 {
		t.Errorf("common = %d", s.CommonItems(1, 2))
	}
	if got, want := s.Jaccard(1, 2), 1.0/2.0; got != want {
		t.Errorf("jaccard = %v, want %v", got, want)
	}
	if s.SymmetricDifference(1, 2) != 1 {
		t.Errorf("symdiff = %d", s.SymmetricDifference(1, 2))
	}

	s.MustApply(stream.Edge{User: 1, Item: 10, Op: stream.Delete})
	if s.Cardinality(1) != 1 || s.CommonItems(1, 2) != 0 {
		t.Error("deletion not applied")
	}
}

func TestStoreJaccardEmpty(t *testing.T) {
	s := NewStore()
	if s.Jaccard(8, 9) != 0 {
		t.Error("empty-empty Jaccard should be 0")
	}
}

func TestStoreInfeasible(t *testing.T) {
	s := NewStore()
	s.MustApply(stream.Edge{User: 1, Item: 10, Op: stream.Insert})
	if err := s.Apply(stream.Edge{User: 1, Item: 10, Op: stream.Insert}); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := s.Apply(stream.Edge{User: 1, Item: 99, Op: stream.Delete}); err == nil {
		t.Error("absent delete accepted")
	}
	if err := s.Apply(stream.Edge{User: 5, Item: 1, Op: stream.Delete}); err == nil {
		t.Error("delete for unknown user accepted")
	}
	if err := s.Apply(stream.Edge{User: 1, Item: 1, Op: stream.Op(9)}); err == nil {
		t.Error("invalid op accepted")
	}
	// State must be unchanged after rejected elements.
	if s.Cardinality(1) != 1 {
		t.Errorf("cardinality changed to %d", s.Cardinality(1))
	}
}

func TestStoreItemsAndUsers(t *testing.T) {
	s := NewStore()
	s.MustApply(stream.Edge{User: 1, Item: 5, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 2, Item: 6, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 2, Item: 6, Op: stream.Delete})
	items := s.Items(1)
	if len(items) != 1 || items[0] != 5 {
		t.Errorf("Items(1) = %v", items)
	}
	users := s.Users()
	if len(users) != 1 || users[0] != 1 {
		t.Errorf("Users() = %v (user 2 has empty set)", users)
	}
}

func TestTopUsers(t *testing.T) {
	s := NewStore()
	for u := stream.User(1); u <= 5; u++ {
		for i := stream.Item(0); i < stream.Item(u)*2; i++ {
			s.MustApply(stream.Edge{User: u, Item: i, Op: stream.Insert})
		}
	}
	top := s.TopUsers(2)
	if len(top) != 2 || top[0] != 5 || top[1] != 4 {
		t.Errorf("TopUsers(2) = %v", top)
	}
	if got := s.TopUsers(100); len(got) != 5 {
		t.Errorf("TopUsers over-count = %d", len(got))
	}
}

func TestTopUsersTieBreak(t *testing.T) {
	s := NewStore()
	for _, u := range []stream.User{9, 3, 7} {
		s.MustApply(stream.Edge{User: u, Item: 1, Op: stream.Insert})
	}
	top := s.TopUsers(3)
	if top[0] != 3 || top[1] != 7 || top[2] != 9 {
		t.Errorf("tie break not by ID: %v", top)
	}
}

func TestMakePair(t *testing.T) {
	p := MakePair(9, 2)
	if p.U != 2 || p.V != 9 {
		t.Errorf("not normalised: %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("self-pair should panic")
		}
	}()
	MakePair(3, 3)
}

func TestPairsWithCommonItems(t *testing.T) {
	s := NewStore()
	// users 1,2 share item 100; user 3 is disjoint.
	s.MustApply(stream.Edge{User: 1, Item: 100, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 2, Item: 100, Op: stream.Insert})
	s.MustApply(stream.Edge{User: 3, Item: 200, Op: stream.Insert})
	users := []stream.User{1, 2, 3}
	pairs := s.PairsWithCommonItems(users, 1, 0)
	if len(pairs) != 1 || pairs[0] != MakePair(1, 2) {
		t.Errorf("pairs = %v", pairs)
	}
	if got := s.PairsWithCommonItems(users, 0, 2); len(got) != 2 {
		t.Errorf("maxPairs cap: got %d", len(got))
	}
}

func TestPairTrackerMatchesBruteForce(t *testing.T) {
	// Random feasible stream over a small universe; tracker counts must
	// equal recomputed intersections after every element.
	const users = 8
	const items = 12
	rng := rand.New(rand.NewSource(42))

	var pairs []Pair
	for u := stream.User(0); u < users; u++ {
		for v := u + 1; v < users; v++ {
			pairs = append(pairs, MakePair(u, v))
		}
	}
	tr, err := NewPairTracker(pairs)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStore()

	live := make(map[[2]uint64]bool)
	for step := 0; step < 3000; step++ {
		u := stream.User(rng.Intn(users))
		i := stream.Item(rng.Intn(items))
		key := [2]uint64{uint64(u), uint64(i)}
		op := stream.Insert
		if live[key] {
			op = stream.Delete
		}
		e := stream.Edge{User: u, Item: i, Op: op}
		live[key] = !live[key]

		tr.MustApply(e)
		ref.MustApply(e)

		// Spot-check a few pairs every step, all pairs occasionally.
		if step%500 == 0 {
			for idx, p := range tr.Pairs() {
				if got, want := tr.CommonItems(idx), ref.CommonItems(p.U, p.V); got != want {
					t.Fatalf("step %d pair %v: tracked %d, exact %d", step, p, got, want)
				}
				if got, want := tr.Jaccard(idx), ref.Jaccard(p.U, p.V); got != want {
					t.Fatalf("step %d pair %v: jaccard %v vs %v", step, p, got, want)
				}
			}
		}
	}
}

func TestPairTrackerOnGeneratedStream(t *testing.T) {
	p := gen.Profile{Name: "t", Users: 50, Items: 100, Edges: 800,
		UserSkew: 1.6, ItemSkew: 1.3}
	edges := gen.Dynamize(gen.Bipartite(p, 1),
		gen.DynamizeConfig{EventProb: 0.01, DeleteFrac: 0.5, Seed: 2})

	pairs := []Pair{MakePair(0, 1), MakePair(2, 3), MakePair(4, 5)}
	tr, err := NewPairTracker(pairs)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStore()
	for _, e := range edges {
		tr.MustApply(e)
		ref.MustApply(e)
	}
	for idx, pr := range tr.Pairs() {
		if got, want := tr.CommonItems(idx), ref.CommonItems(pr.U, pr.V); got != want {
			t.Errorf("pair %v: %d vs %d", pr, got, want)
		}
	}
}

func TestPairTrackerRejectsDuplicates(t *testing.T) {
	if _, err := NewPairTracker([]Pair{MakePair(1, 2), MakePair(2, 1)}); err == nil {
		t.Error("duplicate pair accepted")
	}
}

func TestPairTrackerInfeasibleLeavesCountsAlone(t *testing.T) {
	tr, _ := NewPairTracker([]Pair{MakePair(1, 2)})
	tr.MustApply(stream.Edge{User: 1, Item: 5, Op: stream.Insert})
	tr.MustApply(stream.Edge{User: 2, Item: 5, Op: stream.Insert})
	if tr.CommonItems(0) != 1 {
		t.Fatalf("setup: common = %d", tr.CommonItems(0))
	}
	if err := tr.Apply(stream.Edge{User: 1, Item: 5, Op: stream.Insert}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if tr.CommonItems(0) != 1 {
		t.Errorf("infeasible element changed count to %d", tr.CommonItems(0))
	}
}

func TestCommonItemsSymmetricProperty(t *testing.T) {
	err := quick.Check(func(itemsA, itemsB []uint8) bool {
		s := NewStore()
		addAll := func(u stream.User, items []uint8) {
			seen := map[uint8]bool{}
			for _, i := range items {
				if !seen[i] {
					seen[i] = true
					s.MustApply(stream.Edge{User: u, Item: stream.Item(i), Op: stream.Insert})
				}
			}
		}
		addAll(1, itemsA)
		addAll(2, itemsB)
		return s.CommonItems(1, 2) == s.CommonItems(2, 1) &&
			s.Jaccard(1, 2) == s.Jaccard(2, 1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
