// Package metrics implements the measurement vocabulary of the module,
// in two halves.
//
// The accuracy half is the paper's §V error metrics — AAPE (average
// absolute percentage error) for the common-item estimate ŝ and ARMSE
// (average root mean square error) for the Jaccard estimate Ĵ — plus MAE
// and MeanBias for the ablations, and the Series/Collector time-series
// types the over-time figures are built from.
//
// The operations half serves running deployments: ShardStat is the
// per-shard health snapshot reported by the sharded ingestion engine
// (internal/engine) — accepted/applied counters, queue backlog, per-shard
// array load β — and RateMeter turns monotone counters into windowed
// edges-per-second rates for throughput harnesses and dashboards.
package metrics
