package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// WindowExperiment measures the sliding-window subsystem at the
// paper-scale sketch configuration (m = 2^24, k = λ·32·K32 = 6400 by
// default):
//
//   - Rotation cost: the time to retire one bucket (core.Window.Rotate)
//     at several bucket fill levels. Rotation re-XORs the retired bucket
//     out of the merged view — an O(sketch) array pass plus the bucket's
//     counter entries — so the cost must stay flat as the edges per
//     bucket grow 10x; the "x vs 10x fill" ratio row pins that claim.
//
//   - Windowed accuracy: the runtime workload is streamed in time order
//     across 3·B bucket spans, rotating at every span boundary. At the
//     end, the live window sketch must serialize bit-identically to a
//     fresh sketch built from only the in-window edges (the parity gate —
//     an error, not a row, when violated), and the table reports the mean
//     absolute Jaccard error against exact in-window ground truth for the
//     windowed sketch vs. a full-stream (never-forgetting) sketch — the
//     stale mass an unwindowed deployment would serve.
func WindowExperiment(opts Options, buckets int) (*Table, error) {
	opts = opts.normalized()
	if buckets < 1 {
		return nil, fmt.Errorf("experiments: window needs at least 1 bucket, got %d", buckets)
	}

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = opts.RuntimeEdges
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	// The paper-scale read-path configuration, matching the query
	// experiment: a 2 MiB shared array with the §V virtual sketch size.
	cfg := core.Config{
		MemoryBits: 1 << 24,
		SketchBits: opts.Lambda * 32 * opts.K32,
		Seed:       uint64(opts.Seed),
	}

	tbl := &Table{
		ID:     "window",
		Title:  "sliding window: rotation cost and windowed accuracy vs exact rebuild",
		Header: []string{"op", "detail", "value"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (after dynamize: %d)", p.Name, p.Users, p.Edges, len(edges))
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d; window: %d buckets", cfg.MemoryBits, cfg.SketchBits, cfg.Seed, buckets)
	tbl.AddNote("rotation = Unmerge(oldest bucket) + reset: O(sketch) array pass, independent of edges/bucket")

	// --- rotation cost vs bucket fill -------------------------------------
	bucketDur := time.Second
	fillSmall := len(edges) / 10
	rotNS := func(fill int) (float64, error) {
		w, err := core.NewWindowAt(cfg, buckets, bucketDur, time.Unix(1, 0))
		if err != nil {
			return 0, err
		}
		// Minimum of repeated single-rotation timings: each sample is one
		// O(sketch) pass (~ms at m=2^24), and the minimum is the sample
		// least disturbed by GC and scheduler noise — the right estimator
		// for a fixed-work operation on a shared machine.
		const reps = 9
		best := time.Duration(math.MaxInt64)
		pos := 0
		for r := 0; r < reps; r++ {
			for i := 0; i < fill; i++ {
				w.Process(edges[pos%len(edges)])
				pos++
			}
			t0 := time.Now()
			w.Rotate()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return float64(best.Nanoseconds()), nil
	}
	nsSmall, err := rotNS(fillSmall)
	if err != nil {
		return nil, err
	}
	nsFull, err := rotNS(len(edges))
	if err != nil {
		return nil, err
	}
	tbl.AddRow("rotate", fmt.Sprintf("%d edges/bucket", fillSmall), fmt.Sprintf("%.0f ns", nsSmall))
	tbl.AddRow("rotate", fmt.Sprintf("%d edges/bucket", len(edges)), fmt.Sprintf("%.0f ns", nsFull))
	tbl.AddRow("rotate", "10x fill cost ratio (O(sketch) => ~1)", fmt.Sprintf("%.2fx", nsFull/nsSmall))

	// --- windowed drive: parity gate + accuracy ---------------------------
	// The accuracy drive streams the insert-only base workload: "who is
	// similar over the last hour" asks about the window's own edges, and a
	// fully dynamic stream's window can contain deletes of edges inserted
	// before the window, whose ground truth is not derivable from the
	// window alone (deletion parity inside windows is pinned by the core
	// and engine window tests instead).
	spans := 3 * buckets
	w, err := core.NewWindowAt(cfg, buckets, bucketDur, time.Unix(1, 0))
	if err != nil {
		return nil, err
	}
	full := core.MustNew(cfg)
	inWindow := make([][]stream.Edge, buckets)
	per := len(base) / spans
	for s := 0; s < spans; s++ {
		lo, hi := s*per, (s+1)*per
		if s == spans-1 {
			hi = len(base)
		}
		for _, e := range base[lo:hi] {
			w.Process(e)
			full.Process(e)
		}
		inWindow[buckets-1] = append(inWindow[buckets-1], base[lo:hi]...)
		if s < spans-1 {
			w.Rotate()
			copy(inWindow, inWindow[1:])
			inWindow[buckets-1] = nil
		}
	}

	// Parity gate: the live window sketch must be bit-identical to a fresh
	// sketch over only the in-window edges.
	fresh := core.MustNew(cfg)
	live := map[stream.User]map[stream.Item]bool{}
	for _, be := range inWindow {
		for _, e := range be {
			fresh.Process(e)
			s := live[e.User]
			if s == nil {
				s = map[stream.Item]bool{}
				live[e.User] = s
			}
			if e.Op == stream.Insert {
				s[e.Item] = true
			} else {
				delete(s, e.Item)
			}
		}
	}
	wb, err := w.Merged().MarshalBinary()
	if err != nil {
		return nil, err
	}
	fb, err := fresh.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(wb, fb) {
		return nil, fmt.Errorf("experiments: window parity violated — live window sketch diverges from a fresh sketch over the in-window edges")
	}
	tbl.AddRow("parity", "window bytes vs fresh in-window rebuild", "bit-identical")

	// Accuracy against exact in-window ground truth: sample pairs among
	// the highest-cardinality in-window users.
	users := make([]stream.User, 0, len(live))
	for u, s := range live {
		if len(s) > 0 {
			users = append(users, u)
		}
	}
	sortUsersByCard(users, live)
	if len(users) > 60 {
		users = users[:60]
	}
	var windowMAE, fullMAE float64
	pairs := 0
	for i := 0; i < len(users) && pairs < opts.MaxPairs; i++ {
		for j := i + 1; j < len(users) && pairs < opts.MaxPairs; j++ {
			u, v := users[i], users[j]
			truth := exactJaccard(live[u], live[v])
			windowMAE += math.Abs(w.Query(u, v).Jaccard - truth)
			fullMAE += math.Abs(full.Query(u, v).Jaccard - truth)
			pairs++
		}
	}
	if pairs == 0 {
		return nil, fmt.Errorf("experiments: window accuracy found no comparable pairs")
	}
	windowMAE /= float64(pairs)
	fullMAE /= float64(pairs)
	tbl.AddNote("accuracy: mean |Ĵ−J| over %d pairs of the top in-window users, truth = exact in-window Jaccard", pairs)
	tbl.AddRow("accuracy", "windowed sketch (in-window state only)", fmt.Sprintf("%.4f", windowMAE))
	tbl.AddRow("accuracy", "full-stream sketch (stale mass retained)", fmt.Sprintf("%.4f", fullMAE))
	return tbl, nil
}

// sortUsersByCard orders users by live in-window set size, largest first,
// ties by user ID for determinism.
func sortUsersByCard(users []stream.User, live map[stream.User]map[stream.Item]bool) {
	sort.Slice(users, func(i, j int) bool {
		a, b := users[i], users[j]
		if len(live[a]) != len(live[b]) {
			return len(live[a]) > len(live[b])
		}
		return a < b
	})
}

// exactJaccard computes |A∩B| / |A∪B| over live item sets.
func exactJaccard(a, b map[stream.Item]bool) float64 {
	inter := 0
	for it := range a {
		if b[it] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
