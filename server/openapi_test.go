package server

// Keeps docs/openapi.yaml honest: every route and every envelope code
// registered in this package must appear in the spec, and the spec must
// hold the structural anchors the wire contract promises. The routes and
// codes are harvested from the SOURCE (string literals in server.go and
// types.go), not from hand-maintained lists, so adding an endpoint or an
// error code without documenting it fails this test — the same contract
// CI's grep step enforces outside the test binary.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func readRepoFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

// sourceRoutes extracts every "/v1/..." string literal from server.go —
// the single place routes are registered.
func sourceRoutes(t *testing.T) []string {
	t.Helper()
	src := readRepoFile(t, "server.go")
	re := regexp.MustCompile(`"(/v1/[a-z]+(?:/[a-z]+)*)"`)
	seen := map[string]bool{}
	var out []string
	for _, m := range re.FindAllStringSubmatch(src, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			out = append(out, m[1])
		}
	}
	if len(out) < 14 {
		t.Fatalf("found only %d routes in server.go — extraction broken?", len(out))
	}
	return out
}

// sourceErrorCodes extracts every `Code* = "..."` constant from types.go.
func sourceErrorCodes(t *testing.T) []string {
	t.Helper()
	src := readRepoFile(t, "types.go")
	re := regexp.MustCompile(`Code[A-Za-z]+\s*=\s*"([a-z_]+)"`)
	var out []string
	for _, m := range re.FindAllStringSubmatch(src, -1) {
		out = append(out, m[1])
	}
	if len(out) < 11 {
		t.Fatalf("found only %d error codes in types.go — extraction broken?", len(out))
	}
	return out
}

func TestOpenAPICoversEveryRoute(t *testing.T) {
	spec := readRepoFile(t, "../docs/openapi.yaml")
	for _, route := range sourceRoutes(t) {
		if !strings.Contains(spec, "\n  "+route+":") {
			t.Errorf("route %s registered in server.go but missing from docs/openapi.yaml paths", route)
		}
	}
}

func TestOpenAPICoversEveryErrorCode(t *testing.T) {
	spec := readRepoFile(t, "../docs/openapi.yaml")
	for _, code := range sourceErrorCodes(t) {
		if !strings.Contains(spec, "- "+code) {
			t.Errorf("error code %q defined in types.go but missing from the docs/openapi.yaml envelope enum", code)
		}
	}
}

func TestOpenAPIStructure(t *testing.T) {
	spec := readRepoFile(t, "../docs/openapi.yaml")
	if !strings.HasPrefix(spec, "openapi: 3.1") {
		t.Error("spec must declare OpenAPI 3.1")
	}
	if strings.Contains(spec, "\t") {
		t.Error("YAML must not contain tab characters")
	}
	// Anchors of the wire contract the spec exists to document.
	for _, anchor := range []string{
		"paths:",
		"components:",
		"VOSSTRM1",                         // the binary ingest codec
		"Retry-After",                      // backpressure contract
		HeaderBatchTs,                      // batch event-time header
		ContentTypeBinary,                  // binary ingest content type
		ContentTypeNDJSON,                  // NDJSON ingest content type
		`"411"`, `"413"`, `"429"`, `"499"`, // backpressure + cancel statuses
		"draining",           // drain-vs-unavailable semantics
		"enum: [exact, ann]", // the top-K candidate-generation mode
		`"501"`,              // ann/checkpoint capability degradation
		HeaderPartial,        // degraded scatter-gather marker on /v1/topk
	} {
		if !strings.Contains(spec, anchor) {
			t.Errorf("spec is missing required anchor %q", anchor)
		}
	}
}
