package metrics

import "fmt"

// UDPStats is the UDP ingest plane's counter snapshot, as reported by the
// datagram receiver (internal/netproto) and surfaced on /v1/stats. It is
// the operational answer to the one question a fire-and-forget XOR stream
// must keep answerable: has anything been lost, replayed, or rejected —
// i.e. has the sketch diverged from what the senders sent?
//
// GapsDetected > 0 means frames were confirmed lost (their sequence slid
// out of the reorder window without arriving): the sketch is missing
// those batches, knowably. ReplaysDropped counts duplicates the receiver
// refused to fold in twice; StaleDropped counts frames too old to prove
// fresh (including senders reusing a session id after a restart). All
// three staying zero means every received batch was applied exactly once.
type UDPStats struct {
	// FramesReceived counts datagrams read off the socket, well-formed or
	// not.
	FramesReceived uint64
	// FramesApplied counts data frames folded into the sketch;
	// EdgesApplied is their summed edge count.
	FramesApplied uint64
	EdgesApplied  uint64
	// Malformed counts datagrams rejected by the frame decoder (bad
	// magic, version, type, truncated or forged payloads).
	Malformed uint64
	// GapsDetected counts frames confirmed lost across all sessions.
	GapsDetected uint64
	// ReplaysDropped counts duplicate frames dropped; LateApplied counts
	// reordered frames that still arrived inside the window and were
	// applied out of order; StaleDropped counts frames older than the
	// window, dropped because a late original and a replay are no longer
	// distinguishable.
	ReplaysDropped uint64
	LateApplied    uint64
	StaleDropped   uint64
	// AdmitRejected counts frames dropped by the shared ingest admission
	// budget (the datagram plane's form of backpressure: the frame is
	// shed and later surfaces as a gap to its sender).
	AdmitRejected uint64
	// SinkErrors counts frames whose batch the engine refused (e.g.
	// mid-shutdown); their edges were not applied.
	SinkErrors uint64
	// AcksSent counts ack frames answered to FlagAckRequest senders.
	AcksSent uint64
	// Sessions is the number of live sender sessions; SessionsEvicted
	// counts sessions dropped because the bounded session table was full.
	Sessions        int
	SessionsEvicted uint64
}

// String renders the stats compactly for logs.
func (s UDPStats) String() string {
	return fmt.Sprintf("udp: %d frames (%d applied, %d edges), gaps=%d replays=%d stale=%d late=%d, %d sessions",
		s.FramesReceived, s.FramesApplied, s.EdgesApplied, s.GapsDetected, s.ReplaysDropped,
		s.StaleDropped, s.LateApplied, s.Sessions)
}

// Clean reports whether the plane has seen zero loss, replay, and
// rejection — the condition under which the sketch provably equals a
// clean-delivery run of the received stream.
func (s UDPStats) Clean() bool {
	return s.GapsDetected == 0 && s.ReplaysDropped == 0 && s.StaleDropped == 0 &&
		s.Malformed == 0 && s.AdmitRejected == 0 && s.SinkErrors == 0
}
