// Package bitset implements a fixed-length bit array with O(1) maintained
// popcount, the storage substrate for both the shared array A of VOS and the
// per-set odd sketches.
//
// The VOS update rule needs two operations to be constant time: flipping one
// bit, and reading the global fraction of 1-bits (the paper's β counter).
// Bitset keeps a running ones count updated on every mutation so both are
// O(1); the paper's separate β bookkeeping becomes a single division.
package bitset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Bitset is a fixed-length array of bits with a maintained count of 1-bits.
// The zero value is unusable; construct with New. Bitset is not safe for
// concurrent mutation.
type Bitset struct {
	words []uint64
	n     uint64 // number of valid bits
	ones  uint64 // maintained popcount
}

// New creates a Bitset of n zero bits. n must be >= 1.
func New(n uint64) *Bitset {
	if n == 0 {
		panic("bitset: length must be positive")
	}
	return &Bitset{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// Len returns the number of bits.
func (b *Bitset) Len() uint64 { return b.n }

// Count returns the number of 1-bits, in O(1).
func (b *Bitset) Count() uint64 { return b.ones }

// OnesFraction returns Count()/Len(), the paper's β when the Bitset is the
// shared array A.
func (b *Bitset) OnesFraction() float64 {
	return float64(b.ones) / float64(b.n)
}

// Get returns bit i.
func (b *Bitset) Get(i uint64) bool {
	b.check(i)
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// GetBit returns bit i as 0 or 1, convenient for XOR arithmetic.
func (b *Bitset) GetBit(i uint64) uint64 {
	b.check(i)
	return (b.words[i>>6] >> (i & 63)) & 1
}

// Set sets bit i to 1.
func (b *Bitset) Set(i uint64) {
	b.check(i)
	w, m := i>>6, uint64(1)<<(i&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.ones++
	}
}

// Clear sets bit i to 0.
func (b *Bitset) Clear(i uint64) {
	b.check(i)
	w, m := i>>6, uint64(1)<<(i&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.ones--
	}
}

// Flip toggles bit i and returns its new value. This is the O(1) XOR update
// at the heart of VOS.
func (b *Bitset) Flip(i uint64) bool {
	b.check(i)
	w, m := i>>6, uint64(1)<<(i&63)
	b.words[w] ^= m
	if b.words[w]&m != 0 {
		b.ones++
		return true
	}
	b.ones--
	return false
}

// SetTo forces bit i to v.
func (b *Bitset) SetTo(i uint64, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Reset zeroes every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.ones = 0
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n, ones: b.ones}
}

// Equal reports whether two bitsets have identical length and contents.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Xor replaces b with b XOR o. Both bitsets must have the same length.
// Odd sketches combine by XOR: odd(S₁) ⊕ odd(S₂) = odd(S₁ Δ S₂).
func (b *Bitset) Xor(o *Bitset) {
	if b.n != o.n {
		panic("bitset: length mismatch in Xor")
	}
	ones := uint64(0)
	for i := range b.words {
		b.words[i] ^= o.words[i]
		ones += uint64(bits.OnesCount64(b.words[i]))
	}
	b.ones = ones
}

// XorCount returns the number of positions where b and o differ (the
// popcount of b XOR o) without materialising the XOR. Both bitsets must have
// the same length.
func (b *Bitset) XorCount(o *Bitset) uint64 {
	if b.n != o.n {
		panic("bitset: length mismatch in XorCount")
	}
	return b.XorCountWords(o.words)
}

// XorCountWords is XorCount against a raw packed word slice, as returned
// by UnsafeWords — the pure word-level pair comparison between two cached
// recovered sketches. len(ws) must equal the word count of b, and any tail
// bits past b.Len() must be zero (UnsafeWords output always satisfies
// both).
func (b *Bitset) XorCountWords(ws []uint64) uint64 {
	if len(ws) != len(b.words) {
		panic("bitset: word-count mismatch in XorCountWords")
	}
	return xorCountWordsKernel(b.words, ws)
}

// XorCountWordsRef is XorCountWords pinned to the portable reference
// kernel, regardless of platform dispatch — for cross-checking and for
// benchmarking the dispatch win.
func (b *Bitset) XorCountWordsRef(ws []uint64) uint64 {
	if len(ws) != len(b.words) {
		panic("bitset: word-count mismatch in XorCountWords")
	}
	return xorCountWordsRef(b.words, ws)
}

// FastKernels reports whether this build dispatches the public methods to
// the blocked kernels (false under the purego build tag and on targets
// without a tuned shape).
func FastKernels() bool { return fastKernels }

// UnsafeWords exposes the backing word slice, least-significant bit first,
// tail bits zero, WITHOUT copying — "Unsafe" because the slice aliases the
// bitset's storage and mutating it would silently corrupt the bitset
// (ones count included) and every cache entry sharing it. Callers must
// treat the result as read-only. It exists so packed recovered sketches
// can be cached as plain []uint64 values and compared later with
// XorCountWords.
func (b *Bitset) UnsafeWords() []uint64 { return b.words }

// FromWordsUnsafe wraps an UnsafeWords-style slice as an n-bit Bitset
// WITHOUT copying: the bitset and the slice share storage, so neither may
// be mutated afterwards (read-only views over cached packed sketches). The
// slice must hold exactly (n+63)/64 words with zero tail bits, as
// UnsafeWords produces.
func FromWordsUnsafe(ws []uint64, n uint64) *Bitset {
	ones := uint64(0)
	for _, w := range ws {
		ones += uint64(bits.OnesCount64(w))
	}
	return FromWordsCountedUnsafe(ws, n, ones)
}

// FromWordsCountedUnsafe is FromWordsUnsafe with a caller-supplied ones
// count, skipping the recount — for cache hits where Count was recorded
// when the words were first materialised. ones must equal the popcount of
// ws; the same aliasing contract applies.
func FromWordsCountedUnsafe(ws []uint64, n, ones uint64) *Bitset {
	if n == 0 || len(ws) != int((n+63)/64) {
		panic(fmt.Sprintf("bitset: FromWords*Unsafe: %d words cannot back %d bits", len(ws), n))
	}
	return &Bitset{words: ws, n: n, ones: ones}
}

// Gather returns a new Bitset of len(idx) bits whose bit j equals b's bit
// idx[j] — the packed materialisation of a virtual sketch scattered across
// a large shared array. Every index must be in [0, b.Len()).
func (b *Bitset) Gather(idx []uint64) *Bitset {
	out := New(uint64(len(idx)))
	out.ones = gatherWords(out.words, b.words, b.n, idx)
	return out
}

// GatherRef is Gather pinned to the portable reference kernel, regardless
// of platform dispatch — for cross-checking and for benchmarking the
// dispatch win.
func (b *Bitset) GatherRef(idx []uint64) *Bitset {
	out := New(uint64(len(idx)))
	out.ones = gatherWordsRef(out.words, b.words, b.n, idx)
	return out
}

// GatherXorCount returns the number of positions j where b's bit idx[j]
// differs from o's bit j — popcount(Gather(idx) XOR o) without
// materialising the gathered bitset. o.Len() must equal len(idx) and every
// index must be in [0, b.Len()).
//
// This is the inner loop of a materialized pair query: o holds one user's
// recovered (packed) virtual sketch, idx holds the other user's array
// positions, and the result is the differing-slot count z the estimator
// consumes. The XOR happens a word (64 slots) at a time.
func (b *Bitset) GatherXorCount(idx []uint64, o *Bitset) uint64 {
	if o.n != uint64(len(idx)) {
		panic("bitset: length mismatch in GatherXorCount")
	}
	return gatherXorCountWords(b.words, b.n, idx, o.words)
}

// GatherXorCountRef is GatherXorCount pinned to the portable reference
// kernel, regardless of platform dispatch — for cross-checking and for
// benchmarking the dispatch win.
func (b *Bitset) GatherXorCountRef(idx []uint64, o *Bitset) uint64 {
	if o.n != uint64(len(idx)) {
		panic("bitset: length mismatch in GatherXorCount")
	}
	return gatherXorCountRef(b.words, b.n, idx, o.words)
}

// check panics when i is out of range. The tail bits of the last word are
// never addressable, so the ones count stays exact.
func (b *Bitset) check(i uint64) {
	if i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0, %d)", i, b.n))
	}
}

// Serialization format: magic, length (bits), words. The ones count is
// recomputed on load so a corrupted count cannot be smuggled in.
const marshalMagic = uint32(0x0b175e70)

// MarshalBinary encodes the bitset.
func (b *Bitset) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+8+8*len(b.words))
	binary.LittleEndian.PutUint32(out[0:], marshalMagic)
	binary.LittleEndian.PutUint64(out[4:], b.n)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[12+8*i:], w)
	}
	return out, nil
}

// ErrCorrupt reports that a serialized bitset failed validation.
var ErrCorrupt = errors.New("bitset: corrupt serialized data")

// UnmarshalBinary decodes a bitset produced by MarshalBinary, validating the
// header, the payload length, and that no bits beyond Len are set.
func (b *Bitset) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != marshalMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(data[4:])
	if n == 0 {
		return fmt.Errorf("%w: zero length", ErrCorrupt)
	}
	nWords := int((n + 63) / 64)
	if len(data) != 12+8*nWords {
		return fmt.Errorf("%w: payload is %d bytes, want %d", ErrCorrupt, len(data), 12+8*nWords)
	}
	words := make([]uint64, nWords)
	ones := uint64(0)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[12+8*i:])
		ones += uint64(bits.OnesCount64(words[i]))
	}
	if tail := n & 63; tail != 0 {
		if words[nWords-1]&^((uint64(1)<<tail)-1) != 0 {
			return fmt.Errorf("%w: bits set beyond length %d", ErrCorrupt, n)
		}
	}
	b.words, b.n, b.ones = words, n, ones
	return nil
}
