package unigraph

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func testConfig() Config {
	return Config{MemoryBits: 1 << 20, SketchBits: 2048, Seed: 5}
}

func TestProcessValidation(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Process(Edge{U: 1, V: 1, Op: stream.Insert}); err == nil {
		t.Error("self-loop accepted")
	}
	if err := s.Process(Edge{U: 1, V: 2, Op: stream.Op(9)}); err == nil {
		t.Error("invalid op accepted")
	}
	if err := s.Process(Edge{U: 1, V: 2, Op: stream.Insert}); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestUndirectedDegrees(t *testing.T) {
	s, _ := New(testConfig())
	s.MustProcess(Edge{U: 1, V: 2, Op: stream.Insert})
	s.MustProcess(Edge{U: 1, V: 3, Op: stream.Insert})
	if s.Degree(1) != 2 || s.Degree(2) != 1 || s.Degree(3) != 1 {
		t.Errorf("degrees %d/%d/%d", s.Degree(1), s.Degree(2), s.Degree(3))
	}
	s.MustProcess(Edge{U: 1, V: 2, Op: stream.Delete})
	if s.Degree(1) != 1 || s.Degree(2) != 0 {
		t.Errorf("after unfollow: %d/%d", s.Degree(1), s.Degree(2))
	}
	if s.Directed() {
		t.Error("New should build undirected")
	}
}

func TestDirectedDegrees(t *testing.T) {
	s, _ := NewDirected(testConfig())
	s.MustProcess(Edge{U: 1, V: 2, Op: stream.Insert})
	if s.Degree(1) != 1 || s.Degree(2) != 0 {
		t.Errorf("directed degrees %d/%d", s.Degree(1), s.Degree(2))
	}
	if !s.Directed() {
		t.Error("Directed() false")
	}
}

func TestCommonNeighborsAccuracy(t *testing.T) {
	// Users 1 and 2 share 80 neighbors (IDs 100-179); user 1 has 40
	// private neighbors, user 2 has 20.
	s, _ := New(testConfig())
	for i := stream.User(100); i < 180; i++ {
		s.MustProcess(Edge{U: 1, V: i, Op: stream.Insert})
		s.MustProcess(Edge{U: 2, V: i, Op: stream.Insert})
	}
	for i := stream.User(1000); i < 1040; i++ {
		s.MustProcess(Edge{U: 1, V: i, Op: stream.Insert})
	}
	for i := stream.User(2000); i < 2020; i++ {
		s.MustProcess(Edge{U: 2, V: i, Op: stream.Insert})
	}
	est := s.Query(1, 2)
	if math.Abs(est.Common-80) > 20 {
		t.Errorf("common neighbors ≈ %.1f, want ~80", est.Common)
	}
	trueJ := 80.0 / 140.0
	if math.Abs(est.Jaccard-trueJ) > 0.12 {
		t.Errorf("J ≈ %.3f, want ~%.3f", est.Jaccard, trueJ)
	}
	if got := s.EstimateCommonNeighbors(1, 2); got != est.Common {
		t.Error("EstimateCommonNeighbors inconsistent with Query")
	}
	if got := s.EstimateJaccard(1, 2); got != est.Jaccard {
		t.Error("EstimateJaccard inconsistent with Query")
	}
}

func TestAdjacentUsersNotAutomaticallySimilar(t *testing.T) {
	// A single edge (1, 2): N(1) = {2}, N(2) = {1} — disjoint sets.
	s, _ := New(testConfig())
	s.MustProcess(Edge{U: 1, V: 2, Op: stream.Insert})
	if got := s.EstimateJaccard(1, 2); got > 0.2 {
		t.Errorf("adjacent-only users scored J = %v", got)
	}
}

func TestUnfollowExactCancellation(t *testing.T) {
	cfg := testConfig()
	a, _ := New(cfg)
	b, _ := New(cfg)
	edges := []Edge{
		{U: 1, V: 2, Op: stream.Insert},
		{U: 1, V: 3, Op: stream.Insert},
		{U: 2, V: 3, Op: stream.Insert},
	}
	for _, e := range edges {
		a.MustProcess(e)
		b.MustProcess(e)
	}
	// b additionally gains and loses 100 transient edges.
	for i := stream.User(500); i < 600; i++ {
		b.MustProcess(Edge{U: 7, V: i, Op: stream.Insert})
	}
	for i := stream.User(500); i < 600; i++ {
		b.MustProcess(Edge{U: 7, V: i, Op: stream.Delete})
	}
	qa, qb := a.Query(1, 2), b.Query(1, 2)
	if qa != qb {
		t.Errorf("churn changed state: %+v vs %+v", qa, qb)
	}
	if b.Degree(7) != 0 {
		t.Errorf("degree 7 = %d after full churn", b.Degree(7))
	}
}

func TestMergeShards(t *testing.T) {
	cfg := testConfig()
	full, _ := New(cfg)
	s1, _ := New(cfg)
	s2, _ := New(cfg)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		e := Edge{
			U:  stream.User(rng.Intn(50)),
			V:  stream.User(50 + rng.Intn(1000)),
			Op: stream.Insert,
		}
		full.MustProcess(e)
		if i%2 == 0 {
			s1.MustProcess(e)
		} else {
			s2.MustProcess(e)
		}
	}
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if full.Query(0, 1) != s1.Query(0, 1) {
		t.Error("merged query differs from sequential")
	}
	// Directedness mismatch rejected.
	d, _ := NewDirected(cfg)
	if err := s1.Merge(d); err == nil {
		t.Error("directed/undirected merge accepted")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{U: 3, V: 4, Op: stream.Delete}
	if e.String() != "(3–4, -)" {
		t.Errorf("String() = %q", e.String())
	}
}
