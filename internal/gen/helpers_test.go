package gen

import "math/rand"

// randSource is a test helper returning a seeded *rand.Rand.
func randSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
