package cluster

import (
	"errors"
	"testing"
)

// FuzzRingDecode throws arbitrary bytes at the ring decoder with the same
// contract FuzzUnmarshalVOS set for the sketch format: never panic, fail
// corrupt input with the typed ErrBadRing, never allocate proportionally
// to attacker-declared sizes (the byte cap bounds the document before
// parsing, the shard cap bounds the table after), and round-trip anything
// accepted bit-compatibly.
func FuzzRingDecode(f *testing.F) {
	good, err := EncodeRing(testRing())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":1,"route_seed":0,"shards":["http://h:1"]}`))
	f.Add([]byte(`{"version":0,"shards":[]}`))
	f.Add([]byte(`{"version":1,"shards":["http://h:1","http://h:1"]}`))
	f.Add([]byte(`{"version":1,"shards":["ftp://h:1"]}`))
	f.Add([]byte(`{"version":1,"shards":["http://h:1"],"unknown":1}`))
	f.Add([]byte(`{"version":1,"shards":["http://h:1"]}{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRing(data)
		if err != nil {
			if !errors.Is(err, ErrBadRing) {
				t.Fatalf("non-ErrBadRing decode failure: %v", err)
			}
			return
		}
		re, err := EncodeRing(r)
		if err != nil {
			t.Fatalf("re-encode of accepted ring failed: %v", err)
		}
		again, err := DecodeRing(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Version != r.Version || again.RouteSeed != r.RouteSeed || len(again.Shards) != len(r.Shards) {
			t.Fatal("round trip changed the ring")
		}
		for i := range r.Shards {
			if again.Shards[i] != r.Shards[i] {
				t.Fatal("round trip changed a shard entry")
			}
		}
	})
}

// FuzzClusterManifest is FuzzRingDecode for the manifest format.
func FuzzClusterManifest(f *testing.F) {
	good, err := EncodeManifest(testManifest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("["))
	f.Add([]byte(`{"ring_version":1,"route_seed":0,"shards":[{"shard":0,"node":"n","position":9}]}`))
	f.Add([]byte(`{"ring_version":0,"shards":[]}`))
	f.Add([]byte(`{"ring_version":1,"shards":[{"shard":3,"node":"n","position":0}]}`))
	f.Add([]byte(`{"ring_version":1,"shards":[{"shard":0,"node":"","position":0}]}`))
	f.Add([]byte(`{"ring_version":1,"shards":[{"shard":0,"node":"n"}],"x":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("non-ErrBadManifest decode failure: %v", err)
			}
			return
		}
		re, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("re-encode of accepted manifest failed: %v", err)
		}
		again, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.RingVersion != m.RingVersion || again.RouteSeed != m.RouteSeed || len(again.Shards) != len(m.Shards) {
			t.Fatal("round trip changed the manifest")
		}
		for i := range m.Shards {
			if again.Shards[i] != m.Shards[i] {
				t.Fatal("round trip changed a shard row")
			}
		}
	})
}
