package lsh

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/minhash"
	"github.com/vossketch/vos/internal/stream"
)

func TestParamsValidate(t *testing.T) {
	if (Params{Bands: 0, Rows: 4}).Validate() == nil {
		t.Error("zero bands accepted")
	}
	if (Params{Bands: 4, Rows: 0}).Validate() == nil {
		t.Error("zero rows accepted")
	}
	p := Params{Bands: 16, Rows: 4}
	if p.Validate() != nil || p.SignatureLen() != 64 {
		t.Errorf("params broken: %+v", p)
	}
}

func TestCollisionProbabilityShape(t *testing.T) {
	p := Params{Bands: 20, Rows: 5}
	if p.CollisionProbability(0) != 0 || p.CollisionProbability(1) != 1 {
		t.Error("endpoints wrong")
	}
	// Monotone increasing.
	prev := -1.0
	for j := 0.0; j <= 1.0; j += 0.05 {
		c := p.CollisionProbability(j)
		if c < prev {
			t.Fatalf("not monotone at J=%.2f", j)
		}
		prev = c
	}
	// S-curve: low similarity nearly never collides, high nearly always.
	if p.CollisionProbability(0.1) > 0.01 {
		t.Errorf("J=0.1 collides with prob %v", p.CollisionProbability(0.1))
	}
	if p.CollisionProbability(0.9) < 0.99 {
		t.Errorf("J=0.9 collides with prob %v", p.CollisionProbability(0.9))
	}
}

func TestThreshold(t *testing.T) {
	p := Params{Bands: 20, Rows: 5}
	// (1/20)^(1/5) ≈ 0.549
	if got := p.Threshold(); math.Abs(got-0.549) > 0.01 {
		t.Errorf("threshold = %v, want ~0.549", got)
	}
	// The collision probability at the threshold should be moderate.
	c := p.CollisionProbability(p.Threshold())
	if c < 0.3 || c > 0.9 {
		t.Errorf("collision at threshold = %v", c)
	}
}

// buildCorpus creates a MinHash sketch with one clear near-duplicate pair
// and unrelated background users.
func buildCorpus(t *testing.T, k int) (*minhash.Sketch, stream.User, stream.User) {
	t.Helper()
	mh := minhash.New(k, 7)
	// Users 1 and 2: J ≈ 0.8.
	common := gen.PlantedJaccard(200, 0.8)
	for _, e := range gen.PlantedPair(1, 2, 200, 200, common, 3) {
		mh.Process(e)
	}
	// Background users with disjoint item ranges.
	for u := stream.User(10); u < 110; u++ {
		for i := 0; i < 150; i++ {
			mh.Process(stream.Edge{
				User: u,
				Item: stream.Item(uint64(u)*100000 + uint64(i)),
				Op:   stream.Insert,
			})
		}
	}
	return mh, 1, 2
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	params := Params{Bands: 16, Rows: 4, Seed: 5}
	mh, a, b := buildCorpus(t, params.SignatureLen())

	ix, err := NewIndex(params)
	if err != nil {
		t.Fatal(err)
	}
	users := append([]stream.User{a, b}, usersRange(10, 110)...)
	for _, u := range users {
		if err := ix.Add(u, mh.Signature(u)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(users) {
		t.Fatalf("Len = %d", ix.Len())
	}

	cands, err := ix.Candidates(a, mh.Signature(a))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		if c == b {
			found = true
		}
	}
	if !found {
		t.Errorf("near-duplicate %d not among candidates %v", b, cands)
	}
	// The filter should prune the bulk of the 100 unrelated users.
	if len(cands) > 20 {
		t.Errorf("candidate set too large: %d of 101 possible", len(cands))
	}
}

func TestNearPipelineWithVerification(t *testing.T) {
	params := Params{Bands: 16, Rows: 4, Seed: 5}
	mh, a, b := buildCorpus(t, params.SignatureLen())
	ix, _ := NewIndex(params)
	for _, u := range append([]stream.User{a, b}, usersRange(10, 110)...) {
		if err := ix.Add(u, mh.Signature(u)); err != nil {
			t.Fatal(err)
		}
	}
	// The MinHash sketch itself is the verification scorer here; any
	// similarity.Estimator (e.g. VOS) plugs in identically.
	near, err := ix.Near(a, mh.Signature(a), mh, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(near) == 0 || near[0] != b {
		t.Errorf("Near = %v, want [%d …]", near, b)
	}
}

func TestIndexRejectsBadInput(t *testing.T) {
	ix, _ := NewIndex(Params{Bands: 4, Rows: 4, Seed: 1})
	if err := ix.Add(1, make([]uint64, 15)); err == nil {
		t.Error("short signature accepted")
	}
	if err := ix.Add(1, make([]uint64, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, make([]uint64, 16)); err == nil {
		t.Error("duplicate user accepted")
	}
	if _, err := ix.Candidates(1, make([]uint64, 3)); err == nil {
		t.Error("short query signature accepted")
	}
	if _, err := NewIndex(Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestCandidatesExcludeSelf(t *testing.T) {
	ix, _ := NewIndex(Params{Bands: 2, Rows: 2, Seed: 1})
	sig := []uint64{1, 2, 3, 4}
	if err := ix.Add(7, sig); err != nil {
		t.Fatal(err)
	}
	cands, err := ix.Candidates(7, sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("self returned as candidate: %v", cands)
	}
}

func usersRange(from, to stream.User) []stream.User {
	out := make([]stream.User, 0, to-from)
	for u := from; u < to; u++ {
		out = append(out, u)
	}
	return out
}
