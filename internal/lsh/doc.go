// Package lsh implements banded locality-sensitive hashing over MinHash
// signatures — the standard candidate-generation structure for Jaccard
// near-neighbor search, and the application context of the densification
// line of work the paper cites (Shrivastava & Li ICML'14/UAI'14, ICML'17:
// "densifying one permutation hashing … for fast near neighbor search").
//
// The index splits a k-register signature into b bands of r rows
// (b·r = k); each band is hashed to a bucket, and two users collide in the
// index if any band matches exactly. The probability a pair at Jaccard
// similarity J collides is 1 − (1 − J^r)^b, the classic S-curve: pairs
// above the curve's threshold (≈ (1/b)^(1/r)) are found with high
// probability, pairs far below are filtered out without any pairwise work.
//
// Pipelines that need similarity *values*, not just candidates, verify the
// LSH candidates against a sketch estimator (e.g. VOS via the similarity
// package) — see Index.Near and the lsh tests for the composition.
package lsh
