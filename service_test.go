package vos_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/vossketch/vos"
)

func serviceSketchConfig() vos.Config {
	return vos.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 7}
}

// TestServiceAdaptersAgree: the three in-process adapters answer the same
// stream identically — the interface is a veneer, not a third estimator.
func TestServiceAdaptersAgree(t *testing.T) {
	ctx := context.Background()
	edges := engineTestStream(8_000, 60, 0.25, 21)

	eng := vos.MustNewEngine(vos.EngineConfig{Sketch: serviceSketchConfig(), Shards: 2})
	defer eng.Close()
	cs, err := vos.NewConcurrent(serviceSketchConfig())
	if err != nil {
		t.Fatal(err)
	}
	services := map[string]vos.SimilarityService{
		"engine":     vos.NewEngineService(eng),
		"sketch":     vos.NewSketchService(vos.MustNew(serviceSketchConfig())),
		"concurrent": vos.NewConcurrentService(cs),
	}
	for name, svc := range services {
		if err := svc.Ingest(ctx, edges); err != nil {
			t.Fatalf("%s: Ingest: %v", name, err)
		}
	}

	ref := services["sketch"]
	candidates := make([]vos.User, 50)
	for i := range candidates {
		candidates[i] = vos.User(i)
	}
	wantTop, err := ref.TopK(ctx, 1, candidates, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, svc := range services {
		for u := vos.User(0); u < 20; u++ {
			got, err := svc.Similarity(ctx, u, u+3)
			if err != nil {
				t.Fatalf("%s: Similarity: %v", name, err)
			}
			want, err := ref.Similarity(ctx, u, u+3)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: Similarity(%d,%d) = %+v, reference %+v", name, u, u+3, got, want)
			}
			gotCard, err := svc.Cardinality(ctx, u)
			if err != nil {
				t.Fatalf("%s: Cardinality: %v", name, err)
			}
			wantCard, _ := ref.Cardinality(ctx, u)
			if gotCard != wantCard {
				t.Fatalf("%s: Cardinality(%d) = %d, want %d", name, u, gotCard, wantCard)
			}
		}
		gotTop, err := svc.TopK(ctx, 1, candidates, 5)
		if err != nil {
			t.Fatalf("%s: TopK: %v", name, err)
		}
		if !reflect.DeepEqual(gotTop, wantTop) {
			t.Fatalf("%s: TopK = %+v, want %+v", name, gotTop, wantTop)
		}
		gotStats, err := svc.Stats(ctx)
		if err != nil {
			t.Fatalf("%s: Stats: %v", name, err)
		}
		wantStats, _ := ref.Stats(ctx)
		if gotStats != wantStats {
			t.Fatalf("%s: Stats = %+v, want %+v", name, gotStats, wantStats)
		}
	}
}

// TestServicePreCancelledContext: every method of every adapter refuses an
// already-cancelled context with ctx.Err().
func TestServicePreCancelledContext(t *testing.T) {
	eng := vos.MustNewEngine(vos.EngineConfig{Sketch: serviceSketchConfig(), Shards: 2})
	defer eng.Close()
	cs, err := vos.NewConcurrent(serviceSketchConfig())
	if err != nil {
		t.Fatal(err)
	}
	services := map[string]vos.SimilarityService{
		"engine":     vos.NewEngineService(eng),
		"sketch":     vos.NewSketchService(vos.MustNew(serviceSketchConfig())),
		"concurrent": vos.NewConcurrentService(cs),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	edges := []vos.Edge{{User: 1, Item: 2, Op: vos.Insert}}
	for name, svc := range services {
		if err := svc.Ingest(ctx, edges); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Ingest on cancelled ctx: %v", name, err)
		}
		if _, err := svc.Similarity(ctx, 1, 2); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Similarity on cancelled ctx: %v", name, err)
		}
		if _, err := svc.TopK(ctx, 1, []vos.User{2, 3}, 1); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: TopK on cancelled ctx: %v", name, err)
		}
		if _, err := svc.Cardinality(ctx, 1); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Cardinality on cancelled ctx: %v", name, err)
		}
		if _, err := svc.Stats(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Stats on cancelled ctx: %v", name, err)
		}
	}
}

// TestEngineTopKCancellationAborts is the acceptance-criterion test: a
// context cancelled while Engine.TopK's worker fan-out is mid-scan aborts
// the search with context.Canceled instead of running the candidate set to
// completion. The workload is sized so the scan takes hundreds of
// milliseconds cold (every candidate is a fresh recovery at k=4096), while
// the cancel lands after ~10ms — and the early return is also the -race
// target for the worker error plumbing.
func TestEngineTopKCancellationAborts(t *testing.T) {
	eng := vos.MustNewEngine(vos.EngineConfig{
		Sketch: vos.Config{MemoryBits: 1 << 22, SketchBits: 4096, Seed: 3},
		Shards: 2,
		// The candidate users below are cold on purpose: caches would make
		// the scan fast enough to finish before the cancel lands.
		PositionCacheUsers: -1,
	})
	defer eng.Close()
	var edges []vos.Edge
	for u := vos.User(0); u < 200; u++ {
		for i := 0; i < 20; i++ {
			edges = append(edges, vos.Edge{User: u, Item: vos.Item(int(u)*100 + i), Op: vos.Insert})
		}
	}
	if err := eng.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	eng.Flush()

	candidates := make([]vos.User, 30_000)
	for i := range candidates {
		candidates[i] = vos.User(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := eng.TopKContext(ctx, 1, candidates, 10)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled mid-flight TopK returned %v (after %s), want context.Canceled",
				err, time.Since(start))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled TopK never returned")
	}
}

// TestEngineServiceClosed: after Close, every service method returns the
// ErrClosed sentinel — typed lifecycle errors instead of stale answers.
func TestEngineServiceClosed(t *testing.T) {
	eng := vos.MustNewEngine(vos.EngineConfig{Sketch: serviceSketchConfig()})
	svc := vos.NewEngineService(eng)
	ctx := context.Background()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest(ctx, []vos.Edge{{User: 1, Item: 2, Op: vos.Insert}}); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Ingest after Close: %v", err)
	}
	if _, err := svc.Similarity(ctx, 1, 2); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Similarity after Close: %v", err)
	}
	if _, err := svc.TopK(ctx, 1, []vos.User{2}, 1); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("TopK after Close: %v", err)
	}
	if _, err := svc.Cardinality(ctx, 1); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Cardinality after Close: %v", err)
	}
	if _, err := svc.Stats(ctx); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Stats after Close: %v", err)
	}
	// ErrClosed and the legacy ErrEngineClosed are the same sentinel.
	if !errors.Is(vos.ErrClosed, vos.ErrEngineClosed) {
		t.Fatal("ErrClosed and ErrEngineClosed diverged")
	}
}

// TestQueryLocalTypedErrors pins the root-level view of the satellite fix:
// cross-shard pairs and recovered engines answer with sentinels, not
// silent zero estimates.
func TestQueryLocalTypedErrors(t *testing.T) {
	eng := vos.MustNewEngine(vos.EngineConfig{Sketch: serviceSketchConfig(), Shards: 4})
	defer eng.Close()
	u := vos.User(1)
	w := u + 1
	for eng.ShardOf(w) == eng.ShardOf(u) {
		w++
	}
	if _, err := eng.QueryLocal(u, w); !errors.Is(err, vos.ErrNotCoResident) {
		t.Fatalf("cross-shard QueryLocal: want ErrNotCoResident, got %v", err)
	}

	dir := t.TempDir()
	durable, err := vos.OpenEngine(dir, vos.EngineConfig{Sketch: serviceSketchConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.ProcessBatch(engineTestStream(500, 10, 0.2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := durable.Close(); err != nil { // writes the recovery checkpoint
		t.Fatal(err)
	}
	recovered, err := vos.OpenEngine(dir, vos.EngineConfig{Sketch: serviceSketchConfig(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if _, err := recovered.QueryLocal(1, 2); !errors.Is(err, vos.ErrQueryUnavailable) {
		t.Fatalf("QueryLocal on recovered engine: want ErrQueryUnavailable, got %v", err)
	}
}
