// Command vosinspect builds, saves, inspects and queries VOS sketches from
// recorded stream files and engine durability directories, demonstrating
// the production workflow: a stream worker builds and checkpoints the
// sketch, a query service loads it and answers similarity queries.
//
// Usage:
//
//	# build a sketch from a stream file (see cmd/streamgen)
//	vosinspect -stream youtube.stream -m 4194304 -k 6400 -o youtube.vos
//
//	# inspect a saved sketch
//	vosinspect -sketch youtube.vos
//
//	# query a user pair against a saved sketch
//	vosinspect -sketch youtube.vos -query 17,42
//
//	# dump an engine durability directory: checkpoint, WAL segments, and
//	# the recovered (checkpoint + replayed suffix) sketch state
//	vosinspect -wal /var/lib/vos -query 17,42
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/wal"
)

func main() {
	var (
		streamPath = flag.String("stream", "", "binary stream file to build from")
		memBits    = flag.Uint64("m", 1<<22, "shared array size in bits")
		kBits      = flag.Int("k", 6400, "virtual sketch size in bits")
		seed       = flag.Uint64("seed", 1, "sketch seed")
		out        = flag.String("o", "", "write the built sketch to this file")
		sketchPath = flag.String("sketch", "", "saved sketch file to inspect/query")
		walDir     = flag.String("wal", "", "engine durability directory to dump and recover")
		query      = flag.String("query", "", "user pair to query, as \"u,v\"")
	)
	flag.Parse()

	var sk *vos.Sketch
	switch {
	case *walDir != "":
		var err error
		sk, err = dumpWAL(*walDir, vos.Config{MemoryBits: *memBits, SketchBits: *kBits, Seed: *seed})
		if err != nil {
			fatal(err)
		}
	case *streamPath != "":
		f, err := os.Open(*streamPath)
		if err != nil {
			fatal(err)
		}
		edges, err := vos.ReadStreamBinary(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sk, err = vos.New(vos.Config{MemoryBits: *memBits, SketchBits: *kBits, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		for _, e := range edges {
			sk.Process(e)
		}
		fmt.Printf("built sketch from %d stream elements\n", len(edges))
		if *out != "" {
			data, err := sk.MarshalBinary()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("saved to %s (%d bytes)\n", *out, len(data))
		}
	case *sketchPath != "":
		data, err := os.ReadFile(*sketchPath)
		if err != nil {
			fatal(err)
		}
		sk, err = vos.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	st := sk.Stats()
	fmt.Printf("memory:      %d bits (%d bytes on wire)\n", st.MemoryBits, st.MemoryBytes)
	fmt.Printf("virtual k:   %d bits\n", st.SketchBits)
	fmt.Printf("array load:  β = %.4f (%d ones)\n", st.Beta, st.OnesCount)
	fmt.Printf("users:       %d with nonzero cardinality\n", st.Users)

	if *query != "" {
		u, v, err := parsePair(*query)
		if err != nil {
			fatal(err)
		}
		est := sk.Query(u, v)
		fmt.Printf("query (%d, %d):\n", u, v)
		fmt.Printf("  cardinalities:     n_u = %d, n_v = %d\n", est.CardinalityU, est.CardinalityV)
		fmt.Printf("  common items ŝ:    %.2f (clamped %.2f)\n", est.Common, est.CommonClamped)
		fmt.Printf("  jaccard Ĵ:         %.4f\n", est.Jaccard)
		fmt.Printf("  symmetric diff:    %.2f\n", est.SymmetricDifference)
		fmt.Printf("  diagnostics:       α = %.4f, β = %.4f, saturated = %v\n",
			est.Alpha, est.Beta, est.Saturated)
	}
}

// dumpWAL prints a durability directory's checkpoint and segment layout,
// then reconstructs the state an engine would recover: the checkpointed
// sketch (or a fresh one from cfg when no checkpoint exists) with the WAL
// suffix replayed into it.
func dumpWAL(dir string, cfg vos.Config) (*vos.Sketch, error) {
	pos, skBytes, found, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	var sk *vos.Sketch
	if found {
		sk, err = vos.Unmarshal(skBytes)
		if err != nil {
			return nil, fmt.Errorf("checkpoint at %d: %w", pos, err)
		}
		fmt.Printf("checkpoint:  position %d, %d sketch bytes (m=%d k=%d)\n",
			pos, len(skBytes), sk.MemoryBits(), sk.K())
	} else {
		sk, err = vos.New(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("checkpoint:  none (recovering from WAL alone with -m/-k/-seed config)\n")
	}

	bases, err := wal.ListSegments(dir)
	if err != nil {
		return nil, err
	}
	fmt.Printf("wal:         %d segment(s)\n", len(bases))
	// The recovered position is the checkpoint's if the WAL ends short of
	// it (possible under SyncOff: covered records lost with the page
	// cache — engine recovery SkipTo()s the log forward to match).
	tail := pos
	for _, base := range bases {
		info, err := wal.InspectSegment(wal.SegmentPath(dir, base))
		if err != nil {
			return nil, err
		}
		torn := ""
		if info.Torn {
			torn = "  TORN TAIL (discarded on recovery)"
		}
		fmt.Printf("  segment @%-12d %6d record(s) %8d edge(s) %8d bytes%s\n",
			info.Base, info.Records, info.Edges, info.Bytes, torn)
		if end := info.Base + info.Edges; end > tail {
			tail = end
		}
	}

	// Replay the suffix past the checkpoint, exactly as engine recovery
	// does, to show the state a restarted engine would serve — read-only,
	// so inspecting a live or crashed directory changes nothing.
	replayed := uint64(0)
	err = wal.ReplayDir(dir, pos, func(_ uint64, edges []vos.Edge) error {
		for _, e := range edges {
			sk.Process(e)
		}
		replayed += uint64(len(edges))
		return nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("recovered:   checkpoint @%d + %d replayed edge(s) -> position %d\n\n", pos, replayed, tail)
	return sk, nil
}

func parsePair(s string) (vos.User, vos.User, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want \"u,v\", got %q", s)
	}
	u, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return vos.User(u), vos.User(v), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vosinspect:", err)
	os.Exit(1)
}
