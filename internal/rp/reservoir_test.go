package rp

import (
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir(5, 1)
	for i := 0; i < 20; i++ {
		r.Insert(stream.Item(i))
	}
	if r.Len() != 5 || r.SetSize() != 20 || r.Capacity() != 5 {
		t.Fatalf("len=%d n=%d cap=%d", r.Len(), r.SetSize(), r.Capacity())
	}
	for _, it := range r.Sample() {
		if !r.Contains(it) {
			t.Error("Sample/Contains inconsistent")
		}
		if it >= 20 {
			t.Errorf("foreign item %d", it)
		}
	}
}

func TestReservoirSmallSetFullySampled(t *testing.T) {
	r := NewReservoir(10, 2)
	for i := 0; i < 6; i++ {
		r.Insert(stream.Item(i))
	}
	if r.Len() != 6 {
		t.Errorf("sample %d of 6 with capacity 10", r.Len())
	}
}

func TestReservoirDeleteRemovesFromSample(t *testing.T) {
	r := NewReservoir(3, 3)
	for i := 0; i < 3; i++ {
		r.Insert(stream.Item(i))
	}
	r.Delete(1)
	if r.Contains(1) {
		t.Error("deleted item still sampled")
	}
	if r.Len() != 2 || r.SetSize() != 2 {
		t.Errorf("len=%d n=%d", r.Len(), r.SetSize())
	}
}

func TestReservoirUniformityInsertOnly(t *testing.T) {
	// Frequency of inclusion across independent samplers must be
	// uniform: 16 items, capacity 4 -> P(include) = 1/4 each.
	const (
		trials = 4000
		n      = 16
		m      = 4
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(m, uint64(trial))
		for i := 0; i < n; i++ {
			r.Insert(stream.Item(i))
		}
		for _, it := range r.Sample() {
			counts[it]++
		}
	}
	expected := float64(trials*m) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 45 { // df=15, far tail
		t.Errorf("chi-square %.1f, counts %v", chi2, counts)
	}
}

func TestReservoirUniformityAfterChurn(t *testing.T) {
	// The RP property: after deletions AND compensating insertions, the
	// sample is uniform over the current set. Insert [0, 20), delete
	// [0, 10), insert [100, 110): current set = [10, 20) ∪ [100, 110).
	const (
		trials = 4000
		m      = 4
	)
	counts := make(map[stream.Item]int)
	sizes := 0
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(m, uint64(trial)+99)
		for i := 0; i < 20; i++ {
			r.Insert(stream.Item(i))
		}
		for i := 0; i < 10; i++ {
			r.Delete(stream.Item(i))
		}
		for i := 100; i < 110; i++ {
			r.Insert(stream.Item(i))
		}
		for _, it := range r.Sample() {
			if it < 10 {
				t.Fatalf("deleted item %d sampled", it)
			}
			counts[it]++
		}
		sizes += r.Len()
	}
	// All 20 surviving items should be included at (nearly) equal rates.
	expected := float64(sizes) / 20
	chi2 := 0.0
	for i := 10; i < 20; i++ {
		d := float64(counts[stream.Item(i)]) - expected
		chi2 += d * d / expected
	}
	for i := 100; i < 110; i++ {
		d := float64(counts[stream.Item(i)]) - expected
		chi2 += d * d / expected
	}
	// df=19; generous far-tail bound.
	if chi2 > 55 {
		t.Errorf("chi-square %.1f over survivors (old vs new items biased?)", chi2)
	}
}

func TestReservoirApplyDispatch(t *testing.T) {
	r := NewReservoir(2, 7)
	r.Apply(stream.Edge{Item: 5, Op: stream.Insert})
	r.Apply(stream.Edge{Item: 5, Op: stream.Delete})
	if r.SetSize() != 0 || r.Len() != 0 {
		t.Errorf("apply dispatch broken: n=%d len=%d", r.SetSize(), r.Len())
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 should panic")
		}
	}()
	NewReservoir(0, 1)
}
