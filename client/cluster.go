package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/server"
)

// ExportSketch implements vos.StateExporter over GET /v1/cluster/sketch:
// the remote service's complete serialized state (core wire format, as
// vos.Unmarshal reads). It is a read, so it retries per the client's
// RetryPolicy.
func (c *Client) ExportSketch(ctx context.Context) ([]byte, error) {
	var data []byte
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+server.RouteClusterSketch, nil)
		if err != nil {
			return err
		}
		data, _, err = c.doRaw(req)
		return err
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// ImportSketch implements vos.StateImporter over POST /v1/cluster/import.
// Like every write it is NEVER retried: sketch state is parity, so a
// duplicate import XOR-cancels the first — an ambiguous outcome must be
// resolved by the handoff coordinator (fresh target), not by resending.
func (c *Client) ImportSketch(ctx context.Context, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteClusterImport, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	return c.do(req, nil)
}

// Compile-time checks: the HTTP client is a full state-transfer peer.
var (
	_ vos.StateExporter = (*Client)(nil)
	_ vos.StateImporter = (*Client)(nil)
)

// ClusterClient speaks to a vosgw gateway. The embedded Client provides
// the whole vos.SimilarityService surface (the gateway serves the same
// /v1/ API a single vosd does — that symmetry is the point); the
// additional methods cover the gateway-only routes: the ring, shard
// handoff, cluster checkpoints, and degraded (partial) top-K.
type ClusterClient struct {
	*Client
}

// NewCluster builds a ClusterClient over a vosgw base URL.
func NewCluster(gatewayURL string, opt Options) *ClusterClient {
	return &ClusterClient{Client: New(gatewayURL, opt)}
}

// TopKPartial is TopK tolerating unreachable backends: the gateway
// answers from the reachable portion of the cluster and flags the
// degradation with the X-Vos-Partial response header, which this method
// surfaces as complete=false. A retryable failure (transport, 5xx) is
// retried per the client's RetryPolicy before the degraded answer is
// accepted.
func (c *ClusterClient) TopKPartial(ctx context.Context, u vos.User, candidates []vos.User, n int) ([]vos.TopKResult, bool, error) {
	body, err := json.Marshal(server.TopKRequest{
		User: uint64(u), N: n, Candidates: usersToWire(candidates),
	})
	if err != nil {
		return nil, false, err
	}
	var wire []server.TopKResultJSON
	complete := true
	err = c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteTopK, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", server.ContentTypeJSON)
		raw, hdr, err := c.doRaw(req)
		if err != nil {
			return err
		}
		complete = hdr.Get(server.HeaderPartial) != "true"
		return json.Unmarshal(raw, &wire)
	})
	if err != nil {
		return nil, false, err
	}
	out := make([]vos.TopKResult, len(wire))
	for i, w := range wire {
		out[i] = vos.TopKResult{User: vos.User(w.User), Estimate: w.Estimate.Estimate()}
	}
	return out, complete, nil
}

// Ring fetches the gateway's live shard→node table.
func (c *ClusterClient) Ring(ctx context.Context) (server.RingResponse, error) {
	var resp server.RingResponse
	if err := c.getRetry(ctx, server.RouteClusterRing, &resp); err != nil {
		return server.RingResponse{}, err
	}
	return resp, nil
}

// Handoff moves cluster shard shard onto the fresh backend at to,
// returning the ring version after the move. Not retried: a handoff that
// failed ambiguously (the import may have landed) must be redone against
// a fresh target, never replayed (see Client.ImportSketch).
func (c *ClusterClient) Handoff(ctx context.Context, shard int, to string) (uint64, error) {
	body, err := json.Marshal(server.HandoffRequest{Shard: shard, To: to})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteClusterHandoff, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", server.ContentTypeJSON)
	var resp server.HandoffResponse
	if err := c.do(req, &resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// CheckpointCluster quiesces the whole cluster's ingest and checkpoints
// every backend, returning the manifest rows. Not retried (a checkpoint
// is safe to re-run but not free).
func (c *ClusterClient) CheckpointCluster(ctx context.Context) (server.ClusterCheckpointResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteClusterCheckpoint, nil)
	if err != nil {
		return server.ClusterCheckpointResponse{}, err
	}
	var resp server.ClusterCheckpointResponse
	if err := c.do(req, &resp); err != nil {
		return server.ClusterCheckpointResponse{}, err
	}
	return resp, nil
}

// usersToWire converts a candidate list to its wire form.
func usersToWire(users []vos.User) []uint64 {
	out := make([]uint64, len(users))
	for i, u := range users {
		out[i] = uint64(u)
	}
	return out
}
