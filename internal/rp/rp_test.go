package rp

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func TestCardinalityTracking(t *testing.T) {
	s := New(4, 1)
	s.Process(stream.Edge{User: 1, Item: 10, Op: stream.Insert})
	s.Process(stream.Edge{User: 1, Item: 11, Op: stream.Insert})
	s.Process(stream.Edge{User: 1, Item: 10, Op: stream.Delete})
	if s.Cardinality(1) != 1 {
		t.Errorf("n = %d", s.Cardinality(1))
	}
	if s.Cardinality(9) != 0 {
		t.Error("unknown user cardinality")
	}
}

func TestSamplerHoldsAnItem(t *testing.T) {
	s := New(8, 2)
	for i := 0; i < 20; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	for j := 0; j < 8; j++ {
		it, ok := s.Sample(1, j)
		if !ok {
			t.Fatalf("sampler %d empty after 20 inserts", j)
		}
		if it >= 20 {
			t.Fatalf("sampler %d holds foreign item %d", j, it)
		}
	}
}

func TestUniformityInsertOnly(t *testing.T) {
	// Chi-square of the sampled item over many independent samplers.
	const n = 8
	const k = 4000
	s := New(k, 3)
	for i := 0; i < n; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	var counts [n]int
	for j := 0; j < k; j++ {
		it, ok := s.Sample(1, j)
		if !ok {
			t.Fatalf("sampler %d empty", j)
		}
		counts[it]++
	}
	checkChiSquare(t, counts[:], k)
}

func TestUniformityAfterDeletions(t *testing.T) {
	// The property MinHash/OPH lack: insert [0, 16), delete the even
	// items; samples must be uniform over the surviving odd items.
	const k = 4000
	s := New(k, 5)
	for i := 0; i < 16; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	for i := 0; i < 16; i += 2 {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Delete})
	}
	counts := make([]int, 8)
	filled := 0
	for j := 0; j < k; j++ {
		it, ok := s.Sample(1, j)
		if !ok {
			continue
		}
		filled++
		if it%2 == 0 {
			t.Fatalf("sampler %d holds deleted item %d", j, it)
		}
		counts[it/2]++
	}
	// A sampler whose item was deleted stays empty until a compensating
	// insertion arrives (RP semantics), so ~half the samplers survive:
	// P(sample among the 8 deleted of 16) = 1/2.
	if filled < 4*k/10 || filled > 6*k/10 {
		t.Fatalf("%d/%d samplers filled, want ~half", filled, k)
	}
	checkChiSquare(t, counts, filled)
}

func TestUniformityAfterDeleteThenReinsert(t *testing.T) {
	// Delete everything, reinsert a fresh set: samples must be uniform
	// over the new set and never reference the old one.
	const k = 3000
	s := New(k, 7)
	for i := 0; i < 10; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	for i := 0; i < 10; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Delete})
	}
	if s.Cardinality(1) != 0 {
		t.Fatalf("n = %d after full deletion", s.Cardinality(1))
	}
	for i := 100; i < 104; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
	}
	counts := make([]int, 4)
	filled := 0
	for j := 0; j < k; j++ {
		it, ok := s.Sample(1, j)
		if !ok {
			continue
		}
		filled++
		if it < 100 || it > 103 {
			t.Fatalf("stale item %d sampled", it)
		}
		counts[it-100]++
	}
	if filled == 0 {
		t.Fatal("no sampler refilled")
	}
	checkChiSquare(t, counts, filled)
}

func TestEstimateCommonItems(t *testing.T) {
	// With k samplers, E[matches] = k·s/(n_u·n_v). Use a large k so the
	// estimate concentrates.
	const (
		k      = 20000
		n      = 40
		common = 20
	)
	s := New(k, 11)
	// User 1: items [0, 40). User 2: items [20, 60). Common: [20, 40).
	for i := 0; i < n; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: stream.Item(i + common), Op: stream.Insert})
	}
	est := s.EstimateCommonItems(1, 2)
	// E[matches] = k·20/1600 = 250; σ ≈ √250 ≈ 16 ⇒ ŝ σ ≈ 1.3.
	if math.Abs(est-common) > 5 {
		t.Errorf("ŝ = %.1f, want ~%d", est, common)
	}
	trueJ := float64(common) / float64(2*n-common)
	if got := s.EstimateJaccard(1, 2); math.Abs(got-trueJ) > 0.12 {
		t.Errorf("Ĵ = %.3f, want ~%.3f", got, trueJ)
	}
}

func TestEstimateUnbiasedAfterDeletions(t *testing.T) {
	// The headline property: the estimator stays centred after heavy
	// deletions. Same final sets as TestEstimateCommonItems but built
	// with churn.
	const (
		k      = 20000
		common = 20
	)
	s := New(k, 13)
	// Both users first subscribe [1000, 1100) then fully unsubscribe it.
	for i := 1000; i < 1100; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Insert})
	}
	for i := 1000; i < 1100; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Delete})
		s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Delete})
	}
	for i := 0; i < 40; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: stream.Item(i + common), Op: stream.Insert})
	}
	est := s.EstimateCommonItems(1, 2)
	// Residual deletion debt leaves ~40% of samplers filled per user,
	// so ~16% of pairs contribute; σ(ŝ) ≈ 3.5 at this k.
	if math.Abs(est-common) > 10 {
		t.Errorf("ŝ = %.1f after churn, want ~%d (uniformity broken)", est, common)
	}
}

func TestEstimateUnknownUsers(t *testing.T) {
	s := New(4, 1)
	if s.EstimateCommonItems(5, 6) != 0 || s.EstimateJaccard(5, 6) != 0 {
		t.Error("unknown users should estimate 0")
	}
}

func TestJaccardClamped(t *testing.T) {
	// Tiny k: a single collision makes raw ŝ = n_u·n_v/k ≫ n; Jaccard
	// must stay in [0, 1].
	s := New(1, 17)
	for i := 0; i < 50; i++ {
		s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Insert})
	}
	j := s.EstimateJaccard(1, 2)
	if j < 0 || j > 1 {
		t.Errorf("Ĵ = %v out of [0, 1]", j)
	}
}

func TestDeterministic(t *testing.T) {
	build := func() *Sketch {
		s := New(32, 9)
		for i := 0; i < 100; i++ {
			s.Process(stream.Edge{User: stream.User(i % 3), Item: stream.Item(i), Op: stream.Insert})
		}
		for i := 0; i < 50; i += 5 {
			s.Process(stream.Edge{User: stream.User(i % 3), Item: stream.Item(i), Op: stream.Delete})
		}
		return s
	}
	a, b := build(), build()
	for u := stream.User(0); u < 3; u++ {
		for j := 0; j < 32; j++ {
			ia, oka := a.Sample(u, j)
			ib, okb := b.Sample(u, j)
			if ia != ib || oka != okb {
				t.Fatalf("user %d sampler %d diverged", u, j)
			}
		}
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	New(0, 1)
}

// checkChiSquare verifies counts are consistent with a uniform draw of
// total samples over len(counts) categories at a very loose significance
// level (guarding against gross non-uniformity, not statistical noise).
func checkChiSquare(t *testing.T, counts []int, total int) {
	t.Helper()
	expected := float64(total) / float64(len(counts))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.99th percentile of chi-square with df ≤ 15 is < 45.
	if chi2 > 45 {
		t.Errorf("chi-square %.1f over %d categories (counts %v)", chi2, len(counts), counts)
	}
}

func BenchmarkProcessK100(b *testing.B) {
	s := New(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Edge{User: stream.User(i % 1000), Item: stream.Item(i), Op: stream.Insert})
	}
}
