package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/engine"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// Throughput measures sharded-engine ingest scaling: one row per shard
// count, reporting wall time, edges/second, speedup over the single-shard
// engine, and whether the engine's post-flush estimates exactly match a
// single sequential sketch (they must — VOS merging is exact).
//
// Each run drives the engine with one producer goroutine per shard calling
// ProcessBatch, the high-throughput path, so producer-side routing work
// parallelises along with the shard workers. The workload reuses the
// Figure 2 runtime shape (RuntimeUsers/RuntimeEdges) under PaperDynamize.
func Throughput(opts Options, shardCounts []int) (*Table, error) {
	opts = opts.normalized()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	// The speedup baseline is the smallest shard count, so order and
	// duplicates in the flag must not change the reported numbers.
	shardCounts = sortedUnique(shardCounts)

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = opts.RuntimeEdges
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	cfg := core.PaperConfig(int(opts.RuntimeUsers), opts.K32, opts.Lambda, uint64(opts.Seed))

	// Sequential single-sketch reference: the baseline row and the parity
	// oracle for every engine run.
	single := core.MustNew(cfg)
	t0 := time.Now()
	for _, e := range edges {
		single.Process(e)
	}
	seqElapsed := time.Since(t0)

	// Parity probe pairs: a handful of user pairs with live state.
	probes := [][2]stream.User{{0, 1}, {1, 2}, {2, 5}, {0, 7}}

	baseCol := fmt.Sprintf("vs-%dshard", shardCounts[0])
	tbl := &Table{
		ID:     "throughput",
		Title:  fmt.Sprintf("sharded engine ingest scaling (edges/s and speedup vs %d shard(s))", shardCounts[0]),
		Header: []string{"shards", "producers", "wall", "edges/s", "vs-sequential", baseCol, "exact"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (insert+delete after dynamize: %d)",
		p.Name, p.Users, p.Edges, len(edges))
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d", cfg.MemoryBits, cfg.SketchBits, cfg.Seed)
	tbl.AddNote("GOMAXPROCS=%d — scaling beyond it is not expected", runtime.GOMAXPROCS(0))
	tbl.AddNote("sequential single-sketch baseline: %v (%.0f edges/s)",
		seqElapsed.Round(time.Millisecond), float64(len(edges))/seqElapsed.Seconds())

	var baseline float64
	for _, n := range shardCounts {
		eng, elapsed, err := runEngineIngest(cfg, edges, n)
		if err != nil {
			return nil, err
		}
		rate := float64(len(edges)) / elapsed.Seconds()
		if n == shardCounts[0] {
			baseline = rate
		}

		// Parity check of the timed engine against the sequential sketch.
		exactMatch := "yes"
		for _, pr := range probes {
			if eng.Query(pr[0], pr[1]) != single.Query(pr[0], pr[1]) {
				exactMatch = "NO"
			}
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}

		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/(float64(len(edges))/seqElapsed.Seconds())),
			fmt.Sprintf("%.2fx", rate/baseline),
			exactMatch,
		)
	}
	return tbl, nil
}

// sortedUnique returns xs ascending with duplicates removed.
func sortedUnique(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	j := 0
	for i, x := range out {
		if i == 0 || x != out[j-1] {
			out[j] = x
			j++
		}
	}
	return out[:j]
}

// runEngineIngest times one full ingest of edges into an n-shard engine
// driven by n producers, including the final Flush. The flushed engine is
// returned (still open) so the caller can run parity checks on the very
// state that was timed; the caller closes it.
func runEngineIngest(cfg core.Config, edges []stream.Edge, n int) (*engine.Engine, time.Duration, error) {
	eng, err := engine.New(engine.Config{Sketch: cfg, Shards: n})
	if err != nil {
		return nil, 0, err
	}

	const chunk = 1024
	producers := n
	per := (len(edges) + producers - 1) / producers
	errs := make([]error, producers)

	t0 := time.Now()
	var wg sync.WaitGroup
	for pIdx := 0; pIdx < producers; pIdx++ {
		lo := pIdx * per
		hi := lo + per
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(pIdx int, part []stream.Edge) {
			defer wg.Done()
			for len(part) > 0 {
				m := chunk
				if m > len(part) {
					m = len(part)
				}
				if err := eng.ProcessBatch(part[:m]); err != nil {
					errs[pIdx] = err
					return
				}
				part = part[m:]
			}
		}(pIdx, edges[lo:hi])
	}
	wg.Wait()
	eng.Flush()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			eng.Close()
			return nil, 0, err
		}
	}
	return eng, elapsed, nil
}
