package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/vossketch/vos/internal/bitset"
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// HashingPerf measures the write-side hash layer and the compare kernels
// at the paper-scale sketch configuration (m = 2^24, k = λ·32·K32 = 6400
// by default):
//
//   - fill: generating one user's k-slot position table — the classic
//     family (k independently seeded hashes) vs the fast family (one
//     strong hash expanded by a counter-based generator, DKT-style);
//   - gather / gatherxor / xorwords: the bitset compare kernels — scalar
//     reference loop vs the blocked multi-accumulator dispatch;
//   - pair-cold: a cold pair query (no caches), the path the fill and
//     gather costs dominate;
//   - ingest: ns/edge folding the dynamized stream — per-edge Process vs
//     ProcessBatch (positions hashed once per user run) per family.
//
// Every row is parity-gated before it is timed: the fast family's bulk
// fill must match its scalar definition slot for slot, the blocked
// kernels must agree with the scalar references on live sketch data, both
// families must recover a planted pair's common-item count from the same
// stream within tolerance, and the fast family's materialized query path
// must agree with its per-bit oracle bit for bit. A mismatch is an error,
// not a table row.
func HashingPerf(opts Options) (*Table, error) {
	opts = opts.normalized()

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = opts.RuntimeEdges
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	cfgClassic := core.Config{
		MemoryBits: 1 << 24,
		SketchBits: opts.Lambda * 32 * opts.K32,
		Seed:       uint64(opts.Seed),
	}
	cfgFast := cfgClassic
	cfgFast.Family = hashing.KindFast
	k := cfgClassic.SketchBits
	m := cfgClassic.MemoryBits

	classicFam := hashing.NewFamily(k, cfgClassic.Seed)
	fastFam := hashing.NewFastFamily(k, cfgClassic.Seed)

	// Parity gate 1: the fast family's bulk fill is its scalar definition.
	dst := make([]uint64, k)
	for _, key := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		fastFam.HashRangeInto(dst, key, m)
		for j := 0; j < k; j++ {
			if want := fastFam.HashRange(j, key, m); dst[j] != want {
				return nil, fmt.Errorf("experiments: fast fill mismatch at key %d slot %d: %d != %d", key, j, dst[j], want)
			}
		}
	}

	// Parity gate 2: blocked kernels agree with the scalar references on a
	// realistically loaded array and realistic (hash-scattered) indices.
	arr := bitset.New(m)
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < 1<<20; i++ {
		arr.Set(rng.Uint64() % m)
	}
	idx := make([]uint64, k)
	fastFam.HashRangeInto(idx, 7, m)
	gRef := arr.GatherRef(idx)
	gFast := arr.Gather(idx)
	if !gRef.Equal(gFast) {
		return nil, fmt.Errorf("experiments: blocked gather disagrees with scalar reference")
	}
	if a, b := arr.GatherXorCount(idx, gRef), arr.GatherXorCountRef(idx, gRef); a != b {
		return nil, fmt.Errorf("experiments: blocked gather-xor-count %d disagrees with scalar reference %d", a, b)
	}
	ws := gRef.UnsafeWords()
	if a, b := gFast.XorCountWords(ws), gFast.XorCountWordsRef(ws); a != b {
		return nil, fmt.Errorf("experiments: blocked xor-count-words %d disagrees with scalar reference %d", a, b)
	}

	// Parity gate 3: both families recover a planted pair from the same
	// dynamized background within tolerance, and the fast materialized path
	// agrees with its per-bit oracle bit for bit.
	const plantedCommon, plantedA, plantedB = 120, 300, 260
	pairU, pairV := stream.User(p.Users+1), stream.User(p.Users+2)
	planted := gen.PlantedPair(pairU, pairV, plantedA, plantedB, plantedCommon, opts.Seed+2)
	skClassic := core.MustNew(cfgClassic)
	skFast := core.MustNew(cfgFast)
	skClassic.ProcessBatch(edges)
	skFast.ProcessBatch(edges)
	skClassic.ProcessBatch(planted)
	skFast.ProcessBatch(planted)
	for name, sk := range map[string]*core.VOS{"classic": skClassic, "fast": skFast} {
		est := sk.Query(pairU, pairV)
		if diff := est.Common - plantedCommon; diff < -40 || diff > 40 {
			return nil, fmt.Errorf("experiments: %s family estimates %.1f common items for a planted %d", name, est.Common, plantedCommon)
		}
	}
	for u := stream.User(0); u < 50 && u < stream.User(p.Users); u++ {
		if skFast.Query(pairU, u) != skFast.QueryPerBit(pairU, u) {
			return nil, fmt.Errorf("experiments: fast materialized query mismatch for pair (%d,%d)", pairU, u)
		}
	}

	tbl := &Table{
		ID:     "hashing",
		Title:  "hash layer and compare kernels: position fill, gather/XOR/popcount, cold pair query, ingest",
		Header: []string{"op", "path", "ns/op", "speedup"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (after dynamize: %d)", p.Name, p.Users, p.Edges, len(edges))
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d; kernels=%s", m, k, cfgClassic.Seed, kernelsName())
	tbl.AddNote("fill = one user's k-slot position table; gather rows are memory-level-parallelism")
	tbl.AddNote("bound (k random probes into a %d MiB array), so kernel speedups are modest by", m/8/(1<<20))
	tbl.AddNote("design — the fill speedup is the compute win, pair-cold combines both")
	tbl.AddNote("ingest = ns/edge over the dynamized stream (one slot per edge, so the fast")
	tbl.AddNote("family's counter expansion cannot amortize there; its win is fill-shaped work)")
	tbl.AddNote("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))

	timeOp := func(budget time.Duration, fn func()) float64 {
		fn() // warm
		reps, block := 0, 1
		t0 := time.Now()
		elapsed := time.Duration(0)
		for elapsed < budget || reps == 0 {
			for i := 0; i < block; i++ {
				fn()
			}
			reps += block
			elapsed = time.Since(t0)
			if block < 1024 && elapsed < budget/2 {
				block *= 2
			}
		}
		return float64(elapsed.Nanoseconds()) / float64(reps)
	}
	const budget = 200 * time.Millisecond

	addRows := func(op string, paths []string, ns []float64) {
		for i, path := range paths {
			tbl.AddRow(op, path, fmt.Sprintf("%.0f", ns[i]), fmt.Sprintf("%.1fx", ns[0]/ns[i]))
		}
	}

	// Fill: one position-table generation per call, rotating the key so
	// the timed work is the hash pipeline, not a cached special case.
	key := uint64(1)
	nsClassicFill := timeOp(budget, func() {
		classicFam.HashRangeInto(dst, key, m)
		key++
		posSink += dst[0]
	})
	key = 1
	nsFastFill := timeOp(budget, func() {
		fastFam.HashRangeInto(dst, key, m)
		key++
		posSink += dst[0]
	})
	addRows("fill", []string{"classic", "fast"}, []float64{nsClassicFill, nsFastFill})

	// Kernels: scalar reference vs the blocked dispatch, same k-index
	// gather shape a materialized query performs.
	nsGatherRef := timeOp(budget, func() { bitsSink = arr.GatherRef(idx) })
	nsGather := timeOp(budget, func() { bitsSink = arr.Gather(idx) })
	addRows("gather", []string{"scalar", "blocked"}, []float64{nsGatherRef, nsGather})

	nsGXRef := timeOp(budget, func() { cntSink = arr.GatherXorCountRef(idx, gRef) })
	nsGX := timeOp(budget, func() { cntSink = arr.GatherXorCount(idx, gRef) })
	addRows("gatherxor", []string{"scalar", "blocked"}, []float64{nsGXRef, nsGX})

	// Word-vs-word XOR-popcount (the warm compare path) has a single
	// kernel: its sequential scalar loop is already throughput-bound, so
	// blocked variants were measured slower and are not dispatched. Timed
	// here so the warm path's cost stays on the record.
	nsXW := timeOp(budget, func() { cntSink = gFast.XorCountWords(ws) })
	addRows("xorwords", []string{"scalar"}, []float64{nsXW})

	// Cold pair query: no caches, so every query pays two fills plus the
	// gather-XOR compare — the fill and kernel wins compound here.
	skClassic.SetPositionCache(nil)
	skClassic.SetRecoveredCacheCapacity(-1)
	skFast.SetPositionCache(nil)
	skFast.SetRecoveredCacheCapacity(-1)
	nsColdClassic := timeOp(budget, func() { estSink = skClassic.Query(pairU, pairV) })
	nsColdFast := timeOp(budget, func() { estSink = skFast.Query(pairU, pairV) })
	addRows("pair-cold", []string{"classic", "fast"}, []float64{nsColdClassic, nsColdFast})

	// Ingest: ns/edge. Re-processing the same stream only toggles parity
	// bits, which is harmless for timing. Fresh sketches keep the timed
	// state comparable across paths.
	ingestBudget := 400 * time.Millisecond
	perEdge := core.MustNew(cfgClassic)
	nsPerEdge := timeOp(ingestBudget, func() {
		for _, e := range edges {
			perEdge.Process(e)
		}
	}) / float64(len(edges))
	batchClassic := core.MustNew(cfgClassic)
	nsBatch := timeOp(ingestBudget, func() { batchClassic.ProcessBatch(edges) }) / float64(len(edges))
	batchFast := core.MustNew(cfgFast)
	nsBatchFast := timeOp(ingestBudget, func() { batchFast.ProcessBatch(edges) }) / float64(len(edges))
	addRows("ingest", []string{"per-edge", "batch", "batch-fast"}, []float64{nsPerEdge, nsBatch, nsBatchFast})

	return tbl, nil
}

// kernelsName describes the active compare-kernel build for provenance.
func kernelsName() string {
	if bitset.FastKernels() {
		return "blocked (" + runtime.GOARCH + ")"
	}
	return "portable"
}

// posSink, bitsSink and cntSink keep timed results live.
var (
	posSink  uint64
	bitsSink *bitset.Bitset
	cntSink  uint64
)
