package lsh

import (
	"fmt"
	"sort"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// BandIndex is a mutable banded LSH index over packed bit signatures — in
// this module, the packed recovered virtual sketches that
// core.VOS.RecoverSketch produces. Where Index bands a []uint64 MinHash
// signature value-by-value and is insert-only, BandIndex bands the raw bits
// of a packed signature (band j covers bits [j·r, (j+1)·r)) and supports
// replacement and removal, so a serving engine can keep it in sync with a
// stream that rewrites users in place.
//
// Mutation is generational: each member carries a generation counter, bucket
// entries are stamped with the generation they were banded under, and a
// Put or Remove simply advances the counter — the superseded entries stay
// in their buckets and are dropped lazily when a probe walks the bucket
// (or by a full sweep once stale entries outnumber live ones). That keeps
// Put at O(b) hash-and-append with no backward pointers from members to
// buckets, at the cost of bounded transient garbage.
//
// Memory: a member costs one map entry plus Bands bucket entries
// (~16 bytes each before map/slice overhead), so sizing Bands is a memory
// knob as much as a recall knob.
//
// BandIndex is not safe for concurrent use — probes compact buckets in
// place. Callers serialise access (internal/engine holds one mutex across
// maintenance and probing).
type BandIndex struct {
	params  Params
	sigBits int
	words   int // minimum signature length in words
	buckets []map[uint64][]bandEntry
	members map[stream.User]uint32
	entries int // bucket entries, stale included
	sweeps  uint64
}

// bandEntry stamps a bucket occupant with the generation it was banded
// under; an entry whose generation trails its member's is stale.
type bandEntry struct {
	u   stream.User
	gen uint32
}

// BandIndexStats counts the index's occupancy and maintenance work.
type BandIndexStats struct {
	// Members is the number of live indexed users.
	Members int
	// Entries is the total bucket entries, stale ones included; live
	// entries are Members·Bands.
	Entries int
	// Sweeps counts full compactions triggered by stale-entry pressure.
	Sweeps uint64
}

// NewBandIndex creates an empty index over packed signatures of sigBits
// bits. The band structure must fit: Bands·Rows ≤ sigBits (banding reads
// the first Bands·Rows bits; a recovered sketch of k bits supports any
// b·r ≤ k).
func NewBandIndex(params Params, sigBits int) (*BandIndex, error) {
	if err := validateBandParams(params, sigBits); err != nil {
		return nil, err
	}
	buckets := make([]map[uint64][]bandEntry, params.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint64][]bandEntry)
	}
	return &BandIndex{
		params:  params,
		sigBits: sigBits,
		words:   (sigBits + 63) / 64,
		buckets: buckets,
		members: make(map[stream.User]uint32),
	}, nil
}

// validateBandParams checks a band structure against a packed signature
// width, rejecting overflowing Bands·Rows products before they can be used
// as slice math.
func validateBandParams(p Params, sigBits int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	sig := p.SignatureLen()
	if sig/p.Rows != p.Bands { // Bands·Rows overflowed int
		return fmt.Errorf("lsh: bands %d x rows %d overflows", p.Bands, p.Rows)
	}
	if sigBits <= 0 {
		return fmt.Errorf("lsh: signature bits must be positive, got %d", sigBits)
	}
	if sig > sigBits {
		return fmt.Errorf("lsh: band structure needs %d bits (bands %d x rows %d), signature has %d",
			sig, p.Bands, p.Rows, sigBits)
	}
	return nil
}

// BandKeys returns the Bands bucket keys of a packed signature of sigBits
// bits: key j hashes bits [j·Rows, (j+1)·Rows) with the params' seed. It
// validates the band structure and the slice length, so arbitrary (even
// adversarial) inputs error instead of reading out of bounds — the
// contract FuzzBandExtraction pins.
func BandKeys(p Params, words []uint64, sigBits int) ([]uint64, error) {
	if err := validateBandParams(p, sigBits); err != nil {
		return nil, err
	}
	if len(words) < (sigBits+63)/64 {
		return nil, fmt.Errorf("lsh: packed signature has %d words, %d bits need %d",
			len(words), sigBits, (sigBits+63)/64)
	}
	keys := make([]uint64, p.Bands)
	for band := range keys {
		keys[band] = packedBandKey(p, band, words)
	}
	return keys, nil
}

// packedBandKey hashes one band's bit range into a bucket key, folding the
// band's bits in ≤64-bit chunks. Callers have validated that the band's
// bits lie inside the slice.
func packedBandKey(p Params, band int, words []uint64) uint64 {
	h := hashing.Hash64(uint64(band), p.Seed)
	off := band * p.Rows
	for rem := p.Rows; rem > 0; {
		n := rem
		if n > 64 {
			n = 64
		}
		h = hashing.Hash64(h^extractBits(words, off, n), p.Seed)
		off += n
		rem -= n
	}
	return h
}

// extractBits returns bits [off, off+n) of the packed words, n ≤ 64,
// little-endian within and across words (bit i lives at words[i/64] >>
// (i%64)). The caller guarantees off+n ≤ 64·len(words).
func extractBits(words []uint64, off, n int) uint64 {
	w := off >> 6
	sh := uint(off & 63)
	v := words[w] >> sh
	if sh != 0 && w+1 < len(words) {
		v |= words[w+1] << (64 - sh)
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	return v
}

// Params returns the index's band structure.
func (ix *BandIndex) Params() Params { return ix.params }

// SignatureBits returns the packed signature width the index was built for.
func (ix *BandIndex) SignatureBits() int { return ix.sigBits }

// Len returns the number of live indexed users.
func (ix *BandIndex) Len() int { return len(ix.members) }

// Has reports whether u is currently indexed.
func (ix *BandIndex) Has(u stream.User) bool {
	_, ok := ix.members[u]
	return ok
}

// ForEachMember calls fn for every live member in unspecified order,
// stopping early when fn returns false. fn must not mutate the index.
func (ix *BandIndex) ForEachMember(fn func(u stream.User) bool) {
	for u := range ix.members {
		if !fn(u) {
			return
		}
	}
}

// Stats returns occupancy and maintenance counters.
func (ix *BandIndex) Stats() BandIndexStats {
	return BandIndexStats{Members: len(ix.members), Entries: ix.entries, Sweeps: ix.sweeps}
}

// Put indexes (or re-indexes) user u under the packed signature. A
// previous banding of u, if any, is superseded in place: its bucket
// entries become stale and are compacted lazily.
func (ix *BandIndex) Put(u stream.User, words []uint64) error {
	if len(words) < ix.words {
		return fmt.Errorf("lsh: packed signature has %d words, index needs %d", len(words), ix.words)
	}
	gen := ix.members[u] + 1
	ix.members[u] = gen
	for band := range ix.buckets {
		key := packedBandKey(ix.params, band, words)
		ix.buckets[band][key] = append(ix.buckets[band][key], bandEntry{u: u, gen: gen})
	}
	ix.entries += ix.params.Bands
	ix.maybeSweep()
	return nil
}

// Remove drops user u from the index. Its bucket entries become stale and
// are compacted lazily; removing an absent user is a no-op.
func (ix *BandIndex) Remove(u stream.User) {
	delete(ix.members, u)
	ix.maybeSweep()
}

// Candidates returns the distinct live users sharing at least one band
// bucket with the packed signature, excluding self, sorted for
// determinism. Stale entries met along the way are compacted out of their
// buckets as a side effect.
func (ix *BandIndex) Candidates(self stream.User, words []uint64) ([]stream.User, error) {
	if len(words) < ix.words {
		return nil, fmt.Errorf("lsh: packed signature has %d words, index needs %d", len(words), ix.words)
	}
	seen := make(map[stream.User]struct{})
	for band := range ix.buckets {
		key := packedBandKey(ix.params, band, words)
		entries, ok := ix.buckets[band][key]
		if !ok {
			continue
		}
		live := entries[:0]
		for _, e := range entries {
			if ix.members[e.u] != e.gen {
				continue // superseded or removed
			}
			live = append(live, e)
			if e.u != self {
				seen[e.u] = struct{}{}
			}
		}
		switch {
		case len(live) == 0:
			delete(ix.buckets[band], key)
		case len(live) != len(entries):
			ix.buckets[band][key] = live
		}
		ix.entries -= len(entries) - len(live)
	}
	out := make([]stream.User, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// maybeSweep compacts every bucket when stale entries outnumber live ones
// — the backstop that bounds garbage from members that churn without their
// buckets ever being probed. Amortised O(1) per mutation: a sweep is O(n)
// and at least n/2 mutations separate consecutive sweeps.
func (ix *BandIndex) maybeSweep() {
	liveTarget := len(ix.members) * ix.params.Bands
	if ix.entries <= 2*liveTarget || ix.entries <= 64*ix.params.Bands {
		return
	}
	for band := range ix.buckets {
		for key, entries := range ix.buckets[band] {
			live := entries[:0]
			for _, e := range entries {
				if ix.members[e.u] == e.gen {
					live = append(live, e)
				}
			}
			if len(live) == 0 {
				delete(ix.buckets[band], key)
			} else {
				ix.buckets[band][key] = live
			}
		}
	}
	ix.entries = liveTarget
	ix.sweeps++
}
