package metrics

import (
	"fmt"
	"math"
)

// AAPE returns (1/|P|)·Σ |s − ŝ|/|s| over pairs, the paper's metric for
// ŝ. Pairs with true value 0 are skipped (the paper tracks only pairs with
// at least one common item, so s > 0 by construction; the guard keeps the
// metric total and finite on arbitrary inputs). It returns NaN when no
// pair qualifies.
func AAPE(truth, estimate []float64) float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: AAPE length mismatch %d vs %d", len(truth), len(estimate)))
	}
	sum, n := 0.0, 0
	for i, s := range truth {
		if s == 0 {
			continue
		}
		sum += math.Abs(s-estimate[i]) / math.Abs(s)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ARMSE returns sqrt((1/|P|)·Σ (Ĵ − J)²), the paper's metric for Ĵ.
// It returns NaN for empty input.
func ARMSE(truth, estimate []float64) float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: ARMSE length mismatch %d vs %d", len(truth), len(estimate)))
	}
	if len(truth) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i, j := range truth {
		d := estimate[i] - j
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(truth)))
}

// MAE returns the mean absolute error, an auxiliary metric used by the
// ablations.
func MAE(truth, estimate []float64) float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: MAE length mismatch %d vs %d", len(truth), len(estimate)))
	}
	if len(truth) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range truth {
		sum += math.Abs(truth[i] - estimate[i])
	}
	return sum / float64(len(truth))
}

// MeanBias returns the mean signed error (ŝ − s), separating systematic
// bias from noise in the ablation experiments.
func MeanBias(truth, estimate []float64) float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: MeanBias length mismatch %d vs %d", len(truth), len(estimate)))
	}
	if len(truth) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range truth {
		sum += estimate[i] - truth[i]
	}
	return sum / float64(len(truth))
}

// Point is one checkpoint of a metric over stream time.
type Point struct {
	// T is the stream position (elements processed so far).
	T uint64
	// Value is the metric at T.
	Value float64
}

// Series is a named metric trajectory, one per method per panel in the
// over-time figures.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a checkpoint.
func (s *Series) Add(t uint64, v float64) {
	s.Points = append(s.Points, Point{T: t, Value: v})
}

// Last returns the final checkpoint value, or NaN if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	return s.Points[len(s.Points)-1].Value
}

// Collector gathers several named series over a shared checkpoint clock,
// the shape of the paper's Figures 3(a)/(c).
type Collector struct {
	order []string
	by    map[string]*Series
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{by: make(map[string]*Series)}
}

// Record adds a checkpoint to the named series, creating it on first use.
func (c *Collector) Record(name string, t uint64, v float64) {
	s := c.by[name]
	if s == nil {
		s = &Series{Name: name}
		c.by[name] = s
		c.order = append(c.order, name)
	}
	s.Add(t, v)
}

// Series returns the collected series in first-recorded order.
func (c *Collector) Series() []*Series {
	out := make([]*Series, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.by[name])
	}
	return out
}

// Get returns the named series, or nil.
func (c *Collector) Get(name string) *Series { return c.by[name] }
