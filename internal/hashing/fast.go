package hashing

import "fmt"

// Fast position family: Dahlgaard–Knudsen–Thorup-style fast similarity
// sketching ("Fast Similarity Sketching", FOCS'17) observes that a k-entry
// sketch does not need k independently seeded hash evaluations per key —
// one strong hash of the key, expanded by a pseudorandom sequence, fills
// all k entries with O(1) amortized hash work per entry while preserving
// the concentration bounds sketching needs. FastFamily applies that insight
// to the position tables f_1(u) … f_k(u) of VOS: instead of k seeded
// Hash64 calls (one per virtual slot, each loading a per-slot seed from a
// k-word table), it derives a single 64-bit state from the key and streams
// positions out of the counter-based splitmix64 sequence seeded there.
//
// Why this is sound: splitmix64 is a counter-based generator (output t is a
// pure function state + (t+1)·γ pushed through a finalizer), so the stream
// is random-access — position j costs O(1) with no sequential dependency —
// and the generator itself passes BigCrush, so positions within one key's
// table are empirically indistinguishable from independent draws. Across
// keys, states are separated by the full Hash64 avalanche. The statistical
// tests in fast_test.go and the parity gates of the vosbench hashing
// experiment pin both properties against tolerance bounds.
//
// Why it is fast: a table fill touches no seed table (the classic family's
// k-word seed array exceeds L1 at k = 6400, so every classic evaluation
// risks an L2 load), runs one finalizer per TWO positions when the range
// fits 32 bits (each 64-bit output is split into halves, reduced with a
// 32-bit fixed-point multiply), and every loop iteration is independent,
// so the multiplies pipeline. At paper scale this is a multiple-x fill
// speedup; see bench/hashing.json for the checked-in trajectory.
//
// Compatibility: positions under KindFast are UNRELATED to positions under
// KindClassic for the same seed. Sketches built under different families
// must never be merged or compared — the family is therefore part of
// core.Config, serialized in sketch headers, and refused on mismatch.

// Kind selects a position-family implementation. It is part of a sketch's
// identity: two sketches are mergeable and comparable only when built from
// identical configs, family included.
type Kind uint8

const (
	// KindClassic is the original family: member j is x ↦ Hash64(x,
	// seeds[j]) with k independently derived seeds (NewFamily).
	KindClassic Kind = iota
	// KindFast is the fast-sketching family: one Hash64 per key, expanded
	// by the counter-based splitmix64 sequence (NewFastFamily).
	KindFast
)

// Valid reports whether k names a known family.
func (k Kind) Valid() bool { return k <= KindFast }

// String returns the canonical name used on wire surfaces (/v1/stats,
// vosd flags): "classic" or "fast".
func (k Kind) String() string {
	switch k {
	case KindClassic:
		return "classic"
	case KindFast:
		return "fast"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "classic":
		return KindClassic, nil
	case "fast":
		return KindFast, nil
	default:
		return 0, fmt.Errorf("hashing: unknown family %q (want classic or fast)", s)
	}
}

// golden is the splitmix64 increment (2^64/φ, forced odd) — the same γ
// SplitMix64 uses, so the counter sequence state + t·γ is equidistributed
// over the full 64-bit period.
const golden = 0x9e3779b97f4a7c15

// fastSeedTag separates the fast family's key-state derivation from every
// other consumer of the sketch seed, so KindClassic and KindFast positions
// under the same Config.Seed share no structure.
const fastSeedTag = 0x66a5f3c1d2e4b907

// FastFamily is the KindFast implementation of a k-member position family.
// It is stateless beyond its parameters: no seed table, no allocation.
type FastFamily struct {
	k    int
	seed uint64
}

// NewFastFamily derives a fast-sketching family of k positions from seed.
func NewFastFamily(k int, seed uint64) *FastFamily {
	if k <= 0 {
		panic("hashing: family size must be positive")
	}
	return &FastFamily{k: k, seed: seed}
}

// K returns the number of positions in the family.
func (f *FastFamily) K() int { return f.k }

// state derives the per-key splitmix64 state — the one strong hash the
// whole table is expanded from.
func (f *FastFamily) state(key uint64) uint64 {
	return Hash64(key, f.seed^fastSeedTag)
}

// State returns the per-key expansion state, the value PositionFromState
// consumes. It is the family's only per-key hash work: callers making many
// single-position lookups for recurring keys (the sketch's per-edge ingest
// loop) can memoize it and skip the Hash64 on repeats. The state is
// seed-dependent — never reuse one across families.
func (f *FastFamily) State(key uint64) uint64 { return f.state(key) }

// PositionFromState is HashRange with the key's hash work already done:
// PositionFromState(f.State(key), j, n) == f.HashRange(j, key, n) for
// every j and n. For n ≤ 2^32 each 64-bit splitmix64 output carries two
// positions (low half = even j, high half = odd j), reduced with the
// 32-bit fixed-point multiply; wider ranges use one full output per
// position with the 64-bit Lemire reduction.
func PositionFromState(x uint64, j int, n uint64) uint64 {
	if n <= 1<<32 {
		w := Mix64(x + (uint64(j>>1)+1)*golden)
		if j&1 != 0 {
			w >>= 32
		}
		if n&(n-1) == 0 {
			return w & (n - 1)
		}
		return (uint64(uint32(w)) * n) >> 32
	}
	return Reduce(Mix64(x+(uint64(j)+1)*golden), n)
}

// HashRange returns member j's position for key, reduced onto [0, n) —
// random access into the same sequence HashRangeInto streams, in O(1):
// counter-based generation has no sequential dependency.
func (f *FastFamily) HashRange(j int, key, n uint64) uint64 {
	return PositionFromState(f.state(key), j, n)
}

// HashRangeInto fills dst[j] with member j's position for key, reduced
// onto [0, n), for j = 0..len(dst)-1 — the batched fill equal to
// HashRange at every index, exactly. One Hash64 total, then one finalizer
// per two positions (n ≤ 2^32) or per position (wider): O(1) amortized
// hash work per position, no seed-table traffic, and every iteration
// independent so the multiplies pipeline. dst must not be longer than K().
func (f *FastFamily) HashRangeInto(dst []uint64, key, n uint64) {
	x := f.state(key)
	if n <= 1<<32 {
		// Four outputs (eight positions) per iteration through a fixed-size
		// array pointer (bounds-checked once per block): the finalizer
		// chains are independent, so unrolling keeps the multiply pipeline
		// full. The power-of-two case gets its own loop — the reduction is
		// then a mask, leaving ONE multiply per two positions (the
		// finalizer's), which is what the fill is throughput-bound on.
		d := dst
		if n&(n-1) == 0 {
			mask := n - 1
			for len(d) >= 8 {
				c := (*[8]uint64)(d)
				x0 := x + golden
				x1 := x0 + golden
				x2 := x1 + golden
				x3 := x2 + golden
				x = x3
				w0 := Mix64(x0)
				w1 := Mix64(x1)
				w2 := Mix64(x2)
				w3 := Mix64(x3)
				c[0] = w0 & mask
				c[1] = (w0 >> 32) & mask
				c[2] = w1 & mask
				c[3] = (w1 >> 32) & mask
				c[4] = w2 & mask
				c[5] = (w2 >> 32) & mask
				c[6] = w3 & mask
				c[7] = (w3 >> 32) & mask
				d = d[8:]
			}
		} else {
			for len(d) >= 8 {
				c := (*[8]uint64)(d)
				x0 := x + golden
				x1 := x0 + golden
				x2 := x1 + golden
				x3 := x2 + golden
				x = x3
				w0 := Mix64(x0)
				w1 := Mix64(x1)
				w2 := Mix64(x2)
				w3 := Mix64(x3)
				c[0] = (uint64(uint32(w0)) * n) >> 32
				c[1] = ((w0 >> 32) * n) >> 32
				c[2] = (uint64(uint32(w1)) * n) >> 32
				c[3] = ((w1 >> 32) * n) >> 32
				c[4] = (uint64(uint32(w2)) * n) >> 32
				c[5] = ((w2 >> 32) * n) >> 32
				c[6] = (uint64(uint32(w3)) * n) >> 32
				c[7] = ((w3 >> 32) * n) >> 32
				d = d[8:]
			}
		}
		for i := len(dst) - len(d); i < len(dst); i++ {
			dst[i] = f.HashRange(i, key, n)
		}
		return
	}
	for j := range dst {
		x += golden
		dst[j] = Reduce(Mix64(x), n)
	}
}
