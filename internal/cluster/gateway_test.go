package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/server"
)

// testSketchCfg is the shared cluster sketch identity for every backend
// and oracle in these tests — small enough to keep gathers cheap, big
// enough that estimates are non-degenerate.
var testSketchCfg = vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 5}

// backendHarness is one in-process vosd stand-in: an engine-backed
// service behind a real HTTP server.
type backendHarness struct {
	eng *vos.Engine
	srv *server.Server
	ts  *httptest.Server
}

func (b *backendHarness) URL() string { return b.ts.URL }

// newBackend starts an in-process backend. dir != "" makes it durable.
func newBackend(t *testing.T, dir string) *backendHarness {
	t.Helper()
	cfg := vos.EngineConfig{Sketch: testSketchCfg, Shards: 2}
	var eng *vos.Engine
	var err error
	if dir != "" {
		eng, err = vos.OpenEngine(dir, cfg)
	} else {
		eng, err = vos.NewEngine(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(vos.NewEngineService(eng), server.Options{})
	ts := httptest.NewServer(srv)
	b := &backendHarness{eng: eng, srv: srv, ts: ts}
	t.Cleanup(func() {
		b.ts.Close()
		b.eng.Close()
	})
	return b
}

// newTestCluster starts k backends and a gateway over them. Client
// retries are disabled so failure-path tests stay fast.
func newTestCluster(t *testing.T, k int, opt Options) (*Gateway, []*backendHarness) {
	t.Helper()
	backends := make([]*backendHarness, k)
	shards := make([]string, k)
	for i := range backends {
		backends[i] = newBackend(t, "")
		shards[i] = backends[i].URL()
	}
	ring := &Ring{Version: 1, RouteSeed: 9, Shards: shards}
	opt.Client.MaxRetries = -1
	gw, err := New(ring, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw, backends
}

// clusterWorkload builds a deterministic fully dynamic stream: inserts
// across users/items plus deletes of a sampled prior insert.
func clusterWorkload(seed int64, users, edges int) []vos.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vos.Edge, 0, edges)
	var inserted []vos.Edge
	for len(out) < edges {
		if len(inserted) > 0 && rng.Intn(10) == 0 {
			// Delete a previously inserted edge — the fully dynamic case.
			pick := inserted[rng.Intn(len(inserted))]
			out = append(out, vos.Edge{User: pick.User, Item: pick.Item, Op: vos.Delete})
			continue
		}
		e := vos.Edge{User: vos.User(rng.Intn(users)), Item: vos.Item(rng.Intn(users * 4)), Op: vos.Insert}
		out = append(out, e)
		inserted = append(inserted, e)
	}
	return out
}

// oracleFor folds a stream into a fresh single sketch — the single-engine
// ground truth every cluster answer must match bit for bit.
func oracleFor(edges []vos.Edge) *core.VOS {
	sk := core.MustNew(testSketchCfg)
	for _, e := range edges {
		sk.Process(e)
	}
	return sk
}

// ingestBatches pushes a stream through the gateway in batches.
func ingestBatches(t *testing.T, gw *Gateway, edges []vos.Edge, batch int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		if err := gw.Ingest(ctx, edges[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

// assertClusterParity checks every read surface of the gateway against
// the single-sketch oracle: serialized state byte-identical, pair
// estimates and top-K rankings equal as Go values (float64s compared
// exactly — both sides computed from the same merged array), per-user
// cardinalities equal, stats equal.
func assertClusterParity(t *testing.T, gw *Gateway, oracle *core.VOS, users int) {
	t.Helper()
	ctx := context.Background()

	gotBytes, err := gw.ExportSketch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := oracle.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("cluster export differs from the single-engine oracle (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}

	for u := vos.User(0); u < vos.User(users); u += 7 {
		v := (u*31 + 11) % vos.User(users)
		got, err := gw.Similarity(ctx, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Query(u, v); got != want {
			t.Fatalf("similarity(%d,%d): cluster %+v, oracle %+v", u, v, got, want)
		}

		card, err := gw.Cardinality(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Cardinality(u); card != want {
			t.Fatalf("cardinality(%d): cluster %d, oracle %d", u, card, want)
		}
	}

	candidates := make([]vos.User, 0, users-1)
	probe := vos.User(1)
	for u := vos.User(0); u < vos.User(users); u++ {
		if u != probe {
			candidates = append(candidates, u)
		}
	}
	got, err := gw.TopK(ctx, probe, candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.TopKRecoveredContext(ctx, oracle.RecoverSketch(probe), candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("topk length: cluster %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("topk[%d]: cluster %+v, oracle %+v", i, got[i], want[i])
		}
	}

	st, err := gw.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.Stats(); st != want {
		t.Fatalf("stats: cluster %+v, oracle %+v", st, want)
	}
}

// TestGatewayParity pins the tentpole's correctness bar in-process: for
// K ∈ {2,3,4} nodes, every gateway answer over a fully dynamic stream is
// bit-identical to a single engine (here: a single sketch, which the
// engine is itself parity-pinned against) consuming the same stream.
func TestGatewayParity(t *testing.T) {
	const users = 200
	for _, k := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("nodes=%d", k), func(t *testing.T) {
			gw, _ := newTestCluster(t, k, Options{})
			edges := clusterWorkload(int64(100+k), users, 6000)
			ingestBatches(t, gw, edges, 257)
			assertClusterParity(t, gw, oracleFor(edges), users)
		})
	}
}

// TestGatewayHandoffProperty pins handoff exactness: moving a shard to a
// fresh node mid-stream (single and double handoff) leaves the cluster's
// merged state byte-identical to both a never-rebalanced twin cluster and
// the single-sketch oracle.
func TestGatewayHandoffProperty(t *testing.T) {
	const users = 150
	for _, double := range []bool{false, true} {
		name := "single"
		if double {
			name = "double"
		}
		t.Run(name, func(t *testing.T) {
			gwA, _ := newTestCluster(t, 3, Options{})
			gwB, _ := newTestCluster(t, 3, Options{}) // never-rebalanced twin
			edges := clusterWorkload(42, users, 6000)
			half := len(edges) / 2

			ingestBatches(t, gwA, edges[:half], 211)
			ingestBatches(t, gwB, edges[:half], 211)

			fresh := newBackend(t, "")
			version, err := gwA.Handoff(context.Background(), 1, fresh.URL())
			if err != nil {
				t.Fatal(err)
			}
			if version != 2 {
				t.Fatalf("ring version after handoff: %d, want 2", version)
			}
			if ring := gwA.Ring(); ring.Shards[1] != fresh.URL() {
				t.Fatalf("shard 1 owner after handoff: %s, want %s", ring.Shards[1], fresh.URL())
			}

			if double {
				// A→B→C: the shard moves again before any further ingest
				// lands, so the second export covers exactly the first
				// import.
				fresh2 := newBackend(t, "")
				version, err = gwA.Handoff(context.Background(), 1, fresh2.URL())
				if err != nil {
					t.Fatal(err)
				}
				if version != 3 {
					t.Fatalf("ring version after double handoff: %d, want 3", version)
				}
			}

			ingestBatches(t, gwA, edges[half:], 211)
			ingestBatches(t, gwB, edges[half:], 211)

			oracle := oracleFor(edges)
			assertClusterParity(t, gwA, oracle, users)

			aBytes, err := gwA.ExportSketch(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			bBytes, err := gwB.ExportSketch(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aBytes, bBytes) {
				t.Fatal("rebalanced cluster state differs from the never-rebalanced twin")
			}
		})
	}
}

// TestGatewayHandoffRacingIngest drives ingest concurrently with a
// handoff: the shard gate must hold the racing batches until the move
// completes (never fail them, never lose them), so the final state still
// matches the oracle over every acknowledged edge.
func TestGatewayHandoffRacingIngest(t *testing.T) {
	const users = 120
	gw, _ := newTestCluster(t, 3, Options{})
	edges := clusterWorkload(7, users, 8000)
	half := len(edges) / 2
	ingestBatches(t, gw, edges[:half], 199)

	fresh := newBackend(t, "")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ingestBatches(t, gw, edges[half:], 97)
	}()
	if _, err := gw.Handoff(context.Background(), 0, fresh.URL()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	assertClusterParity(t, gw, oracleFor(edges), users)
}

// TestGatewayHandoffRejects pins the membership guardrails: out-of-range
// shards, malformed targets, and — the parity-critical one — targets
// already in the ring (whose state a second merge would XOR-cancel).
func TestGatewayHandoffRejects(t *testing.T) {
	gw, backends := newTestCluster(t, 2, Options{})
	ctx := context.Background()
	if _, err := gw.Handoff(ctx, 5, "http://127.0.0.1:1"); !errors.Is(err, ErrBadRing) {
		t.Fatalf("out-of-range shard: want ErrBadRing, got %v", err)
	}
	if _, err := gw.Handoff(ctx, 0, "not a url"); !errors.Is(err, ErrBadRing) {
		t.Fatalf("malformed target: want ErrBadRing, got %v", err)
	}
	if _, err := gw.Handoff(ctx, 0, backends[1].URL()); !errors.Is(err, ErrBadRing) {
		t.Fatalf("in-ring target: want ErrBadRing, got %v", err)
	}
	if ring := gw.Ring(); ring.Version != 1 {
		t.Fatalf("failed handoffs must not bump the ring: version %d", ring.Version)
	}
}

// TestGatewayHandoffPersistsRing verifies a handoff rewrites the on-disk
// ring document before publishing the new table.
func TestGatewayHandoffPersistsRing(t *testing.T) {
	backends := []*backendHarness{newBackend(t, ""), newBackend(t, "")}
	ringPath := filepath.Join(t.TempDir(), "ring.json")
	ring := &Ring{Version: 1, RouteSeed: 3, Shards: []string{backends[0].URL(), backends[1].URL()}}
	if err := SaveRing(ringPath, ring); err != nil {
		t.Fatal(err)
	}
	gw, err := Open(ringPath, Options{Client: client.Options{MaxRetries: -1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })

	ingestBatches(t, gw, clusterWorkload(3, 50, 500), 100)
	fresh := newBackend(t, "")
	if _, err := gw.Handoff(context.Background(), 0, fresh.URL()); err != nil {
		t.Fatal(err)
	}
	onDisk, err := LoadRing(ringPath)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Version != 2 || onDisk.Shards[0] != fresh.URL() {
		t.Fatalf("on-disk ring not updated: %+v", onDisk)
	}
}

// TestGatewayPartialTopK pins the degraded-read contract: with one
// backend draining (503), strict reads fail but TopKPartial answers from
// the reachable portion with complete=false — and the ranking equals an
// oracle over only the reachable shards' users.
func TestGatewayPartialTopK(t *testing.T) {
	const users = 90
	// Cache disabled so the gather actually contacts the drained backend
	// (a cached complete snapshot would - correctly - keep serving).
	gw, backends := newTestCluster(t, 3, Options{DisableSnapshotCache: true})
	edges := clusterWorkload(11, users, 3000)
	ingestBatches(t, gw, edges, 200)
	ctx := context.Background()

	// Oracle over the edges owned by the two surviving backends.
	ring := gw.Ring()
	var reachable []vos.Edge
	for _, e := range edges {
		if ring.ShardOf(e.User) != 2 {
			reachable = append(reachable, e)
		}
	}
	if err := backends[2].srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := gw.Similarity(ctx, 1, 2); err == nil {
		t.Fatal("strict read should fail with a backend draining")
	}
	if _, err := gw.TopK(ctx, 1, []vos.User{2, 3}, 2); err == nil {
		t.Fatal("strict top-K should fail with a backend draining")
	}

	candidates := make([]vos.User, 0, users-1)
	for u := vos.User(0); u < users; u++ {
		if u != 1 {
			candidates = append(candidates, u)
		}
	}
	got, complete, err := gw.TopKPartial(ctx, 1, candidates, 10)
	if err != nil {
		t.Fatalf("partial top-K must survive one draining backend: %v", err)
	}
	if complete {
		t.Fatal("partial top-K over a degraded cluster must report complete=false")
	}
	oracle := oracleFor(reachable)
	want, err := oracle.TopKRecoveredContext(ctx, oracle.RecoverSketch(1), candidates, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("partial topk length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("partial topk[%d]: %+v, want %+v", i, got[i], want[i])
		}
	}

	// All backends down: even the partial path has nothing to answer from.
	if err := backends[0].srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := backends[1].srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gw.TopKPartial(ctx, 1, candidates, 10); !errors.Is(err, vos.ErrQueryUnavailable) {
		t.Fatalf("zero reachable backends: want ErrQueryUnavailable, got %v", err)
	}
}

// TestGatewayClusterCheckpoint runs the coordinated checkpoint over
// durable backends: every node persists under a full ingest quiesce, the
// manifest records ring version and per-shard WAL positions, and the
// manifest file round-trips.
func TestGatewayClusterCheckpoint(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	backends := make([]*backendHarness, len(dirs))
	shards := make([]string, len(dirs))
	for i, dir := range dirs {
		backends[i] = newBackend(t, dir)
		shards[i] = backends[i].URL()
	}
	manifestPath := filepath.Join(t.TempDir(), "manifest.json")
	ring := &Ring{Version: 1, RouteSeed: 9, Shards: shards}
	gw, err := New(ring, Options{ManifestPath: manifestPath, Client: client.Options{MaxRetries: -1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })

	ingestBatches(t, gw, clusterWorkload(21, 80, 2000), 250)
	m, err := gw.CheckpointCluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.RingVersion != 1 || len(m.Shards) != 2 {
		t.Fatalf("manifest shape: %+v", m)
	}
	for i, s := range m.Shards {
		if s.Shard != i || s.Node != shards[i] || s.Position == 0 {
			t.Fatalf("manifest row %d: %+v", i, s)
		}
	}
	onDisk, err := LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Shards[1].Position != m.Shards[1].Position {
		t.Fatalf("persisted manifest differs: %+v vs %+v", onDisk, m)
	}

	// The Checkpointer facade sums the per-node positions.
	pos, err := gw.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Shards[0].Position + m.Shards[1].Position; pos < want {
		t.Fatalf("summed checkpoint position %d < first manifest's %d", pos, want)
	}
}

// TestGatewayCheckpointUnsupported: memory-only backends answer 501, and
// the cluster checkpoint must surface the failure, not record a manifest.
func TestGatewayCheckpointUnsupported(t *testing.T) {
	gw, _ := newTestCluster(t, 2, Options{})
	if _, err := gw.CheckpointCluster(context.Background()); err == nil {
		t.Fatal("cluster checkpoint over memory-only backends must fail")
	}
}

// TestGatewayClosed pins the lifecycle contract: every method reports
// ErrClosed after Close, and Close is idempotent.
func TestGatewayClosed(t *testing.T) {
	gw, _ := newTestCluster(t, 2, Options{})
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := gw.Ingest(ctx, []vos.Edge{{User: 1, Item: 2, Op: vos.Insert}}); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Ingest after Close: %v", err)
	}
	if _, err := gw.Similarity(ctx, 1, 2); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Similarity after Close: %v", err)
	}
	if _, err := gw.TopK(ctx, 1, []vos.User{2}, 1); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("TopK after Close: %v", err)
	}
	if _, _, err := gw.TopKPartial(ctx, 1, []vos.User{2}, 1); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("TopKPartial after Close: %v", err)
	}
	if _, err := gw.Cardinality(ctx, 1); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Cardinality after Close: %v", err)
	}
	if _, err := gw.Stats(ctx); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Stats after Close: %v", err)
	}
	if _, err := gw.ExportSketch(ctx); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("ExportSketch after Close: %v", err)
	}
	if _, err := gw.Handoff(ctx, 0, "http://127.0.0.1:1"); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Handoff after Close: %v", err)
	}
	if _, err := gw.CheckpointCluster(ctx); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("CheckpointCluster after Close: %v", err)
	}
}

// TestGatewayHandler drives the gateway-only HTTP routes end to end:
// ring fetch, handoff, method gates, malformed bodies, and the error
// envelope shape.
func TestGatewayHandler(t *testing.T) {
	gw, _ := newTestCluster(t, 2, Options{})
	api := server.New(gw, server.Options{})
	ts := httptest.NewServer(gw.Handler(api))
	t.Cleanup(ts.Close)
	ingestBatches(t, gw, clusterWorkload(5, 40, 400), 100)

	// GET /v1/cluster/ring
	resp, err := http.Get(ts.URL + server.RouteClusterRing)
	if err != nil {
		t.Fatal(err)
	}
	var ringResp server.RingResponse
	if err := json.NewDecoder(resp.Body).Decode(&ringResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ringResp.Version != 1 || len(ringResp.Shards) != 2 {
		t.Fatalf("ring response: %+v", ringResp)
	}

	// Method gates on every gateway route.
	for _, route := range []string{server.RouteClusterRing, server.RouteClusterHandoff, server.RouteClusterCheckpoint} {
		method := http.MethodPost
		if route != server.RouteClusterRing {
			method = http.MethodGet
		}
		req, _ := http.NewRequest(method, ts.URL+route, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env server.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != server.CodeMethodNotAllowed {
			t.Fatalf("%s %s: status %d code %q", method, route, resp.StatusCode, env.Error.Code)
		}
	}

	// Malformed handoff bodies.
	for _, body := range []string{"not json", `{"shard":0,"to":"http://h:1","x":1}`, `{"shard":0,"to":"http://h:1"} {}`} {
		resp, err := http.Post(ts.URL+server.RouteClusterHandoff, server.ContentTypeJSON, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env server.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != server.CodeBadRequest {
			t.Fatalf("handoff body %q: status %d code %q", body, resp.StatusCode, env.Error.Code)
		}
	}

	// A ring-violating handoff maps to bad_request through the envelope.
	bad, _ := json.Marshal(server.HandoffRequest{Shard: 99, To: "http://127.0.0.1:1"})
	resp, err = http.Post(ts.URL+server.RouteClusterHandoff, server.ContentTypeJSON, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range handoff: status %d", resp.StatusCode)
	}

	// A real handoff over the wire.
	fresh := newBackend(t, "")
	good, _ := json.Marshal(server.HandoffRequest{Shard: 0, To: fresh.URL()})
	resp, err = http.Post(ts.URL+server.RouteClusterHandoff, server.ContentTypeJSON, bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	var hr server.HandoffResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Version != 2 {
		t.Fatalf("handoff over the wire: status %d version %d", resp.StatusCode, hr.Version)
	}

	// Cluster checkpoint over memory-only backends: surfaced as an
	// envelope error (the backends answer 501), not a silent manifest.
	resp, err = http.Post(ts.URL+server.RouteClusterCheckpoint, server.ContentTypeJSON, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("cluster checkpoint over memory-only backends must not return 200")
	}

	// The standard API is still served through the wrapper.
	resp, err = http.Get(ts.URL + server.RouteStats)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wrapped /v1/stats: status %d", resp.StatusCode)
	}
}

// TestGatewayIngestValidation covers the cheap ingest edges: empty
// batches are free, cancelled contexts refuse before any network hop.
func TestGatewayIngestValidation(t *testing.T) {
	gw, _ := newTestCluster(t, 2, Options{})
	if err := gw.Ingest(context.Background(), nil); err != nil {
		t.Fatalf("empty ingest: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := gw.Ingest(ctx, []vos.Edge{{User: 1, Item: 1, Op: vos.Insert}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest: %v", err)
	}
}
