package unigraph

import (
	"fmt"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
)

// Edge is one regular-graph stream element: an edge appearing or
// disappearing between two users.
type Edge struct {
	U, V stream.User
	Op   stream.Op
}

// String renders the element.
func (e Edge) String() string {
	return fmt.Sprintf("(%d–%d, %s)", e.U, e.V, e.Op)
}

// Sketch estimates neighbor-set similarities over a fully dynamic regular
// graph stream, backed by a VOS sketch under the two-subscription
// reduction.
type Sketch struct {
	vos      *core.VOS
	directed bool
}

// Config re-exports the underlying VOS configuration.
type Config = core.Config

// New creates an undirected regular-graph sketch.
func New(cfg Config) (*Sketch, error) {
	v, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Sketch{vos: v}, nil
}

// NewDirected creates a sketch over a directed graph: edge (u, v) adds v
// to u's out-neighborhood only.
func NewDirected(cfg Config) (*Sketch, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.directed = true
	return s, nil
}

// Directed reports the edge interpretation.
func (s *Sketch) Directed() bool { return s.directed }

// Process folds one graph element into the sketch: one VOS update for the
// directed case, two for the undirected case. Self-loops are rejected
// (a user cannot neighbor itself in this model).
func (s *Sketch) Process(e Edge) error {
	if e.U == e.V {
		return fmt.Errorf("unigraph: self-loop %s", e)
	}
	if !e.Op.Valid() {
		return fmt.Errorf("unigraph: invalid op in %s", e)
	}
	s.vos.Process(stream.Edge{User: e.U, Item: stream.Item(e.V), Op: e.Op})
	if !s.directed {
		s.vos.Process(stream.Edge{User: e.V, Item: stream.Item(e.U), Op: e.Op})
	}
	return nil
}

// MustProcess panics on invalid elements (for feasible-by-construction
// simulations).
func (s *Sketch) MustProcess(e Edge) {
	if err := s.Process(e); err != nil {
		panic(err)
	}
}

// Degree returns the tracked |N(u)| (out-degree when directed).
func (s *Sketch) Degree(u stream.User) int64 { return s.vos.Cardinality(u) }

// Query estimates the neighbor-set similarity of users u and v: common
// neighbors and the Jaccard coefficient of their neighborhoods.
//
// Note that in the undirected case an edge (u, v) puts v in N(u) but not
// u itself, so adjacent users are not automatically similar — exactly the
// structural-equivalence semantics.
func (s *Sketch) Query(u, v stream.User) core.Estimate {
	return s.vos.Query(u, v)
}

// EstimateCommonNeighbors returns the estimated |N(u) ∩ N(v)|.
func (s *Sketch) EstimateCommonNeighbors(u, v stream.User) float64 {
	return s.vos.EstimateCommonItems(u, v)
}

// EstimateJaccard returns the estimated J(N(u), N(v)).
func (s *Sketch) EstimateJaccard(u, v stream.User) float64 {
	return s.vos.EstimateJaccard(u, v)
}

// Beta exposes the underlying array load.
func (s *Sketch) Beta() float64 { return s.vos.Beta() }

// Merge combines a shard built with an identical Config (see
// core.VOS.Merge; the reduction preserves exact mergeability).
func (s *Sketch) Merge(other *Sketch) error {
	if s.directed != other.directed {
		return fmt.Errorf("unigraph: cannot merge directed with undirected sketch")
	}
	return s.vos.Merge(other.vos)
}
