package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/server"
)

// Error is a typed server-side failure, decoded from the /v1/ error
// envelope. Transport failures (connection refused, timeouts) are returned
// as-is, not wrapped in Error.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope code (server.Code*); branch on this.
	Code string
	// Message is the human-readable detail.
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("vos server: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Is maps envelope codes back onto the service-layer sentinels:
// unavailable matches vos.ErrClosed and vos.ErrQueryUnavailable, canceled
// and timeout match the context errors, outside_window matches
// vos.ErrOutsideWindow — so code written against an in-process
// SimilarityService keeps working against a remote one.
// A draining instance is transient, not shut down: its code matches
// vos.ErrQueryUnavailable (the query path cannot answer right now) but
// never vos.ErrClosed, so callers branching on ErrClosed only see genuine
// engine shutdown.
func (e *Error) Is(target error) bool {
	switch e.Code {
	case server.CodeUnavailable:
		return target == vos.ErrClosed || target == vos.ErrQueryUnavailable
	case server.CodeDraining:
		return target == vos.ErrQueryUnavailable
	case server.CodeOutsideWindow:
		return target == vos.ErrOutsideWindow
	case server.CodeCanceled:
		return target == context.Canceled
	case server.CodeTimeout:
		return target == context.DeadlineExceeded
	}
	return false
}

// Options tunes a Client. The zero value selects the defaults.
type Options struct {
	// HTTPClient overrides the transport. Default: a client with a 30s
	// overall timeout (per-request contexts still apply on top).
	HTTPClient *http.Client
	// BatchSize is how many edges Ingest buffers before shipping a batch
	// — the same knob as EngineConfig.BatchSize, one wire round-trip per
	// batch. Default 256.
	BatchSize int
	// Linger bounds how long a partial batch sits unsent on an idle
	// stream: a background ticker flushes this often. Negative disables
	// the ticker (then only full batches, Flush, and Close ship edges).
	// Default 50ms.
	Linger time.Duration
	// MaxRetries is how many times idempotent reads are retried after a
	// transport error or 5xx (so MaxRetries+1 attempts total). Writes are
	// never retried — replaying an XOR toggle would corrupt parity.
	// Default 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay; each subsequent retry
	// doubles it. Default 50ms.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Linger == 0 {
		o.Linger = 50 * time.Millisecond
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	return o
}

// Client implements vos.SimilarityService (and vos.Checkpointer) over the
// /v1/ HTTP API. Safe for concurrent use. Close when done so buffered
// edges are shipped and the linger ticker stops.
type Client struct {
	base string
	opt  Options

	mu      sync.Mutex
	pend    []vos.Edge
	pendErr error // first error from a background linger flush
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// Compile-time interface checks: the remote client is a drop-in
// SimilarityService.
var (
	_ vos.SimilarityService = (*Client)(nil)
	_ vos.Checkpointer      = (*Client)(nil)
)

// New creates a Client for the API at baseURL (e.g. "http://host:8080");
// any trailing slash is trimmed.
func New(baseURL string, opt Options) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		opt:  opt.withDefaults(),
		stop: make(chan struct{}),
	}
	if c.opt.Linger > 0 {
		c.wg.Add(1)
		go c.linger()
	}
	return c
}

// linger ships partial batches in the background, mirroring the engine's
// producer ticker. Errors are parked in pendErr and surfaced by the next
// Ingest or Flush — a background goroutine has nobody to return to.
func (c *Client) linger() {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.Linger)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if err := c.Flush(context.Background()); err != nil {
				c.mu.Lock()
				if c.pendErr == nil {
					c.pendErr = err
				}
				c.mu.Unlock()
			}
		}
	}
}

// Ingest implements vos.SimilarityService: edges join the pending buffer
// and every full BatchSize chunk is shipped synchronously. A nil return
// means shipped batches were accepted by the server; a trailing partial
// batch may still be buffered (the linger ticker or Flush ships it). On a
// ship failure, only the batch that was actually attempted is in an
// ambiguous state (and is not resent — see ship); every batch not yet
// attempted goes back into the pending buffer, so one transport failure
// never silently discards edges that were never put on the wire.
func (c *Client) Ingest(ctx context.Context, edges []vos.Edge) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return vos.ErrClosed
	}
	if err := c.pendErr; err != nil {
		c.pendErr = nil
		c.mu.Unlock()
		return err
	}
	c.pend = append(c.pend, edges...)
	var full [][]vos.Edge
	for len(c.pend) >= c.opt.BatchSize {
		full = append(full, c.pend[:c.opt.BatchSize:c.opt.BatchSize])
		c.pend = c.pend[c.opt.BatchSize:]
	}
	if len(c.pend) == 0 {
		c.pend = nil
	}
	c.mu.Unlock()
	for bi, batch := range full {
		if err := c.ship(ctx, batch); err != nil {
			c.requeue(full[bi+1:])
			return err
		}
	}
	return nil
}

// requeue puts never-attempted batches back at the head of the pending
// buffer (ahead of anything buffered since — original order preserved).
func (c *Client) requeue(batches [][]vos.Edge) {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	if n == 0 {
		return
	}
	c.mu.Lock()
	restored := make([]vos.Edge, 0, n+len(c.pend))
	for _, b := range batches {
		restored = append(restored, b...)
	}
	c.pend = append(restored, c.pend...)
	c.mu.Unlock()
}

// Flush ships the pending partial batch, giving read-your-writes to a
// subsequent query. A parked background-flush error is surfaced first,
// WITHOUT consuming the buffer: edges buffered since that failure were
// never put on the wire, and dropping them alongside the error would
// silently diverge the remote sketch — the caller retries Flush after
// handling the error. (Edges inside a failed attempted ship are
// ambiguous — possibly applied — and are never resent; see ship.)
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	if err := c.pendErr; err != nil {
		c.pendErr = nil
		c.mu.Unlock()
		return err
	}
	out := c.pend
	c.pend = nil
	c.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	return c.ship(ctx, out)
}

// Close flushes buffered edges and stops the linger ticker. The client is
// unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	return c.Flush(context.Background())
}

// ship POSTs one batch in the binary stream format. Not retried: ingest is
// an XOR toggle, and a retry after an ambiguous failure (request possibly
// applied) would corrupt parity. Callers that need exactly-once on top of
// an unreliable link should run the server durable and re-checkpoint.
func (c *Client) ship(ctx context.Context, edges []vos.Edge) error {
	var buf bytes.Buffer
	if err := stream.WriteBinary(&buf, edges); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteEdges, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	var ack server.IngestResponse
	if err := c.do(req, &ack); err != nil {
		return err
	}
	if ack.Accepted != len(edges) {
		return fmt.Errorf("client: server accepted %d of %d edges", ack.Accepted, len(edges))
	}
	return nil
}

// Similarity implements vos.SimilarityService.
func (c *Client) Similarity(ctx context.Context, u, v vos.User) (vos.Estimate, error) {
	q := url.Values{}
	q.Set("u", strconv.FormatUint(uint64(u), 10))
	q.Set("v", strconv.FormatUint(uint64(v), 10))
	var est server.EstimateJSON
	if err := c.getRetry(ctx, server.RouteSimilarity+"?"+q.Encode(), &est); err != nil {
		return vos.Estimate{}, err
	}
	return est.Estimate(), nil
}

// SimilarityAt is Similarity asserting the query is about the instant at:
// a sliding-window server answers from the live window only when at is
// still inside it, and errors.Is(err, vos.ErrOutsideWindow) reports an
// instant whose edges have been retired. Against an unwindowed server the
// call fails with a bad_request *Error — there is no retained-time notion
// to check.
func (c *Client) SimilarityAt(ctx context.Context, u, v vos.User, at time.Time) (vos.Estimate, error) {
	q := url.Values{}
	q.Set("u", strconv.FormatUint(uint64(u), 10))
	q.Set("v", strconv.FormatUint(uint64(v), 10))
	q.Set("at", formatUnixSeconds(at))
	var est server.EstimateJSON
	if err := c.getRetry(ctx, server.RouteSimilarity+"?"+q.Encode(), &est); err != nil {
		return vos.Estimate{}, err
	}
	return est.Estimate(), nil
}

// AdvanceWindow drives the remote sliding window's event time forward to
// t, rotating buckets the stream time has moved past — an empty
// timestamped ingest (POST /v1/edges with the X-Vos-Batch-Ts header and
// zero edges). The pending write buffer is flushed first, so edges from
// earlier Ingest calls reach the server on the pre-advance side of the
// rotation instead of being overtaken by it and landing in the fresh
// bucket. A server without a window accepts and ignores the advance.
// Like all ingest it is never retried; re-sending after an ambiguous
// failure is safe, though, since the window never moves backwards.
func (c *Client) AdvanceWindow(ctx context.Context, t time.Time) error {
	if err := c.Flush(ctx); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := stream.WriteBinary(&buf, nil); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteEdges, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinary)
	req.Header.Set(server.HeaderBatchTs, formatUnixSeconds(t))
	return c.do(req, nil)
}

// formatUnixSeconds renders t as the fractional-unix-seconds form the
// /v1/ API's ts and at fields use.
func formatUnixSeconds(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixNano())/1e9, 'f', -1, 64)
}

// TopK implements vos.SimilarityService. Top-K is a read, so it is retried
// like the GETs despite travelling as a POST.
func (c *Client) TopK(ctx context.Context, u vos.User, candidates []vos.User, n int) ([]vos.TopKResult, error) {
	return c.topK(ctx, u, candidates, n, 0)
}

// TopKAt is TopK asserting the query is about the instant at — the top-K
// counterpart of SimilarityAt, carrying the request body's "at" field: a
// sliding-window server answers from the live window only when at is
// still inside it, errors.Is(err, vos.ErrOutsideWindow) reports an
// instant whose edges have been retired, and an unwindowed server
// rejects the assertion with a bad_request *Error.
func (c *Client) TopKAt(ctx context.Context, u vos.User, candidates []vos.User, n int, at time.Time) ([]vos.TopKResult, error) {
	return c.topK(ctx, u, candidates, n, float64(at.UnixNano())/1e9)
}

// TopKApprox implements vos.ApproxTopK: candidates-free top-K answered
// from the server's approximate (banded-LSH) index, travelling as
// POST /v1/topk with mode "ann". A server whose backing service has no
// index answers 501 unsupported — errors.Is(err, vos.ErrNoANN) style
// branching is not possible over the wire, so check the *Error code
// ("unsupported") instead.
func (c *Client) TopKApprox(ctx context.Context, u vos.User, n int) ([]vos.TopKResult, error) {
	return c.postTopK(ctx, server.TopKRequest{User: uint64(u), N: n, Mode: "ann"})
}

// topK is the shared body of TopK and TopKAt; at == 0 means no instant
// assertion.
func (c *Client) topK(ctx context.Context, u vos.User, candidates []vos.User, n int, at float64) ([]vos.TopKResult, error) {
	req := server.TopKRequest{User: uint64(u), N: n, At: at, Candidates: make([]uint64, len(candidates))}
	for i, cand := range candidates {
		req.Candidates[i] = uint64(cand)
	}
	return c.postTopK(ctx, req)
}

// postTopK posts a /v1/topk request body and decodes the ranked results.
// Top-K is a read however it is parameterised, so it retries like the GETs.
func (c *Client) postTopK(ctx context.Context, req server.TopKRequest) ([]vos.TopKResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var wire []server.TopKResultJSON
	err = c.retry(ctx, func() error {
		r, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteTopK, bytes.NewReader(body))
		if err != nil {
			return err
		}
		r.Header.Set("Content-Type", server.ContentTypeJSON)
		return c.do(r, &wire)
	})
	if err != nil {
		return nil, err
	}
	out := make([]vos.TopKResult, len(wire))
	for i, w := range wire {
		out[i] = vos.TopKResult{User: vos.User(w.User), Estimate: w.Estimate.Estimate()}
	}
	return out, nil
}

// Cardinality implements vos.SimilarityService.
func (c *Client) Cardinality(ctx context.Context, u vos.User) (int64, error) {
	var resp server.CardinalityResponse
	if err := c.getRetry(ctx, server.RouteCardinality+"?user="+strconv.FormatUint(uint64(u), 10), &resp); err != nil {
		return 0, err
	}
	return resp.Cardinality, nil
}

// Stats implements vos.SimilarityService.
func (c *Client) Stats(ctx context.Context) (vos.Stats, error) {
	var resp server.StatsResponse
	if err := c.getRetry(ctx, server.RouteStats, &resp); err != nil {
		return vos.Stats{}, err
	}
	return resp.Stats(), nil
}

// Checkpoint implements vos.Checkpointer: it asks the remote engine to
// persist a checkpoint and returns the covered WAL position. Not retried
// (not idempotent in cost), though re-running one is safe.
func (c *Client) Checkpoint(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+server.RouteCheckpoint, nil)
	if err != nil {
		return 0, err
	}
	var resp server.CheckpointResponse
	if err := c.do(req, &resp); err != nil {
		return 0, err
	}
	return resp.Position, nil
}

// Ready reports whether the server is in rotation (GET /v1/readyz == 200).
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+server.RouteReadyz, nil)
	if err != nil {
		return false
	}
	var h server.HealthResponse
	return c.do(req, &h) == nil
}

// getRetry GETs path and decodes the JSON response into out, retrying per
// the retry policy.
func (c *Client) getRetry(ctx context.Context, path string, out any) error {
	return c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		return c.do(req, out)
	})
}

// retry applies the client's RetryPolicy (see retry.go) to attempt.
func (c *Client) retry(ctx context.Context, attempt func() error) error {
	return c.Retry().Do(ctx, attempt)
}

// Retry returns the client's resolved read-retry policy, so a caller
// coordinating several clients (one per cluster backend) can share one
// policy definition across all of them.
func (c *Client) Retry() RetryPolicy {
	return RetryPolicy{MaxRetries: c.opt.MaxRetries, Backoff: c.opt.RetryBackoff}
}

// do executes the request and decodes a 2xx JSON body into out (out may be
// nil to discard), or decodes the error envelope into *Error.
func (c *Client) do(req *http.Request, out any) error {
	body, _, err := c.doRaw(req)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}

// doRaw executes the request and returns a 2xx response's raw body and
// headers, or decodes the error envelope into *Error. It is the transport
// floor under do, split out for responses that are not JSON (the binary
// cluster sketch) or whose headers carry protocol state (X-Vos-Partial).
func (c *Client) doRaw(req *http.Request) ([]byte, http.Header, error) {
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		// Surface the caller's context error undecorated so it is never
		// mistaken for a retryable transport failure.
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return nil, nil, ctxErr
		}
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode >= 400 {
		var env server.ErrorEnvelope
		if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
			return nil, nil, &Error{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		return nil, nil, &Error{Status: resp.StatusCode, Code: server.CodeInternal,
			Message: fmt.Sprintf("non-envelope response: %.200s", body)}
	}
	return body, resp.Header, nil
}
