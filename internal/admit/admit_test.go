package admit

import (
	"errors"
	"sync"
	"testing"
)

func TestDefaultsAndFloor(t *testing.T) {
	c := NewController(0, 0)
	if c.MaxBatchBytes() != DefaultMaxBatchBytes {
		t.Fatalf("default batch cap = %d, want %d", c.MaxBatchBytes(), DefaultMaxBatchBytes)
	}
	if c.MaxInFlightBytes() != DefaultMaxInFlightBytes {
		t.Fatalf("default budget = %d, want %d", c.MaxInFlightBytes(), DefaultMaxInFlightBytes)
	}
	// A budget below the batch cap is floored at the cap: transports that
	// charge the cap up front (chunked HTTP) must never deadlock.
	c = NewController(1<<20, 1<<10)
	if c.MaxInFlightBytes() != 1<<20 {
		t.Fatalf("budget = %d, want floored to batch cap %d", c.MaxInFlightBytes(), 1<<20)
	}
}

func TestWorstCase(t *testing.T) {
	if got := WorstCase(100, false); got != 100 {
		t.Fatalf("text worst case = %d, want 100", got)
	}
	// Binary: wire + wire/2 decoded edges — the ~13x amplification bound.
	want := int64(100) + 50*EdgeMemBytes
	if got := WorstCase(100, true); got != want {
		t.Fatalf("binary worst case = %d, want %d", got, want)
	}
}

func TestAdmitOutcomes(t *testing.T) {
	c := NewController(1000, 10000)

	// Over the per-batch cap: permanent, typed.
	_, err := c.Admit(1001, false)
	var tooBig *BatchTooLargeError
	if !errors.As(err, &tooBig) || tooBig.Wire != 1001 || tooBig.Limit != 1000 {
		t.Fatalf("Admit(1001) = %v, want BatchTooLargeError{1001, 1000}", err)
	}

	// Under the cap but worst case over the whole budget: permanent, typed.
	_, err = c.Admit(900, true)
	var overBudget *BudgetExceededError
	if !errors.As(err, &overBudget) || overBudget.Held != WorstCase(900, true) || overBudget.Budget != 10000 {
		t.Fatalf("Admit(900, binary) = %v, want BudgetExceededError", err)
	}

	// Transient exhaustion: the first hold fits, the second does not.
	h1, err := c.Admit(1000, false)
	if err != nil {
		t.Fatalf("Admit(1000): %v", err)
	}
	h2, err := c.Admit(1000, false)
	if err != nil {
		t.Fatalf("second Admit(1000): %v", err)
	}
	for c.InFlightBytes()+1000 <= c.MaxInFlightBytes() {
		if _, err := c.Admit(1000, false); err != nil {
			t.Fatalf("filling budget: %v", err)
		}
	}
	if _, err := c.Admit(1000, false); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("exhausted Admit = %v, want ErrBackpressure", err)
	}

	// Close releases; the budget becomes admissible again.
	h1.Close()
	h3, err := c.Admit(1000, false)
	if err != nil {
		t.Fatalf("Admit after Close: %v", err)
	}
	h3.Close()
	h2.Close()
}

func TestTrimAndClose(t *testing.T) {
	c := NewController(1000, 100000)
	h, err := c.Admit(100, true)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	worst := WorstCase(100, true)
	if h.Held() != worst || c.InFlightBytes() != worst {
		t.Fatalf("held = %d / in-flight = %d, want %d", h.Held(), c.InFlightBytes(), worst)
	}

	// Trimming to the real footprint releases the pessimism.
	h.Trim(3)
	actual := int64(100) + 3*EdgeMemBytes
	if h.Held() != actual || c.InFlightBytes() != actual {
		t.Fatalf("after Trim(3): held = %d / in-flight = %d, want %d", h.Held(), c.InFlightBytes(), actual)
	}

	// A footprint at or above the hold never grows the charge (text
	// bodies, whose decoded slice exceeds the wire-only hold).
	h.Trim(1 << 20)
	if h.Held() != actual {
		t.Fatalf("Trim up grew the hold to %d", h.Held())
	}

	h.Close()
	h.Close() // idempotent
	if c.InFlightBytes() != 0 {
		t.Fatalf("in-flight after Close = %d, want 0", c.InFlightBytes())
	}
}

func TestConcurrentAdmitNeverOversubscribes(t *testing.T) {
	c := NewController(1000, 8000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h, err := c.Admit(1000, false)
				if err != nil {
					continue
				}
				h.Trim(1)
				h.Close()
			}
		}()
	}
	wg.Wait()
	if got := c.InFlightBytes(); got != 0 {
		t.Fatalf("leaked %d in-flight bytes", got)
	}
}
