package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// tinyOptions shrink every knob so the full pipeline runs in well under a
// second; integration coverage, not statistical power.
func tinyOptions() Options {
	return Options{
		Scale:        0.002,
		Seed:         3,
		K32:          50,
		Lambda:       2,
		TopUsers:     30,
		MinCommon:    1,
		MaxPairs:     60,
		Checkpoints:  4,
		RuntimeUsers: 50,
		RuntimeEdges: 2000,
		RuntimeKs:    []int{1, 16},
	}
}

func TestBuildDataset(t *testing.T) {
	ds := BuildDataset(gen.YouTube, tinyOptions())
	if len(ds.Edges) == 0 {
		t.Fatal("empty dataset")
	}
	if err := stream.Validate(ds.Edges); err != nil {
		t.Fatalf("dataset infeasible: %v", err)
	}
	if ds.Profile.Name != "YouTube" {
		t.Errorf("profile name %q", ds.Profile.Name)
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	a := BuildDataset(gen.YouTube, tinyOptions())
	b := BuildDataset(gen.YouTube, tinyOptions())
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("dataset not deterministic")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestTrackedPairs(t *testing.T) {
	opts := tinyOptions()
	ds := BuildDataset(gen.YouTube, opts)
	pairs, median, err := TrackedPairs(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) > opts.MaxPairs {
		t.Fatalf("%d pairs", len(pairs))
	}
	if median < 1 {
		t.Errorf("median common %d, want >= 1", median)
	}
}

func TestFig2aShape(t *testing.T) {
	opts := tinyOptions()
	tbl, err := Fig2a(opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(opts.RuntimeKs) * len(similarity.Methods)
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(tbl.Rows), wantRows)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig2a") {
		t.Error("render missing ID")
	}
}

func TestFig2bShape(t *testing.T) {
	tbl, err := Fig2b(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4*len(similarity.Methods) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
}

func TestRunAccuracyProducesAllSeries(t *testing.T) {
	opts := tinyOptions()
	r, err := RunAccuracy(gen.YouTube, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range similarity.Methods {
		s := r.AAPE.Get(m)
		if s == nil || len(s.Points) < opts.Checkpoints {
			t.Fatalf("%s AAPE series incomplete", m)
		}
		if r.ARMSE.Get(m) == nil {
			t.Fatalf("%s ARMSE series missing", m)
		}
		for _, p := range s.Points {
			if p.Value < 0 {
				t.Errorf("%s negative AAPE %v", m, p.Value)
			}
		}
	}
	// ARMSE is bounded by 1 (both Ĵ and J live in [0, 1]).
	for _, m := range similarity.Methods {
		for _, p := range r.ARMSE.Get(m).Points {
			if p.Value < 0 || p.Value > 1 {
				t.Errorf("%s ARMSE %v out of [0, 1]", m, p.Value)
			}
		}
	}
}

func TestFig3TimeSeriesTables(t *testing.T) {
	aape, armse, err := Fig3TimeSeries(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if aape.ID != "fig3a" || armse.ID != "fig3c" {
		t.Errorf("ids %s/%s", aape.ID, armse.ID)
	}
	if len(aape.Rows) == 0 || len(aape.Rows) != len(armse.Rows) {
		t.Errorf("row counts %d/%d", len(aape.Rows), len(armse.Rows))
	}
	if len(aape.Header) != 1+len(similarity.Methods) {
		t.Errorf("header %v", aape.Header)
	}
}

func TestAblationTables(t *testing.T) {
	opts := tinyOptions()
	for name, run := range map[string]func(Options) (*Table, error){
		"abl-lambda": AblLambda,
		"abl-load":   AblLoad,
		"abl-dense": func(o Options) (*Table, error) {
			return AblDense(o)
		},
		"abl-delbias": AblDelBias,
	} {
		tbl, err := run(opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
		if tbl.ID != name {
			t.Errorf("%s: id %q", name, tbl.ID)
		}
	}
}

func TestComparePairs(t *testing.T) {
	opts := tinyOptions()
	ds := BuildDataset(gen.YouTube, opts)
	pairs, _, err := TrackedPairs(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ComparePairs(ds, pairs[:5], similarity.MethodVOS, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, r := range reports {
		if r.TrueS < 0 || r.TrueJ < 0 || r.TrueJ > 1 {
			t.Errorf("implausible truth in %+v", r)
		}
	}
	if _, err := ComparePairs(ds, pairs, "bogus", opts); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "T",
		Header: []string{"a", "b"},
	}
	tbl.AddNote("note %d", 1)
	tbl.AddRow("1", "with,comma")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# note 1") || !strings.Contains(out, `"with,comma"`) {
		t.Errorf("csv output: %q", out)
	}
}

func TestOptionsNormalization(t *testing.T) {
	var zero Options
	n := zero.normalized()
	d := Defaults()
	if n.Scale != d.Scale || n.K32 != d.K32 || len(n.RuntimeKs) != len(d.RuntimeKs) {
		t.Errorf("normalized zero != defaults: %+v", n)
	}
	// Non-zero fields survive.
	custom := Options{K32: 7}.normalized()
	if custom.K32 != 7 {
		t.Error("normalization clobbered explicit field")
	}
}

func TestMedianInt(t *testing.T) {
	if medianInt(nil) != 0 {
		t.Error("empty median")
	}
	if got := medianInt([]int{5, 1, 9}); got != 5 {
		t.Errorf("median = %d", got)
	}
	if got := medianInt([]int{4, 1, 3, 2}); got != 3 {
		t.Errorf("even median = %d", got)
	}
}

func TestCompareTable(t *testing.T) {
	tbl, err := Compare(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "compare" {
		t.Errorf("id %q", tbl.ID)
	}
	if len(tbl.Rows) != len(similarity.Methods) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Quantile columns must be non-decreasing left to right (p50 ≤ p90 ≤
	// p99 ≤ max) for every method.
	for _, row := range tbl.Rows {
		var prev float64
		for col := 2; col < len(row); col++ {
			var v float64
			if _, err := fmt.Sscanf(row[col], "%f", &v); err != nil {
				t.Fatalf("cell %q not numeric", row[col])
			}
			if v < prev {
				t.Errorf("%s: quantiles not monotone: %v", row[0], row)
				break
			}
			prev = v
		}
	}
}

func TestDatasetOptionSelectsProfile(t *testing.T) {
	opts := tinyOptions()
	opts.Dataset = "Flickr"
	ds := BuildDataset(opts.profile(), opts)
	if ds.Profile.Name != "Flickr" {
		t.Errorf("profile %q", ds.Profile.Name)
	}
	opts.Dataset = "bogus"
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset should panic in profile()")
		}
	}()
	opts.profile()
}

func TestRenderJSONRoundTrips(t *testing.T) {
	tbl := &Table{
		ID:     "query",
		Title:  "t",
		Header: []string{"op", "ns/op"},
		Rows:   [][]string{{"pair", "123"}, {"topk", "456"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	if err := tbl.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID    string              `json:"id"`
		Notes []string            `json:"notes"`
		Rows  []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("RenderJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if got.ID != "query" || len(got.Rows) != 2 || got.Rows[1]["ns/op"] != "456" || got.Notes[0] != "n1" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
