package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// The fast hash family must be a drop-in accuracy-neutral replacement for
// the classic one: same estimator, same query paths, different position
// generation. These tests pin that contract — estimates stay accurate, all
// query paths agree with each other under KindFast, serialized state
// carries the family, and state built under different families is refused
// with the typed ErrFamilyMismatch.

func fastConfig() Config {
	cfg := testConfig()
	cfg.Family = hashing.KindFast
	return cfg
}

func TestConfigValidateFamily(t *testing.T) {
	cfg := testConfig()
	cfg.Family = hashing.Kind(9)
	if _, err := New(cfg); err == nil {
		t.Error("invalid hash family accepted")
	}
	// The family tag rides in the high byte of the serialized SketchBits
	// word, so k must stay below 2^48 for the encoding to be unambiguous.
	big := Config{MemoryBits: 1 << 49, SketchBits: 1 << 48, Seed: 1}
	if _, err := New(big); err == nil {
		t.Error("SketchBits >= 2^48 accepted; would collide with the family tag byte")
	}
}

func TestFastFamilyAccuracy(t *testing.T) {
	// The fast family must keep estimator accuracy: same planted-pair
	// setup and error budget as TestQueryAccuracyLowLoad for the classic
	// family.
	const (
		trials = 30
		sizeA  = 300
		sizeB  = 260
		common = 120
	)
	sumErr, sumJErr := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		v := MustNew(Config{MemoryBits: 1 << 20, SketchBits: 2048, Seed: uint64(trial), Family: hashing.KindFast})
		for _, e := range gen.PlantedPair(1, 2, sizeA, sizeB, common, int64(trial)) {
			v.Process(e)
		}
		est := v.Query(1, 2)
		sumErr += math.Abs(est.Common - common)
		trueJ := float64(common) / float64(sizeA+sizeB-common)
		sumJErr += math.Abs(est.Jaccard - trueJ)
	}
	if avg := sumErr / trials; avg > 12 {
		t.Errorf("mean |ŝ−s| = %.2f for s=%d, too large", avg, common)
	}
	if avgJ := sumJErr / trials; avgJ > 0.05 {
		t.Errorf("mean Jaccard error = %.3f, too large", avgJ)
	}
}

func TestFastFamilyQueryPathParity(t *testing.T) {
	// Every query path — per-bit, materialized, recovered-probe — must
	// produce the identical estimate under the fast family, exactly as the
	// classic family's parity tests pin.
	v := MustNew(fastConfig())
	rng := rand.New(rand.NewSource(11))
	for u := stream.User(1); u <= 20; u++ {
		for j := 0; j < 40; j++ {
			v.Process(stream.Edge{User: u, Item: stream.Item(rng.Uint64() % 500), Op: stream.Insert})
		}
	}
	for u := stream.User(1); u <= 20; u++ {
		r := v.RecoverSketch(u)
		for w := stream.User(1); w <= 20; w++ {
			per := v.QueryPerBit(u, w)
			mat := v.Query(u, w)
			rec := v.QueryRecovered(r, w)
			if per != mat {
				t.Fatalf("Query(%d,%d) per-bit %+v != materialized %+v", u, w, per, mat)
			}
			if rec != mat {
				t.Fatalf("Query(%d,%d) recovered %+v != materialized %+v", u, w, rec, mat)
			}
		}
	}
}

func TestFastFamilyIndependentPositions(t *testing.T) {
	// Sanity: the two families really do place the same user's slots at
	// different positions (otherwise the wire tag would be meaningless).
	classic := MustNew(testConfig())
	fast := MustNew(fastConfig())
	same := 0
	pc := classic.Positions(77)
	pf := fast.Positions(77)
	for j := range pc {
		if pc[j] == pf[j] {
			same++
		}
	}
	if same > len(pc)/8 {
		t.Errorf("families agree on %d/%d positions; expected near-independence", same, len(pc))
	}
}

func TestFamilyMarshalRoundTrip(t *testing.T) {
	v := MustNew(fastConfig())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		v.Process(stream.Edge{User: stream.User(rng.Uint64() % 16), Item: stream.Item(rng.Uint64() % 200), Op: stream.Insert})
	}
	v.Process(edgeFor(3, 5, false))

	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVOS(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != v.Config() {
		t.Fatalf("round trip config %+v, want %+v", got.Config(), v.Config())
	}
	if got.Config().Family != hashing.KindFast {
		t.Fatalf("family lost in round trip: %v", got.Config().Family)
	}
	if got.Stats() != v.Stats() {
		t.Fatalf("round trip stats %+v, want %+v", got.Stats(), v.Stats())
	}
	if a, b := got.Query(1, 2), v.Query(1, 2); a != b {
		t.Fatalf("round trip Query(1,2) = %+v, want %+v", a, b)
	}
	re, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("re-marshal of decoded fast-family sketch is not byte-identical")
	}
}

func TestClassicMarshalUnchangedByFamilyTag(t *testing.T) {
	// KindClassic is the zero tag: its serialized form must be identical to
	// the pre-family format, byte for byte. The golden fixture pins the
	// exact bytes; here we pin the structural reason — a zero high byte.
	v := MustNew(testConfig())
	v.Process(edgeFor(1, 2, true))
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// SketchBits word is the second header u64 (offset 12, little-endian);
	// its high byte — offset 19 — carries the family tag.
	if data[19] != 0 {
		t.Fatalf("classic sketch has nonzero family tag byte %#x", data[19])
	}
}

func TestUnknownFamilyTagRejected(t *testing.T) {
	v := MustNew(testConfig())
	v.Process(edgeFor(1, 2, true))
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data[19] = 0x07 // unknown family tag in the SketchBits high byte
	_, err = UnmarshalVOS(data)
	if err == nil {
		t.Fatal("unknown family tag accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("error %v does not wrap ErrCorrupt", err)
	}
	if !errors.Is(err, ErrFamilyMismatch) {
		t.Errorf("error %v does not wrap ErrFamilyMismatch", err)
	}
}

func TestMergeFamilyMismatch(t *testing.T) {
	classic := MustNew(testConfig())
	fast := MustNew(fastConfig())
	if err := classic.Merge(fast); !errors.Is(err, ErrFamilyMismatch) {
		t.Errorf("Merge across families: err = %v, want ErrFamilyMismatch", err)
	}
	if err := classic.Unmerge(fast); !errors.Is(err, ErrFamilyMismatch) {
		t.Errorf("Unmerge across families: err = %v, want ErrFamilyMismatch", err)
	}
	// Same family still merges.
	f2 := MustNew(fastConfig())
	if err := fast.Merge(f2); err != nil {
		t.Errorf("same-family merge failed: %v", err)
	}
}

func TestProcessBatchMatchesProcess(t *testing.T) {
	// ProcessBatch is a pure performance path: folding a batch must leave
	// state bit-identical to processing its edges one at a time, for both
	// families, including deletes and repeated users.
	for _, cfg := range []Config{testConfig(), fastConfig()} {
		rng := rand.New(rand.NewSource(21))
		edges := make([]stream.Edge, 0, 600)
		for i := 0; i < 600; i++ {
			op := stream.Insert
			if i%5 == 4 {
				op = stream.Delete
			}
			edges = append(edges, stream.Edge{
				User: stream.User(rng.Uint64() % 12),
				Item: stream.Item(rng.Uint64() % 300),
				Op:   op,
			})
		}
		one := MustNew(cfg)
		bat := MustNew(cfg)
		for _, e := range edges {
			one.Process(e)
		}
		bat.ProcessBatch(nil) // empty batch is a no-op
		bat.ProcessBatch(edges[:1])
		bat.ProcessBatch(edges[1:])
		a, _ := one.MarshalBinary()
		b, _ := bat.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Errorf("family %v: ProcessBatch state differs from per-edge Process", cfg.Family)
		}
	}
}

func TestWindowProcessBatchMatchesProcess(t *testing.T) {
	for _, cfg := range []Config{testConfig(), fastConfig()} {
		start := time.Unix(100, 0)
		one, err := NewWindowAt(cfg, 4, time.Second, start)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewWindowAt(cfg, 4, time.Second, start)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		edges := make([]stream.Edge, 0, 200)
		for i := 0; i < 200; i++ {
			op := stream.Insert
			if i%7 == 6 {
				op = stream.Delete
			}
			edges = append(edges, stream.Edge{
				User: stream.User(rng.Uint64() % 8),
				Item: stream.Item(rng.Uint64() % 100),
				Op:   op,
			})
		}
		for _, e := range edges[:100] {
			one.Process(e)
		}
		bat.ProcessBatch(edges[:100])
		one.Rotate()
		bat.Rotate()
		for _, e := range edges[100:] {
			one.Process(e)
		}
		bat.ProcessBatch(edges[100:])
		a, _ := one.MarshalBinary()
		b, _ := bat.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Errorf("family %v: Window.ProcessBatch state differs from per-edge Process", cfg.Family)
		}
		am, _ := one.Merged().MarshalBinary()
		bm, _ := bat.Merged().MarshalBinary()
		if !bytes.Equal(am, bm) {
			t.Errorf("family %v: Window.ProcessBatch merged view differs", cfg.Family)
		}
	}
}

func TestStatsReportsFamily(t *testing.T) {
	if got := MustNew(testConfig()).Stats().Family; got != hashing.KindClassic {
		t.Errorf("classic Stats().Family = %v", got)
	}
	if got := MustNew(fastConfig()).Stats().Family; got != hashing.KindFast {
		t.Errorf("fast Stats().Family = %v", got)
	}
}
