package vos

import (
	"context"
	"sync"
)

// ConcurrentSketch wraps a Sketch with a read-write mutex so one writer
// (the stream consumer) and many readers (query servers) can share it. It
// is the simplest thread-safe deployment, and its limit: every Process
// serialises on one lock, so ingest cannot scale past one core.
//
// For write-heavy pipelines, use Engine instead — N sketch shards fed by
// per-shard ingest goroutines with an exactly merged query snapshot — or,
// for offline work, one plain Sketch per stream partition combined with
// Sketch.Merge (merging is exact for any partition of the stream).
type ConcurrentSketch struct {
	mu sync.RWMutex
	sk *Sketch
}

// NewConcurrent creates a thread-safe VOS sketch.
func NewConcurrent(cfg Config) (*ConcurrentSketch, error) {
	sk, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentSketch{sk: sk}, nil
}

// Process folds one element into the sketch.
func (c *ConcurrentSketch) Process(e Edge) {
	c.mu.Lock()
	c.sk.Process(e)
	c.mu.Unlock()
}

// Query estimates the similarity of two users.
func (c *ConcurrentSketch) Query(u, v User) Estimate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.Query(u, v)
}

// TopK returns the n candidates most similar to u, best first, under the
// read lock (see Sketch.TopK).
func (c *ConcurrentSketch) TopK(u User, candidates []User, n int) []TopKResult {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.TopK(u, candidates, n)
}

// TopKContext is TopK with cooperative cancellation: the candidate loop
// polls ctx and aborts with ctx.Err() when it is cancelled. Note the read
// lock is held for the duration, so a cancelled scan also releases the
// lock early.
func (c *ConcurrentSketch) TopKContext(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.TopKRecoveredContext(ctx, c.sk.RecoverSketch(u), candidates, n)
}

// Cardinality returns the tracked n_u.
func (c *ConcurrentSketch) Cardinality(u User) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.Cardinality(u)
}

// Beta returns the current array load.
func (c *ConcurrentSketch) Beta() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.Beta()
}

// Stats returns a snapshot of sketch state.
func (c *ConcurrentSketch) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.Stats()
}

// Snapshot serializes the sketch under the read lock; the result can be
// restored with Unmarshal.
func (c *ConcurrentSketch) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sk.MarshalBinary()
}

// Merge folds a plain Sketch (e.g. a shard) into this one.
func (c *ConcurrentSketch) Merge(other *Sketch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sk.Merge(other)
}
