// Package cluster implements the vosgw gateway tier: a routing layer that
// lifts the engine's stream.ShardOf(user) partition from cores to the
// network. A Ring maps each cluster shard to the vosd backend that owns
// it; the Gateway fans ingest to owners, answers queries from the
// XOR-merge of every backend's serialized sketch, moves shards between
// nodes with checkpoint-ship + merge handoff, and coordinates
// cluster-wide checkpoints.
//
// The correctness bar is wire parity: because VOS state is pure parity,
// the merged cluster sketch equals the sketch of the whole stream for any
// partition of it, so a K-node cluster answers bit-identical to a single
// engine over the same stream. The query-side consequence is that pair
// estimates CANNOT be computed node-locally — the estimator's β term (the
// shared array's global ones-fraction) and the cross-user collision noise
// at recovered positions are properties of the merged array, not of any
// one backend's — so the gateway's scatter-gather happens at the sketch
// level: it gathers each backend's serialized state and queries the
// merge, the network analogue of the engine's own shard-merge snapshot.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"github.com/vossketch/vos/internal/stream"
)

// Format limits for the ring and manifest JSON decoders. Inputs past them
// are rejected before any allocation scales with attacker-controlled
// content — the same bar core.UnmarshalVOS sets for sketch bytes.
const (
	// MaxRingBytes caps the encoded size of a ring or manifest document.
	MaxRingBytes = 1 << 20
	// MaxShards caps the cluster shard count a ring may declare.
	MaxShards = 4096
)

// ErrBadRing is wrapped by every DecodeRing failure: corrupt JSON,
// out-of-range shard counts, duplicate or unparseable node URLs. Callers
// gate fallback handling on errors.Is(err, ErrBadRing).
var ErrBadRing = errors.New("cluster: bad ring")

// Ring is the versioned shard→node table — the cluster's membership
// document, static-config-first: operators write it as JSON, the gateway
// loads it at startup and rewrites it atomically on every handoff.
//
// Shards[i] is the base URL of the vosd backend owning cluster shard i.
// The shard count is part of the cluster's identity (like the sketch
// config): changing it would re-partition users, so a ring's length is
// fixed for its life. URLs must be distinct — a backend's exported state
// is its whole engine, so one process holding two cluster shards could
// not hand them off independently (see Gateway.Handoff).
type Ring struct {
	// Version increments on every membership change and stamps cluster
	// checkpoints; a decoded ring must have Version ≥ 1.
	Version uint64 `json:"version"`
	// RouteSeed seeds the user→shard hash, exactly like
	// EngineConfig.RouteSeed seeds the engine's internal partition.
	RouteSeed uint64 `json:"route_seed"`
	// Shards maps cluster shard index → owning backend base URL.
	Shards []string `json:"shards"`
}

// NumShards returns the cluster shard count.
func (r *Ring) NumShards() int { return len(r.Shards) }

// ShardOf returns the cluster shard owning user u. It is the same routing
// function the engine uses internally (stream.ShardOf), lifted to the
// cluster's shard count and seed.
func (r *Ring) ShardOf(u stream.User) int {
	return stream.ShardOf(u, len(r.Shards), r.RouteSeed)
}

// Clone returns a deep copy, so membership changes can be prepared
// without mutating the published ring.
func (r *Ring) Clone() *Ring {
	return &Ring{Version: r.Version, RouteSeed: r.RouteSeed, Shards: append([]string(nil), r.Shards...)}
}

// Validate checks the structural invariants a usable ring must hold. It
// is called by DecodeRing and EncodeRing, so neither a corrupt document
// nor a buggy caller can put an invalid ring on disk or on the wire.
func (r *Ring) Validate() error {
	if r.Version < 1 {
		return fmt.Errorf("%w: version must be ≥ 1, got %d", ErrBadRing, r.Version)
	}
	if len(r.Shards) < 1 || len(r.Shards) > MaxShards {
		return fmt.Errorf("%w: shard count %d outside [1, %d]", ErrBadRing, len(r.Shards), MaxShards)
	}
	seen := make(map[string]int, len(r.Shards))
	for i, node := range r.Shards {
		if err := validateNodeURL(node); err != nil {
			return fmt.Errorf("%w: shard %d: %v", ErrBadRing, i, err)
		}
		if j, dup := seen[node]; dup {
			return fmt.Errorf("%w: shards %d and %d share node %s (one backend per shard: exported state is the whole engine)", ErrBadRing, j, i, node)
		}
		seen[node] = i
	}
	return nil
}

// validateNodeURL checks one backend base URL: absolute, http or https,
// non-empty host, no trailing slash ambiguity.
func validateNodeURL(node string) error {
	if node == "" {
		return errors.New("empty node URL")
	}
	if strings.HasSuffix(node, "/") {
		return fmt.Errorf("node URL %q must not end in a slash", node)
	}
	u, err := url.Parse(node)
	if err != nil {
		return fmt.Errorf("node URL %q: %v", node, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("node URL %q must be absolute http(s)://host[:port]", node)
	}
	return nil
}

// EncodeRing serializes a validated ring as indented JSON (the on-disk
// and /v1/cluster/ring format).
func EncodeRing(r *Ring) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeRing parses and validates a ring document. Every failure wraps
// ErrBadRing; the decoder never allocates proportionally to anything a
// corrupt input declares (the byte cap bounds the document, the shard cap
// bounds the table).
func DecodeRing(data []byte) (*Ring, error) {
	if len(data) > MaxRingBytes {
		return nil, fmt.Errorf("%w: document is %d bytes, cap %d", ErrBadRing, len(data), MaxRingBytes)
	}
	var r Ring
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRing, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after document", ErrBadRing)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// LoadRing reads and decodes the ring at path.
func LoadRing(path string) (*Ring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRing(data)
	if err != nil {
		return nil, fmt.Errorf("ring %s: %w", path, err)
	}
	return r, nil
}

// SaveRing writes the ring to path atomically (temp file + rename), so a
// crash mid-write leaves either the old document or the new one, never a
// torn half — membership must survive the same failures the WAL does.
func SaveRing(path string, r *Ring) error {
	data, err := EncodeRing(r)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic is the shared temp-then-rename writer for ring and
// manifest documents.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
