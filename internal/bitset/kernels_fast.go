//go:build (amd64 || arm64) && !purego

package bitset

// On 64-bit targets the public methods dispatch to the blocked kernels;
// build with -tags purego to force the portable reference everywhere.
// The word-vs-word XOR-popcount is the same on both builds: its scalar
// loop is already throughput-bound (see xorCountWordsRef).

const fastKernels = true

func gatherWords(dstW, src []uint64, n uint64, idx []uint64) uint64 {
	return gatherWordsBlocked(dstW, src, n, idx)
}

func gatherXorCountWords(src []uint64, n uint64, idx []uint64, ows []uint64) uint64 {
	return gatherXorCountBlocked(src, n, idx, ows)
}

func xorCountWordsKernel(a, b []uint64) uint64 {
	return xorCountWordsRef(a, b)
}
