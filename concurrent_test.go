package vos_test

import (
	"sync"
	"testing"

	"github.com/vossketch/vos"
)

func concurrentTestStream(t *testing.T) []vos.Edge {
	t.Helper()
	// Two heavily overlapping users plus background noise, with
	// unsubscriptions, all feasible: inserts are unique (user, item)
	// pairs and deletes only remove live edges.
	var edges []vos.Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
	}
	for i := 200; i < 600; i++ {
		edges = append(edges, vos.Edge{User: 2, Item: vos.Item(i), Op: vos.Insert})
	}
	for u := vos.User(3); u < 40; u++ {
		for i := 0; i < 50; i++ {
			edges = append(edges, vos.Edge{User: u, Item: vos.Item(int(u)*1000 + i), Op: vos.Insert})
		}
	}
	for i := 300; i < 400; i++ { // user 1 drops 100 shared items
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Delete})
	}
	return edges
}

// TestConcurrentSketchMatchesSequential runs concurrent writers (one per
// user partition, so per-user order is preserved) against concurrent
// readers, then demands the final state match a sequential sketch exactly.
// Run with -race to exercise the locking.
func TestConcurrentSketchMatchesSequential(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 3}
	edges := concurrentTestStream(t)

	seq := vos.MustNew(cfg)
	for _, e := range edges {
		seq.Process(e)
	}

	cs, err := vos.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	parts := vos.PartitionByUser(edges, writers, 77)
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part []vos.Edge) {
			defer wg.Done()
			for _, e := range part {
				cs.Process(e)
			}
		}(part)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				est := cs.Query(1, 2)
				if est.Jaccard < 0 || est.Jaccard > 1 {
					t.Errorf("mid-stream Jaccard out of range: %v", est.Jaccard)
					return
				}
				_ = cs.Beta()
				_ = cs.Cardinality(1)
				_ = cs.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got, want := cs.Stats(), seq.Stats(); got != want {
		t.Fatalf("concurrent stats %+v, sequential %+v", got, want)
	}
	if got, want := cs.Query(1, 2), seq.Query(1, 2); got != want {
		t.Fatalf("concurrent Query %+v, sequential %+v", got, want)
	}
}

// TestConcurrentSnapshotMergeRoundTrip: Snapshot under load restores via
// Unmarshal, and Merge folds a shard sketch in exactly.
func TestConcurrentSnapshotMergeRoundTrip(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 8}
	cs, err := vos.NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		cs.Process(vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		cs.Process(vos.Edge{User: 2, Item: vos.Item(i + 100), Op: vos.Insert})
	}

	data, err := cs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := vos.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Query(1, 2), cs.Query(1, 2); got != want {
		t.Fatalf("restored Query %+v, live %+v", got, want)
	}

	// Merge a shard built separately; result must equal one sketch that
	// saw both streams.
	shard := vos.MustNew(cfg)
	all := vos.MustNew(cfg)
	for i := 0; i < 200; i++ {
		all.Process(vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		all.Process(vos.Edge{User: 2, Item: vos.Item(i + 100), Op: vos.Insert})
	}
	for i := 0; i < 150; i++ {
		e := vos.Edge{User: 3, Item: vos.Item(i), Op: vos.Insert}
		shard.Process(e)
		all.Process(e)
	}
	if err := cs.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if got, want := cs.Query(1, 3), all.Query(1, 3); got != want {
		t.Fatalf("post-merge Query %+v, want %+v", got, want)
	}

	// Config mismatch must be rejected.
	bad := vos.MustNew(vos.Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 9})
	if err := cs.Merge(bad); err == nil {
		t.Fatal("merge with mismatched config accepted")
	}
}
