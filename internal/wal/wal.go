package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/vossketch/vos/internal/stream"
)

// ErrCorrupt reports an invalid WAL record or checkpoint outside the
// tolerated torn tail of the last segment.
var ErrCorrupt = errors.New("wal: corrupt data")

// ErrClosed is returned by Append/Sync after Close.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs after every Append: an acknowledged batch is
	// durable. The safest and slowest policy; the default.
	SyncEveryBatch SyncPolicy = iota
	// SyncEveryN fsyncs once at least Options.SyncEveryN edges have been
	// appended since the last sync: a crash loses at most that many
	// acknowledged edges.
	SyncEveryN
	// SyncOff never fsyncs on the append path (only on rotation, Sync and
	// Close): durability is whatever the OS page cache survives.
	SyncOff
)

// String names the policy for logs and benchmarks.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "everybatch"
	case SyncEveryN:
		return "everyN"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options parameterise a Log. The zero value selects defaults.
type Options struct {
	// Sync is the fsync policy for the append path. Default: SyncEveryBatch.
	Sync SyncPolicy
	// SyncEveryN is the edge interval between fsyncs under the SyncEveryN
	// policy. Default: 4096.
	SyncEveryN int
	// SegmentBytes is the rotation threshold: a segment that has grown past
	// this many bytes is closed and a new one started before the next
	// append. Default: 64 MiB.
	SegmentBytes int64
	// DisableLock skips the advisory flock on the directory that makes a
	// second concurrent Open fail fast. Single-writer discipline then
	// falls on the caller. Meant for filesystems without working flock
	// (some NFS mounts) and for in-process crash-simulation tests, where
	// the "crashed" owner cannot release the lock a real process death
	// would.
	DisableLock bool
}

func (o Options) withDefaults() Options {
	if o.SyncEveryN <= 0 {
		o.SyncEveryN = 4096
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

var segMagic = [8]byte{'V', 'O', 'S', 'W', 'A', 'L', '0', '1'}

const segHeaderLen = 8 + 8 // magic + base position

// segPrefix/segSuffix name segment files; ckptPrefix/ckptSuffix name
// checkpoint files.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segName returns the filename of the segment with the given base position.
func segName(base uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix)
}

// SegmentPath returns the path of the segment with the given base position
// — the naming scheme in one place, for tools pairing it with
// ListSegments and InspectSegment.
func SegmentPath(dir string, base uint64) string {
	return filepath.Join(dir, segName(base))
}

// parseSeq extracts the position from a segment or checkpoint filename,
// reporting ok=false for files that are neither.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// appendEdges encodes edges in the record payload shape: a uvarint count
// followed by stream.AppendElement for each edge — the same element
// encoding as the binary stream file format.
func appendEdges(buf []byte, edges []stream.Edge) []byte {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(edges)))
	buf = append(buf, scratch[:n]...)
	for _, e := range edges {
		buf = stream.AppendElement(buf, e)
	}
	return buf
}

// DecodeEdges decodes one record payload. It is the inverse of the payload
// encoding Append writes, exposed for fuzzing and inspection tools.
func DecodeEdges(payload []byte) ([]stream.Edge, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad record count", ErrCorrupt)
	}
	payload = payload[n:]
	// Each edge takes at least two bytes, which bounds plausible counts —
	// checked before allocating, since inspection tools hand this decoder
	// non-CRC-validated input.
	if count > uint64(len(payload))/2 {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrCorrupt, count)
	}
	out := make([]stream.Edge, 0, count)
	for i := uint64(0); i < count; i++ {
		e, n := stream.DecodeElement(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w: edge %d truncated", ErrCorrupt, i)
		}
		payload = payload[n:]
		out = append(out, e)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload))
	}
	return out, nil
}

// Log is an append-only, segmented edge log. All methods are safe for
// concurrent use; appends are serialized internally.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current segment, nil after Close
	lock     *dirLock // exclusive directory lock, nil when disabled
	size     int64    // bytes written to the current segment
	base     uint64   // stream position of the current segment's first edge
	pos      uint64   // total edges appended across all segments
	unsynced int      // edges appended since the last fsync
	closed   bool
	failed   error  // sticky: set when the segment may hold garbage bytes
	buf      []byte // reusable record encode buffer
}

// Open opens (creating if needed) the log directory, takes an exclusive
// advisory lock on it (unless Options.DisableLock), scans existing
// segments, truncates a torn tail left by a crash, and positions the log
// for appending after the last valid record. A directory already locked
// by another live Log fails fast — two appenders would corrupt it.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if !opts.DisableLock {
		lock, err := acquireDirLock(dir)
		if err != nil {
			return nil, err
		}
		l.lock = lock
	}
	fail := func(err error) (*Log, error) {
		if l.lock != nil {
			l.lock.release()
		}
		return nil, err
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return fail(err)
	}
	if len(segs) == 0 {
		if err := l.startSegment(0); err != nil {
			return fail(err)
		}
		return l, nil
	}
	// Reopen the last segment for appending: scan its records, drop the
	// torn tail if any, and derive the log position.
	last := segs[len(segs)-1]
	if fi, err := os.Stat(filepath.Join(dir, segName(last))); err == nil && fi.Size() < segHeaderLen {
		// A crash between segment creation and header durability leaves a
		// short file. No acknowledged record can live in it — appends only
		// follow a synced header — so recreate it in place rather than
		// bricking recovery with ErrCorrupt.
		if err := l.startSegment(last); err != nil {
			return fail(err)
		}
		l.pos = last
		return l, nil
	}
	edges, validLen, err := scanSegment(filepath.Join(dir, segName(last)))
	if err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return fail(err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validLen {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return fail(err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return fail(err)
	}
	l.f = f
	l.size = validLen
	l.base = last
	l.pos = last + edges
	return l, nil
}

// createSegment creates, headers, and syncs a fresh segment file whose
// first edge will have the given stream position, returning it open for
// appending.
func createSegment(dir string, base uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(base)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	// The directory entry must be durable too: without this, a crash can
	// drop the whole file even though later appends fsynced it — losing
	// every acknowledged record in the segment.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// startSegment is createSegment plus installing the segment as the append
// target. Callers hold l.mu (or own l exclusively) and must not have a
// live l.f (Open and recovery paths).
func (l *Log) startSegment(base uint64) error {
	f, err := createSegment(l.dir, base)
	if err != nil {
		return err
	}
	l.f = f
	l.size = segHeaderLen
	l.base = base
	return nil
}

// syncDir fsyncs a directory so renames and file creations in it survive
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// rotate closes the current segment (fsyncing it) and starts the next one
// at the current position. The new segment is created before the old one
// is released: a transient failure (say, ENOSPC) leaves the log appending
// to the old segment and retryable, never wedged on a closed file.
// Callers hold l.mu.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	nf, err := createSegment(l.dir, l.pos)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		nf.Close()
		return err
	}
	l.f = nf
	l.size = segHeaderLen
	l.base = l.pos
	l.unsynced = 0
	return nil
}

// Append writes one record holding the batch and advances the position by
// len(edges). Whether the record is durable when Append returns depends on
// the sync policy. Empty batches are a no-op.
//
// A failed write is rolled back: the segment is truncated to the last
// record boundary so a partial frame cannot sit mid-file masquerading as a
// torn tail (which would make recovery silently discard every later,
// acknowledged record). If even the rollback fails, the log latches the
// error and refuses further appends.
func (l *Log) Append(edges []stream.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	// The frame length field is 32-bit. An element encodes to at most 20
	// bytes, so this cap keeps any accepted payload comfortably below
	// 4 GiB — a larger batch must be rejected loudly, not written with a
	// wrapped length that recovery would discard as a torn tail.
	const maxBatchEdges = (1<<32 - 64) / 20
	if len(edges) > maxBatchEdges {
		return fmt.Errorf("wal: batch of %d edges exceeds the %d-edge record limit; split it", len(edges), maxBatchEdges)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	// One buffer, one Write call: frame header and payload land together
	// or are rolled back together.
	rec := append(l.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	rec = appendEdges(rec, edges)
	payload := rec[8:]
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(rec); err != nil {
		// The file may now hold a partial frame past l.size. Cut it back
		// to the record boundary; later appends then resume cleanly.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.failed = fmt.Errorf("wal: append failed (%v) and rollback failed (%v): log is poisoned", err, terr)
			return l.failed
		}
		if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.failed = fmt.Errorf("wal: append failed (%v) and reseek failed (%v): log is poisoned", err, serr)
			return l.failed
		}
		return err
	}
	prevSize, prevUnsynced := l.size, l.unsynced
	l.buf = rec[:0]
	l.size += int64(len(rec))
	l.pos += uint64(len(edges))
	l.unsynced += len(edges)
	needSync := l.opts.Sync == SyncEveryBatch ||
		(l.opts.Sync == SyncEveryN && l.unsynced >= l.opts.SyncEveryN)
	if !needSync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		// The caller treats an Append error as "batch not accepted", so the
		// record must not survive in the log: leaving it would let Pos()
		// count edges the engine never routed (a later checkpoint would
		// then claim to cover them while its sketch lacks them), and a
		// caller retry would append the batch twice (XOR replay then
		// erases it). Roll everything back to the acknowledged boundary.
		if terr := l.f.Truncate(prevSize); terr != nil {
			l.failed = fmt.Errorf("wal: fsync failed (%v) and rollback failed (%v): log is poisoned", err, terr)
			return l.failed
		}
		if _, serr := l.f.Seek(prevSize, io.SeekStart); serr != nil {
			l.failed = fmt.Errorf("wal: fsync failed (%v) and reseek failed (%v): log is poisoned", err, serr)
			return l.failed
		}
		l.size = prevSize
		l.pos -= uint64(len(edges))
		l.unsynced = prevUnsynced
		return err
	}
	l.unsynced = 0
	return nil
}

// Pos returns the stream position: the total number of edges appended over
// the log's lifetime (surviving restarts).
func (l *Log) Pos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// Rotate closes the current segment and starts a fresh one at the current
// position, if the current segment holds any records. Checkpointing
// rotates before truncating so the whole covered prefix — including what
// was the append target — becomes reclaimable.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size <= segHeaderLen {
		return nil
	}
	return l.rotate()
}

// Sync fsyncs the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	// Reset the counter only on success: a failed fsync must leave the
	// SyncEveryN schedule armed, or the loss window silently widens.
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Close fsyncs and closes the current segment and releases the directory
// lock. Further appends fail with ErrClosed. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.lock != nil {
		if lerr := l.lock.release(); err == nil {
			err = lerr
		}
	}
	return err
}

// SkipTo advances an empty-suffix log to position pos by starting a fresh
// segment there. It is used on recovery when a checkpoint is ahead of the
// surviving WAL (possible under SyncOff): the covered-but-lost records are
// unneeded, but the position must not regress or later checkpoints would
// mislabel their coverage. It is an error to skip backwards.
func (l *Log) SkipTo(pos uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if pos < l.pos {
		return fmt.Errorf("wal: SkipTo(%d) would regress position %d", pos, l.pos)
	}
	if pos == l.pos {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	// Create-then-close, like rotate: a failure leaves the log usable.
	nf, err := createSegment(l.dir, pos)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		nf.Close()
		return err
	}
	l.f = nf
	l.size = segHeaderLen
	l.base = pos
	l.pos = pos
	return nil
}

// TruncateBefore deletes segments every edge of which lies below pos —
// i.e. segments fully covered by a checkpoint at pos. The segment
// containing pos (and later ones) survive; the current segment is never
// deleted. Call after a successful checkpoint to bound replay work.
func (l *Log) TruncateBefore(pos uint64) error {
	l.mu.Lock()
	cur := l.base
	l.mu.Unlock()
	segs, err := ListSegments(l.dir)
	if err != nil {
		return err
	}
	for i, base := range segs {
		// A segment's coverage ends at the next segment's base.
		if i+1 >= len(segs) || segs[i+1] > pos || base >= cur {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(base))); err != nil {
			return err
		}
	}
	return nil
}

// Replay invokes fn for every record whose edges all lie at or after from,
// in append order, passing the record's starting position. Records fully
// below from are skipped; a record straddling from is a corruption (records
// are the checkpoint granularity, so a checkpoint position always falls on
// a record boundary). The torn tail of the last segment, if Open has not
// already truncated it, is ignored.
func (l *Log) Replay(from uint64, fn func(pos uint64, edges []stream.Edge) error) error {
	return ReplayDir(l.dir, from, fn)
}

// ReplayDir is Replay over a directory that is not opened for appending —
// a strictly read-only walk for inspection tools (Open truncates torn
// tails and creates the first segment; ReplayDir mutates nothing).
//
// Coverage of [from, end-of-log) is verified, not assumed: the first
// replayed segment must begin at or before from, and each later segment
// must begin exactly where the previous one ended. A hole — e.g. a
// truncated prefix after falling back to an older checkpoint whose
// covering segments are gone — fails with ErrCorrupt instead of silently
// replaying around the missing edges (XOR state would be wrong with no
// symptom).
func ReplayDir(dir string, from uint64, fn func(pos uint64, edges []stream.Edge) error) error {
	segs, err := ListSegments(dir)
	if err != nil {
		return err
	}
	started := false
	var next uint64 // end position of the previously replayed segment
	for i, base := range segs {
		if i+1 < len(segs) && segs[i+1] <= from {
			continue // entire segment below the replay point
		}
		if !started {
			if base > from {
				return fmt.Errorf("%w: WAL starts at %d, past replay point %d — records [%d,%d) are missing",
					ErrCorrupt, base, from, from, base)
			}
			started = true
		} else if base != next {
			return fmt.Errorf("%w: segment gap: expected base %d, found %d", ErrCorrupt, next, base)
		}
		path := filepath.Join(dir, segName(base))
		pos := base
		last := i == len(segs)-1
		err := readSegment(path, func(edges []stream.Edge) error {
			recBase := pos
			pos += uint64(len(edges))
			if pos <= from {
				return nil
			}
			if recBase < from {
				return fmt.Errorf("%w: record [%d,%d) straddles replay point %d", ErrCorrupt, recBase, pos, from)
			}
			return fn(recBase, edges)
		})
		next = pos
		if err != nil {
			// Torn tails are tolerated only where a crash can leave one:
			// the final segment.
			if errors.Is(err, errTornTail) && last {
				return nil
			}
			if errors.Is(err, errTornTail) {
				return fmt.Errorf("%w: segment %s has a torn tail but is not last", ErrCorrupt, segName(base))
			}
			return err
		}
	}
	return nil
}

// errTornTail distinguishes an incomplete/corrupt trailing frame (crash
// artifact, tolerable in the last segment) from structural corruption.
var errTornTail = errors.New("wal: torn tail")

// readSegment streams a segment's records through fn. It returns
// errTornTail when the file ends in an incomplete or checksum-failing
// frame, after delivering all preceding valid records.
func readSegment(path string, fn func(edges []stream.Edge) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	_, err = readSegmentBytes(data, filepath.Base(path), fn)
	return err
}

// readSegmentBytes is readSegment over bytes already in memory; name is
// only for error messages. consumed is the on-disk extent of the valid
// prefix (header plus whole valid frames) — the authoritative truncation
// offset, measured from the actual bytes rather than re-derived by
// re-encoding (a CRC-valid frame with non-minimal varints would re-encode
// to a different length).
func readSegmentBytes(data []byte, name string, fn func(edges []stream.Edge) error) (consumed int64, err error) {
	if len(data) < segHeaderLen {
		// Shorter than a header: a crash between segment creation and
		// header durability (the artifact Open recreates in place) — a
		// torn tail holding nothing, not structural corruption.
		return 0, errTornTail
	}
	if [8]byte(data[:8]) != segMagic {
		return 0, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, name)
	}
	consumed = segHeaderLen
	data = data[segHeaderLen:]
	for len(data) > 0 {
		if len(data) < 8 {
			return consumed, errTornTail
		}
		plen := binary.LittleEndian.Uint32(data[:4])
		want := binary.LittleEndian.Uint32(data[4:8])
		if uint64(len(data)-8) < uint64(plen) {
			return consumed, errTornTail
		}
		payload := data[8 : 8+plen]
		if crc32.Checksum(payload, crcTable) != want {
			return consumed, errTornTail
		}
		edges, err := DecodeEdges(payload)
		if err != nil {
			// The CRC matched, so this is not a torn write: the writer and
			// reader disagree about the payload shape.
			return consumed, err
		}
		if err := fn(edges); err != nil {
			return consumed, err
		}
		data = data[8+plen:]
		consumed += int64(8 + plen)
	}
	return consumed, nil
}

// scanSegment walks a segment counting edges and measuring the byte length
// of its valid prefix, tolerating a torn tail.
func scanSegment(path string) (edges uint64, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	validLen, err = readSegmentBytes(data, filepath.Base(path), func(batch []stream.Edge) error {
		edges += uint64(len(batch))
		return nil
	})
	if errors.Is(err, errTornTail) {
		err = nil
	}
	return edges, validLen, err
}

// SegmentInfo summarises one on-disk segment for inspection tools.
type SegmentInfo struct {
	Base    uint64 // stream position of the first edge
	Records int
	Edges   uint64
	Bytes   int64
	Torn    bool // ends in an incomplete or checksum-failing frame
}

// ListSegments returns the base positions of the directory's segments in
// ascending order.
func ListSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		if base, ok := parseSeq(ent.Name(), segPrefix, segSuffix); ok {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// InspectSegment summarises one segment file, tolerating a torn tail —
// including the header-less file a crash during segment creation leaves
// (reported as Torn with the base taken from the filename), so inspection
// works on exactly the crashed directories it exists for.
func InspectSegment(path string) (SegmentInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SegmentInfo{}, err
	}
	if len(data) < segHeaderLen {
		base, _ := parseSeq(filepath.Base(path), segPrefix, segSuffix)
		return SegmentInfo{Base: base, Bytes: int64(len(data)), Torn: true}, nil
	}
	if [8]byte(data[:8]) != segMagic {
		return SegmentInfo{}, fmt.Errorf("%w: bad segment header", ErrCorrupt)
	}
	info := SegmentInfo{
		Base:  binary.LittleEndian.Uint64(data[8:16]),
		Bytes: int64(len(data)),
	}
	_, err = readSegmentBytes(data, filepath.Base(path), func(edges []stream.Edge) error {
		info.Records++
		info.Edges += uint64(len(edges))
		return nil
	})
	if errors.Is(err, errTornTail) {
		info.Torn = true
		err = nil
	}
	return info, err
}
