// Package rp implements Random Pairing (Gemulla, Lehner & Haas, VLDB
// Journal 2008), the bounded-memory uniform sampling scheme for evolving
// sets, extended per the paper's §III to similarity estimation: each user
// runs k independent capacity-1 RP samplers, and two users' samples match
// with probability s_uv/(n_u·n_v), giving the estimator
//
//	ŝ_uv = n_u·n_v · (1/k)·Σ_j 1(φ_j(S_u) = φ_j(S_v)).
//
// Unlike MinHash/OPH, RP samples remain exactly uniform under deletions
// (that is the whole point of the algorithm), so RP is the unbiased
// competitor in the paper's comparison — its weakness is variance: two
// independent uniform samples rarely collide, so at practical k the
// estimate is dominated by noise, which is what the paper's Figure 3
// shows.
package rp
