package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// FuzzUnmarshalVOS throws arbitrary bytes at the sketch decoder: it must
// never panic, corrupt or truncated input must fail with a typed
// ErrCorrupt (callers gate recovery fallbacks on it), and any sketch it
// accepts must re-marshal to a decodable form with identical state.
func FuzzUnmarshalVOS(f *testing.F) {
	v := MustNew(Config{MemoryBits: 1024, SketchBits: 64, Seed: 3})
	v.Process(edgeFor(1, 2, true))
	v.Process(edgeFor(2, 3, true))
	seed, _ := v.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("VOS1"))
	// Truncations at every section boundary of the wire format, plus a
	// header bit flip — the shapes a torn checkpoint write produces.
	for _, cut := range []int{3, 4, 12, 28, 36, 52, len(seed) - 1} {
		if cut >= 0 && cut < len(seed) {
			f.Add(seed[:cut])
		}
	}
	flipped := append([]byte(nil), seed...)
	flipped[5] ^= 0x40
	f.Add(flipped)
	// A fast-family sketch (nonzero family tag in the header) and a seed
	// with an unknown family tag, so the family-validation branch is in the
	// corpus from the start.
	vf := MustNew(Config{MemoryBits: 1024, SketchBits: 64, Seed: 3, Family: hashing.KindFast})
	vf.Process(edgeFor(1, 2, true))
	fastSeed, _ := vf.MarshalBinary()
	f.Add(fastSeed)
	badFam := append([]byte(nil), seed...)
	badFam[19] = 0x07 // SketchBits high byte = family tag
	f.Add(badFam)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalVOS(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt decode failure: %v", err)
			}
			return
		}
		re, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted sketch failed: %v", err)
		}
		again, err := UnmarshalVOS(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.Config() != got.Config() || again.Stats() != got.Stats() {
			t.Fatal("round trip changed sketch state")
		}
	})
}

// FuzzUnmarshalWindow throws arbitrary bytes at the window decoder with
// the same contract as FuzzUnmarshalVOS: no panics, typed ErrCorrupt on
// anything invalid, and bit-exact round trips for anything accepted —
// including the rebuilt merged view, which is not serialized and must be
// reconstructible from the buckets alone.
func FuzzUnmarshalWindow(f *testing.F) {
	w, err := NewWindowAt(Config{MemoryBits: 1024, SketchBits: 64, Seed: 3}, 3, time.Second, time.Unix(3, 0))
	if err != nil {
		f.Fatal(err)
	}
	w.Process(edgeFor(1, 2, true))
	w.Rotate()
	w.Process(edgeFor(2, 3, true))
	seed, _ := w.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("VWN1"))
	// Truncations at the header fields, the first bucket length prefix,
	// and mid-bucket, plus bit flips in the bucket count and a bucket
	// payload — the shapes a torn checkpoint write produces.
	for _, cut := range []int{3, 4, 12, 20, 28, 36, len(seed) - 1} {
		if cut >= 0 && cut < len(seed) {
			f.Add(seed[:cut])
		}
	}
	for _, bit := range []int{20, 40} {
		if bit < len(seed) {
			flipped := append([]byte(nil), seed...)
			flipped[bit] ^= 0x04
			f.Add(flipped)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalWindow(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt decode failure: %v", err)
			}
			return
		}
		re, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted window failed: %v", err)
		}
		again, err := UnmarshalWindow(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.Stats() != got.Stats() || !again.End().Equal(got.End()) {
			t.Fatal("round trip changed window state")
		}
		gm, _ := got.Merged().MarshalBinary()
		am, _ := again.Merged().MarshalBinary()
		if !bytes.Equal(gm, am) {
			t.Fatal("round trip changed the rebuilt merged view")
		}
	})
}

// edgeFor is a fuzz-test helper building one edge.
func edgeFor(u, i uint64, insert bool) stream.Edge {
	op := stream.Insert
	if !insert {
		op = stream.Delete
	}
	return stream.Edge{User: stream.User(u), Item: stream.Item(i), Op: op}
}
