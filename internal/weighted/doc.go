// Package weighted implements Improved Consistent Weighted Sampling
// (Ioffe, ICDM'10), the weighted-MinHash scheme behind the generalized
// Jaccard similarity the paper's §I surveys ([10]-[13]):
//
//	J(x, y) = Σ_i min(x_i, y_i) / Σ_i max(x_i, y_i)
//
// for non-negative weight vectors x and y. ICWS draws, per hash function,
// a sample (i*, t*) such that two vectors produce the same sample with
// probability exactly J(x, y); k independent hashes give the usual
// match-fraction estimator.
//
// Like MinHash, ICWS is a *sampling* scheme: it extends to streams of
// weight increments but not decrements, which is precisely the limitation
// the paper's VOS addresses for the unweighted case. The package is
// included as the related-work reference implementation; it operates on
// static weight vectors.
package weighted
