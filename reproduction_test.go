package vos_test

import (
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/experiments"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// These tests pin the paper's two headline claims as executable
// regressions at a reduced (seeded, deterministic) scale: if a code change
// breaks either the accuracy ordering or the complexity separation, the
// suite fails. The full-scale versions live in cmd/vosbench and
// README.md ("Reproducing the paper").

// reproductionOptions is the seeded mid-scale configuration; large enough
// for the orderings to be stable, small enough for `go test`.
func reproductionOptions() experiments.Options {
	return experiments.Options{
		Scale:       0.005,
		Seed:        2,
		K32:         100,
		Lambda:      2,
		TopUsers:    80,
		MinCommon:   1,
		MaxPairs:    300,
		Checkpoints: 6,
	}
}

func TestReproduction_AccuracyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction run skipped in -short mode")
	}
	r, err := experiments.RunAccuracy(gen.YouTube, reproductionOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deletes == 0 {
		t.Fatal("workload has no deletions; the regression would be vacuous")
	}
	aape := map[string]float64{}
	armse := map[string]float64{}
	for _, m := range similarity.Methods {
		aape[m] = r.AAPE.Get(m).Last()
		armse[m] = r.ARMSE.Get(m).Last()
	}
	t.Logf("final AAPE: %v", aape)
	t.Logf("final ARMSE: %v", armse)

	// Paper Figure 3: VOS most accurate, RP far worst.
	for _, baseline := range []string{"MinHash", "OPH", "RP"} {
		if aape["VOS"] >= aape[baseline] {
			t.Errorf("AAPE ordering broken: VOS %.4f !< %s %.4f",
				aape["VOS"], baseline, aape[baseline])
		}
		if armse["VOS"] >= armse[baseline] {
			t.Errorf("ARMSE ordering broken: VOS %.4f !< %s %.4f",
				armse["VOS"], baseline, armse[baseline])
		}
	}
	if aape["RP"] < 2*aape["MinHash"] {
		t.Errorf("RP should be far worse than MinHash on AAPE: %.4f vs %.4f",
			aape["RP"], aape["MinHash"])
	}
}

func TestReproduction_ComplexitySeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction run skipped in -short mode")
	}
	// Per-edge update cost at k = 1000: the O(k) methods must be at
	// least 10x the O(1) methods (the paper's Figure 2 gap at this k is
	// ~50x; 10x keeps the regression robust to machine noise).
	p := gen.YouTube
	p.Users, p.Items, p.Edges = 500, 2000, 30_000
	base := gen.Bipartite(p, 2)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), 3))

	const k = 1000
	cost := map[string]time.Duration{}
	for _, method := range vos.Methods {
		est := vos.MustNewEstimator(method, vos.Budget{K32: k, Users: 500, Lambda: 2}, 1)
		start := time.Now()
		for _, e := range edges {
			est.Process(e)
		}
		cost[method] = time.Since(start)
	}
	t.Logf("update cost at k=%d over %d edges: %v", k, len(edges), cost)

	// VOS allocates nothing per user, so the full 10x bound applies. OPH
	// updates in O(1) but pays a one-time O(k) register-array allocation
	// per user; on this short stream (~84 updates/user) that setup cost
	// is only partially amortised, so its bound is looser (the asymptotic
	// gap is visible in Figure 2 where streams are longer).
	bounds := map[string]time.Duration{"VOS": 10, "OPH": 4}
	for fast, factor := range bounds {
		for _, slow := range []string{"MinHash", "RP"} {
			if cost[slow] < factor*cost[fast] {
				t.Errorf("complexity separation broken: %s (%v) not ≥ %dx %s (%v)",
					slow, cost[slow], factor, fast, cost[fast])
			}
		}
	}
}

func TestReproduction_DeletionBiasMechanism(t *testing.T) {
	// The §III mechanism itself, deterministic and scale-free: identical
	// final sets built with and without churn must agree for VOS and
	// must NOT for MinHash (whose registers empty out).
	cfg := vos.Config{MemoryBits: 1 << 18, SketchBits: 1024, Seed: 5}
	cleanVOS := vos.MustNew(cfg)
	churnVOS := vos.MustNew(cfg)
	b := vos.Budget{K32: 100, Users: 10, Lambda: 2}
	cleanMH := vos.MustNewEstimator(vos.MethodMinHash, b, 5)
	churnMH := vos.MustNewEstimator(vos.MethodMinHash, b, 5)

	feed := func(sks []interface{ Process(vos.Edge) }, e vos.Edge) {
		for _, sk := range sks {
			sk.Process(e)
		}
	}
	clean := []interface{ Process(vos.Edge) }{cleanVOS, cleanMH}
	churn := []interface{ Process(vos.Edge) }{churnVOS, churnMH}

	// Clean path: both users subscribe exactly [100, 400).
	for i := 100; i < 400; i++ {
		feed(clean, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		feed(clean, vos.Edge{User: 2, Item: vos.Item(i), Op: vos.Insert})
	}
	// Churn path: same final sets, but user 2 transits through [0, 100).
	for i := 0; i < 400; i++ {
		feed(churn, vos.Edge{User: 2, Item: vos.Item(i), Op: vos.Insert})
	}
	for i := 100; i < 400; i++ {
		feed(churn, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
	}
	for i := 0; i < 100; i++ {
		feed(churn, vos.Edge{User: 2, Item: vos.Item(i), Op: vos.Delete})
	}

	vosClean := cleanVOS.Query(1, 2).Jaccard
	vosChurn := churnVOS.Query(1, 2).Jaccard
	if vosClean != vosChurn {
		t.Errorf("VOS is history-dependent: %.4f vs %.4f", vosClean, vosChurn)
	}
	mhClean := cleanMH.EstimateJaccard(1, 2)
	mhChurn := churnMH.EstimateJaccard(1, 2)
	if mhClean != 1 {
		t.Errorf("MinHash clean J = %.4f, want 1 (identical sets)", mhClean)
	}
	if mhChurn > 0.9 {
		t.Errorf("MinHash churn J = %.4f; deletion bias vanished", mhChurn)
	}
}

// Guard: the stream tooling the tests rely on stays feasible.
func TestReproduction_WorkloadFeasible(t *testing.T) {
	ds := experiments.BuildDataset(gen.YouTube, reproductionOptions())
	if err := stream.Validate(ds.Edges); err != nil {
		t.Fatal(err)
	}
}
