// Command vosbench regenerates the paper's evaluation figures and the
// repository's ablation tables from scratch: it generates the workloads,
// runs every method under the §V memory-equalised protocol, and prints the
// rows the corresponding figure plots.
//
// Usage:
//
//	vosbench -experiment fig3a
//	vosbench -experiment all -scale 0.02 -csv
//	vosbench -experiment throughput -shards 1,2,4,8
//	vosbench -experiment query -json
//	vosbench -experiment window -buckets 8 -json
//
// Experiments: fig2a, fig2b, fig3a, fig3b, fig3c, fig3d, abl-lambda,
// abl-load, abl-dense, abl-delbias, compare, throughput, query, hashing,
// window, topk-ann, udpsoak, cluster, all.
//
// The throughput experiment measures the sharded ingestion engine: for
// each shard count it ingests the runtime workload through vos.Engine,
// reports edges/s and the speedup over both the sequential sketch and the
// single-shard engine, and verifies the engine's post-flush estimates are
// bit-identical to the sequential sketch (VOS merging is exact).
//
// The query experiment measures the materialized read path: per-pair and
// top-K-of-1000 cost on the scalar per-bit baseline, the packed
// materialized path, the warm-cache steady state, and the engine's
// parallel fan-out — each parity-checked against the per-bit oracle
// before it is timed.
//
// The hashing experiment measures the hash layer and the compare kernels:
// position-table fill cost per family (classic k-seeded vs DKT-style
// fast), the blocked gather/XOR/popcount kernels against their scalar
// references, cold pair-query cost per family, and ingest ns/edge —
// every row parity-gated (bulk fill vs scalar definition, blocked vs
// reference kernels, planted-pair accuracy for both families, fast
// materialized vs per-bit queries) before it is timed.
//
// The window experiment measures the sliding-window subsystem: bucket
// rotation cost at growing fill levels (rotation is O(sketch), so the
// cost must stay flat) and windowed-query accuracy against exact
// in-window ground truth, parity-gated on the live window sketch being
// bit-identical to a fresh sketch built from only the in-window edges.
//
// The udpsoak experiment soaks both ingest planes over real loopback
// sockets at the same batch size — the HTTP binary path (one POST
// round-trip per batch) and the VOSSTRM1 datagram path (fire-and-forget
// frames with windowed acks) — reporting edges/s, ns/edge, and ack RTT
// percentiles, then replays the datagram run under a deterministic
// drop/duplicate/reorder fault plan and refuses to emit rows unless every
// injected fault surfaces in the receiver's counters exactly and each
// transport's sketch is bit-identical to an in-process oracle.
//
// The cluster experiment measures the gateway tier (internal/cluster):
// for each node count it stands up K engine-backed nodes behind a
// scatter-gather gateway over real loopback HTTP, fans the workload in
// through the ring's user partition (multi-node rows include a live shard
// handoff at half-stream), and reports sharded-ingest throughput plus
// cold-gather and cached-snapshot query cost — refusing to emit a row
// unless the cluster's merged export is bit-identical to a single
// in-process engine over the same stream and sampled answers match it.
//
// The topk-ann experiment measures the approximate top-K path
// (Engine.TopKApprox over the banded-LSH index) against the exact scan on
// a planted heavy-cluster workload, and refuses to emit a timing row when
// mean recall@10 falls below -ann-min-recall or any approximate result is
// not a subset-ordered prefix of the exact ranking.
//
// -json renders every table as a machine-readable JSON document (see
// bench/ for the checked-in trajectory this feeds).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/vossketch/vos/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig2a fig2b fig3a fig3b fig3c fig3d abl-lambda abl-load abl-dense abl-delbias compare throughput query hashing window topk-ann udpsoak cluster all)")
		scale      = flag.Float64("scale", 0.01, "dataset profile scale factor (paper scale = 1.0)")
		seed       = flag.Int64("seed", 2, "workload seed")
		k32        = flag.Int("k", 100, "registers per user for the baselines (paper: 100)")
		lambda     = flag.Int("lambda", 2, "VOS virtual-sketch multiplier (paper: 2)")
		topUsers   = flag.Int("topusers", 100, "highest-cardinality users seeding tracked pairs")
		maxPairs   = flag.Int("maxpairs", 500, "cap on tracked pairs")
		checks     = flag.Int("checkpoints", 12, "measurement points for over-time panels")
		runtimeKs  = flag.String("runtime-ks", "1,10,100,1000,10000", "comma-separated k sweep for fig2")
		dataset    = flag.String("dataset", "YouTube", "profile for single-dataset experiments (YouTube, Flickr, Orkut, LiveJournal)")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -experiment throughput")
		buckets    = flag.Int("buckets", 8, "sliding-window bucket count for -experiment window")
		soakEdges  = flag.Int("soak-edges", 200_000, "workload size per transport for -experiment udpsoak")
		soakBatch  = flag.Int("soak-batch", 256, "edges per batch/frame for -experiment udpsoak")

		clusterEdges = flag.Int("cluster-edges", 120_000, "workload size per cluster run for -experiment cluster")
		clusterNodes = flag.String("cluster-nodes", "1,2,3,4", "comma-separated node counts for -experiment cluster")

		annUsers     = flag.Int("ann-users", 100000, "total population for -experiment topk-ann")
		annBands     = flag.Int("ann-bands", 0, "LSH bands for -experiment topk-ann (0 = experiment default 128)")
		annRows      = flag.Int("ann-rows", 0, "LSH rows per band for -experiment topk-ann (0 = experiment default 20)")
		annProbes    = flag.Int("ann-probes", 24, "cluster members probed by -experiment topk-ann")
		annMinRecall = flag.Float64("ann-min-recall", 0.95, "recall@10 gate for -experiment topk-ann; below it the run errors instead of emitting rows")
		csv          = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON instead of aligned text")
		outdir       = flag.String("outdir", "", "also write each table as <outdir>/<id>.csv")
	)
	flag.Parse()

	ks, err := parseIntList(*runtimeKs, "-runtime-ks")
	if err != nil {
		fatal(err)
	}
	opts := experiments.Options{
		Scale:       *scale,
		Seed:        *seed,
		K32:         *k32,
		Lambda:      *lambda,
		TopUsers:    *topUsers,
		MaxPairs:    *maxPairs,
		Checkpoints: *checks,
		Dataset:     *dataset,
		RuntimeKs:   ks,
	}

	shardCounts, err := parseIntList(*shards, "-shards")
	if err != nil {
		fatal(err)
	}

	annOpts := experiments.TopKANNOptions{
		Users:     *annUsers,
		Bands:     *annBands,
		Rows:      *annRows,
		Probes:    *annProbes,
		MinRecall: *annMinRecall,
	}

	soakOpts := experiments.UDPSoakOptions{Edges: *soakEdges, BatchSize: *soakBatch}

	clusterNodeCounts, err := parseIntList(*clusterNodes, "-cluster-nodes")
	if err != nil {
		fatal(err)
	}
	clusterOpts := experiments.ClusterOptions{Edges: *clusterEdges, Nodes: clusterNodeCounts}

	tables, err := runWithShards(*experiment, opts, shardCounts, *buckets, annOpts, soakOpts, clusterOpts)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		switch {
		case *jsonOut:
			err = t.RenderJSON(os.Stdout)
		case *csv:
			err = t.RenderCSV(os.Stdout)
		default:
			err = t.Render(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		if *outdir != "" {
			if err := writeCSV(*outdir, t); err != nil {
				fatal(err)
			}
		}
	}
}

// writeCSV persists one table under dir as <id>.csv.
func writeCSV(dir string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runWithShards dispatches experiments that take extra topology knobs
// (the shard-count sweep, the window bucket count, the ANN shape) and
// delegates everything else to run.
func runWithShards(id string, opts experiments.Options, shardCounts []int, buckets int, annOpts experiments.TopKANNOptions, soakOpts experiments.UDPSoakOptions, clusterOpts experiments.ClusterOptions) ([]*experiments.Table, error) {
	switch id {
	case "throughput":
		t, err := experiments.Throughput(opts, shardCounts)
		return one(t, err)
	case "window":
		t, err := experiments.WindowExperiment(opts, buckets)
		return one(t, err)
	case "topk-ann":
		t, err := experiments.TopKANN(opts, annOpts)
		return one(t, err)
	case "udpsoak":
		t, err := experiments.UDPSoak(opts, soakOpts)
		return one(t, err)
	case "cluster":
		t, err := experiments.Cluster(opts, clusterOpts)
		return one(t, err)
	}
	return run(id, opts)
}

func run(id string, opts experiments.Options) ([]*experiments.Table, error) {
	switch id {
	case "fig2a":
		t, err := experiments.Fig2a(opts)
		return one(t, err)
	case "fig2b":
		t, err := experiments.Fig2b(opts)
		return one(t, err)
	case "fig3a":
		a, _, err := experiments.Fig3TimeSeries(opts)
		return one(a, err)
	case "fig3c":
		_, c, err := experiments.Fig3TimeSeries(opts)
		return one(c, err)
	case "fig3b":
		b, _, err := experiments.Fig3Final(opts)
		return one(b, err)
	case "fig3d":
		_, d, err := experiments.Fig3Final(opts)
		return one(d, err)
	case "abl-lambda":
		t, err := experiments.AblLambda(opts)
		return one(t, err)
	case "abl-load":
		t, err := experiments.AblLoad(opts)
		return one(t, err)
	case "abl-dense":
		t, err := experiments.AblDense(opts)
		return one(t, err)
	case "abl-delbias":
		t, err := experiments.AblDelBias(opts)
		return one(t, err)
	case "compare":
		t, err := experiments.Compare(opts)
		return one(t, err)
	case "query":
		t, err := experiments.QueryPerf(opts)
		return one(t, err)
	case "hashing":
		t, err := experiments.HashingPerf(opts)
		return one(t, err)
	case "all":
		var out []*experiments.Table
		f2a, err := experiments.Fig2a(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f2a)
		f2b, err := experiments.Fig2b(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f2b)
		f3a, f3c, err := experiments.Fig3TimeSeries(opts)
		if err != nil {
			return nil, err
		}
		f3b, f3d, err := experiments.Fig3Final(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f3a, f3b, f3c, f3d)
		for _, fn := range []func(experiments.Options) (*experiments.Table, error){
			experiments.AblLambda, experiments.AblLoad,
			experiments.AblDense, experiments.AblDelBias,
		} {
			t, err := fn(opts)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("vosbench: unknown experiment %q", id)
	}
}

func one(t *experiments.Table, err error) ([]*experiments.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*experiments.Table{t}, nil
}

// parseIntList parses a comma-separated list of positive integers, naming
// the offending flag in errors.
func parseIntList(s, flagName string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		k, err := strconv.Atoi(p)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("vosbench: bad value %q in %s", p, flagName)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vosbench: empty %s", flagName)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vosbench:", err)
	os.Exit(1)
}
