package metrics

import (
	"fmt"
	"time"
)

// ShardStat is one ingestion shard's health snapshot, as reported by the
// sharded engine: how much the shard has accepted and applied, how far its
// queue is behind, and how loaded its private bit array is. A fleet of
// these is the operational view of a sharded deployment — uneven Enqueued
// across shards means routing skew, growing Backlog means the shard's
// worker cannot keep up, and β drifting toward 1/2 means the shard's
// array is saturating.
type ShardStat struct {
	// Shard is the shard index in [0, N).
	Shard int
	// Enqueued counts edges accepted for this shard (including edges not
	// yet applied); Processed counts edges applied to the shard sketch.
	Enqueued, Processed uint64
	// QueueBatches is the number of full batches waiting in the shard's
	// ingest queue.
	QueueBatches int
	// Beta is the shard array's 1-bit fraction (the paper's β, but for
	// this shard's private array only).
	Beta float64
	// Users is the number of users with live state on this shard.
	Users int
	// EdgesPerSec is the shard's average applied-edge throughput since
	// the engine started.
	EdgesPerSec float64
}

// Backlog returns the number of accepted-but-unapplied edges.
func (s ShardStat) Backlog() uint64 { return s.Enqueued - s.Processed }

// String renders the stat compactly for logs and examples.
func (s ShardStat) String() string {
	return fmt.Sprintf("shard %d: %d applied (%d backlog), β=%.5f, %d users, %.0f edges/s",
		s.Shard, s.Processed, s.Backlog(), s.Beta, s.Users, s.EdgesPerSec)
}

// TotalShardStats folds a per-shard fleet into one aggregate row: counters,
// queue depths, users, and throughput are summed; Beta becomes the mean
// shard load; Shard is set to -1 to mark the row as an aggregate.
func TotalShardStats(stats []ShardStat) ShardStat {
	t := ShardStat{Shard: -1}
	for _, s := range stats {
		t.Enqueued += s.Enqueued
		t.Processed += s.Processed
		t.QueueBatches += s.QueueBatches
		t.Beta += s.Beta
		t.Users += s.Users
		t.EdgesPerSec += s.EdgesPerSec
	}
	if len(stats) > 0 {
		t.Beta /= float64(len(stats))
	}
	return t
}

// RateMeter converts a monotonically increasing event counter into
// interval rates: each Observe reports the rate since the previous
// Observe. It is the windowed counterpart of ShardStat.EdgesPerSec (which
// averages over the engine's whole lifetime) and is what throughput
// harnesses and dashboards sample. Not safe for concurrent use.
type RateMeter struct {
	lastCount uint64
	lastTime  time.Time
	started   bool
}

// Observe records the counter value at time now and returns the rate per
// second since the previous observation. The first call only arms the
// meter and returns 0.
func (m *RateMeter) Observe(count uint64, now time.Time) float64 {
	if !m.started {
		m.lastCount, m.lastTime, m.started = count, now, true
		return 0
	}
	dt := now.Sub(m.lastTime).Seconds()
	dc := count - m.lastCount
	m.lastCount, m.lastTime = count, now
	if dt <= 0 {
		return 0
	}
	return float64(dc) / dt
}
