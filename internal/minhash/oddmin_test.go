package minhash

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/gen"
)

func TestOddMinHashHighSimilarity(t *testing.T) {
	// The WWW'14 construction targets high similarities with few bits.
	const (
		trials = 25
		k      = 256
		zBits  = 256
		size   = 400
	)
	for _, wantJ := range []float64{0.8, 0.9, 0.95} {
		common := gen.PlantedJaccard(size, wantJ)
		trueJ := float64(common) / float64(2*size-common)
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			s := New(k, uint64(trial))
			process(s, gen.PlantedPair(1, 2, size, size, common, int64(trial)))
			a := NewOddMinHash(s, 1, zBits, 99)
			b := NewOddMinHash(s, 2, zBits, 99)
			sum += a.EstimateJaccard(b)
		}
		avg := sum / trials
		if math.Abs(avg-trueJ) > 0.05 {
			t.Errorf("J=%.2f: mean estimate %.3f", trueJ, avg)
		}
	}
}

func TestOddMinHashIdenticalSets(t *testing.T) {
	s := New(64, 5)
	for i := 0; i < 100; i++ {
		process(s, gen.PlantedPair(1, 2, 50, 50, 50, 7))
		break
	}
	a := NewOddMinHash(s, 1, 128, 3)
	b := NewOddMinHash(s, 2, 128, 3)
	if got := a.EstimateJaccard(b); got != 1 {
		t.Errorf("identical sets: Ĵ = %v", got)
	}
}

func TestOddMinHashClamped(t *testing.T) {
	// Disjoint sets saturate the sketch; the estimate must stay in [0,1].
	s := New(128, 9)
	process(s, gen.PlantedPair(1, 2, 300, 300, 0, 1))
	a := NewOddMinHash(s, 1, 64, 2)
	b := NewOddMinHash(s, 2, 64, 2)
	j := a.EstimateJaccard(b)
	if j < 0 || j > 1 {
		t.Errorf("Ĵ = %v out of range", j)
	}
}

func TestOddMinHashIncompatiblePanics(t *testing.T) {
	s1 := New(64, 1)
	s2 := New(32, 1)
	process(s1, gen.PlantedPair(1, 2, 10, 10, 5, 1))
	process(s2, gen.PlantedPair(1, 2, 10, 10, 5, 1))
	a := NewOddMinHash(s1, 1, 64, 3)
	b := NewOddMinHash(s2, 1, 64, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched k")
		}
	}()
	a.EstimateJaccard(b)
}

func TestOddMinHashErrorFormula(t *testing.T) {
	// Error should grow as similarity falls and shrink as bits grow.
	if OddMinHashError(256, 256, 0.9) >= OddMinHashError(256, 256, 0.5) {
		t.Error("error should increase as J decreases")
	}
	if OddMinHashError(256, 1024, 0.8) >= OddMinHashError(256, 128, 0.8) {
		t.Error("error should decrease with more bits")
	}
	if e := OddMinHashError(256, 256, 1.0); e != 0 {
		t.Errorf("zero-difference error = %v", e)
	}
}

func TestOddMinHashBitsTotal(t *testing.T) {
	s := New(16, 1)
	process(s, gen.PlantedPair(1, 2, 10, 10, 5, 1))
	o := NewOddMinHash(s, 1, 96, 1)
	if o.BitsTotal() != 96 {
		t.Errorf("BitsTotal = %d", o.BitsTotal())
	}
}
