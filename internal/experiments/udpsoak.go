package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/netproto"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/server"
)

// UDPSoakOptions tunes the udpsoak experiment.
type UDPSoakOptions struct {
	// Edges is the total workload size per transport run (default 200000).
	Edges int
	// BatchSize is the edges-per-batch used by BOTH transports — one HTTP
	// POST per batch, one VOSSTRM1 frame per batch — so the per-edge cost
	// comparison is at equal batching (default 256).
	BatchSize int
}

func (o UDPSoakOptions) withDefaults() UDPSoakOptions {
	if o.Edges <= 0 {
		o.Edges = 200_000
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	return o
}

// UDPSoak measures the two ingest planes over real loopback sockets at the
// same batch size: the HTTP binary path (one POST round-trip per batch)
// and the VOSSTRM1 datagram path (fire-and-forget frames with windowed
// acks). A third row replays the datagram run under an injected fault plan
// — deterministic drops, duplicates, and reorders — to demonstrate the
// protocol's accounting: every injected fault must surface in the
// receiver's counters, exactly.
//
// Every row is parity-gated before it is reported: the sketch behind each
// transport must be bit-identical to an oracle sketch fed the same applied
// batches in-process. A clean run with nonzero gap/replay counters, a
// fault run whose counters differ from the injected plan, or any sketch
// divergence is an error, not a row — undetected loss is the one thing
// this plane must never exhibit.
func UDPSoak(opts Options, soak UDPSoakOptions) (*Table, error) {
	opts = opts.normalized()
	soak = soak.withDefaults()

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = uint64(soak.Edges)
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	cfg := core.PaperConfig(int(opts.RuntimeUsers), opts.K32, opts.Lambda, uint64(opts.Seed))

	// Oracle: the same edges applied in-process, batch by batch — what
	// every clean transport run must reproduce bit for bit.
	oracle := core.MustNew(cfg)
	oracle.ProcessBatch(edges)
	want, err := oracle.MarshalBinary()
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "udpsoak",
		Title: fmt.Sprintf("ingest-plane soak: HTTP vs VOSSTRM1 datagrams at batch=%d over loopback", soak.BatchSize),
		Header: []string{"transport", "edges", "frames", "wall", "edges/s", "ns/edge",
			"rtt-p50", "rtt-p99", "gaps", "replays", "late", "parity"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (after dynamize) batch=%d",
		p.Name, p.Users, soak.Edges, soak.BatchSize)
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d", cfg.MemoryBits, cfg.SketchBits, cfg.Seed)

	httpNs, err := soakHTTP(tbl, cfg, edges, soak.BatchSize, want)
	if err != nil {
		return nil, err
	}
	udpNs, err := soakUDPClean(tbl, cfg, edges, soak.BatchSize, want)
	if err != nil {
		return nil, err
	}
	if err := soakUDPFaults(tbl, cfg, edges, soak.BatchSize); err != nil {
		return nil, err
	}

	tbl.AddNote("udp vs http per-edge cost: %.2fx (%.0f vs %.0f ns/edge)",
		httpNs/udpNs, udpNs, httpNs)
	return tbl, nil
}

// soakHTTP times the HTTP binary ingest path end to end: a real server on
// loopback, the real client, one POST round-trip per batch.
func soakHTTP(tbl *Table, cfg core.Config, edges []stream.Edge, batch int, want []byte) (nsPerEdge float64, err error) {
	sk := core.MustNew(cfg)
	srv := server.New(vos.NewSketchService(sk), server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	cl := client.New("http://"+ln.Addr().String(), client.Options{
		BatchSize:  batch,
		Linger:     -1, // only full batches and Flush ship: deterministic framing
		MaxRetries: -1, // a failed soak is an error, not a retry
	})
	ctx := context.Background()

	t0 := time.Now()
	if err := cl.Ingest(ctx, edges); err != nil {
		return 0, fmt.Errorf("udpsoak: http ingest: %w", err)
	}
	if err := cl.Flush(ctx); err != nil {
		return 0, fmt.Errorf("udpsoak: http flush: %w", err)
	}
	elapsed := time.Since(t0)
	if err := cl.Close(); err != nil {
		return 0, err
	}

	got, err := sk.MarshalBinary()
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(got, want) {
		return 0, fmt.Errorf("udpsoak: http-ingested sketch diverged from the in-process oracle")
	}

	frames := (len(edges) + batch - 1) / batch
	nsPerEdge = float64(elapsed.Nanoseconds()) / float64(len(edges))
	tbl.AddRow("http", fmt.Sprintf("%d", len(edges)), fmt.Sprintf("%d", frames),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(len(edges))/elapsed.Seconds()),
		fmt.Sprintf("%.0f", nsPerEdge),
		"-", "-", "-", "-", "-", "yes")
	return nsPerEdge, nil
}

// soakUDPClean times the datagram path under clean delivery through the
// real UDPClient (windowed acks on), gating on a spotless ledger.
func soakUDPClean(tbl *Table, cfg core.Config, edges []stream.Edge, batch int, want []byte) (nsPerEdge float64, err error) {
	sk := core.MustNew(cfg)
	recv, runErr, err := startSoakReceiver(sk)
	if err != nil {
		return 0, err
	}
	defer func() { recv.Close(); <-runErr }()

	uc, err := client.NewUDP(recv.Addr().String(), client.UDPOptions{BatchSize: batch})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()

	t0 := time.Now()
	if err := uc.Ingest(ctx, edges); err != nil {
		return 0, fmt.Errorf("udpsoak: udp ingest: %w", err)
	}
	if err := uc.Flush(ctx); err != nil {
		return 0, fmt.Errorf("udpsoak: udp flush: %w", err)
	}
	elapsed := time.Since(t0)

	cst := uc.Stats()
	rtts := uc.TakeRTTs()
	if err := uc.Close(); err != nil {
		return 0, err
	}
	if !cst.Acked {
		return 0, fmt.Errorf("udpsoak: clean run finished unacknowledged")
	}
	if cst.LastAck.Gaps != 0 || cst.LastAck.Replays != 0 {
		return 0, fmt.Errorf("udpsoak: clean loopback delivery reported gaps=%d replays=%d",
			cst.LastAck.Gaps, cst.LastAck.Replays)
	}
	rst := recv.Stats()
	if rst.GapsDetected != 0 || rst.ReplaysDropped != 0 || rst.Malformed != 0 || rst.AdmitRejected != 0 {
		return 0, fmt.Errorf("udpsoak: clean-run receiver counters not clean: %+v", rst)
	}

	got, err := sk.MarshalBinary()
	if err != nil {
		return 0, err
	}
	if !bytes.Equal(got, want) {
		return 0, fmt.Errorf("udpsoak: udp-ingested sketch diverged from the in-process oracle")
	}

	p50, p99 := rttQuantiles(rtts)
	nsPerEdge = float64(elapsed.Nanoseconds()) / float64(len(edges))
	tbl.AddRow("udp", fmt.Sprintf("%d", len(edges)), fmt.Sprintf("%d", cst.FramesSent),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(len(edges))/elapsed.Seconds()),
		fmt.Sprintf("%.0f", nsPerEdge),
		p50.String(), p99.String(),
		"0", "0", "0", "yes")
	return nsPerEdge, nil
}

// soakUDPFaults replays the datagram run under a deterministic fault plan
// injected at the socket (frames hand-built below the client): every 10th
// frame dropped, another 10th duplicated, another 10th swapped with its
// successor. The gate is exactness: each counter must equal its injected
// count, and the sketch must equal an oracle fed exactly the batches that
// were applied.
func soakUDPFaults(tbl *Table, cfg core.Config, edges []stream.Edge, batch int) error {
	sk := core.MustNew(cfg)
	recv, runErr, err := startSoakReceiver(sk)
	if err != nil {
		return err
	}
	defer func() { recv.Close(); <-runErr }()

	conn, err := net.Dial("udp", recv.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()

	// Frame the workload: seq i carries batch i.
	var batches [][]stream.Edge
	for off := 0; off < len(edges); off += batch {
		end := off + batch
		if end > len(edges) {
			end = len(edges)
		}
		batches = append(batches, edges[off:end])
	}

	// The deterministic fault plan, as a send order over sequence numbers:
	//   seq%10 == 7  dropped (never sent)      → must confirm as a gap
	//   seq%10 == 3  sent twice, back to back  → second copy is a replay
	//   seq%10 == 5  swapped with its successor → predecessor applies late
	// Everything else is sent once, in order. The plan composes cleanly
	// because the three residues never collide and a swap's successor
	// (seq%10 == 6) is itself never dropped or duplicated.
	frames := uint64(len(batches))
	var order []uint64
	var drops, dups, swaps uint64
	for seq := uint64(0); seq < frames; seq++ {
		switch seq % 10 {
		case 7:
			drops++
		case 3:
			order = append(order, seq, seq)
			dups++
		case 5:
			if seq+1 < frames {
				order = append(order, seq+1, seq)
				swaps++
			} else {
				order = append(order, seq)
			}
		case 6:
			// Already emitted ahead of seq-1 by the swap above.
		default:
			order = append(order, seq)
		}
	}

	// Oracle and expected ledger: every non-dropped batch applies exactly
	// once. Ascending order is fine — XOR toggles and cardinality bumps
	// commute, which is why late application is sound at all.
	applied := core.MustNew(cfg)
	var appliedFrames, appliedEdges uint64
	for seq := uint64(0); seq < frames; seq++ {
		if seq%10 == 7 {
			continue
		}
		applied.ProcessBatch(batches[seq])
		appliedFrames++
		appliedEdges += uint64(len(batches[seq]))
	}

	const session = 0x1CDE2019
	var buf []byte
	send := func(seq uint64, edges []stream.Edge) error {
		frame, err := netproto.AppendDataFrame(buf[:0], session, seq, 0, edges)
		if err != nil {
			return err
		}
		buf = frame
		_, err = conn.Write(frame)
		return err
	}

	t0 := time.Now()
	for i, seq := range order {
		if err := send(seq, batches[seq]); err != nil {
			return err
		}
		if i%16 == 15 {
			time.Sleep(500 * time.Microsecond) // pace below socket-buffer depth
		}
	}
	// Trailing empty frames push every dropped sequence out of the reorder
	// window so its loss is *confirmed*, not still pending.
	trailer := uint64(netproto.WindowSize + 2)
	for i := uint64(0); i < trailer; i++ {
		if err := send(frames+i, nil); err != nil {
			return err
		}
		if i%16 == 15 {
			time.Sleep(500 * time.Microsecond)
		}
	}
	appliedFrames += trailer
	elapsed := time.Since(t0)

	// Drain: FramesApplied is the last counter a frame touches.
	deadline := time.Now().Add(10 * time.Second)
	var rst = recv.Stats()
	for rst.FramesApplied < appliedFrames {
		if time.Now().After(deadline) {
			return fmt.Errorf("udpsoak: fault run stalled at %d of %d applied frames (loopback dropped frames beyond the plan?)",
				rst.FramesApplied, appliedFrames)
		}
		time.Sleep(2 * time.Millisecond)
		rst = recv.Stats()
	}

	// Exactness gates: the plan, the whole plan, and nothing but the plan.
	if rst.GapsDetected != drops {
		return fmt.Errorf("udpsoak: injected %d drops, receiver confirmed %d gaps", drops, rst.GapsDetected)
	}
	if rst.ReplaysDropped != dups {
		return fmt.Errorf("udpsoak: injected %d duplicates, receiver dropped %d replays", dups, rst.ReplaysDropped)
	}
	if rst.LateApplied != swaps {
		return fmt.Errorf("udpsoak: injected %d reorders, receiver applied %d frames late", swaps, rst.LateApplied)
	}
	if rst.EdgesApplied != appliedEdges || rst.FramesApplied != appliedFrames {
		return fmt.Errorf("udpsoak: applied %d edges in %d frames, want %d in %d",
			rst.EdgesApplied, rst.FramesApplied, appliedEdges, appliedFrames)
	}
	got, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	wantApplied, err := applied.MarshalBinary()
	if err != nil {
		return err
	}
	if !bytes.Equal(got, wantApplied) {
		return fmt.Errorf("udpsoak: fault-run sketch diverged from the applied-batches oracle")
	}

	tbl.AddRow("udp-faults", fmt.Sprintf("%d", appliedEdges), fmt.Sprintf("%d", appliedFrames),
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(appliedEdges)/elapsed.Seconds()),
		fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(appliedEdges)),
		"-", "-",
		fmt.Sprintf("%d", rst.GapsDetected),
		fmt.Sprintf("%d", rst.ReplaysDropped),
		fmt.Sprintf("%d", rst.LateApplied),
		"yes")
	tbl.AddNote("fault plan: %d drops, %d duplicates, %d reorders over %d frames — every one surfaced, none double-applied",
		drops, dups, swaps, len(batches))
	return nil
}

// startSoakReceiver runs a Receiver on loopback sinking into sk. The
// receive loop is the only writer, so the sketch needs no lock.
func startSoakReceiver(sk *core.VOS) (*netproto.Receiver, chan error, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	recv := netproto.NewReceiver(pc, netproto.Config{
		Sink: func(batch []stream.Edge) error {
			sk.ProcessBatch(batch)
			return nil
		},
	})
	runErr := make(chan error, 1)
	go func() { runErr <- recv.Run() }()
	return recv, runErr, nil
}

// rttQuantiles returns the p50 and p99 of the ack round-trip samples.
func rttQuantiles(rtts []time.Duration) (p50, p99 time.Duration) {
	if len(rtts) == 0 {
		return 0, 0
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	q := func(f float64) time.Duration {
		i := int(f * float64(len(rtts)-1))
		return rtts[i]
	}
	return q(0.50), q(0.99)
}
