package rp

import (
	"fmt"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// Reservoir is the general capacity-M Random Pairing sampler of Gemulla,
// Lehner & Haas (VLDBJ'08): a bounded uniform sample of an evolving set
// under arbitrary insertions and deletions. The Sketch type in this
// package runs k capacity-1 instances per user (the §III similarity
// extension); Reservoir is the full data structure, exposed because it is
// the substrate the paper's RP baseline cites and a useful primitive on
// its own (e.g. sampling live edges of a dynamic graph).
//
// Invariant (Gemulla Theorem): after any feasible operation sequence, the
// sample is a uniformly random subset of the current set of size
// min(|set|, M) in expectation — conditioned on the sample size, every
// subset of that size is equally likely.
type Reservoir struct {
	capacity int
	items    []stream.Item
	pos      map[stream.Item]int
	n        int64  // current set size
	c1, c2   uint64 // uncompensated deletions: in-sample / out-of-sample
	rng      uint64 // splitmix64 state
}

// NewReservoir creates an empty sampler with the given capacity.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("rp: reservoir capacity %d must be positive", capacity))
	}
	return &Reservoir{
		capacity: capacity,
		pos:      make(map[stream.Item]int, capacity),
		rng:      hashing.Hash64(seed, 0x5851f42d4c957f2d),
	}
}

// Capacity returns M.
func (r *Reservoir) Capacity() int { return r.capacity }

// Len returns the current sample size.
func (r *Reservoir) Len() int { return len(r.items) }

// SetSize returns the tracked size of the underlying set.
func (r *Reservoir) SetSize() int64 { return r.n }

// Contains reports whether the item is currently sampled.
func (r *Reservoir) Contains(i stream.Item) bool {
	_, ok := r.pos[i]
	return ok
}

// Sample returns a copy of the current sample in unspecified order.
func (r *Reservoir) Sample() []stream.Item {
	return append([]stream.Item(nil), r.items...)
}

func (r *Reservoir) coin() float64 {
	return hashing.Float01(hashing.SplitMix64(&r.rng))
}

// Insert processes the insertion of item i (which must not currently be
// in the set; feasibility is the caller's contract as everywhere in this
// module).
func (r *Reservoir) Insert(i stream.Item) {
	r.n++
	if r.c1+r.c2 == 0 {
		// No deletion debt: classic reservoir step over a growing set.
		if len(r.items) < r.capacity {
			r.add(i)
			return
		}
		if r.coin() < float64(r.capacity)/float64(r.n) {
			r.evictRandom()
			r.add(i)
		}
		return
	}
	// Compensation phase: this insertion is paired with one prior
	// uncompensated deletion; it enters the sample iff that deletion
	// came from the sample.
	if r.coin() < float64(r.c1)/float64(r.c1+r.c2) {
		r.add(i)
		r.c1--
	} else {
		r.c2--
	}
}

// Delete processes the deletion of item i from the set.
func (r *Reservoir) Delete(i stream.Item) {
	r.n--
	if p, ok := r.pos[i]; ok {
		last := len(r.items) - 1
		r.items[p] = r.items[last]
		r.pos[r.items[p]] = p
		r.items = r.items[:last]
		delete(r.pos, i)
		r.c1++
		return
	}
	r.c2++
}

// Apply dispatches a stream element for this sampler's set.
func (r *Reservoir) Apply(e stream.Edge) {
	if e.Op == stream.Insert {
		r.Insert(e.Item)
	} else {
		r.Delete(e.Item)
	}
}

func (r *Reservoir) add(i stream.Item) {
	r.pos[i] = len(r.items)
	r.items = append(r.items, i)
}

func (r *Reservoir) evictRandom() {
	p := int(hashing.Reduce(hashing.SplitMix64(&r.rng), uint64(len(r.items))))
	i := r.items[p]
	last := len(r.items) - 1
	r.items[p] = r.items[last]
	r.pos[r.items[p]] = p
	r.items = r.items[:last]
	delete(r.pos, i)
}
