package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/cluster"
)

// smokeSketch is the shared sketch identity of every backend, handoff
// target and oracle in these tests; smokeSketchArgs is the same identity
// as vosd flags.
var smokeSketch = vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 5}
var smokeSketchArgs = []string{"-memory-bits", "16384", "-sketch-bits", "256", "-seed", "5"}

// buildBinary compiles one of the repo's commands into a temp dir.
func buildBinary(t *testing.T, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// proc is a started daemon: its base URL and the handles to stop it.
type proc struct {
	base string
	cmd  *exec.Cmd
	t    *testing.T
}

// sigterm stops the daemon gracefully (vosd writes a final checkpoint).
func (p *proc) sigterm() {
	if p.cmd == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	p.waitExit()
}

// sigkill is the crash: no drain, no checkpoint, the process just dies.
func (p *proc) sigkill() {
	if p.cmd == nil {
		return
	}
	p.cmd.Process.Kill()
	p.waitExit()
}

func (p *proc) waitExit() {
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		p.t.Error("daemon did not exit within 30s")
	}
	p.cmd = nil
}

// port extracts the daemon's host:port so a restart can reclaim the same
// address (the ring document keeps pointing at it).
func (p *proc) port() string {
	u, err := url.Parse(p.base)
	if err != nil {
		p.t.Fatal(err)
	}
	return u.Host
}

// startDaemon launches bin with args and scans stdout for the
// "listening on http://ADDR" line both daemons print once serving.
func startDaemon(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			base = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon never reported its listen address (scan err: %v)", sc.Err())
	}
	go func() { // keep draining so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	p := &proc{base: base, cmd: cmd, t: t}
	t.Cleanup(func() {
		if p.cmd != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// startVosd launches a durable backend with the shared sketch identity.
func startVosd(t *testing.T, bin, dataDir, listen string) *proc {
	t.Helper()
	args := append([]string{"-listen", listen, "-dir", dataDir, "-shards", "2"}, smokeSketchArgs...)
	return startDaemon(t, bin, args...)
}

// smokeWorkload is a deterministic fully dynamic stream: overlapping
// users, churn, and unsubscriptions.
func smokeWorkload(users, perUser int) []vos.Edge {
	var edges []vos.Edge
	for u := 0; u < users; u++ {
		for i := 0; i < perUser; i++ {
			// Half-overlapping item ranges make neighbors similar.
			edges = append(edges, vos.Edge{User: vos.User(u), Item: vos.Item(u*perUser/2 + i), Op: vos.Insert})
		}
	}
	for u := 0; u < users; u += 3 {
		for i := 0; i < perUser/4; i++ {
			edges = append(edges, vos.Edge{User: vos.User(u), Item: vos.Item(u*perUser/2 + i), Op: vos.Delete})
		}
	}
	return edges
}

// oracleEngine folds edges into a fresh single engine — the ground truth.
func oracleEngine(t *testing.T, edges []vos.Edge) *vos.Engine {
	t.Helper()
	eng, err := vos.NewEngine(vos.EngineConfig{Sketch: smokeSketch, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if err := eng.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	return eng
}

// assertGatewayParity compares the gateway's answers and serialized state
// against the single-engine oracle, bit for bit.
func assertGatewayParity(ctx context.Context, t *testing.T, cl *client.ClusterClient, oracle *vos.Engine, users int) {
	t.Helper()
	state, err := cl.ExportSketch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, want) {
		t.Fatal("cluster export differs from the single-engine oracle")
	}
	for u := vos.User(0); u < vos.User(users); u += 5 {
		got, err := cl.Similarity(ctx, u, u+1)
		if err != nil {
			t.Fatal(err)
		}
		if wantE := oracle.Query(u, u+1); got != wantE {
			t.Fatalf("similarity(%d,%d) = %+v, oracle %+v", u, u+1, got, wantE)
		}
		card, err := cl.Cardinality(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if wantC := oracle.Cardinality(u); card != wantC {
			t.Fatalf("cardinality(%d) = %d, oracle %d", u, card, wantC)
		}
	}
	candidates := make([]vos.User, 0, users-1)
	for u := vos.User(0); u < vos.User(users); u++ {
		if u != 1 {
			candidates = append(candidates, u)
		}
	}
	got, err := cl.TopK(ctx, 1, candidates, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantTop := oracle.TopK(1, candidates, 5)
	if fmt.Sprint(got) != fmt.Sprint(wantTop) {
		t.Fatalf("topk = %+v, oracle %+v", got, wantTop)
	}
}

// TestVosgwSmoke is the CI end-to-end cluster gate over real binaries:
// three vosd backends behind a vosgw, ingest, a live shard handoff to a
// fresh fourth node, a graceful restart of one backend, then bit-exact
// queries against a single-engine oracle.
func TestVosgwSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binaries")
	}
	vosdBin := buildBinary(t, "github.com/vossketch/vos/cmd/vosd", "vosd")
	vosgwBin := buildBinary(t, ".", "vosgw")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	nodes := make([]*proc, 3)
	shards := make([]string, 3)
	for i := range nodes {
		nodes[i] = startVosd(t, vosdBin, dirs[i], "127.0.0.1:0")
		shards[i] = nodes[i].base
	}
	ringPath := filepath.Join(t.TempDir(), "ring.json")
	if err := cluster.SaveRing(ringPath, &cluster.Ring{Version: 1, RouteSeed: 7, Shards: shards}); err != nil {
		t.Fatal(err)
	}
	gw := startDaemon(t, vosgwBin, "-listen", "127.0.0.1:0", "-ring", ringPath)

	cl := client.NewCluster(gw.base, client.Options{BatchSize: 128})
	t.Cleanup(func() { cl.Close() })

	edges := smokeWorkload(45, 40)
	half := len(edges) / 2
	if err := cl.Ingest(ctx, edges[:half]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Live handoff: shard 1 moves to a fresh durable node mid-stream.
	freshDir := t.TempDir()
	freshNode := startVosd(t, vosdBin, freshDir, "127.0.0.1:0")
	version, err := cl.Handoff(ctx, 1, freshNode.base)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("ring version after handoff: %d, want 2", version)
	}
	ring, err := cl.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Shards[1] != freshNode.base {
		t.Fatalf("ring after handoff: %+v", ring)
	}

	if err := cl.Ingest(ctx, edges[half:]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Coordinated cluster checkpoint: every backend persists under a full
	// quiesce, the manifest records ring v2 rows.
	m, err := cl.CheckpointCluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.RingVersion != 2 || len(m.Shards) != 3 {
		t.Fatalf("cluster checkpoint manifest: %+v", m)
	}

	// Graceful restart of one backend on the same address; the ring still
	// points at it, so queries must come back bit-exact afterwards.
	addr := nodes[0].port()
	nodes[0].sigterm()
	nodes[0] = startVosd(t, vosdBin, dirs[0], addr)

	assertGatewayParity(ctx, t, cl, oracleEngine(t, edges), 45)
}

// TestClusterCrashParity is the crash half of the correctness bar: kill
// -9 one backend mid-stream (after the gateway acked — synchronous
// shipping means acked edges are in that backend's WAL), restart it from
// its durability dir on the same address, finish the stream through the
// gateway, and every answer plus every per-shard serialized sketch must be
// bit-identical to an uninterrupted single-engine run. K ∈ {2,3,4}.
func TestClusterCrashParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binaries")
	}
	vosdBin := buildBinary(t, "github.com/vossketch/vos/cmd/vosd", "vosd")
	vosgwBin := buildBinary(t, ".", "vosgw")

	for _, k := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("nodes=%d", k), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()

			dirs := make([]string, k)
			nodes := make([]*proc, k)
			shards := make([]string, k)
			for i := range nodes {
				dirs[i] = t.TempDir()
				nodes[i] = startVosd(t, vosdBin, dirs[i], "127.0.0.1:0")
				shards[i] = nodes[i].base
			}
			ring := &cluster.Ring{Version: 1, RouteSeed: 7, Shards: shards}
			ringPath := filepath.Join(t.TempDir(), "ring.json")
			if err := cluster.SaveRing(ringPath, ring); err != nil {
				t.Fatal(err)
			}
			gw := startDaemon(t, vosgwBin, "-listen", "127.0.0.1:0", "-ring", ringPath)
			cl := client.NewCluster(gw.base, client.Options{BatchSize: 128})
			t.Cleanup(func() { cl.Close() })

			edges := smokeWorkload(30+k, 32)
			half := len(edges) / 2
			if err := cl.Ingest(ctx, edges[:half]); err != nil {
				t.Fatal(err)
			}
			// Flush: the gateway forwards synchronously, so the ack means
			// every edge so far is in its owner's WAL.
			if err := cl.Flush(ctx); err != nil {
				t.Fatal(err)
			}

			// Crash the backend owning the most-loaded shard, then restart
			// it from its durability dir on the same address.
			victim := 1 % k
			addr := nodes[victim].port()
			nodes[victim].sigkill()
			nodes[victim] = startVosd(t, vosdBin, dirs[victim], addr)

			if err := cl.Ingest(ctx, edges[half:]); err != nil {
				t.Fatal(err)
			}
			if err := cl.Flush(ctx); err != nil {
				t.Fatal(err)
			}

			users := 30 + k
			assertGatewayParity(ctx, t, cl, oracleEngine(t, edges), users)

			// Per-shard exactness: each backend's serialized sketch equals
			// an engine fed exactly its shard's slice of the stream.
			for s, node := range shards {
				if s == victim {
					node = nodes[victim].base
				}
				var own []vos.Edge
				for _, e := range edges {
					if ring.ShardOf(e.User) == s {
						own = append(own, e)
					}
				}
				bc := client.New(node, client.Options{})
				state, err := bc.ExportSketch(ctx)
				bc.Close()
				if err != nil {
					t.Fatal(err)
				}
				want, err := oracleEngine(t, own).MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(state, want) {
					t.Fatalf("shard %d state differs from its slice oracle after crash+restart", s)
				}
			}
		})
	}
}

// TestVosgwBadFlags: configuration mistakes fail fast instead of starting
// a gateway over a broken ring.
func TestVosgwBadFlags(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}, &strings.Builder{}); err == nil {
		t.Fatal("missing -ring accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-ring", filepath.Join(t.TempDir(), "missing.json")}, &strings.Builder{}); err == nil {
		t.Fatal("nonexistent ring file accepted")
	}
	bad := filepath.Join(t.TempDir(), "ring.json")
	if err := os.WriteFile(bad, []byte(`{"version":0,"shards":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-ring", bad}, &strings.Builder{}); err == nil {
		t.Fatal("invalid ring document accepted")
	}
}
