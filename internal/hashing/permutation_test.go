package hashing

import (
	"testing"
	"testing/quick"
)

func TestPermutationBijectiveSmallDomains(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1000, 4096} {
		p := NewPermutation(n, 42)
		seen := make([]bool, n)
		for x := uint64(0); x < n; x++ {
			y := p.Apply(x)
			if y >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of range", n, x, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: value %d produced twice", n, y)
			}
			seen[y] = true
		}
	}
}

func TestPermutationInverse(t *testing.T) {
	for _, n := range []uint64{1, 5, 64, 1023, 100000} {
		p := NewPermutation(n, 7)
		for x := uint64(0); x < n; x += 1 + n/257 {
			if got := p.Invert(p.Apply(x)); got != x {
				t.Fatalf("n=%d: Invert(Apply(%d)) = %d", n, x, got)
			}
			if got := p.Apply(p.Invert(x)); got != x {
				t.Fatalf("n=%d: Apply(Invert(%d)) = %d", n, x, got)
			}
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	const n = 1 << 12
	a := NewPermutation(n, 1)
	b := NewPermutation(n, 2)
	same := 0
	for x := uint64(0); x < n; x++ {
		if a.Apply(x) == b.Apply(x) {
			same++
		}
	}
	// A random pair of permutations of n elements agrees in ~1 position.
	if same > 10 {
		t.Errorf("different seeds agree on %d/%d positions", same, n)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := NewPermutation(999, 3)
	b := NewPermutation(999, 3)
	for x := uint64(0); x < 999; x++ {
		if a.Apply(x) != b.Apply(x) {
			t.Fatal("same-seed permutations disagree")
		}
	}
}

func TestPermutationLargeDomain(t *testing.T) {
	p := NewPermutation(1<<40, 11)
	err := quick.Check(func(x uint64) bool {
		x %= 1 << 40
		y := p.Apply(x)
		return y < 1<<40 && p.Invert(y) == x
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPermutationUniformish(t *testing.T) {
	// The image of a contiguous prefix should scatter across the domain:
	// bucket the outputs of the first n/4 inputs into 8 buckets.
	const n = 1 << 16
	p := NewPermutation(n, 123)
	var counts [8]int
	const samples = n / 4
	for x := uint64(0); x < samples; x++ {
		counts[p.Apply(x)*8/n]++
	}
	expected := float64(samples) / 8
	for b, c := range counts {
		ratio := float64(c) / expected
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("bucket %d holds %.2fx expected mass", b, ratio)
		}
	}
}

func TestPermutationPanics(t *testing.T) {
	p := NewPermutation(10, 1)
	for name, fn := range map[string]func(){
		"apply out of domain":  func() { p.Apply(10) },
		"invert out of domain": func() { p.Invert(10) },
		"empty domain":         func() { NewPermutation(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i), 42)
	}
	_ = sink
}

func BenchmarkPermutationApply(b *testing.B) {
	p := NewPermutation(1<<32, 42)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Apply(uint64(i) & (1<<32 - 1))
	}
	_ = sink
}
