package core

// Sliding windows. VOS state is a pure XOR of its edge stream, so a
// sliding window falls out structurally: keep B time-bucketed sub-sketches
// in a ring, land every edge in the current bucket AND in a running
// XOR-merge of all live buckets, and retire the oldest bucket by re-XORing
// it out of the merge (Unmerge) — one O(sketch) array pass per rotation,
// no per-edge expiry tracking, no timers in the hot path. The merged view
// is an ordinary *VOS, so the whole materialized read path (Query, TopK,
// position and recovered-sketch caches) works on it unchanged.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/vossketch/vos/internal/stream"
)

// Window is a sliding-window VOS: a ring of B bucket sub-sketches plus the
// live merged view covering the last B bucket intervals (the oldest B−1
// full buckets and the current, still-filling one). Like VOS it is not
// safe for concurrent mutation — the engine wraps per-shard windows in its
// own locking; read-only access to Merged follows the VOS rules.
//
// Time model: the window owns a bucket duration and the exclusive end
// instant of the current bucket, epoch-aligned so independently created
// windows with the same duration rotate on the same boundaries. Rotation
// is deterministic and explicit — Rotate advances one bucket, AdvanceTo
// rotates however many boundaries a timestamp has crossed — so callers
// (and tests) control the clock; nothing here reads time.Now.
type Window struct {
	cfg      Config
	bucketNS int64
	endNS    int64 // exclusive end of the current bucket, unix nanoseconds

	buckets []*VOS // ring; cur indexes the bucket accepting writes
	cur     int
	merged  *VOS // XOR-merge of all live buckets; pointer is stable

	rotations uint64
}

// NewWindow creates an empty window of buckets sub-sketches of duration d
// each, with the current bucket covering the instant now (its end is
// rounded up to the next multiple of d since the Unix epoch). buckets must
// be at least 1 — a single bucket is a tumbling window that forgets
// everything on each rotation — and d must be positive.
func NewWindow(cfg Config, buckets int, d time.Duration, now time.Time) (*Window, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("core: window needs at least 1 bucket, got %d", buckets)
	}
	if d <= 0 {
		return nil, fmt.Errorf("core: bucket duration must be positive, got %v", d)
	}
	ns := now.UnixNano()
	end := (ns/d.Nanoseconds())*d.Nanoseconds() + d.Nanoseconds()
	return NewWindowAt(cfg, buckets, d, time.Unix(0, end))
}

// NewWindowAt is NewWindow with an explicit, verbatim current-bucket end
// instant — the constructor recovery uses so a window rebuilt from a
// checkpoint keeps exactly the boundaries it was persisted with.
func NewWindowAt(cfg Config, buckets int, d time.Duration, end time.Time) (*Window, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("core: window needs at least 1 bucket, got %d", buckets)
	}
	if d <= 0 {
		return nil, fmt.Errorf("core: bucket duration must be positive, got %v", d)
	}
	merged, err := New(cfg)
	if err != nil {
		return nil, err
	}
	w := &Window{
		cfg:      cfg,
		bucketNS: d.Nanoseconds(),
		endNS:    end.UnixNano(),
		buckets:  make([]*VOS, buckets),
		merged:   merged,
	}
	for i := range w.buckets {
		b := MustNew(cfg)
		// Buckets are write-only accumulators — they are never queried, so
		// the default recovered-sketch cache would be dead weight B times
		// over. The merged view keeps its caches.
		b.SetRecoveredCacheCapacity(-1)
		w.buckets[i] = b
	}
	return w, nil
}

// Config returns the per-bucket sketch configuration.
func (w *Window) Config() Config { return w.cfg }

// Buckets returns B, the ring size.
func (w *Window) Buckets() int { return len(w.buckets) }

// BucketDuration returns the time span of one bucket.
func (w *Window) BucketDuration() time.Duration { return time.Duration(w.bucketNS) }

// Start returns the inclusive start of the live window: the instant the
// oldest live bucket began, End − B·BucketDuration.
func (w *Window) Start() time.Time {
	return time.Unix(0, w.endNS-int64(len(w.buckets))*w.bucketNS)
}

// End returns the exclusive end of the current bucket — the next rotation
// boundary.
func (w *Window) End() time.Time { return time.Unix(0, w.endNS) }

// Rotations returns how many buckets have been retired since creation.
func (w *Window) Rotations() uint64 { return w.rotations }

// Merged returns the live window sketch: the XOR-merge of every live
// bucket, maintained incrementally. It is an ordinary *VOS — Query, TopK,
// caches, and serialization all apply — and the pointer is stable for the
// window's lifetime (rotation mutates it in place). Treat it as read-only:
// writes must go through Process so bucket and merge stay in lockstep.
func (w *Window) Merged() *VOS { return w.merged }

// Bucket returns the k-th oldest live bucket, k ∈ [0, B); k = B−1 is the
// current bucket. Read-only: the engine's checkpoint path merges bucket
// state across shards through this accessor.
func (w *Window) Bucket(k int) *VOS {
	return w.buckets[(w.cur+1+k)%len(w.buckets)]
}

// MergeBucket folds src into the k-th oldest bucket and into the merged
// view — the cross-shard composition step: bucket k of a global window is
// the exact merge of bucket k of every per-shard window, because VOS
// merging is exact for any partition of the stream.
func (w *Window) MergeBucket(k int, src *VOS) error {
	if err := w.Bucket(k).Merge(src); err != nil {
		return err
	}
	return w.merged.Merge(src)
}

// Process folds one stream element into the current bucket and the merged
// view — still O(1) per edge: the hashes are computed once and the single
// bit flip lands in both arrays.
func (w *Window) Process(e stream.Edge) {
	m, b := w.merged, w.buckets[w.cur]
	j := m.slot(e.Item)
	p := m.position(e.User, j)
	d := opDelta(e.Op)
	m.version++ // invalidates cached recovered sketches on the live view
	m.arr.Flip(p)
	m.bump(e.User, d)
	b.version++
	b.arr.Flip(p)
	b.bump(e.User, d)
}

// ProcessBatch folds a slice of stream elements into the current bucket
// and the merged view — the same state transition as calling Process per
// element, with the write-version bumps hoisted to one per batch and each
// edge's hashes still computed once for both arrays.
func (w *Window) ProcessBatch(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	m, b := w.merged, w.buckets[w.cur]
	m.version++ // one write event: invalidates cached recovered sketches
	b.version++
	for _, e := range edges {
		j := m.slot(e.Item)
		p := m.position(e.User, j)
		d := opDelta(e.Op)
		m.arr.Flip(p)
		m.bump(e.User, d)
		b.arr.Flip(p)
		b.bump(e.User, d)
	}
}

// Rotate retires the oldest bucket and opens a fresh current one: the
// retired bucket is XOR-ed back out of the merged view (Unmerge — exactly
// one O(m/64) array pass plus its counter entries, independent of how many
// edges the bucket absorbed), reset in place, and reused as the new
// current bucket. The window's end advances by one bucket duration.
func (w *Window) Rotate() {
	w.cur = (w.cur + 1) % len(w.buckets)
	old := w.buckets[w.cur] // the oldest bucket; becomes the new current
	if err := w.merged.Unmerge(old); err != nil {
		// Impossible: every bucket shares w.cfg by construction.
		panic(fmt.Sprintf("core: window unmerge failed: %v", err))
	}
	old.Reset()
	w.endNS += w.bucketNS
	w.rotations++
}

// AdvanceTo rotates once per bucket boundary crossed up to t and returns
// the number of boundaries crossed. Instants before the current bucket's
// end — including clock-skewed timestamps that predate the whole window —
// are a no-op: the window never moves backwards, and late edges simply
// land in the current bucket. A gap longer than the whole window performs
// at most B physical rotations (after B the ring is empty; the remaining
// boundaries only move the clock), so a quiet stream resumes in O(B·sketch)
// no matter how long it slept.
func (w *Window) AdvanceTo(t time.Time) int {
	ns := t.UnixNano()
	if ns < w.endNS {
		return 0
	}
	steps := (ns-w.endNS)/w.bucketNS + 1
	rot := steps
	if max := int64(len(w.buckets)); rot > max {
		rot = max
	}
	for i := int64(0); i < rot; i++ {
		w.Rotate()
	}
	if skipped := steps - rot; skipped > 0 {
		// Every bucket is already empty; just move the boundaries.
		w.endNS += skipped * w.bucketNS
		w.rotations += uint64(skipped)
	}
	return int(steps)
}

// Query estimates the similarity of users u and v over the live window.
func (w *Window) Query(u, v stream.User) Estimate { return w.merged.Query(u, v) }

// Cardinality returns n_u over the live window.
func (w *Window) Cardinality(u stream.User) int64 { return w.merged.Cardinality(u) }

// Stats summarises the live window view, with the window metadata fields
// set and MemoryBytes covering the whole ring (B buckets + merged view).
func (w *Window) Stats() Stats {
	st := w.merged.Stats()
	for _, b := range w.buckets {
		st.MemoryBytes += b.Stats().MemoryBytes
	}
	st.WindowSeconds = (time.Duration(w.bucketNS) * time.Duration(len(w.buckets))).Seconds()
	st.WindowBuckets = len(w.buckets)
	return st
}

// windowMagic tags a serialized Window. Distinct from vosMagic so a loader
// can sniff which state kind a checkpoint holds.
var windowMagic = [4]byte{'V', 'W', 'N', '1'}

// MarshalBinary encodes the full window state: bucket duration, current
// bucket end, and every bucket oldest-first. The merged view is not
// stored — it is the XOR of the buckets and is rebuilt on load, so the
// serialized form cannot desynchronise from its own invariant. Restore
// with UnmarshalWindow.
func (w *Window) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(windowMagic[:])
	var scratch [8]byte
	writeU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(scratch[:], x)
		buf.Write(scratch[:])
	}
	writeU64(uint64(w.bucketNS))
	writeU64(uint64(w.endNS))
	writeU64(uint64(len(w.buckets)))
	for k := 0; k < len(w.buckets); k++ {
		bb, err := w.Bucket(k).MarshalBinary()
		if err != nil {
			return nil, err
		}
		writeU64(uint64(len(bb)))
		buf.Write(bb)
	}
	return buf.Bytes(), nil
}

// IsWindowData reports whether data starts with the serialized-Window
// magic — how recovery distinguishes a windowed checkpoint from a plain
// sketch checkpoint.
func IsWindowData(data []byte) bool {
	return len(data) >= len(windowMagic) && bytes.Equal(data[:len(windowMagic)], windowMagic[:])
}

// UnmarshalWindow decodes a window produced by Window.MarshalBinary and
// rebuilds the merged view from the buckets.
func UnmarshalWindow(data []byte) (*Window, error) {
	if !IsWindowData(data) {
		return nil, fmt.Errorf("%w: bad window magic", ErrCorrupt)
	}
	off := len(windowMagic)
	readU64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, fmt.Errorf("%w: truncated window at offset %d", ErrCorrupt, off)
		}
		x := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return x, nil
	}
	bucketNS, err := readU64()
	if err != nil {
		return nil, err
	}
	endNS, err := readU64()
	if err != nil {
		return nil, err
	}
	nb, err := readU64()
	if err != nil {
		return nil, err
	}
	if bucketNS == 0 || bucketNS > uint64(1<<62) {
		return nil, fmt.Errorf("%w: implausible bucket duration %d ns", ErrCorrupt, bucketNS)
	}
	// Each bucket carries at least a sketch header, so B is bounded by the
	// payload size; check before allocating anything.
	if nb == 0 || nb > uint64(len(data))/8+1 {
		return nil, fmt.Errorf("%w: implausible bucket count %d", ErrCorrupt, nb)
	}
	// Decode every bucket BEFORE building the ring: each bucket's own
	// decoder bounds its array by its slice (UnmarshalVOS's hostile-header
	// guard), so total allocation stays proportional to len(data). A
	// hostile header claiming a huge nb alongside one large valid bucket
	// must fail on the missing payload, not pre-allocate nb empty
	// full-size sketches first.
	buckets := make([]*VOS, 0, int(nb))
	for k := uint64(0); k < nb; k++ {
		blen, err := readU64()
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-off) < blen {
			return nil, fmt.Errorf("%w: bucket %d payload truncated", ErrCorrupt, k)
		}
		b, err := UnmarshalVOS(data[off : off+int(blen)])
		if err != nil {
			return nil, fmt.Errorf("%w: bucket %d: %v", ErrCorrupt, k, err)
		}
		if k > 0 && b.Config() != buckets[0].Config() {
			return nil, fmt.Errorf("%w: bucket %d config %+v does not match bucket 0 config %+v",
				ErrCorrupt, k, b.Config(), buckets[0].Config())
		}
		b.SetRecoveredCacheCapacity(-1)
		buckets = append(buckets, b)
		off += int(blen)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after window", ErrCorrupt, len(data)-off)
	}
	merged, err := New(buckets[0].Config())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	w := &Window{
		cfg:      buckets[0].Config(),
		bucketNS: int64(bucketNS),
		endNS:    int64(endNS),
		buckets:  buckets, // serialized oldest-first; cur = newest = last
		cur:      len(buckets) - 1,
		merged:   merged,
	}
	for _, b := range buckets {
		if err := merged.Merge(b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return w, nil
}
