package experiments

import (
	"fmt"

	"github.com/vossketch/vos/internal/exact"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// Options hold the tunable knobs shared by the experiment runners. Zero
// value means "use Defaults()".
type Options struct {
	// Scale shrinks the paper-scale dataset profiles for laptop runs
	// (see README.md). 0.01 reproduces the relative shapes at ~1% of
	// the node counts.
	Scale float64
	// Seed drives workload generation; every run with the same Options
	// is bit-identical.
	Seed int64
	// K32 is the register count per user for the baselines (paper: 100).
	K32 int
	// Lambda is the VOS multiplier (paper: 2).
	Lambda int
	// TopUsers is how many highest-cardinality users seed the tracked
	// pairs (paper: 5,000 at full scale; scaled default 100).
	TopUsers int
	// MinCommon is the common-item threshold for tracked pairs
	// (paper: 1).
	MinCommon int
	// MaxPairs caps the tracked pair count to bound harness cost.
	MaxPairs int
	// Checkpoints is the number of evenly spaced measurement points for
	// the over-time panels.
	Checkpoints int
	// Dataset selects the profile for the single-dataset experiments
	// (fig3a/fig3c time series and the ablations). Default "YouTube",
	// matching the paper's Figure 2(a)/3(a)/3(c).
	Dataset string
	// RuntimeUsers and RuntimeEdges shape the dedicated runtime
	// workload of Figure 2 (see Fig2 docs).
	RuntimeUsers uint64
	RuntimeEdges uint64
	// RuntimeKs is the k sweep of Figure 2(a) and the single k of 2(b)
	// (its last element).
	RuntimeKs []int
}

// Defaults returns the laptop-scale configuration used throughout
// README.md.
func Defaults() Options {
	return Options{
		Scale:        0.01,
		Seed:         2,
		K32:          100,
		Lambda:       2,
		TopUsers:     100,
		MinCommon:    1,
		MaxPairs:     500,
		Checkpoints:  12,
		Dataset:      "YouTube",
		RuntimeUsers: 1000,
		RuntimeEdges: 100_000,
		RuntimeKs:    []int{1, 10, 100, 1000, 10_000},
	}
}

// normalized fills zero fields from Defaults.
func (o Options) normalized() Options {
	d := Defaults()
	if o.Scale == 0 {
		o.Scale = d.Scale
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.K32 == 0 {
		o.K32 = d.K32
	}
	if o.Lambda == 0 {
		o.Lambda = d.Lambda
	}
	if o.TopUsers == 0 {
		o.TopUsers = d.TopUsers
	}
	if o.MinCommon == 0 {
		o.MinCommon = d.MinCommon
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = d.MaxPairs
	}
	if o.Checkpoints == 0 {
		o.Checkpoints = d.Checkpoints
	}
	if o.Dataset == "" {
		o.Dataset = d.Dataset
	}
	if o.RuntimeUsers == 0 {
		o.RuntimeUsers = d.RuntimeUsers
	}
	if o.RuntimeEdges == 0 {
		o.RuntimeEdges = d.RuntimeEdges
	}
	if len(o.RuntimeKs) == 0 {
		o.RuntimeKs = d.RuntimeKs
	}
	return o
}

// Dataset is a fully dynamic workload ready for the runners.
type Dataset struct {
	// Profile is the scaled profile the stream was generated from.
	Profile gen.Profile
	// Edges is the dynamized stream (§V model: mass deletions with
	// d = 0.5, event rate scaled per gen.PaperDynamize).
	Edges []stream.Edge
	// Deletes counts deletion elements, for reporting.
	Deletes int
}

// BuildDataset generates the dynamized stream for a profile under the
// options' scale and seed.
func BuildDataset(p gen.Profile, opts Options) Dataset {
	opts = opts.normalized()
	scaled := p.Scaled(opts.Scale)
	base := gen.Bipartite(scaled, opts.Seed)
	cfg := gen.PaperDynamize(len(base), opts.Seed+1)
	edges := gen.Dynamize(base, cfg)
	deletes := 0
	for _, e := range edges {
		if e.Op == stream.Delete {
			deletes++
		}
	}
	return Dataset{Profile: scaled, Edges: edges, Deletes: deletes}
}

// TrackedPairs selects the pairs the accuracy experiments follow, using
// the paper's rule: among the TopUsers highest-cardinality users at end of
// stream, every pair sharing at least MinCommon items, capped at MaxPairs.
// It also reports the median true common-item count of the selection, for
// the table notes.
func TrackedPairs(ds Dataset, opts Options) ([]exact.Pair, int, error) {
	opts = opts.normalized()
	store := exact.NewStore()
	for _, e := range ds.Edges {
		if err := store.Apply(e); err != nil {
			return nil, 0, fmt.Errorf("experiments: workload infeasible: %w", err)
		}
	}
	top := store.TopUsers(opts.TopUsers)
	pairs := store.PairsWithCommonItems(top, opts.MinCommon, opts.MaxPairs)
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("experiments: no pair among top %d users shares ≥ %d items",
			opts.TopUsers, opts.MinCommon)
	}
	commons := make([]int, len(pairs))
	for i, p := range pairs {
		commons[i] = store.CommonItems(p.U, p.V)
	}
	return pairs, medianInt(commons), nil
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	// Selection by copy+sort is fine at harness sizes.
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// profile resolves the options' Dataset name, panicking on unknown names
// (the CLI validates user input before reaching here).
func (o Options) profile() gen.Profile {
	p, err := gen.ProfileByName(o.Dataset)
	if err != nil {
		panic(err)
	}
	return p
}
