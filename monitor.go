package vos

import (
	"github.com/vossketch/vos/internal/pairmon"
)

// ScoredPair is one ranked user pair from a PairMonitor.
type ScoredPair = pairmon.ScoredPair

// PairMonitor maintains the top-K most similar pairs within a watched user
// set over the stream — the paper title's "mining user similarities" loop
// as a component. It wraps any Estimator and re-scores only pairs touched
// since the last refresh. See internal/pairmon for the maintenance model.
type PairMonitor = pairmon.Monitor

// NewPairMonitor creates a monitor over the watched users (≥ 2, distinct)
// backed by the given estimator. refreshEvery > 0 re-scores dirty pairs
// automatically every that many processed elements; 0 refreshes only on
// Top/Refresh calls.
func NewPairMonitor(est Estimator, watched []User, refreshEvery int) (*PairMonitor, error) {
	return pairmon.New(est, watched, refreshEvery)
}
