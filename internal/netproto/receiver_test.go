package netproto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/admit"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/stream"
)

// collectSink is a thread-safe Sink recording applied batches.
type collectSink struct {
	mu    sync.Mutex
	edges []stream.Edge
	fail  bool
}

func (c *collectSink) sink(edges []stream.Edge) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return errors.New("sink rejecting")
	}
	c.edges = append(c.edges, edges...)
	return nil
}

func (c *collectSink) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.edges)
}

// startReceiver binds a loopback receiver and returns it plus a dialed
// sender conn. Cleanup closes both and verifies Run exited cleanly.
func startReceiver(t *testing.T, cfg Config) (*Receiver, net.Conn) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenPacket: %v", err)
	}
	r := NewReceiver(pc, cfg)
	runErr := make(chan error, 1)
	go func() { runErr <- r.Run() }()
	conn, err := net.Dial("udp", r.Addr().String())
	if err != nil {
		pc.Close()
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		conn.Close()
		if err := r.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-runErr; err != nil {
			t.Errorf("Run returned %v after Close, want nil", err)
		}
		// Idempotent: a second Close must not block or error.
		if err := r.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	})
	return r, conn
}

// waitFor polls cond until it holds or the deadline passes. UDP delivery
// is asynchronous even on loopback, so counter assertions must wait.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func send(t *testing.T, conn net.Conn, session, seq uint64, flags uint16, edges []stream.Edge) {
	t.Helper()
	frame, err := AppendDataFrame(nil, session, seq, flags, edges)
	if err != nil {
		t.Fatalf("AppendDataFrame: %v", err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func TestReceiverAppliesAndAcks(t *testing.T) {
	sink := &collectSink{}
	r, conn := startReceiver(t, Config{Sink: sink.sink})

	edges := testEdges(30)
	send(t, conn, 1, 0, 0, edges[:10])
	send(t, conn, 1, 1, 0, edges[10:20])
	send(t, conn, 1, 2, FlagAckRequest, edges[20:])

	// The ack answers only after all three frames were handled in order.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, MaxFrameSize)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("reading ack: %v", err)
	}
	f, err := DecodeFrame(buf[:n])
	if err != nil {
		t.Fatalf("decoding ack: %v", err)
	}
	ack, err := f.DecodeAck()
	if err != nil {
		t.Fatalf("DecodeAck: %v", err)
	}
	if ack.Session != 1 || ack.EchoSeq != 2 || ack.Highest != 2 || ack.Applied != 3 || ack.Gaps != 0 || ack.Replays != 0 {
		t.Fatalf("ack: %+v", ack)
	}

	if got := sink.total(); got != 30 {
		t.Fatalf("sink saw %d edges, want 30", got)
	}
	sink.mu.Lock()
	for i, e := range sink.edges {
		if e != edges[i] {
			t.Fatalf("edge %d: got %+v want %+v (order or content lost)", i, e, edges[i])
		}
	}
	sink.mu.Unlock()

	st := r.Stats()
	if st.FramesReceived != 3 || st.FramesApplied != 3 || st.EdgesApplied != 30 || st.AcksSent != 1 || st.Sessions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if !st.Clean() {
		t.Fatalf("clean delivery not Clean(): %+v", st)
	}
}

func TestReceiverReplayAndMalformed(t *testing.T) {
	sink := &collectSink{}
	r, conn := startReceiver(t, Config{Sink: sink.sink})

	edges := testEdges(4)
	send(t, conn, 9, 0, 0, edges)
	send(t, conn, 9, 0, 0, edges) // replayed datagram: must not double-apply
	if _, err := conn.Write([]byte("not a VOSSTRM1 frame at all....")); err != nil {
		t.Fatal(err)
	}
	// An ack frame arriving at the receiver is also malformed traffic.
	if _, err := conn.Write(AppendAckFrame(nil, Ack{Session: 9})); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "4 frames received", func() bool { return r.Stats().FramesReceived == 4 })

	st := r.Stats()
	if st.FramesApplied != 1 || st.ReplaysDropped != 1 || st.Malformed != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if sink.total() != 4 {
		t.Fatalf("sink saw %d edges, want 4 (replay must not re-apply)", sink.total())
	}
	if st.Clean() {
		t.Fatal("replays and malformed frames must not report Clean()")
	}
}

func TestReceiverAdmitRejectSurfacesAsGap(t *testing.T) {
	sink := &collectSink{}
	// A batch cap of 8 bytes rejects any frame carrying a handful of edges.
	ctrl := admit.NewController(8, 1024)
	r, conn := startReceiver(t, Config{Sink: sink.sink, Admit: ctrl})

	send(t, conn, 3, 0, 0, testEdges(1)) // ~2 payload bytes: admitted
	send(t, conn, 3, 1, 0, testEdges(8)) // over the cap: shed
	waitFor(t, "2 frames received", func() bool { return r.Stats().FramesReceived == 2 })

	st := r.Stats()
	if st.AdmitRejected != 1 || st.FramesApplied != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if ctrl.InFlightBytes() != 0 {
		t.Fatalf("admission bytes leaked: %d held", ctrl.InFlightBytes())
	}

	// The shed frame never reached the tracker, so its sequence is a hole;
	// once the window slides past it, it confirms as a gap the sender can
	// see — shedding is visible loss, not silent loss.
	send(t, conn, 3, 1+WindowSize+1, 0, testEdges(1))
	waitFor(t, "gap confirmation", func() bool { return r.Stats().GapsDetected >= 1 })
}

func TestReceiverSinkError(t *testing.T) {
	sink := &collectSink{fail: true}
	r, conn := startReceiver(t, Config{Sink: sink.sink})
	send(t, conn, 2, 0, 0, testEdges(3))
	waitFor(t, "sink error", func() bool { return r.Stats().SinkErrors == 1 })
	if st := r.Stats(); st.FramesApplied != 0 || st.EdgesApplied != 0 {
		t.Fatalf("refused batch counted applied: %+v", st)
	}
}

func TestReceiverStatsMergesTrackerLedger(t *testing.T) {
	sink := &collectSink{}
	r, conn := startReceiver(t, Config{Sink: sink.sink, MaxSessions: 1})
	send(t, conn, 1, 0, 0, testEdges(1))
	send(t, conn, 2, 0, 0, testEdges(1)) // evicts session 1
	waitFor(t, "2 frames", func() bool { return r.Stats().FramesReceived == 2 })
	st := r.Stats()
	if st.Sessions != 1 || st.SessionsEvicted != 1 {
		t.Fatalf("session accounting: %+v", st)
	}
	var _ metrics.UDPStats = st
}
