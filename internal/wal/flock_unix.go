//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock is an advisory exclusive lock on the log directory, held via
// flock(2) on a lock file. Two live Logs appending to one directory would
// interleave frames and corrupt the segment, so Open fails fast instead.
// The kernel drops the lock when the holding process dies, so a crashed
// engine never wedges its own recovery — the reason this is flock rather
// than an O_EXCL lock file, which a crash would leave stale.
type dirLock struct{ f *os.File }

func acquireDirLock(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is locked by another live log (%v)", dir, err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() error { return l.f.Close() }
