package engine

import (
	"runtime"
	"sync"
	"testing"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// topkWorkload builds a flushed engine plus its candidate universe.
func topkWorkload(t testing.TB, shards int) (*Engine, []stream.User) {
	t.Helper()
	e, err := New(Config{
		Sketch: core.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 11},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := gen.YouTube
	p.Users = 400
	p.Items = 2000
	p.Edges = 20_000
	base := gen.Bipartite(p, 31)
	if err := e.ProcessBatch(gen.Dynamize(base, gen.PaperDynamize(len(base), 32))); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	users := make([]stream.User, 400)
	for i := range users {
		users[i] = stream.User(i)
	}
	return e, users
}

// TestTopKMatchesSequentialSnapshot pins Engine.TopK's determinism: the
// parallel fan-out must return exactly what a sequential pass over the
// same merged snapshot returns, for any worker count — here forced past
// one via GOMAXPROCS so the parallel path runs even on a 1-CPU host.
func TestTopKMatchesSequentialSnapshot(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	e, users := topkWorkload(t, 3)
	defer e.Close()
	probe := users[7]
	for _, n := range []int{1, 5, 25, len(users)} {
		got := e.TopK(probe, users, n)
		want := e.snapshot().TopK(probe, users, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d rank %d: got {%d j=%v}, want {%d j=%v}", n, i,
					got[i].User, got[i].Estimate.Jaccard, want[i].User, want[i].Estimate.Jaccard)
			}
		}
	}
	// And against the scalar per-bit oracle, closing the loop to the
	// paper's original read path.
	snap := e.snapshot()
	for i, res := range e.TopK(probe, users, 10) {
		if ref := snap.QueryPerBit(probe, res.User); res.Estimate != ref {
			t.Fatalf("rank %d (%d): estimate %+v, per-bit %+v", i, res.User, res.Estimate, ref)
		}
	}
}

// TestTopKPartitionHighWorkerCount pins the worker range arithmetic at the
// ratio that broke ceil-chunking: with GOMAXPROCS past the candidate-derived
// cap, workers = len/64, and len = 64*workers + 1 made the last ceil-chunk
// start past the end of the slice (lo > hi → slice-bounds panic in a worker
// goroutine). The exact partition must hand every worker a valid range and
// still return the sequential answer.
func TestTopKPartitionHighWorkerCount(t *testing.T) {
	prev := runtime.GOMAXPROCS(128)
	defer runtime.GOMAXPROCS(prev)

	e, users := topkWorkload(t, 2)
	defer e.Close()

	// 4289 = 64*67 + 1 → workers = min(128, 4289/64) = 67, the reviewer's
	// panicking configuration; plus neighbours of the boundary.
	for _, nc := range []int{64*67 + 1, 64 * 67, 64*67 - 1, 64*2 + 1} {
		candidates := make([]stream.User, nc)
		for i := range candidates {
			candidates[i] = users[i%len(users)]
		}
		got := e.TopK(users[7], candidates, 10)
		want := e.snapshot().TopK(users[7], candidates, 10)
		if len(got) != len(want) {
			t.Fatalf("len=%d: %d results, want %d", nc, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("len=%d rank %d: got %d, want %d", nc, i, got[i].User, want[i].User)
			}
		}
	}
}

// TestTopKConcurrent races many TopK callers (and the snapshot they share)
// against each other on a quiescent engine; under -race this pins the
// read-only fan-out and the locked position cache as race-clean.
func TestTopKConcurrent(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	e, users := topkWorkload(t, 2)
	defer e.Close()
	probe := users[3]
	want := e.snapshot().TopK(probe, users, 10)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := e.TopK(probe, users, 10)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent TopK rank %d: got %d, want %d", j, got[j].User, want[j].User)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Layered caching: repeat TopK on a quiescent snapshot serves from the
	// snapshot's recovered-sketch cache; the engine-lifetime position
	// cache was filled on the first pass and is what survives writes.
	if rst, ok := e.snapshot().RecoveredCacheStats(); !ok || rst.Hits == 0 {
		t.Fatalf("repeat TopK never hit the recovered-sketch cache: %+v", rst)
	}
	st, ok := e.PositionCacheStats()
	if !ok {
		t.Fatal("default engine should have a position cache")
	}
	if st.Misses == 0 {
		t.Fatalf("first TopK never filled the position cache: %+v", st)
	}

	// A write forces a snapshot rebuild (fresh recovered-sketch cache);
	// the rebuilt snapshot must reuse the shared position tables — that
	// reuse across rebuilds is the position cache's whole job.
	if err := e.Process(stream.Edge{User: probe, Item: 999_999, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	e.TopK(probe, users, 10)
	st2, _ := e.PositionCacheStats()
	if st2.Hits <= st.Hits {
		t.Fatalf("snapshot rebuild did not reuse position tables: before %+v, after %+v", st, st2)
	}
}

// TestTopKDuringIngest exercises TopK while producers are still writing —
// results are snapshot-dependent so only shape is asserted; the value of
// the test is the -race interleaving of snapshot rebuilds, shard writes,
// and cache fills.
func TestTopKDuringIngest(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	e, err := New(Config{
		Sketch: core.Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 13},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	users := make([]stream.User, 300)
	for i := range users {
		users[i] = stream.User(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			if err := e.Process(stream.Edge{
				User: stream.User(i % 300), Item: stream.Item(i), Op: stream.Insert,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for q := 0; q < 50; q++ {
		if got := e.TopK(users[1], users, 5); len(got) > 5 {
			t.Fatalf("TopK returned %d results for n=5", len(got))
		}
	}
	wg.Wait()
}

// TestPositionCacheDisabled covers the opt-out.
func TestPositionCacheDisabled(t *testing.T) {
	e, err := New(Config{
		Sketch:             core.Config{MemoryBits: 1 << 14, SketchBits: 128, Seed: 1},
		Shards:             1,
		PositionCacheUsers: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, ok := e.PositionCacheStats(); ok {
		t.Fatal("cache should be disabled")
	}
	if err := e.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	// Queries must still work without a cache.
	if est := e.Query(1, 1); est.CardinalityU != 1 {
		t.Fatalf("cardinality = %d", est.CardinalityU)
	}
}
