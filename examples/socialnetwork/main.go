// Social network "similar users" feed over a fully dynamic follow graph.
//
// The scenario from the paper's introduction: users of a service like
// Twitter or Pinterest follow and unfollow channels all day. The service
// wants, for any user at any moment, the most similar other users (for
// friend suggestions or collaborative filtering), without storing every
// user's full follow set in the serving tier.
//
// The simulation models interest communities — groups of users drawing
// most follows from a shared channel pool, plus a global celebrity tail —
// because that is the structure similarity search exploits in practice.
// After a day of follow/unfollow traffic, the program serves "similar
// users" from a VOS sketch and audits the suggestions two ways:
//
//   - community precision: do suggested users share the query user's
//     community? (the signal a recommender actually needs)
//   - exact-oracle agreement: how many of the sketch's top-k appear in
//     the true top-k?
//
// Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"math/rand"

	"github.com/vossketch/vos"
)

const (
	numCommunities   = 40
	usersPerComm     = 50
	numUsers         = numCommunities * usersPerComm
	poolPerComm      = 150    // channels in each community's shared pool
	globalChannels   = 20_000 // long-tail channel universe
	followsPerUser   = 120
	communityBias    = 0.8 // fraction of follows drawn from own pool
	unfollowFraction = 0.2 // fraction of each user's follows later undone
	auditUsers       = 6
	topK             = 5
)

func main() {
	rng := rand.New(rand.NewSource(7))

	budget := vos.Budget{K32: 100, Users: numUsers, Lambda: 2}
	sketch := vos.MustNewEstimator(vos.MethodVOS, budget, 1)
	truth := vos.NewExact()

	// following[u] is simulator state used to keep events feasible; the
	// serving path reads only the sketch.
	following := make([]map[vos.Item]struct{}, numUsers)
	commOf := make([]int, numUsers)
	for u := range following {
		following[u] = make(map[vos.Item]struct{})
		commOf[u] = u / usersPerComm
	}
	celebrity := rand.NewZipf(rng, 1.5, 8, globalChannels-1)

	apply := func(e vos.Edge) {
		sketch.Process(e)
		truth.Process(e)
	}

	// Phase 1: follows. Community channels occupy IDs
	// [comm*poolPerComm, (comm+1)*poolPerComm); the celebrity tail
	// starts above them.
	tailBase := vos.Item(numCommunities * poolPerComm)
	events := 0
	for u := 0; u < numUsers; u++ {
		for len(following[u]) < followsPerUser {
			var ch vos.Item
			if rng.Float64() < communityBias {
				ch = vos.Item(commOf[u]*poolPerComm + rng.Intn(poolPerComm))
			} else {
				ch = tailBase + vos.Item(celebrity.Uint64())
			}
			if _, dup := following[u][ch]; dup {
				continue
			}
			following[u][ch] = struct{}{}
			apply(vos.Edge{User: vos.User(u), Item: ch, Op: vos.Insert})
			events++
		}
	}

	// Phase 2: unfollow churn — every user undoes a random fifth of
	// their follows. This is the regime where sampling sketches break
	// and VOS does not.
	unfollows := 0
	for u := 0; u < numUsers; u++ {
		target := int(float64(len(following[u])) * unfollowFraction)
		for ch := range following[u] {
			if unfollows%7 == 0 { // deterministic-ish spread
				delete(following[u], ch)
				apply(vos.Edge{User: vos.User(u), Item: ch, Op: vos.Delete})
				target--
			}
			unfollows++
			if target <= 0 {
				break
			}
		}
	}
	fmt.Printf("simulated %d follows and ~%d unfollows across %d users in %d communities\n\n",
		events, events/7/5, numUsers, numCommunities)

	candidates := make([]vos.User, numUsers)
	for u := range candidates {
		candidates[u] = vos.User(u)
	}

	totalComm, totalAgree, totalSlots := 0, 0, 0
	for a := 0; a < auditUsers; a++ {
		u := vos.User(rng.Intn(numUsers))
		got := vos.TopSimilar(sketch, u, candidates, topK)
		want := vos.TopSimilar(truth, u, candidates, topK)

		sameComm := 0
		for _, g := range got {
			if commOf[g] == commOf[u] {
				sameComm++
			}
		}
		agree := intersectCount(got, want)
		totalComm += sameComm
		totalAgree += agree
		totalSlots += topK

		fmt.Printf("user %4d (community %2d, follows %3d):\n", u, commOf[u], len(following[u]))
		fmt.Printf("  sketch suggests %v  — %d/%d from own community\n", got, sameComm, topK)
		fmt.Printf("  exact top-%d     %v  — %d/%d overlap with sketch\n", topK, want, agree, topK)
	}
	fmt.Printf("\ncommunity precision: %d/%d suggested users share the query's community\n",
		totalComm, totalSlots)
	fmt.Printf("exact top-%d agreement: %d/%d\n", topK, totalAgree, totalSlots)
	fmt.Println("\n(the sketch stores no follow lists — only a shared bit array and counters)")
}

func intersectCount(a, b []vos.User) int {
	in := make(map[vos.User]struct{}, len(a))
	for _, u := range a {
		in[u] = struct{}{}
	}
	n := 0
	for _, u := range b {
		if _, ok := in[u]; ok {
			n++
		}
	}
	return n
}
