// A similarity query service on the sharded engine, now a thin wrapper
// over the module's real serving stack: vos.OpenEngine (durable recovery)
// + vos.NewEngineService + package server (the versioned /v1/ HTTP API)
// + package client (the Go client) — the deployment shape cmd/vosd runs
// in production form.
//
// The program starts the /v1/ API on a local port, drives a simulated
// workload through the client (ingest, top-K, checkpoint, unsubscribes),
// hard-stops the server mid-stream without closing the engine (simulating
// a crash), restarts it from the same durability directory, and shows the
// recovered answers are identical — so `go run ./examples/similarityserver`
// is self-contained and exits. See the README's "Serving" section for the
// endpoint table.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

// serve opens a durable engine from dir and exposes it at /v1/ — the whole
// restart-safe server is these few lines on top of the server package.
func serve(dir string, cfg vos.EngineConfig) (base string, stop func(closeEngine bool)) {
	eng, err := vos.OpenEngine(dir, cfg)
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	httpSrv := &http.Server{Handler: server.New(vos.NewEngineService(eng), server.Options{})}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	return "http://" + ln.Addr().String(), func(closeEngine bool) {
		check(httpSrv.Close())
		if closeEngine {
			check(eng.Close())
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "similarityserver-*")
	check(err)
	defer os.RemoveAll(dir)
	cfg := vos.EngineConfig{
		Sketch: vos.Config{MemoryBits: 1 << 22, SketchBits: 4096, Seed: 3},
		Shards: 4,
		// The crash below is simulated in-process (the first engine is
		// abandoned, not killed), so it cannot release the directory flock
		// a real process death would; cmd/vosd keeps the lock enabled.
		Durability: &vos.DurabilityConfig{DisableLock: true},
	}

	base, stop := serve(dir, cfg)
	fmt.Printf("similarity service at %s/v1/ (4 ingest shards, WAL in %s)\n\n", base, dir)
	cl := client.New(base, client.Options{BatchSize: 512})

	// Drive a workload over the wire: two overlapping users plus noise.
	var edges []vos.Edge
	for i := 0; i < 300; i++ {
		edges = append(edges, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Insert})
		edges = append(edges, vos.Edge{User: 2, Item: vos.Item(i + 150), Op: vos.Insert})
	}
	for u := vos.User(100); u < 150; u++ {
		for i := 0; i < 40; i++ {
			edges = append(edges, vos.Edge{User: u, Item: vos.Item(int(u)*1000 + i), Op: vos.Insert})
		}
	}
	check(cl.Ingest(ctx, edges))
	check(cl.Flush(ctx))
	fmt.Printf("ingested %d events through the client (binary batches of 512)\n", len(edges))

	// Rank user 2 and the background users against user 1: only user 2's
	// planted 150-item overlap should score.
	candidates := []vos.User{2}
	for u := vos.User(100); u < 150; u++ {
		candidates = append(candidates, u)
	}
	top, err := cl.TopK(ctx, 1, candidates, 3)
	check(err)
	fmt.Println("\nPOST /v1/topk (user 1 vs user 2 + 50 background users)")
	for _, r := range top {
		fmt.Printf("  user %d: jaccard %.4f (common ≈ %.1f)\n", r.User, r.Estimate.Jaccard, r.Estimate.CommonClamped)
	}

	pos, err := cl.Checkpoint(ctx)
	check(err)
	fmt.Printf("\nPOST /v1/checkpoint → position %d (WAL prefix truncated)\n", pos)

	// Post-checkpoint events live only in the WAL suffix: user 1 drops 50
	// shared items.
	var dels []vos.Edge
	for i := 150; i < 200; i++ {
		dels = append(dels, vos.Edge{User: 1, Item: vos.Item(i), Op: vos.Delete})
	}
	check(cl.Ingest(ctx, dels))
	check(cl.Flush(ctx))
	before, err := cl.Similarity(ctx, 1, 2)
	check(err)
	fmt.Printf("\nGET /v1/similarity?u=1&v=2 after 50 unsubscriptions\n  jaccard %.4f, common ≈ %.1f\n",
		before.Jaccard, before.CommonClamped)
	fmt.Println("  (true common items: 100, true Jaccard: 100/450 ≈ 0.222)")

	// Hard-stop the server mid-stream — no graceful engine Close — then
	// restart from the same directory. Recovery loads the checkpoint and
	// replays the 50-event WAL suffix.
	fmt.Println("\n-- simulated crash: stopping server without closing the engine --")
	cl.Close()
	stop(false)
	base, stop = serve(dir, cfg)
	cl = client.New(base, client.Options{})
	defer cl.Close()
	fmt.Printf("-- restarted from %s --\n\n", dir)

	after, err := cl.Similarity(ctx, 1, 2)
	check(err)
	fmt.Printf("GET /v1/similarity?u=1&v=2 (recovered): jaccard %.4f\n", after.Jaccard)
	if after == before {
		fmt.Println("  recovered estimate is bit-identical to the pre-crash estimate")
	} else {
		fmt.Printf("  MISMATCH with pre-crash estimate: %+v\n", before)
	}
	st, err := cl.Stats(ctx)
	check(err)
	fmt.Printf("GET /v1/stats: β=%.5f, %d users, %d KiB\n", st.Beta, st.Users, st.MemoryBytes>>10)

	stop(true)
	fmt.Println("\nserver stopped (final checkpoint written on close)")
}
