package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

// fakeClock pins the windowed engine's wall clock so only event time (ts
// fields, the batch header) drives rotation in these tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time { return c.t }

// newWindowedWired builds a windowed engine behind a server, plus a
// client, with 3 one-second buckets and a pinned clock.
func newWindowedWired(t *testing.T) (*vos.Engine, *client.Client, string, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0).Add(time.Millisecond)}
	cfg := testEngineConfig()
	cfg.Window = &vos.WindowConfig{Buckets: 3, BucketDuration: time.Second, Now: clk.Now}
	eng, err := vos.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	cl := client.New(ts.URL, client.Options{Linger: -1})
	t.Cleanup(func() {
		cl.Close()
		ts.Close()
		eng.Close()
	})
	return eng, cl, ts.URL, clk
}

// TestWindowStats: /v1/stats reports window_seconds and window_buckets on
// a windowed service and omits them otherwise — through the Go client in
// both directions.
func TestWindowStats(t *testing.T) {
	_, cl, url, _ := newWindowedWired(t)
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WindowSeconds != 3 || st.WindowBuckets != 3 {
		t.Fatalf("window stats = (%v s, %d buckets), want (3 s, 3)", st.WindowSeconds, st.WindowBuckets)
	}
	resp, err := http.Get(url + server.RouteStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw["window_seconds"] != 3.0 {
		t.Fatalf("window_seconds on the wire = %v, want 3", raw["window_seconds"])
	}

	// Unwindowed service: fields absent from the JSON entirely.
	_, _, plainURL := newWired(t, server.Options{}, client.Options{Linger: -1})
	resp2, err := http.Get(plainURL + server.RouteStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw2 map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&raw2); err != nil {
		t.Fatal(err)
	}
	if _, present := raw2["window_seconds"]; present {
		t.Fatal("window_seconds present on an unwindowed service")
	}
}

// TestTimestampedIngestAdvancesWindow: per-edge ts fields on the JSON
// ingest path drive event time — a batch stamped two buckets ahead
// retires the oldest bucket before the new edges land.
func TestTimestampedIngestAdvancesWindow(t *testing.T) {
	eng, _, url, _ := newWindowedWired(t)

	post := func(body string) *http.Response {
		resp, err := http.Post(url+server.RouteEdges, server.ContentTypeJSON, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Land an edge at stream time ~1000.5s (inside the first bucket).
	resp := post(`[{"user":1,"item":10,"ts":1000.5}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timestamped ingest: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	eng.Flush()
	if got := eng.Cardinality(1); got != 1 {
		t.Fatalf("cardinality after first ingest = %d, want 1", got)
	}

	// Jump event time past the whole window: user 1's edge must retire.
	resp = post(`[{"user":2,"item":20,"ts":1010.0}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advancing ingest: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	eng.Flush()
	if got := eng.Cardinality(1); got != 0 {
		t.Fatalf("user 1 still has cardinality %d after the window moved past it", got)
	}
	if got := eng.Cardinality(2); got != 1 {
		t.Fatalf("user 2 cardinality = %d, want 1", got)
	}
	info, ok := eng.WindowInfo()
	if !ok || info.Rotations == 0 {
		t.Fatalf("timestamped ingest did not rotate: %+v", info)
	}

	// Clock-skewed (late) timestamp: accepted, lands in the current
	// bucket, never unwinds the window.
	end := info.End
	resp = post(`[{"user":3,"item":30,"ts":1000.1}]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("late ingest: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	eng.Flush()
	if got := eng.Cardinality(3); got != 1 {
		t.Fatalf("late edge lost: cardinality = %d", got)
	}
	if info2, _ := eng.WindowInfo(); !info2.End.Equal(end) {
		t.Fatalf("late timestamp moved the window: %v -> %v", end, info2.End)
	}

	// Malformed timestamps are rejected — including values past the
	// int64-nanosecond range, which would otherwise overflow into the far
	// past and silently misbehave.
	for _, bad := range []string{
		`[{"user":4,"item":40,"ts":-5}]`,
		`[{"user":4,"item":40,"ts":1e10}]`,
		`[{"user":4,"item":40,"ts":1e300}]`,
	} {
		resp = post(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("ts %s: HTTP %d, want 400", bad, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestBatchTsHeaderAndClientAdvance: the X-Vos-Batch-Ts header timestamps
// binary batches, and client.AdvanceWindow drives it.
func TestBatchTsHeaderAndClientAdvance(t *testing.T) {
	eng, cl, url, _ := newWindowedWired(t)
	ctx := context.Background()

	// No explicit Flush: AdvanceWindow must ship the pending buffer
	// itself, so edges from earlier Ingest calls reach the server on the
	// pre-advance side of the rotation instead of being overtaken by it.
	// First a non-rotating advance (inside the current bucket): the only
	// observable effect is the flush, proving the buffer shipped.
	if err := cl.Ingest(ctx, []vos.Edge{{User: 7, Item: 70, Op: vos.Insert}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AdvanceWindow(ctx, time.Unix(1000, 500)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if got := eng.Cardinality(7); got != 1 {
		t.Fatalf("AdvanceWindow did not flush the pending buffer (cardinality %d, want 1)", got)
	}

	// Event time far ahead: retires everything, including that edge.
	if err := cl.AdvanceWindow(ctx, time.Unix(1020, 0)); err != nil {
		t.Fatal(err)
	}
	if got := eng.Cardinality(7); got != 0 {
		t.Fatalf("AdvanceWindow did not retire user 7 (cardinality %d)", got)
	}

	// A malformed header is a 400.
	req, _ := http.NewRequest(http.MethodPost, url+server.RouteEdges, strings.NewReader(`[{"user":1,"item":1}]`))
	req.Header.Set("Content-Type", server.ContentTypeJSON)
	req.Header.Set(server.HeaderBatchTs, "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad header: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestQueryPredatesWindow: an "at" instant older than the live window
// answers the typed outside_window envelope (422), mapped by the client
// onto vos.ErrOutsideWindow; instants inside the window are served; an
// unwindowed service rejects at entirely.
func TestQueryPredatesWindow(t *testing.T) {
	_, cl, url, _ := newWindowedWired(t)
	ctx := context.Background()

	if err := cl.Ingest(ctx, []vos.Edge{{User: 1, Item: 10, Op: vos.Insert}, {User: 2, Item: 10, Op: vos.Insert}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Inside the window (window is [998, 1001) at a pinned clock of
	// ~1000): served.
	if _, err := cl.SimilarityAt(ctx, 1, 2, time.Unix(1000, 0)); err != nil {
		t.Fatalf("in-window at failed: %v", err)
	}

	// An at value past the int64-nanosecond range is a 400, not a bogus
	// outside_window from the overflowed (far-past) conversion.
	resp0, err := http.Get(url + server.RouteSimilarity + "?u=1&v=2&at=1e10")
	if err != nil {
		t.Fatal(err)
	}
	if resp0.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflowing at: HTTP %d, want 400", resp0.StatusCode)
	}
	resp0.Body.Close()

	// Predating the window: typed 422 + sentinel mapping.
	_, err = cl.SimilarityAt(ctx, 1, 2, time.Unix(100, 0))
	if !errors.Is(err, vos.ErrOutsideWindow) {
		t.Fatalf("errors.Is(err, ErrOutsideWindow) = false, err = %v", err)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != server.CodeOutsideWindow {
		t.Fatalf("want 422/outside_window, got %v", err)
	}
	if errors.Is(err, vos.ErrClosed) || errors.Is(err, vos.ErrQueryUnavailable) {
		t.Fatal("outside_window must not map onto closed/unavailable")
	}

	// The topk body's at field takes the same path.
	body := fmt.Sprintf(`{"user":1,"candidates":[2],"n":1,"at":%d}`, 100)
	resp, err := http.Post(url+server.RouteTopK, server.ContentTypeJSON, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity || env.Error.Code != server.CodeOutsideWindow {
		t.Fatalf("topk at: HTTP %d code %q, want 422 outside_window", resp.StatusCode, env.Error.Code)
	}

	// And through the client's TopKAt: served in-window, typed sentinel
	// when the instant predates the window.
	if _, err := cl.TopKAt(ctx, 1, []vos.User{2}, 1, time.Unix(1000, 0)); err != nil {
		t.Fatalf("in-window TopKAt failed: %v", err)
	}
	if _, err := cl.TopKAt(ctx, 1, []vos.User{2}, 1, time.Unix(100, 0)); !errors.Is(err, vos.ErrOutsideWindow) {
		t.Fatalf("TopKAt outside the window: %v, want ErrOutsideWindow", err)
	}

	// Unwindowed service: at is a bad_request, not outside_window.
	_, plainCl, _ := newWired(t, server.Options{}, client.Options{Linger: -1})
	_, err = plainCl.SimilarityAt(ctx, 1, 2, time.Unix(1000, 0))
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeBadRequest {
		t.Fatalf("unwindowed at: want bad_request, got %v", err)
	}
}

// TestWindowedServiceCapability pins the Windowed capability surface on
// the in-process adapters.
func TestWindowedServiceCapability(t *testing.T) {
	ctx := context.Background()
	clk := &fakeClock{t: time.Unix(2000, 0)}
	cfg := testEngineConfig()
	cfg.Window = &vos.WindowConfig{Buckets: 2, BucketDuration: time.Second, Now: clk.Now}
	eng, err := vos.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	svc := vos.NewEngineService(eng)
	wsvc, ok := svc.(vos.Windowed)
	if !ok {
		t.Fatal("engine service does not implement vos.Windowed")
	}
	info, err := wsvc.WindowInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Buckets != 2 || info.BucketDuration != time.Second || info.Span() != 2*time.Second {
		t.Fatalf("window info %+v", info)
	}
	if !info.Contains(info.Start) || info.Contains(info.End) {
		t.Fatal("Contains must be [Start, End)")
	}
	if err := wsvc.AdvanceWindow(ctx, info.End); err != nil {
		t.Fatal(err)
	}
	info2, _ := wsvc.WindowInfo(ctx)
	if !info2.End.After(info.End) {
		t.Fatal("AdvanceWindow did not move the window")
	}

	// Unwindowed engine: the capability answers ErrNoWindow.
	plain, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	psvc := vos.NewEngineService(plain).(vos.Windowed)
	if _, err := psvc.WindowInfo(ctx); !errors.Is(err, vos.ErrNoWindow) {
		t.Fatalf("WindowInfo on unwindowed engine: %v, want ErrNoWindow", err)
	}
	if err := psvc.AdvanceWindow(ctx, time.Now()); !errors.Is(err, vos.ErrNoWindow) {
		t.Fatalf("AdvanceWindow on unwindowed engine: %v, want ErrNoWindow", err)
	}
}
