// Package pairmon maintains the top-K most similar user pairs within a
// watched user set over a fully dynamic graph stream — the "mining user
// similarities" loop from the paper's title, packaged as a reusable
// component: the paper's §V experiments track exactly such a pair set over
// time, and applications (friend suggestion, near-duplicate monitoring)
// consume exactly this ranking.
//
// The monitor wraps any similarity.Estimator. Stream elements flow through
// Process, which forwards to the estimator and marks the touched user
// dirty; every RefreshEvery elements (and on demand via Refresh) the
// monitor re-scores only the pairs involving dirty watched users, keeping
// maintenance cost proportional to churn instead of to the full pair set.
//
// The root package re-exports the monitor as vos.PairMonitor; see
// examples/socialnetwork for it driving a "similar users" feed.
package pairmon
