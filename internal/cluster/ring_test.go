package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func testRing() *Ring {
	return &Ring{
		Version:   1,
		RouteSeed: 7,
		Shards:    []string{"http://127.0.0.1:8081", "http://127.0.0.1:8082", "http://127.0.0.1:8083"},
	}
}

func TestRingRoundTrip(t *testing.T) {
	r := testRing()
	data, err := EncodeRing(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRing(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != r.Version || got.RouteSeed != r.RouteSeed || len(got.Shards) != len(r.Shards) {
		t.Fatalf("round trip changed the ring: %+v vs %+v", got, r)
	}
	for i := range r.Shards {
		if got.Shards[i] != r.Shards[i] {
			t.Fatalf("shard %d: %q vs %q", i, got.Shards[i], r.Shards[i])
		}
	}
}

func TestRingShardOfMatchesStream(t *testing.T) {
	r := testRing()
	for u := stream.User(0); u < 1000; u++ {
		want := stream.ShardOf(u, len(r.Shards), r.RouteSeed)
		if got := r.ShardOf(u); got != want {
			t.Fatalf("user %d: ring routes to %d, stream.ShardOf says %d", u, got, want)
		}
	}
}

func TestRingValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Ring)
	}{
		{"zero version", func(r *Ring) { r.Version = 0 }},
		{"no shards", func(r *Ring) { r.Shards = nil }},
		{"too many shards", func(r *Ring) {
			r.Shards = make([]string, MaxShards+1)
			for i := range r.Shards {
				r.Shards[i] = "http://h:1"
			}
		}},
		{"empty node", func(r *Ring) { r.Shards[1] = "" }},
		{"bad scheme", func(r *Ring) { r.Shards[1] = "ftp://127.0.0.1:8082" }},
		{"no host", func(r *Ring) { r.Shards[1] = "http://" }},
		{"trailing slash", func(r *Ring) { r.Shards[1] = "http://127.0.0.1:8082/" }},
		{"duplicate node", func(r *Ring) { r.Shards[1] = r.Shards[0] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := testRing()
			tc.mut(r)
			if err := r.Validate(); !errors.Is(err, ErrBadRing) {
				t.Fatalf("want ErrBadRing, got %v", err)
			}
			if _, err := EncodeRing(r); !errors.Is(err, ErrBadRing) {
				t.Fatalf("encode of invalid ring: want ErrBadRing, got %v", err)
			}
		})
	}
}

func TestDecodeRingRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"unknown field", `{"version":1,"route_seed":1,"shards":["http://h:1"],"extra":true}`},
		{"trailing data", `{"version":1,"route_seed":1,"shards":["http://h:1"]} {}`},
		{"wrong type", `{"version":"one","shards":["http://h:1"]}`},
		{"oversized", "[" + strings.Repeat(" ", MaxRingBytes) + "]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRing([]byte(tc.data)); !errors.Is(err, ErrBadRing) {
				t.Fatalf("want ErrBadRing, got %v", err)
			}
		})
	}
}

func TestRingSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.json")
	r := testRing()
	if err := SaveRing(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRing(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != r.Version || got.Shards[2] != r.Shards[2] {
		t.Fatalf("load changed the ring: %+v", got)
	}
	// Overwrite must be atomic: no temp litter, new content visible.
	r2 := r.Clone()
	r2.Version = 2
	r2.Shards[0] = "http://127.0.0.1:9999"
	if err := SaveRing(path, r2); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadRing(path)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Version != 2 || got2.Shards[0] != "http://127.0.0.1:9999" {
		t.Fatalf("overwrite not visible: %+v", got2)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	if _, err := LoadRing(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("load of missing path should fail")
	}
}

func TestRingCloneIsDeep(t *testing.T) {
	r := testRing()
	c := r.Clone()
	c.Shards[0] = "http://mutated:1"
	c.Version = 99
	if r.Shards[0] == c.Shards[0] || r.Version == c.Version {
		t.Fatal("Clone shares state with the original")
	}
}

func testManifest() *Manifest {
	return &Manifest{
		RingVersion: 3,
		RouteSeed:   7,
		Shards: []ManifestShard{
			{Shard: 0, Node: "http://127.0.0.1:8081", Position: 100},
			{Shard: 1, Node: "http://127.0.0.1:8082", Position: 220},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	data, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.RingVersion != m.RingVersion || got.RouteSeed != m.RouteSeed || len(got.Shards) != 2 {
		t.Fatalf("round trip changed the manifest: %+v", got)
	}
	if got.Shards[1] != m.Shards[1] {
		t.Fatalf("shard row changed: %+v vs %+v", got.Shards[1], m.Shards[1])
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"zero ring version", func(m *Manifest) { m.RingVersion = 0 }},
		{"no shards", func(m *Manifest) { m.Shards = nil }},
		{"sparse shard index", func(m *Manifest) { m.Shards[1].Shard = 5 }},
		{"empty node", func(m *Manifest) { m.Shards[0].Node = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testManifest()
			tc.mut(m)
			if err := m.Validate(); !errors.Is(err, ErrBadManifest) {
				t.Fatalf("want ErrBadManifest, got %v", err)
			}
		})
	}
}

func TestManifestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := testManifest()
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards[0].Position != 100 {
		t.Fatalf("load changed the manifest: %+v", got)
	}
	if _, err := LoadManifest(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of missing path should fail")
	}
}
