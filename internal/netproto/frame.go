// Package netproto implements the VOSSTRM1 datagram protocol: a versioned
// frame header (magic, version, type, flags, session id, monotonic
// sequence number, edge count) over the VOSSTRM1 element encoding
// internal/stream already defines, plus a receiver that tracks per-session
// sequence state so lost, reordered, and replayed batches are detected and
// counted — never silently applied twice or skipped, the invariant an XOR
// sketch stream lives or dies by.
//
// The protocol is fire-and-forget: a lost datagram's edges are gone, but
// the gap in the sequence space surfaces in the receiver's counters (and
// in acks), so the operator knows the sketch has diverged rather than
// trusting a silently corrupted one. Senders that want delivery
// confirmation set FlagAckRequest on a frame; the receiver answers with an
// ack frame carrying the session's cumulative counters.
//
// Frame layout (big-endian fixed-width header, varint payload):
//
//	offset size field
//	0      8    magic "VOSDGRM1"
//	8      1    version (1)
//	9      1    type (1 = data, 2 = ack)
//	10     2    flags (bit 0 = ack requested)
//	12     8    session id
//	20     8    sequence number (data) / echoed data sequence (ack)
//	28     4    edge count (data) / 0 (ack)
//	32     ...  payload
//
// A data payload is exactly count elements in the VOSSTRM1 element
// encoding (stream.AppendElement): uvarint(user<<1|op), uvarint(item). An
// ack payload is four fixed uint64s: highest sequence seen, frames
// applied, frames confirmed lost, replays dropped.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/vossketch/vos/internal/stream"
)

// frameMagic distinguishes VOSSTRM1 datagrams from stray traffic. It is
// deliberately not the stream file magic: a frame header is fixed-width
// where the file header is varint, and sharing the magic would let a file
// prefix half-parse as a frame.
var frameMagic = [8]byte{'V', 'O', 'S', 'D', 'G', 'R', 'M', '1'}

// Version is the only frame version this package speaks. The byte exists
// so a future incompatible header can be refused instead of misparsed.
const Version = 1

// Frame types.
const (
	// TypeData carries one batch of edges.
	TypeData = 1
	// TypeAck is the receiver's answer to FlagAckRequest.
	TypeAck = 2
)

// FlagAckRequest on a data frame asks the receiver to answer with an ack
// frame echoing this frame's sequence number.
const FlagAckRequest uint16 = 1 << 0

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 32

// MaxFrameSize bounds a whole frame. It is the practical UDP datagram
// ceiling; DecodeFrame refuses anything larger so a forged length can
// never make the receiver buffer unbounded input.
const MaxFrameSize = 64 << 10

// ackPayloadSize is the fixed ack payload length: four uint64 counters.
const ackPayloadSize = 32

// ErrBadFrame reports a malformed datagram: short or oversized, wrong
// magic, unknown version or type, or a payload that contradicts the
// header's edge count.
var ErrBadFrame = errors.New("netproto: bad frame")

// Frame is a decoded datagram header plus its raw payload. Payload
// borrows the decode buffer; decode it (DecodeEdges, DecodeAck) before
// the buffer is reused.
type Frame struct {
	Type    uint8
	Flags   uint16
	Session uint64
	Seq     uint64
	Count   uint32
	Payload []byte
}

// Ack is the decoded ack payload: the receiver's per-session ledger at
// the moment the echoed frame was handled. A sender confirms delivery of
// sequence s once Highest covers s with Gaps and Replays unchanged.
type Ack struct {
	Session uint64
	// EchoSeq is the data sequence number that requested this ack.
	EchoSeq uint64
	// Highest is the highest sequence number the receiver has seen.
	Highest uint64
	// Applied counts frames folded into the sketch (including late
	// arrivals applied out of order).
	Applied uint64
	// Gaps counts frames confirmed lost: their sequence slid out of the
	// reorder window without ever arriving.
	Gaps uint64
	// Replays counts duplicate frames dropped.
	Replays uint64
}

// appendHeader appends the fixed header.
func appendHeader(buf []byte, typ uint8, flags uint16, session, seq uint64, count uint32) []byte {
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, Version, typ)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, session)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	return binary.BigEndian.AppendUint32(buf, count)
}

// AppendDataFrame appends one data frame carrying edges to buf. The
// caller sizes batches to taste (the Go client defaults well under a
// common MTU); frames that would exceed MaxFrameSize are refused.
func AppendDataFrame(buf []byte, session, seq uint64, flags uint16, edges []stream.Edge) ([]byte, error) {
	start := len(buf)
	buf = appendHeader(buf, TypeData, flags, session, seq, uint32(len(edges)))
	for _, e := range edges {
		buf = stream.AppendElement(buf, e)
	}
	if len(buf)-start > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d-edge frame is %d bytes (max %d); split the batch",
			ErrBadFrame, len(edges), len(buf)-start, MaxFrameSize)
	}
	return buf, nil
}

// AppendAckFrame appends one ack frame to buf.
func AppendAckFrame(buf []byte, a Ack) []byte {
	buf = appendHeader(buf, TypeAck, 0, a.Session, a.EchoSeq, 0)
	buf = binary.BigEndian.AppendUint64(buf, a.Highest)
	buf = binary.BigEndian.AppendUint64(buf, a.Applied)
	buf = binary.BigEndian.AppendUint64(buf, a.Gaps)
	return binary.BigEndian.AppendUint64(buf, a.Replays)
}

// DecodeFrame validates the header of one datagram and returns it with
// the payload still raw. It never panics on adversarial input and never
// allocates proportionally to claimed (rather than actual) sizes.
func DecodeFrame(data []byte) (Frame, error) {
	if len(data) > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes exceeds the %d byte frame cap", ErrBadFrame, len(data), MaxFrameSize)
	}
	if len(data) < HeaderSize {
		return Frame{}, fmt.Errorf("%w: %d bytes is shorter than the %d byte header", ErrBadFrame, len(data), HeaderSize)
	}
	if [8]byte(data[:8]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: wrong magic", ErrBadFrame)
	}
	if data[8] != Version {
		return Frame{}, fmt.Errorf("%w: unknown version %d (want %d)", ErrBadFrame, data[8], Version)
	}
	f := Frame{
		Type:    data[9],
		Flags:   binary.BigEndian.Uint16(data[10:12]),
		Session: binary.BigEndian.Uint64(data[12:20]),
		Seq:     binary.BigEndian.Uint64(data[20:28]),
		Count:   binary.BigEndian.Uint32(data[28:32]),
		Payload: data[32:],
	}
	switch f.Type {
	case TypeData:
		// Each element is at least two payload bytes, so a count the
		// payload cannot hold is forged — reject before DecodeEdges would
		// size a slice from it.
		if uint64(f.Count) > uint64(len(f.Payload))/2 {
			return Frame{}, fmt.Errorf("%w: count %d exceeds capacity of %d payload bytes", ErrBadFrame, f.Count, len(f.Payload))
		}
	case TypeAck:
		if f.Count != 0 || len(f.Payload) != ackPayloadSize {
			return Frame{}, fmt.Errorf("%w: ack frame with count %d and %d payload bytes", ErrBadFrame, f.Count, len(f.Payload))
		}
	default:
		return Frame{}, fmt.Errorf("%w: unknown type %d", ErrBadFrame, f.Type)
	}
	return f, nil
}

// DecodeEdges decodes a data frame's payload: exactly Count elements with
// nothing left over.
func (f Frame) DecodeEdges() ([]stream.Edge, error) {
	if f.Type != TypeData {
		return nil, fmt.Errorf("%w: DecodeEdges on type-%d frame", ErrBadFrame, f.Type)
	}
	out := make([]stream.Edge, 0, f.Count)
	rest := f.Payload
	for i := uint32(0); i < f.Count; i++ {
		e, n := stream.DecodeElement(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: element %d truncated", ErrBadFrame, i)
		}
		rest = rest[n:]
		out = append(out, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing data after %d elements", ErrBadFrame, f.Count)
	}
	return out, nil
}

// DecodeAck decodes an ack frame's payload.
func (f Frame) DecodeAck() (Ack, error) {
	if f.Type != TypeAck {
		return Ack{}, fmt.Errorf("%w: DecodeAck on type-%d frame", ErrBadFrame, f.Type)
	}
	p := f.Payload
	return Ack{
		Session: f.Session,
		EchoSeq: f.Seq,
		Highest: binary.BigEndian.Uint64(p[0:8]),
		Applied: binary.BigEndian.Uint64(p[8:16]),
		Gaps:    binary.BigEndian.Uint64(p[16:24]),
		Replays: binary.BigEndian.Uint64(p[24:32]),
	}, nil
}
