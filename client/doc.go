// Package client is the Go client for the /v1/ HTTP API served by package
// server: a vos.SimilarityService implementation over the wire, so a caller
// can swap an in-process engine for a remote vosd daemon by changing one
// constructor.
//
// # Writes
//
// Writes batch like the engine's producer path: Ingest appends to a
// pending buffer, full batches of Options.BatchSize edges are shipped
// synchronously in the compact VOSSTRM1 binary format, and a background
// linger ticker ships partial batches so an idle stream's tail never sits
// unsent (Flush forces the residue out, Close flushes and stops the
// ticker). Writes are NEVER retried: ingest is an XOR toggle, and
// replaying a batch after an ambiguous failure (request possibly applied)
// would corrupt parity. A failed ship leaves only the attempted batch
// ambiguous; batches never put on the wire return to the pending buffer.
//
// # Reads
//
// Reads — similarity, top-K, cardinality, stats — are idempotent and
// retried on transient transport errors and 5xx responses with
// exponential backoff (Options.MaxRetries/RetryBackoff); context
// cancellation is honoured everywhere and is never retried.
//
// # Sliding windows
//
// Against a windowed server (vosd -window), SimilarityAt asserts a query
// instant and AdvanceWindow drives event time forward (an empty
// timestamped ingest); Stats reports the window span in
// vos.Stats.WindowSeconds/WindowBuckets. An instant the window has
// retired answers an *Error with code "outside_window", which errors.Is
// maps onto vos.ErrOutsideWindow.
//
// # Errors
//
// Server-side failures carry the typed envelope
// {"error":{"code":...,"message":...}}; the client surfaces them as *Error
// with the code and HTTP status preserved, and maps lifecycle codes back
// onto the vos sentinels, so errors.Is(err, vos.ErrClosed) works the same
// against a remote service as against a local one. A draining instance
// (code "draining") matches vos.ErrQueryUnavailable but never
// vos.ErrClosed — transient rotation is not shutdown.
//
// # Concurrency and lifecycle
//
// A Client is safe for concurrent use by any number of goroutines. Close
// flushes buffered edges and stops the linger ticker; after Close every
// method returns vos.ErrClosed.
package client
