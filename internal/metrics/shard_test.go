package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestShardStatBacklogAndString(t *testing.T) {
	s := ShardStat{Shard: 2, Enqueued: 10, Processed: 7, Beta: 0.25, Users: 3, EdgesPerSec: 100}
	if s.Backlog() != 3 {
		t.Fatalf("Backlog = %d, want 3", s.Backlog())
	}
	str := s.String()
	for _, frag := range []string{"shard 2", "7 applied", "3 backlog", "0.25000", "3 users"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("String() = %q, missing %q", str, frag)
		}
	}
}

func TestTotalShardStats(t *testing.T) {
	total := TotalShardStats([]ShardStat{
		{Enqueued: 10, Processed: 8, QueueBatches: 1, Beta: 0.2, Users: 5, EdgesPerSec: 50},
		{Enqueued: 20, Processed: 20, QueueBatches: 0, Beta: 0.4, Users: 7, EdgesPerSec: 70},
	})
	if total.Shard != -1 || total.Enqueued != 30 || total.Processed != 28 ||
		total.QueueBatches != 1 || total.Users != 12 || total.EdgesPerSec != 120 {
		t.Fatalf("aggregate = %+v", total)
	}
	if math.Abs(total.Beta-0.3) > 1e-12 {
		t.Fatalf("mean beta = %v, want 0.3", total.Beta)
	}
	if empty := TotalShardStats(nil); empty.Beta != 0 || empty.Enqueued != 0 {
		t.Fatalf("empty aggregate = %+v", empty)
	}
}

func TestRateMeter(t *testing.T) {
	var m RateMeter
	t0 := time.Unix(1000, 0)
	if r := m.Observe(100, t0); r != 0 {
		t.Fatalf("first Observe = %v, want 0 (arming)", r)
	}
	if r := m.Observe(600, t0.Add(2*time.Second)); r != 250 {
		t.Fatalf("rate = %v, want 250", r)
	}
	// Zero elapsed time must not divide by zero.
	if r := m.Observe(700, t0.Add(2*time.Second)); r != 0 {
		t.Fatalf("zero-interval rate = %v, want 0", r)
	}
}
