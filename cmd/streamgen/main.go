// Command streamgen generates fully dynamic graph-stream workload files:
// a synthetic bipartite graph shaped like one of the paper's four datasets
// (YouTube, Flickr, Orkut, LiveJournal), dynamized with the Trièst-style
// mass-deletion model (§V: d = 0.5), written in the module's text or
// binary stream format.
//
// Usage:
//
//	streamgen -dataset YouTube -scale 0.01 -o youtube.stream
//	streamgen -dataset Flickr -scale 0.005 -format text -o flickr.txt
//	streamgen -dataset Orkut -stats            # print statistics only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func main() {
	var (
		dataset  = flag.String("dataset", "YouTube", "profile: YouTube, Flickr, Orkut, LiveJournal")
		scale    = flag.Float64("scale", 0.01, "profile scale factor (paper scale = 1.0)")
		seed     = flag.Int64("seed", 2, "generation seed")
		q        = flag.Float64("q", -1, "mass-deletion event probability per element (-1 = paper scaling)")
		d        = flag.Float64("d", 0.5, "per-edge deletion probability within an event")
		reinsert = flag.Bool("reinsert", false, "re-queue deleted edges for later re-subscription")
		format   = flag.String("format", "binary", "output format: binary or text")
		out      = flag.String("o", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print stream statistics to stderr")
	)
	flag.Parse()

	profile, err := gen.ProfileByName(*dataset)
	if err != nil {
		fatal(err)
	}
	scaled := profile.Scaled(*scale)
	base := gen.Bipartite(scaled, *seed)

	cfg := gen.PaperDynamize(len(base), *seed+1)
	cfg.DeleteFrac = *d
	cfg.Reinsert = *reinsert
	if *q >= 0 {
		cfg.EventProb = *q
	}
	edges := gen.Dynamize(base, cfg)

	if *stats {
		st := stream.NewStats()
		for _, e := range edges {
			st.Observe(e)
		}
		fmt.Fprintf(os.Stderr, "streamgen: %s scale=%g seed=%d q=%.3g d=%.2f\n",
			scaled, *scale, *seed, cfg.EventProb, cfg.DeleteFrac)
		fmt.Fprintf(os.Stderr, "streamgen: %s\n", st)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "binary":
		err = stream.WriteBinary(w, edges)
	case "text":
		err = stream.WriteText(w, edges)
	default:
		err = fmt.Errorf("unknown format %q (want binary or text)", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamgen:", err)
	os.Exit(1)
}
