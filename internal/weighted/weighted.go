package weighted

import (
	"fmt"
	"math"

	"github.com/vossketch/vos/internal/hashing"
)

// Vector is a sparse non-negative weight vector: element ID -> weight.
// Zero and negative weights must be absent (NewSignature rejects them).
type Vector map[uint64]float64

// Jaccard computes the exact generalized Jaccard similarity of two
// vectors in O(|x| + |y|).
func Jaccard(x, y Vector) float64 {
	var minSum, maxSum float64
	for i, xi := range x {
		if yi, ok := y[i]; ok {
			minSum += math.Min(xi, yi)
			maxSum += math.Max(xi, yi)
		} else {
			maxSum += xi
		}
	}
	for i, yi := range y {
		if _, ok := x[i]; !ok {
			maxSum += yi
		}
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// Sample is one ICWS draw: the selected element and its quantised
// log-weight level. Two vectors match on a hash iff both fields agree.
type Sample struct {
	Element uint64
	T       int64
}

// Signature is a k-sample ICWS signature of one vector.
type Signature struct {
	samples []Sample
	seed    uint64
}

// NewSignature draws a k-sample signature of the vector under the seed.
// It returns an error for empty vectors or non-positive weights.
func NewSignature(v Vector, k int, seed uint64) (*Signature, error) {
	if k <= 0 {
		return nil, fmt.Errorf("weighted: k must be positive")
	}
	if len(v) == 0 {
		return nil, fmt.Errorf("weighted: empty vector has no signature")
	}
	for i, w := range v {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("weighted: element %d has invalid weight %v", i, w)
		}
	}
	sig := &Signature{samples: make([]Sample, k), seed: seed}
	state := seed
	for j := 0; j < k; j++ {
		hashSeed := hashing.SplitMix64(&state)
		sig.samples[j] = drawOne(v, hashSeed)
	}
	return sig, nil
}

// drawOne performs one ICWS draw: for every element, derive the Gamma(2,1)
// variates r and c and the uniform β from consistent per-(element, hash)
// randomness, compute
//
//	t = ⌊ln w / r + β⌋,  y = exp(r·(t − β)),  a = c / (y·e^r)
//
// and keep the element minimising a. Consistency (the same element always
// sees the same r, c, β under a given hash) is what makes the collision
// probability exactly the generalized Jaccard.
func drawOne(v Vector, hashSeed uint64) Sample {
	best := Sample{}
	bestA := math.Inf(1)
	for i, w := range v {
		u1 := uniform(i, hashSeed, 0)
		u2 := uniform(i, hashSeed, 1)
		u3 := uniform(i, hashSeed, 2)
		u4 := uniform(i, hashSeed, 3)
		r := -math.Log(u1) - math.Log(u2) // Gamma(2,1)
		c := -math.Log(u3) - math.Log(u4) // Gamma(2,1)
		beta := uniform(i, hashSeed, 4)

		t := math.Floor(math.Log(w)/r + beta)
		y := math.Exp(r * (t - beta))
		a := c / (y * math.Exp(r))

		if a < bestA {
			bestA = a
			best = Sample{Element: i, T: int64(t)}
		}
	}
	return best
}

// uniform derives a consistent uniform (0, 1) variate for (element, hash,
// slot). The value is strictly positive so logarithms stay finite.
func uniform(element, hashSeed uint64, slot uint64) float64 {
	h := hashing.Hash64(element^(slot*0x9e3779b97f4a7c15), hashSeed)
	f := hashing.Float01(h)
	if f == 0 {
		f = 0.5 / (1 << 53)
	}
	return f
}

// K returns the number of samples.
func (s *Signature) K() int { return len(s.samples) }

// Sample returns draw j.
func (s *Signature) Sample(j int) Sample { return s.samples[j] }

// EstimateJaccard returns the fraction of matching samples, an unbiased
// estimate of the generalized Jaccard similarity. The signatures must
// share k and seed.
func (s *Signature) EstimateJaccard(o *Signature) float64 {
	if len(s.samples) != len(o.samples) || s.seed != o.seed {
		panic("weighted: incompatible signatures")
	}
	matches := 0
	for j := range s.samples {
		if s.samples[j] == o.samples[j] {
			matches++
		}
	}
	return float64(matches) / float64(len(s.samples))
}
