package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

// TestClusterSketchRoundTrip pins the backend half of a shard handoff
// over the wire: GET /v1/cluster/sketch returns the engine's exact
// serialized state, POST /v1/cluster/import merges it into another
// backend, and the receiver's own export matches a whole-stream engine
// byte for byte.
func TestClusterSketchRoundTrip(t *testing.T) {
	edges := feasibleStream(5_000, 80, 0.25, 41)

	whole, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { whole.Close() })
	if err := whole.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	whole.Flush()
	want, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	src, _, srcURL := newWired(t, server.Options{}, client.Options{MaxRetries: -1})
	if err := src.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	src.Flush()

	resp, err := http.Get(srcURL + server.RouteClusterSketch)
	if err != nil {
		t.Fatal(err)
	}
	state, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d body %s", resp.StatusCode, state)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.ContentTypeBinary {
		t.Fatalf("export content type %q", ct)
	}
	if !bytes.Equal(state, want) {
		t.Fatal("exported state differs from the engine's MarshalBinary")
	}

	_, _, dstURL := newWired(t, server.Options{}, client.Options{MaxRetries: -1})
	resp, err = http.Post(dstURL+server.RouteClusterImport, server.ContentTypeBinary, bytes.NewReader(state))
	if err != nil {
		t.Fatal(err)
	}
	var ir server.ImportResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Bytes != len(state) {
		t.Fatalf("import: status %d, acked %d bytes (sent %d)", resp.StatusCode, ir.Bytes, len(state))
	}

	resp, err = http.Get(dstURL + server.RouteClusterSketch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("receiver's export differs from the whole-stream engine after import")
	}
}

// TestClusterRoutesUnsupported: a service without the state-transfer
// interfaces answers 501 unsupported on both handoff routes — the probe
// contract every optional capability follows.
func TestClusterRoutesUnsupported(t *testing.T) {
	sk, err := vos.New(vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewSketchService(sk), server.Options{}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + server.RouteClusterSketch)
	if err != nil {
		t.Fatal(err)
	}
	var env server.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented || env.Error.Code != server.CodeUnsupported {
		t.Fatalf("sketch export on non-exporter: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	resp, err = http.Post(ts.URL+server.RouteClusterImport, server.ContentTypeBinary, strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented || env.Error.Code != server.CodeUnsupported {
		t.Fatalf("sketch import on non-importer: status %d code %q", resp.StatusCode, env.Error.Code)
	}
}

// TestClusterImportRejects pins the import refusal surface over HTTP:
// corrupt payloads map to 400 bad_request (via vos.ErrCorruptSketch),
// wrong content types are refused before the body is read, and method
// gates hold on both routes.
func TestClusterImportRejects(t *testing.T) {
	_, _, url := newWired(t, server.Options{}, client.Options{MaxRetries: -1})

	cases := []struct {
		name        string
		contentType string
		body        string
		status      int
		code        string
	}{
		{"corrupt payload", server.ContentTypeBinary, "not a sketch at all", http.StatusBadRequest, server.CodeBadRequest},
		{"wrong content type", server.ContentTypeJSON, "{}", http.StatusBadRequest, server.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(url+server.RouteClusterImport, tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var env server.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status || env.Error.Code != tc.code {
				t.Fatalf("status %d code %q, want %d %q", resp.StatusCode, env.Error.Code, tc.status, tc.code)
			}
		})
	}

	// Method gates: the export route is GET-only, the import route POST-only.
	resp, err := http.Post(url+server.RouteClusterSketch, server.ContentTypeBinary, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on export route: status %d", resp.StatusCode)
	}
	resp, err = http.Get(url + server.RouteClusterImport)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on import route: status %d", resp.StatusCode)
	}
}

// TestTopKPartialHeader: a plain engine service implements no PartialTopK,
// so /v1/topk answers never carry X-Vos-Partial — the header is reserved
// for gateway-degraded responses.
func TestTopKPartialHeader(t *testing.T) {
	eng, _, url := newWired(t, server.Options{}, client.Options{MaxRetries: -1})
	if err := eng.ProcessBatch(feasibleStream(500, 20, 0.1, 9)); err != nil {
		t.Fatal(err)
	}
	eng.Flush()

	body, err := json.Marshal(server.TopKRequest{User: 1, Candidates: []uint64{2, 3, 4}, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+server.RouteTopK, server.ContentTypeJSON, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(server.HeaderPartial); got != "" {
		t.Fatalf("complete top-K carried %s: %q", server.HeaderPartial, got)
	}
}
