package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/lsh"
	"github.com/vossketch/vos/internal/stream"
)

// Approximate top-K: a maintained banded-LSH index over packed recovered
// sketches, so a top-K probe scores only the users colliding with the
// probe in at least one band instead of scanning every user the engine
// has ever seen (the ROADMAP's "sublinear top-K" item — Engine.TopK is
// O(users) per query however warm the caches are).
//
// The index is a lsh.BandIndex keyed on bit-bands of the packed sketches
// core.VOS.RecoverSketch produces from the merged snapshot. Maintenance is
// lazy and piggybacks on the same write-versioning the recovered-sketch
// cache uses: shard workers record which users they wrote (inside the same
// skMu critical section that advances the shard's processed stamp, so a
// post-Flush probe always observes the full dirty set), and each probe
// re-bands up to ANNConfig.RebandBudget of those users against the current
// snapshot before answering — stale entries are re-banded on the next
// probe, and a full rebuild (after a window rotation, which changes every
// recovered sketch at once) amortises across queries instead of stalling
// one of them.
//
// The correctness contract is deliberately asymmetric: band membership may
// lag the stream (that only costs recall — a recently rewritten user might
// not collide until re-banded), but everything the probe REPORTS is
// computed live from the current merged snapshot. Candidates are scored
// with the exact estimator against the snapshot, and zero-cardinality
// users are filtered out, so a stale index entry can never surface a
// deleted user or a stale similarity — pinned by the ann_test.go
// invalidation tests, and the reason TopKApprox results are always a
// subset-ordered prefix of the exact scan restricted to the candidate set.

// ErrNoANN is returned by TopKApprox on an engine built without
// EngineConfig.ANN — candidates-free top-K needs the band index.
var ErrNoANN = errors.New("engine: approximate top-K requires Config.ANN")

// ANNConfig enables and parameterises the engine's approximate top-K
// index. The zero value of every field selects a default.
type ANNConfig struct {
	// Bands is b, the number of LSH bands. More bands raise recall and
	// candidate count — the collision probability for a pair whose
	// recovered sketches agree on a fraction p of their bits is
	// 1 − (1 − p^Rows)^Bands — and cost ~16 bytes of index per user each.
	// Default: 64.
	Bands int
	// Rows is r, the bits per band. More rows sharpen the S-curve
	// (fewer noise collisions, steeper recall falloff below the
	// threshold (1/b)^(1/r) of per-bit agreement). Bands·Rows must not
	// exceed Sketch.SketchBits. Default: 16.
	Rows int
	// Seed drives band bucket hashing. Default: derived from the sketch
	// seed, so engines with equal configs band alike.
	Seed uint64
	// RebandBudget bounds how many stale users one probe re-bands before
	// answering, amortising bulk invalidations (initial build excepted —
	// the first probe indexes every user). Negative is unbounded.
	// Default: 16384.
	RebandBudget int
}

// withDefaults resolves zero fields against the sketch seed.
func (c ANNConfig) withDefaults(sketchSeed uint64) ANNConfig {
	if c.Bands == 0 {
		c.Bands = 64
	}
	if c.Rows == 0 {
		c.Rows = 16
	}
	if c.Seed == 0 {
		c.Seed = hashing.Hash64(sketchSeed, 0x616e6e42616e64) // "annBand"
	}
	if c.RebandBudget == 0 {
		c.RebandBudget = 16384
	}
	return c
}

// ANNStats is a health snapshot of the approximate top-K index.
type ANNStats struct {
	// Indexed is the number of users currently banded.
	Indexed int
	// DirtyBacklog is the number of users awaiting (re-)banding; it
	// drains by up to RebandBudget per probe.
	DirtyBacklog int
	// Entries is the index's total bucket entries, stale included.
	Entries int
	// Rebands, Removals, Probes and Rotations count maintenance work
	// since the engine started: users (re-)banded, deleted users dropped,
	// TopKApprox calls, and window rotations that marked the whole index
	// stale.
	Rebands   uint64
	Removals  uint64
	Probes    uint64
	Rotations uint64
	// ProbeReuses counts probes answered from the last probe's recovered
	// sketch and candidate set (same user, same snapshot, no index change
	// in between) — the repeated-probe fast path.
	ProbeReuses uint64
}

// annIndex is the engine's ANN state: the band index plus the lazy
// invalidation bookkeeping. mu serialises maintenance and probing (the
// BandIndex compacts buckets in place during probes); candidate scoring
// happens outside mu on the immutable snapshot.
type annIndex struct {
	mu    sync.Mutex
	cfg   ANNConfig
	ix    *lsh.BandIndex
	built bool
	rot   uint64 // winRot the index was last reconciled against
	dirty map[stream.User]struct{}

	rebands   uint64
	removals  uint64
	probes    uint64
	rotations uint64

	// Probe reuse: a top-K poll loop ("who is similar to u right now?")
	// probes the same user against the same quiescent state over and over,
	// and re-recovering the probe's packed sketch plus re-walking its band
	// buckets per call is pure waste. The last probe's recovered sketch and
	// candidate set are kept and served again while all three freshness
	// coordinates hold: same user, same merged snapshot (pointer identity —
	// snapshots are immutable once merged, and holding lastSnap keeps its
	// address from being recycled), and same index-mutation stamp (the
	// monotone sum rebands+removals+rotations: any Put, Remove, or
	// rotation invalidation advances it, so a probe never reuses across an
	// index change). lastCands is read-only once cached — the liveness
	// filter copies instead of compacting in place.
	lastUser  stream.User
	lastSnap  *core.VOS
	lastStamp uint64
	lastRec   *core.Recovered
	lastCands []stream.User
	haveLast  bool
	reuses    uint64
}

// newANNIndex validates and builds the engine's ANN state.
func newANNIndex(cfg ANNConfig, sketch core.Config) (*annIndex, error) {
	params := lsh.Params{Bands: cfg.Bands, Rows: cfg.Rows, Seed: cfg.Seed}
	ix, err := lsh.NewBandIndex(params, sketch.SketchBits)
	if err != nil {
		return nil, fmt.Errorf("engine: ANN config: %w", err)
	}
	return &annIndex{cfg: cfg, ix: ix, dirty: make(map[stream.User]struct{})}, nil
}

// ANNEnabled reports whether the engine maintains an approximate top-K
// index (Config.ANN was set).
func (e *Engine) ANNEnabled() bool { return e.ann != nil }

// ANNStats reports the approximate top-K index's occupancy and
// maintenance counters; ok is false on an engine without Config.ANN.
func (e *Engine) ANNStats() (st ANNStats, ok bool) {
	a := e.ann
	if a == nil {
		return ANNStats{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st = ANNStats{
		Indexed:      a.ix.Len(),
		DirtyBacklog: len(a.dirty),
		Entries:      a.ix.Stats().Entries,
		Rebands:      a.rebands,
		Removals:     a.removals,
		Probes:       a.probes,
		Rotations:    a.rotations,
		ProbeReuses:  a.reuses,
	}
	// The per-shard dirty sets not yet stolen by a probe are backlog too.
	for _, s := range e.shards {
		s.annMu.Lock()
		st.DirtyBacklog += len(s.annDirty)
		s.annMu.Unlock()
	}
	return st, true
}

// TopKApprox returns up to n users similar to u, best first, probing only
// the band index's colliding buckets instead of scanning all users. The
// result is approximate only in WHICH users are considered: every returned
// estimate is computed exactly from the current merged snapshot and ranked
// with the same total order as TopK (core.RankBefore), so the result is a
// subset-ordered prefix of what the exact scan would return over the
// candidate set. Returns ErrNoANN on an engine built without Config.ANN.
//
// Probes are where index maintenance happens: each call re-bands up to
// ANNConfig.RebandBudget users written since their last banding (all of
// them on the first call, which builds the index). Recall against the
// exact scan is workload- and parameter-dependent; the topk-ann experiment
// (cmd/vosbench) measures it and gates its timing rows on it.
func (e *Engine) TopKApprox(u stream.User, n int) ([]core.TopKResult, error) {
	return e.topKApprox(context.Background(), u, n)
}

// TopKApproxContext is TopKApprox with lifecycle and cancellation checks,
// mirroring TopKContext: ErrClosed once Close has begun, and ctx is
// plumbed into the scoring fan-out so cancellation aborts mid-scan.
func (e *Engine) TopKApproxContext(ctx context.Context, u stream.User, n int) ([]core.TopKResult, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.topKApprox(ctx, u, n)
}

// topKApprox is the shared body: snapshot, maintain, probe, score.
func (e *Engine) topKApprox(ctx context.Context, u stream.User, n int) ([]core.TopKResult, error) {
	a := e.ann
	if a == nil {
		return nil, ErrNoANN
	}
	e.maybeAdvance()
	// Read the rotation stamp before merging: if a rotation lands between
	// the two, the index is reconciled against the older stamp and the
	// next probe re-marks it — conservative, never the reverse.
	rot := e.winRot.Load()
	snap := e.snapshot()

	a.mu.Lock()
	if err := e.annMaintain(a, snap, rot); err != nil {
		a.mu.Unlock()
		return nil, err
	}
	stamp := a.rebands + a.removals + a.rotations
	var r *core.Recovered
	var cands []stream.User
	if a.haveLast && a.lastUser == u && a.lastSnap == snap && a.lastStamp == stamp {
		// Repeated probe of the same user against unchanged state: serve
		// the packed recovered sketch and candidate set from the last call.
		r, cands = a.lastRec, a.lastCands
		a.reuses++
	} else {
		r = snap.RecoverSketch(u)
		var err error
		cands, err = a.ix.Candidates(u, r.Words())
		if err != nil {
			a.probes++
			a.mu.Unlock()
			return nil, err
		}
		a.lastUser, a.lastSnap, a.lastStamp = u, snap, stamp
		a.lastRec, a.lastCands = r, cands
		a.haveLast = true
	}
	a.probes++
	a.mu.Unlock()

	// A band entry may outlive its user (removal is lazy, and the budget
	// may not have reached it yet): filter zero-cardinality users so a
	// deleted user never surfaces, whatever the index's staleness. The
	// filter copies rather than compacting cands in place — cands may be
	// the cached slice a later probe will read again.
	live := make([]stream.User, 0, len(cands))
	for _, w := range cands {
		if snap.Cardinality(w) != 0 {
			live = append(live, w)
		}
	}
	return e.rankCandidates(ctx, snap, r, live, n)
}

// annMaintain reconciles the band index with the snapshot under a.mu:
// steal the shards' dirty sets, seed the initial build, mark everything
// stale after a rotation, then re-band up to the budget.
func (e *Engine) annMaintain(a *annIndex, snap *core.VOS, rot uint64) error {
	for _, s := range e.shards {
		s.annMu.Lock()
		if len(s.annDirty) > 0 {
			for u := range s.annDirty {
				a.dirty[u] = struct{}{}
			}
			clear(s.annDirty)
		}
		s.annMu.Unlock()
	}
	budget := a.cfg.RebandBudget
	if !a.built {
		// First probe: index every user the snapshot knows. The build is
		// deliberately not budgeted — a budgeted first probe would answer
		// from a sliver of the population.
		snap.ForEachUser(func(u stream.User, _ int64) bool {
			a.dirty[u] = struct{}{}
			return true
		})
		a.built = true
		budget = -1
	}
	if rot != a.rot {
		// A rotation retires a whole bucket from the shared array, which
		// can flip bits under every user's recovered sketch: mark the
		// entire membership for re-banding and let the budget spread the
		// rebuild across the following probes.
		a.rot = rot
		a.rotations++
		a.ix.ForEachMember(func(u stream.User) bool {
			a.dirty[u] = struct{}{}
			return true
		})
	}
	for u := range a.dirty {
		if budget == 0 {
			break
		}
		if budget > 0 {
			budget--
		}
		delete(a.dirty, u)
		if snap.Cardinality(u) == 0 {
			// All subscriptions cancelled (or retired out of the window):
			// the user holds no sketch state and must not be banded.
			a.ix.Remove(u)
			a.removals++
			continue
		}
		if err := a.ix.Put(u, snap.RecoverSketch(u).Words()); err != nil {
			return err // impossible by construction: sized from the same config
		}
		a.rebands++
	}
	return nil
}
