// Package engine implements the sharded, pipelined ingestion engine that
// scales VOS ingest across cores. It exists because VOS state is pure
// parity: the shared bit array of a stream equals the XOR of the arrays of
// any partition of that stream and the cardinality counters add, so
// core.VOS.Merge is exact for every way of splitting the input. That makes
// "one sketch per shard, merge for queries" a lossless parallelisation —
// the same partition-then-merge structure gSketch (VLDB'12) uses to
// localise stream updates — where a single mutex-guarded sketch
// (vos.ConcurrentSketch) serialises every update on one lock.
//
// Topology: N independent core.VOS shards with identical Config, each owned
// by one ingest goroutine fed through a buffered channel of edge batches.
// Producers route edges with stream.ShardOf(user) — the same hook
// stream.PartitionByUser uses — buffer them into per-shard batches, and
// hand full batches to the owning worker; the worker applies a batch under
// its shard-local lock. Because a user's edges always land in the same
// shard, each shard sees a feasible sub-stream and its cardinality
// counters are exact.
//
// Queries answer from a merged global snapshot rebuilt on demand when the
// applied-edge count has advanced past Config.SnapshotMaxLag — merging is
// exact, so a post-Flush Query returns bit-identical estimates to a single
// Sketch that consumed the whole stream. QueryLocal offers a lower-latency
// path that touches only the owning shard when both users co-reside.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/poscache"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/internal/wal"
)

// ErrClosed is returned by Process/ProcessBatch after Close, and by the
// context-aware query methods (QueryContext, TopKContext, …) once Close has
// begun — a closed engine is out of the serving rotation, so queries racing
// shutdown get a typed error instead of an answer that may predate the
// final flush.
var ErrClosed = errors.New("engine: closed")

// ErrQueryUnavailable is returned by query paths that cannot answer in the
// engine's current state — today, QueryLocal on a checkpoint-recovered
// engine, whose pre-checkpoint parity lives in the frozen base sketch
// rather than in any shard. Callers should fall back to the merged-snapshot
// path (Query/QueryContext).
var ErrQueryUnavailable = errors.New("engine: query unavailable")

// ErrNotCoResident is returned by QueryLocal when the two users live on
// different shards, so no single shard holds both users' parity state.
// Callers should fall back to Query.
var ErrNotCoResident = errors.New("engine: users are not co-resident on one shard")

// Config parameterises an Engine. The zero value of every field except
// Sketch selects a sensible default.
type Config struct {
	// Sketch is the per-shard VOS configuration. Every shard gets an
	// identical copy, which is what makes the shards mergeable.
	Sketch core.Config

	// Shards is N, the number of independent sketch shards and ingest
	// goroutines. Default: runtime.GOMAXPROCS(0).
	Shards int

	// RouteSeed seeds the user→shard hash. Edges route exactly like
	// stream.PartitionByUser(edges, Shards, RouteSeed). Default: derived
	// from Sketch.Seed, so engines with equal sketch configs route alike.
	RouteSeed uint64

	// BatchSize is how many edges a producer buffers per shard before
	// handing the batch to the shard worker, and the unit the worker
	// applies under one lock acquisition. Default: 256.
	BatchSize int

	// QueueSize is the per-shard ingest queue capacity in edges (rounded
	// up to whole batches). When a shard's queue is full, Process blocks —
	// backpressure, not loss. Default: 8192.
	QueueSize int

	// FlushInterval bounds how long a partially filled producer batch can
	// sit unapplied on an idle stream: a background ticker hands partial
	// batches to the workers this often. Negative disables the ticker
	// (then only full batches, Flush, and Close drain the buffers).
	// Default: 50ms.
	FlushInterval time.Duration

	// SnapshotMaxLag is the query-path staleness budget, in applied edges:
	// Query rebuilds the merged global snapshot when more than this many
	// edges have been applied since the snapshot was taken. 0 (the
	// default) re-merges whenever anything new has been applied, so every
	// Query is exact with respect to the applied stream.
	SnapshotMaxLag uint64

	// PositionCacheUsers bounds the engine's shared position-table cache:
	// the materialized query path caches each user's k array positions
	// (valid for the engine's lifetime — they depend only on user and
	// sketch Config, never on sketch contents), so repeat queries for hot
	// users skip all hashing. One cache is shared by every shard and
	// every merged snapshot. Each entry costs Sketch.SketchBits·8 bytes
	// (50 KiB at the paper's k = 6400). 0 selects the default of 512
	// entries (≈25 MiB at paper scale); negative disables caching.
	PositionCacheUsers int

	// Durability, when non-nil with a Dir, enables the write-ahead log and
	// checkpointing (see durability.go): accepted edges are logged before
	// they are routed, Checkpoint persists the merged sketch, and Open
	// recovers an engine from the directory. New with Durability set
	// behaves exactly like Open.
	Durability *DurabilityConfig

	// Window, when non-nil, puts the engine in sliding-window mode: each
	// shard keeps a ring of Window.Buckets time-bucketed sub-sketches,
	// queries answer over the last Buckets·BucketDuration of stream time,
	// and older edges are retired in O(sketch) per bucket rotation (see
	// window.go). Checkpoints then persist per-bucket state so recovery
	// keeps rotating correctly; a windowed engine cannot open an
	// unwindowed checkpoint directory or vice versa.
	Window *WindowConfig

	// ANN, when non-nil, maintains a banded-LSH index over recovered
	// sketches so TopKApprox can answer candidates-free top-K probes
	// without scanning every user (see ann.go). Zero fields select
	// defaults; the resolved copy is visible via Config().
	ANN *ANNConfig
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.RouteSeed == 0 {
		// Any fixed derivation works; keep it distinct from the seeds the
		// sketch itself consumes so routing and hashing stay independent.
		c.RouteSeed = hashing.Hash64(c.Sketch.Seed, 0x73686172644b6579)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8192
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.PositionCacheUsers == 0 {
		c.PositionCacheUsers = 512
	}
	return c
}

// shard is one partition: a private sketch, its ingest queue, and the
// producer-side pending batch.
type shard struct {
	// pendMu guards pend, the producer-side partial batch.
	pendMu sync.Mutex
	pend   []stream.Edge

	// ch carries full batches to the worker goroutine.
	ch chan []stream.Edge

	// skMu guards sk (and win): the worker writes under Lock, queries and
	// merges read under RLock, and window rotation mutates under Lock
	// (always acquired after the engine's winMu — see window.go).
	skMu sync.RWMutex
	sk   *core.VOS

	// win is the shard's bucket ring in sliding-window mode (nil
	// otherwise). sk then aliases win.Merged() — the stable live view —
	// so every read path works unchanged; only the worker's write path
	// branches, landing edges in the current bucket as well.
	win *core.Window

	// enqueued counts edges accepted by Process/ProcessBatch for this
	// shard (including edges still pending or queued); processed counts
	// edges applied to sk. processed is advanced inside skMu, so a reader
	// holding RLock sees exactly the count reflected in sk.
	enqueued  atomic.Uint64
	processed atomic.Uint64

	// annDirty collects users this shard has written since an ANN probe
	// last stole the set (nil on engines without Config.ANN). The worker
	// fills it inside the skMu critical section that advances processed,
	// so any snapshot that includes a write also finds its user dirty.
	// annMu guards it; lock order is skMu (worker) / ann.mu (probe)
	// before annMu, and annMu is never held across other locks.
	annMu    sync.Mutex
	annDirty map[stream.User]struct{}
}

// Engine is the sharded ingestion engine. All methods are safe for
// concurrent use, with one lifecycle rule: no Process/ProcessBatch call
// may start after Close has begun.
type Engine struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	closed atomic.Bool
	// lifeMu orders producer-side channel sends against Close: Flush and
	// the linger ticker hold RLock across "check closed, then hand batches
	// to shard channels", and Close holds Lock while it drains the pending
	// buffers and closes those channels. Without it, a Flush racing Close
	// could send on a closed channel (panic) or park a batch behind an
	// exited worker and spin forever waiting for it to apply.
	lifeMu sync.RWMutex
	stop   chan struct{} // stops the linger ticker
	start  time.Time

	// snapMu guards the merged query snapshot. snap is immutable once
	// published: rebuilds create a fresh sketch, so callers may keep
	// reading a superseded snapshot safely.
	snapMu  sync.Mutex
	snap    *core.VOS
	snapAt  []uint64 // per-shard processed counts captured at merge time
	snapRot uint64   // winRot captured at merge time; rotation forces a rebuild

	// pcache is the shared position-table cache (nil when disabled):
	// position tables depend only on user and sketch Config, so one cache
	// serves every shard and every merged snapshot for the engine's
	// lifetime, surviving snapshot rebuilds. It is internally locked, so
	// sharing it keeps concurrent query paths race-clean.
	pcache *poscache.Cache

	// Durability state (nil/zero on memory-only engines — see
	// durability.go). log is the write-ahead log; walMu gates appends
	// against checkpoints: producers hold RLock across append-then-route,
	// Checkpoint holds Lock, so no batch ever straddles a checkpoint
	// position. base is the sketch recovered from the newest checkpoint
	// (plus any ImportSketch merges — see transfer.go): shards hold only
	// post-checkpoint deltas and query paths merge the base back in. Each
	// published base sketch is immutable; ImportSketch swaps in a freshly
	// merged one, which is why the pointer is atomic — Cardinality and
	// QueryLocal read it without any lock.
	log   *wal.Log
	walMu sync.RWMutex
	base  atomic.Pointer[core.VOS]

	// Sliding-window state (zero on unwindowed engines — see window.go).
	// winMu orders rotation against multi-shard reads: AdvanceWindowTo
	// holds Lock while it rotates every shard, snapshot and checkpoint
	// building hold RLock across their whole merge loop, so neither ever
	// straddles a rotation. Lock order: winMu before any shard's skMu.
	// winEnd mirrors the shards' current bucket end (unix ns) for the
	// lock-free has-anything-expired check; winRot counts rotations and
	// stamps query snapshots, so a rotation invalidates the cached
	// snapshot without touching snapMu (avoiding a winMu/snapMu cycle).
	// winBase is the rotating window recovered from a windowed checkpoint
	// — unlike base it is NOT frozen: its buckets retire in lockstep with
	// the shards', guarded by winMu.
	winMu   sync.RWMutex
	winEnd  atomic.Int64
	winRot  atomic.Uint64
	winBase *core.Window

	// ann is the approximate top-K state (nil without Config.ANN — see
	// ann.go).
	ann *annIndex
}

// New creates and starts an Engine. The configuration is validated the
// same way core.New validates a sketch. With Config.Durability set, New is
// Open: it recovers from the directory (or starts it fresh).
func New(cfg Config) (*Engine, error) {
	if cfg.Durability != nil && cfg.Durability.Dir != "" {
		return Open(cfg)
	}
	return newEngine(cfg.withDefaults())
}

// newEngine builds a memory-only engine from a resolved config; Open
// attaches the durability state afterwards.
func newEngine(cfg Config) (*Engine, error) {
	if err := validateWindow(cfg.Window); err != nil {
		return nil, err
	}
	batches := (cfg.QueueSize + cfg.BatchSize - 1) / cfg.BatchSize
	e := &Engine{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
		start:  time.Now(),
		snapAt: make([]uint64, cfg.Shards),
	}
	if cfg.ANN != nil {
		// Resolve into a private copy so the caller's struct is never
		// mutated, and validate the band structure against the sketch
		// before any shard exists.
		resolved := cfg.ANN.withDefaults(cfg.Sketch.Seed)
		e.cfg.ANN = &resolved
		ann, err := newANNIndex(resolved, cfg.Sketch)
		if err != nil {
			return nil, err
		}
		e.ann = ann
	}
	if cfg.PositionCacheUsers > 0 {
		e.pcache = poscache.New(cfg.PositionCacheUsers)
	}
	// In window mode every shard ring is created from the same instant, so
	// the epoch-aligned boundaries agree and rotation stays in lockstep.
	var winStart time.Time
	if cfg.Window != nil {
		winStart = e.winNow()
	}
	for i := range e.shards {
		s := &shard{ch: make(chan []stream.Edge, batches)}
		if e.ann != nil {
			s.annDirty = make(map[stream.User]struct{})
		}
		if cfg.Window != nil {
			win, err := core.NewWindow(cfg.Sketch, cfg.Window.Buckets, cfg.Window.BucketDuration, winStart)
			if err != nil {
				return nil, err
			}
			s.win = win
			s.sk = win.Merged()
		} else {
			sk, err := core.New(cfg.Sketch)
			if err != nil {
				return nil, err
			}
			s.sk = sk
		}
		s.sk.SetPositionCache(e.pcache) // shared: positions are config-pure
		e.shards[i] = s
		e.wg.Add(1)
		go e.worker(s)
	}
	if cfg.Window != nil {
		e.winEnd.Store(e.shards[0].win.End().UnixNano())
	}
	if cfg.FlushInterval > 0 {
		e.wg.Add(1)
		go e.linger()
	}
	return e, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the resolved engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Closed reports whether Close has begun. Once true, writes and the
// context-aware query methods return ErrClosed.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Shards returns N, the number of sketch shards.
func (e *Engine) Shards() int { return len(e.shards) }

// ShardOf returns the shard in [0, N) that owns user u. It agrees with
// stream.PartitionByUser(edges, N, Config.RouteSeed).
func (e *Engine) ShardOf(u stream.User) int {
	return stream.ShardOf(u, len(e.shards), e.cfg.RouteSeed)
}

// worker is the shard's ingest goroutine: it applies batches under the
// shard lock until the queue is closed.
func (e *Engine) worker(s *shard) {
	defer e.wg.Done()
	for batch := range s.ch {
		s.skMu.Lock()
		if s.win != nil {
			s.win.ProcessBatch(batch) // current bucket + live merged view
		} else {
			s.sk.ProcessBatch(batch)
		}
		if s.annDirty != nil {
			// Record the written users before the processed counter (and
			// skMu) publishes this batch: any snapshot that can see these
			// edges finds their users in a dirty set — see ann.go.
			s.annMu.Lock()
			for _, ed := range batch {
				s.annDirty[ed.User] = struct{}{}
			}
			s.annMu.Unlock()
		}
		s.processed.Add(uint64(len(batch)))
		s.skMu.Unlock()
	}
}

// linger periodically hands partial producer batches to the workers so an
// idle stream's tail does not sit unapplied forever.
func (e *Engine) linger() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			// Rotate first so an idle stream still retires buckets on wall
			// time (no lifeMu needed: rotation is winMu/skMu territory).
			e.maybeAdvance()
			e.lifeMu.RLock()
			if !e.closed.Load() {
				for _, s := range e.shards {
					e.kickPending(s)
				}
			}
			e.lifeMu.RUnlock()
		}
	}
}

// kickPending hands the shard's partial batch to the worker without
// blocking; if the queue is full the batch stays pending for next time.
func (e *Engine) kickPending(s *shard) {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	if len(s.pend) == 0 {
		return
	}
	select {
	case s.ch <- s.pend:
		s.pend = nil
	default:
	}
}

// add accepts a group of edges for one shard: it counts them, appends to
// the pending batch, and hands full batches to the worker (blocking when
// the queue is full — backpressure). Batches are carved to exactly
// BatchSize edges so the queue's capacity in edges really is bounded by
// Config.QueueSize (rounded up to whole batches) no matter how large the
// slices passed to ProcessBatch are; the residue stays pending (always
// shorter than one batch at rest).
func (s *shard) add(edges []stream.Edge, batchSize int) {
	s.enqueued.Add(uint64(len(edges)))
	s.pendMu.Lock()
	s.pend = append(s.pend, edges...)
	var full [][]stream.Edge
	for len(s.pend) >= batchSize {
		full = append(full, s.pend[:batchSize:batchSize])
		s.pend = s.pend[batchSize:]
	}
	if len(s.pend) == 0 {
		s.pend = nil
	}
	s.pendMu.Unlock()
	for _, out := range full {
		s.ch <- out
	}
}

// Process routes one stream element to its owning shard. It blocks only
// when that shard's queue is full (or, on durable engines, while a
// checkpoint is in progress). It must not be called after Close. On a
// durable engine the edge is WAL-appended — durable per the sync policy —
// before Process returns; an append error means the edge was not accepted.
func (e *Engine) Process(ed stream.Edge) error {
	// Retire expired buckets before accepting new work (one atomic load on
	// the fast path; no-op unwindowed). Done before the locks below so the
	// rotation path never nests inside walMu.
	e.maybeAdvance()
	// The read lock makes "check closed, append, hand to shards" atomic
	// with respect to Close's channel teardown — see lifeMu.
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	edges := [1]stream.Edge{ed}
	if e.log != nil {
		e.walMu.RLock()
		defer e.walMu.RUnlock()
		if err := e.log.Append(edges[:]); err != nil {
			return err
		}
	}
	e.shards[e.ShardOf(ed.User)].add(edges[:], e.cfg.BatchSize)
	return nil
}

// ProcessBatch routes a slice of stream elements, grouping them by owning
// shard first so each shard's lock is taken once per call rather than once
// per edge. This is the high-throughput ingest path — on durable engines
// also the efficient one, since the whole slice becomes one WAL record
// (and, under SyncEveryBatch, one fsync).
func (e *Engine) ProcessBatch(edges []stream.Edge) error {
	e.maybeAdvance() // see Process
	e.lifeMu.RLock() // see Process
	defer e.lifeMu.RUnlock()
	if e.closed.Load() {
		return ErrClosed
	}
	if len(edges) == 0 {
		return nil
	}
	if e.log != nil {
		// Hold the WAL gate across append-then-route so a concurrent
		// Checkpoint never captures a position whose edges are not yet in
		// the shards (see durability.go).
		e.walMu.RLock()
		defer e.walMu.RUnlock()
		if err := e.log.Append(edges); err != nil {
			return err
		}
	}
	e.route(edges)
	return nil
}

// route groups edges by owning shard and hands them over — ProcessBatch
// minus lifecycle and durability, shared with WAL replay.
func (e *Engine) route(edges []stream.Edge) {
	n := len(e.shards)
	if n == 1 {
		e.shards[0].add(edges, e.cfg.BatchSize)
		return
	}
	groups := make([][]stream.Edge, n)
	for _, ed := range edges {
		i := e.ShardOf(ed.User)
		groups[i] = append(groups[i], ed)
	}
	for i, g := range groups {
		if len(g) > 0 {
			e.shards[i].add(g, e.cfg.BatchSize)
		}
	}
}

// Flush blocks until every edge accepted before the call has been applied
// to its shard sketch. After Flush, Query reflects all of them exactly.
// Flush racing Close is safe: once Close has begun, Flush returns
// immediately (Close itself drains every buffered edge).
func (e *Engine) Flush() {
	e.lifeMu.RLock()
	defer e.lifeMu.RUnlock()
	if e.closed.Load() {
		return
	}
	targets := make([]uint64, len(e.shards))
	for i, s := range e.shards {
		targets[i] = s.enqueued.Load()
	}
	for i, s := range e.shards {
		for s.processed.Load() < targets[i] {
			// The shortfall can live in the pending batch (hand it over,
			// blocking if the queue is full) or in the queue (yield until
			// the worker drains it).
			s.pendMu.Lock()
			out := s.pend
			s.pend = nil
			s.pendMu.Unlock()
			if len(out) > 0 {
				s.ch <- out
				continue
			}
			runtime.Gosched()
			if s.processed.Load() < targets[i] {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
}

// Close flushes buffered edges, stops the workers, and waits for them to
// exit; a durable engine then writes a final checkpoint (truncating the
// replayed WAL segments) and closes the log, so the next Open replays
// nothing. Close is idempotent. Producers must have stopped calling
// Process/ProcessBatch before Close begins.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.stop)
	// The exclusive lock waits out any Flush or linger kick that passed
	// its closed check before the CAS above, so no sender can race the
	// channel close below. Released before checkpointLocked, whose Flush
	// call must be able to take the read lock (it sees closed and returns;
	// the workers have already drained everything by then).
	e.lifeMu.Lock()
	for _, s := range e.shards {
		s.pendMu.Lock()
		out := s.pend
		s.pend = nil
		s.pendMu.Unlock()
		if len(out) > 0 {
			s.ch <- out
		}
		close(s.ch)
	}
	e.lifeMu.Unlock()
	e.wg.Wait()
	if e.log != nil {
		e.walMu.Lock()
		_, ckptErr := e.checkpointLocked()
		e.walMu.Unlock()
		if err := e.log.Close(); ckptErr == nil {
			ckptErr = err
		}
		return ckptErr
	}
	return nil
}

// snapshot returns the merged global sketch, rebuilding it when more than
// SnapshotMaxLag edges have been applied since the last merge. The
// returned sketch is never mutated after publication.
func (e *Engine) snapshot() *core.VOS {
	return e.snapshotMaxLag(e.cfg.SnapshotMaxLag)
}

// snapshotMaxLag is snapshot with an explicit staleness budget; budget 0
// demands exactness over every applied edge, which Checkpoint and
// MarshalBinary use to override a relaxed Config.SnapshotMaxLag.
func (e *Engine) snapshotMaxLag(maxLag uint64) *core.VOS {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	rot := e.winRot.Load()
	if e.snap != nil && e.snapRot == rot {
		// A rotation changes shard state without advancing any processed
		// counter, so the rotation stamp must match before the lag check
		// can vouch for the cached snapshot.
		lag := uint64(0)
		for i, s := range e.shards {
			lag += s.processed.Load() - e.snapAt[i]
		}
		if lag <= maxLag {
			return e.snap
		}
	}
	// In window mode, hold the window read-lock across the whole merge
	// loop so the snapshot never observes shard A pre-rotation and shard B
	// post-rotation (winMu before skMu — see window.go).
	if e.cfg.Window != nil {
		e.winMu.RLock()
		defer e.winMu.RUnlock()
		rot = e.winRot.Load() // re-read now that rotation is excluded
	}
	merged := core.MustNew(e.cfg.Sketch)
	merged.SetPositionCache(e.pcache) // tables survive snapshot rebuilds
	if base := e.base.Load(); base != nil {
		// The recovered checkpoint (possibly extended by ImportSketch);
		// immutable once published, identical config by Open's and
		// ImportSketch's validation, so the merge cannot fail.
		if err := merged.Merge(base); err != nil {
			panic(fmt.Sprintf("engine: base merge failed: %v", err))
		}
	}
	if e.winBase != nil {
		// The recovered window base rotates under winMu, which we hold.
		if err := merged.Merge(e.winBase.Merged()); err != nil {
			panic(fmt.Sprintf("engine: window base merge failed: %v", err))
		}
	}
	for i, s := range e.shards {
		s.skMu.RLock()
		e.snapAt[i] = s.processed.Load()
		err := merged.Merge(s.sk)
		s.skMu.RUnlock()
		if err != nil {
			// Impossible: every shard shares e.cfg.Sketch by construction.
			panic(fmt.Sprintf("engine: shard merge failed: %v", err))
		}
	}
	e.snap = merged
	e.snapRot = rot
	return merged
}

// Query estimates the similarity of users u and v from the merged global
// snapshot. With the default SnapshotMaxLag of 0, the answer is exact for
// every applied edge; call Flush first for read-your-writes over edges
// still in flight. A post-Flush Query is bit-identical to a single
// vos.Sketch that consumed the whole stream with the same Config.
func (e *Engine) Query(u, v stream.User) core.Estimate {
	e.maybeAdvance()
	return e.snapshot().Query(u, v)
}

// QueryMany estimates u against every candidate in one pass over the
// merged snapshot (see core.VOS.QueryMany).
func (e *Engine) QueryMany(u stream.User, candidates []stream.User) []core.Estimate {
	e.maybeAdvance()
	return e.snapshot().QueryMany(u, candidates)
}

// TopK returns the n candidates most similar to u from the merged global
// snapshot — highest estimated Jaccard first, ties broken by user ID, with
// the full estimates attached. The probe's virtual sketch is recovered
// once; candidates are then split into ranges fanned out across up to
// GOMAXPROCS goroutines, each streaming its range against the packed probe
// with a bounded min-heap, and the per-worker tops are merged. The
// snapshot is immutable and the shared position cache is internally
// locked, so the fan-out is read-only and race-clean.
//
// The result is identical to snapshot.TopK(u, candidates, n) — and to
// sorting per-pair Query estimates — regardless of worker count: every
// global top-n result is inside its worker's top n, and the merge sorts
// with the same total order (core.RankBefore) the workers used.
func (e *Engine) TopK(u stream.User, candidates []stream.User, n int) []core.TopKResult {
	out, _ := e.topK(context.Background(), u, candidates, n)
	return out
}

// TopKContext is TopK with lifecycle and cancellation checks: it returns
// ErrClosed once Close has begun, and ctx is plumbed into every worker's
// candidate loop (core.TopKRecoveredContext), so cancelling the context
// actually aborts an in-flight fan-out instead of letting it run to
// completion — the contract vos.SimilarityService and the /v1/topk handler
// rely on for request-scoped deadlines.
func (e *Engine) TopKContext(ctx context.Context, u stream.User, candidates []stream.User, n int) ([]core.TopKResult, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.topK(ctx, u, candidates, n)
}

// topK is the shared body of TopK and TopKContext: snapshot, fan out, merge.
func (e *Engine) topK(ctx context.Context, u stream.User, candidates []stream.User, n int) ([]core.TopKResult, error) {
	e.maybeAdvance()
	snap := e.snapshot()
	return e.rankCandidates(ctx, snap, snap.RecoverSketch(u), candidates, n)
}

// rankCandidates scores the candidates against a recovered probe and
// returns the top n by core.RankBefore — the parallel fan-out shared by
// the exact scan (topK) and the ANN probe (topKApprox), which differ only
// in where the candidate list comes from.
func (e *Engine) rankCandidates(ctx context.Context, snap *core.VOS, r *core.Recovered, candidates []stream.User, n int) ([]core.TopKResult, error) {
	// Below ~2 full ranges the goroutine and merge overhead outweighs the
	// fan-out; answer sequentially.
	const minPerWorker = 64
	workers := runtime.GOMAXPROCS(0)
	if maxW := len(candidates) / minPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 || n <= 0 {
		return snap.TopKRecoveredContext(ctx, r, candidates, n)
	}
	tops := make([][]core.TopKResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	// Exact partition: worker w gets [w*len/workers, (w+1)*len/workers).
	// Unlike ceil-chunking this never produces lo > hi, whatever the
	// workers/len ratio.
	for w := 0; w < workers; w++ {
		lo := w * len(candidates) / workers
		hi := (w + 1) * len(candidates) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tops[w], errs[w] = snap.TopKRecoveredContext(ctx, r, candidates[lo:hi], n)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []core.TopKResult
	for _, t := range tops {
		all = append(all, t...)
	}
	sort.Slice(all, func(i, j int) bool { return core.RankBefore(all[i], all[j]) })
	if n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}

// PositionCacheStats reports the shared position cache's hit/miss/eviction
// counters; ok is false when caching is disabled (PositionCacheUsers < 0).
func (e *Engine) PositionCacheStats() (st poscache.Stats, ok bool) {
	if e.pcache == nil {
		return poscache.Stats{}, false
	}
	return e.pcache.Stats(), true
}

// QueryLocal answers a pair query from the owning shard alone when both
// users co-reside, skipping the global merge: one RLock on one shard, no
// cross-shard work. It returns ErrNotCoResident when the users live on
// different shards (fall back to Query), ErrQueryUnavailable on a
// checkpoint-recovered engine, and ErrClosed after Close — typed errors
// instead of the zero estimates these states used to produce silently.
//
// The shard holds all of both users' parity state, so the estimate is
// valid — and its contamination term β reflects only the shard's own
// users, typically less loaded than the global array — but it is not
// bit-identical to the monolithic baseline, which Query is.
//
// On an engine recovered from a checkpoint the pre-checkpoint parity state
// lives in the frozen base sketch, not in any shard, so the local answer
// would be wrong; QueryLocal then always returns ErrQueryUnavailable.
func (e *Engine) QueryLocal(u, v stream.User) (core.Estimate, error) {
	if e.closed.Load() {
		return core.Estimate{}, ErrClosed
	}
	if e.base.Load() != nil || e.winBase != nil {
		return core.Estimate{}, fmt.Errorf("%w: pre-checkpoint state lives in the recovery base, not in any shard", ErrQueryUnavailable)
	}
	e.maybeAdvance()
	su, sv := e.ShardOf(u), e.ShardOf(v)
	if su != sv {
		return core.Estimate{}, fmt.Errorf("%w: user %d is on shard %d, user %d on shard %d", ErrNotCoResident, u, su, v, sv)
	}
	s := e.shards[su]
	s.skMu.RLock()
	defer s.skMu.RUnlock()
	return s.sk.Query(u, v), nil
}

// QueryContext is Query with lifecycle and cancellation checks: ErrClosed
// once Close has begun, ctx.Err() when the context is already cancelled,
// otherwise the merged-snapshot answer. The snapshot query itself is a
// single O(k) comparison, so no mid-query cancellation point is needed —
// TopKContext is where cooperative cancellation matters.
func (e *Engine) QueryContext(ctx context.Context, u, v stream.User) (core.Estimate, error) {
	if e.closed.Load() {
		return core.Estimate{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return core.Estimate{}, err
	}
	e.maybeAdvance()
	return e.snapshot().Query(u, v), nil
}

// CardinalityContext is Cardinality with lifecycle and cancellation checks.
func (e *Engine) CardinalityContext(ctx context.Context, u stream.User) (int64, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Cardinality(u), nil
}

// StatsContext is Stats with lifecycle and cancellation checks.
func (e *Engine) StatsContext(ctx context.Context) (core.Stats, error) {
	if e.closed.Load() {
		return core.Stats{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return core.Stats{}, err
	}
	return e.Stats(), nil
}

// Cardinality returns n_u over applied edges (over the live window, in
// window mode). A user's post-checkpoint state lives only in its owning
// shard, so this reads one shard (plus the recovery base, when present)
// and is exact without a merge.
func (e *Engine) Cardinality(u stream.User) int64 {
	e.maybeAdvance()
	if e.cfg.Window != nil {
		// Shard + rotating base must be read on the same side of any
		// rotation; the read-lock holds rotation out (winMu before skMu).
		e.winMu.RLock()
		defer e.winMu.RUnlock()
	}
	s := e.shards[e.ShardOf(u)]
	s.skMu.RLock()
	c := s.sk.Cardinality(u)
	s.skMu.RUnlock()
	if base := e.base.Load(); base != nil {
		c += base.Cardinality(u)
	}
	if e.winBase != nil {
		c += e.winBase.Cardinality(u)
	}
	return c
}

// Stats summarises the merged global sketch (see core.VOS.Stats). In
// window mode the window metadata fields are set, the state covers the
// live window only, and MemoryBytes counts the full resident footprint —
// every shard's bucket ring plus the flattened snapshot, matching what
// WindowedSketch.Stats reports for the single-threaded shape — so an
// operator sizing a windowed deployment from /v1/stats sees the rings,
// not just one array.
func (e *Engine) Stats() core.Stats {
	e.maybeAdvance()
	st := e.snapshot().Stats()
	if w := e.cfg.Window; w != nil {
		st.WindowSeconds = (time.Duration(w.Buckets) * w.BucketDuration).Seconds()
		st.WindowBuckets = w.Buckets
		e.winMu.RLock()
		for _, s := range e.shards {
			s.skMu.RLock()
			st.MemoryBytes += s.win.Stats().MemoryBytes
			s.skMu.RUnlock()
		}
		if e.winBase != nil {
			st.MemoryBytes += e.winBase.Stats().MemoryBytes
		}
		e.winMu.RUnlock()
	}
	return st
}

// MarshalBinary serializes the engine's merged state; the result restores
// with core.UnmarshalVOS (or vos.Unmarshal) as a plain single sketch. It
// flushes first and then merges with a zero staleness budget, so the bytes
// cover every edge acknowledged before the call even when
// Config.SnapshotMaxLag allows stale Query answers — a serialized engine
// is never behind its acknowledged writes. In window mode the bytes are
// the live window view (in-window edges only), without bucket structure —
// checkpoints, which must keep rotating after recovery, persist per-bucket
// state instead (see durability.go).
func (e *Engine) MarshalBinary() ([]byte, error) {
	e.maybeAdvance()
	e.Flush()
	return e.snapshotMaxLag(0).MarshalBinary()
}

// ShardStats reports one health snapshot per shard: ingest counters,
// backlog, and the shard array's load β.
func (e *Engine) ShardStats() []metrics.ShardStat {
	elapsed := time.Since(e.start).Seconds()
	out := make([]metrics.ShardStat, len(e.shards))
	for i, s := range e.shards {
		s.skMu.RLock()
		beta := s.sk.Beta()
		users := s.sk.Users()
		s.skMu.RUnlock()
		processed := s.processed.Load()
		st := metrics.ShardStat{
			Shard:        i,
			Enqueued:     s.enqueued.Load(),
			Processed:    processed,
			QueueBatches: len(s.ch),
			Beta:         beta,
			Users:        users,
		}
		if elapsed > 0 {
			st.EdgesPerSec = float64(processed) / elapsed
		}
		out[i] = st
	}
	return out
}
