package oph

import (
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// Densification fills the empty bins of a static OPH signature so the plain
// "fraction of equal registers" estimator applies with the full k
// denominator. All schemes must fill an empty bin as a deterministic
// function of (bin index, occupancy pattern, donor values) that both sides
// of a comparison share, so that two users with identical occupied bins get
// identical fills — that is what preserves the collision probability.
//
// The three schemes implemented are the ones the paper's related-work
// section cites:
//
//   - DensifyRotation — ICML'14: an empty bin borrows from the nearest
//     non-empty bin to its right (circularly), offset by the distance so
//     that borrowed values from different distances cannot collide.
//   - DensifyImproved — UAI'14: each empty bin flips a direction coin
//     (an independent hash of the bin index) and borrows from the nearest
//     non-empty bin left or right, halving the variance of pure rotation.
//   - DensifyOptimal — ICML'17: each empty bin probes donor bins using a
//     2-universal hash of (bin, attempt) until it hits a non-empty bin,
//     making every donor equally likely and achieving the variance lower
//     bound.
//
// Densified signatures are only meaningful for static (insertion-only)
// sets; after a dynamic deletion empties a bin the donor structure is no
// longer exchangeable. The dynamic experiments therefore use the sparse
// NIPS'12 estimator, and densification appears in the abl-dense ablation.

// Densified is a filled signature ready for register-wise comparison.
type Densified struct {
	vals []uint64
	k    int
}

// offsetC separates borrowed values by distance: a value borrowed from
// distance d is offset by d·offsetC, so equal registers imply equal donors
// at equal distances (the ICML'14 construction's C constant).
const offsetC = 0x9e3779b97f4a7c15

// DensifyRotation applies the ICML'14 rotation scheme to user u's bins.
// It panics if every bin is empty (an empty set has no signature).
func (s *Sketch) DensifyRotation(u stream.User) *Densified {
	vals, occ := s.Signature(u)
	requireNonEmpty(occ)
	out := make([]uint64, s.k)
	for j := 0; j < s.k; j++ {
		if occ[j] {
			out[j] = vals[j]
			continue
		}
		for d := 1; ; d++ {
			src := (j + d) % s.k
			if occ[src] {
				out[j] = vals[src] + uint64(d)*offsetC
				break
			}
		}
	}
	return &Densified{vals: out, k: s.k}
}

// DensifyImproved applies the UAI'14 scheme: per-bin random direction.
func (s *Sketch) DensifyImproved(u stream.User) *Densified {
	vals, occ := s.Signature(u)
	requireNonEmpty(occ)
	out := make([]uint64, s.k)
	for j := 0; j < s.k; j++ {
		if occ[j] {
			out[j] = vals[j]
			continue
		}
		// The direction bit must depend only on the bin index (and the
		// sketch seed), not on the user, so both sides agree.
		goRight := hashing.Hash64(uint64(j), s.seed^0xd1b54a32d192ed03)&1 == 1
		for d := 1; ; d++ {
			var src int
			if goRight {
				src = (j + d) % s.k
			} else {
				src = (j - d%s.k + s.k) % s.k
			}
			if occ[src] {
				out[j] = vals[src] + uint64(d)*offsetC
				break
			}
		}
	}
	return &Densified{vals: out, k: s.k}
}

// DensifyOptimal applies the ICML'17 scheme: 2-universal probing.
func (s *Sketch) DensifyOptimal(u stream.User) *Densified {
	vals, occ := s.Signature(u)
	requireNonEmpty(occ)
	tu := hashing.NewTwoUniversal(s.seed ^ 0x2545f4914f6cdd1d)
	out := make([]uint64, s.k)
	for j := 0; j < s.k; j++ {
		if occ[j] {
			out[j] = vals[j]
			continue
		}
		for attempt := uint64(1); ; attempt++ {
			// Probe sequence is a function of (bin, attempt) shared by
			// both parties.
			src := int(tu.HashRange(uint64(j)<<20|attempt, uint64(s.k)))
			if occ[src] {
				out[j] = vals[src] + attempt*offsetC
				break
			}
		}
	}
	return &Densified{vals: out, k: s.k}
}

// EstimateJaccard compares two densified signatures register-wise over the
// full k denominator.
func (d *Densified) EstimateJaccard(o *Densified) float64 {
	if d.k != o.k {
		panic("oph: incompatible densified signatures")
	}
	matches := 0
	for j := 0; j < d.k; j++ {
		if d.vals[j] == o.vals[j] {
			matches++
		}
	}
	return float64(matches) / float64(d.k)
}

func requireNonEmpty(occ []bool) {
	for _, o := range occ {
		if o {
			return
		}
	}
	panic("oph: cannot densify an all-empty signature")
}
