package netproto

import (
	"errors"
	"net"
	"sync"

	"github.com/vossketch/vos/internal/admit"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/stream"
)

// Config tunes a Receiver. Sink is required; everything else defaults.
type Config struct {
	// Sink receives each applied batch, in arrival order. It is called
	// from the receive loop, one batch at a time — a sharded engine's
	// ProcessBatch hands off to per-shard queues quickly, so the loop
	// stays ahead of the socket for realistic loads.
	Sink func(edges []stream.Edge) error
	// Admit, when non-nil, charges each frame's worst-case decoded
	// footprint against the shared ingest budget before decoding —
	// typically the same admit.Controller the HTTP handlers use, making
	// the budget process-wide. A rejected frame is dropped (and counted);
	// its sender sees it as a gap.
	Admit *admit.Controller
	// MaxSessions bounds the per-session state table (default 1024).
	MaxSessions int
}

// Receiver drives the VOSSTRM1 datagram ingest plane over one
// net.PacketConn: read, validate, admit, sequence-check, apply, ack.
// Create with NewReceiver, then call Run (it blocks); Close stops the
// loop and waits for the in-flight frame to finish applying, which is
// what makes vosd's shutdown drain-aware on the UDP side.
type Receiver struct {
	pc  net.PacketConn
	cfg Config

	mu  sync.Mutex
	trk *Tracker
	st  metrics.UDPStats // transport-level counters; seq counters live in trk

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

// NewReceiver builds a Receiver over pc. The caller owns pc's lifetime
// only until Close, which closes it.
func NewReceiver(pc net.PacketConn, cfg Config) *Receiver {
	if cfg.Sink == nil {
		panic("netproto: Receiver requires a Sink")
	}
	return &Receiver{
		pc:   pc,
		cfg:  cfg,
		trk:  NewTracker(cfg.MaxSessions),
		done: make(chan struct{}),
	}
}

// Addr returns the bound address (useful with a ":0" listener).
func (r *Receiver) Addr() net.Addr { return r.pc.LocalAddr() }

// Run reads datagrams until the conn is closed, returning nil after
// Close (any other read error is returned). Call it from one goroutine.
func (r *Receiver) Run() error {
	defer close(r.done)
	buf := make([]byte, MaxFrameSize+1)
	var ackBuf []byte
	for {
		n, from, err := r.pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		ackBuf = r.handle(buf[:n], from, ackBuf)
	}
}

// Close stops the receive loop (closing the conn) and waits for the
// frame being applied, if any, to finish. Idempotent.
func (r *Receiver) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.pc.Close()
		<-r.done
	})
	return r.closeErr
}

// Stats snapshots the plane's counters: the receiver's transport-level
// counts merged with the tracker's sequence ledger.
func (r *Receiver) Stats() metrics.UDPStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st
	tot := r.trk.Totals()
	st.GapsDetected = tot.Gaps
	st.ReplaysDropped = tot.Replays
	st.StaleDropped = tot.Stale
	st.LateApplied = tot.Late
	st.Sessions = r.trk.Sessions()
	st.SessionsEvicted = r.trk.Evicted()
	return st
}

// handle processes one datagram, reusing (and returning) ackBuf for ack
// replies. Counter writes happen under mu so Stats can be polled from
// other goroutines; the sink itself runs unlocked.
func (r *Receiver) handle(data []byte, from net.Addr, ackBuf []byte) []byte {
	r.mu.Lock()
	r.st.FramesReceived++
	r.mu.Unlock()

	f, err := DecodeFrame(data)
	if err != nil || f.Type != TypeData {
		// Acks (or future types) arriving at a receiver are as wrong as a
		// truncated frame; neither is silently ignored.
		r.count(func(st *metrics.UDPStats) { st.Malformed++ })
		return ackBuf
	}

	// Admission before decoding: the worst-case charge bounds the decoded
	// slice about to be allocated. A shed frame never touches the tracker,
	// so its sequence later surfaces as a gap — shedding is loss, and the
	// protocol's job is to make loss visible, not to hide it.
	var hold *admit.Hold
	if r.cfg.Admit != nil {
		h, err := r.cfg.Admit.Admit(int64(len(f.Payload)), true)
		if err != nil {
			r.count(func(st *metrics.UDPStats) { st.AdmitRejected++ })
			return ackBuf
		}
		hold = h
		defer hold.Close()
	}

	edges, err := f.DecodeEdges()
	if err != nil {
		r.count(func(st *metrics.UDPStats) { st.Malformed++ })
		return ackBuf
	}
	if hold != nil {
		hold.Trim(len(edges))
	}

	r.mu.Lock()
	verdict := r.trk.Observe(f.Session, f.Seq)
	r.mu.Unlock()

	if verdict == VerdictApply {
		if err := r.cfg.Sink(edges); err != nil {
			r.count(func(st *metrics.UDPStats) { st.SinkErrors++ })
		} else {
			r.count(func(st *metrics.UDPStats) {
				st.FramesApplied++
				st.EdgesApplied += uint64(len(edges))
			})
		}
	}

	if f.Flags&FlagAckRequest != 0 {
		r.mu.Lock()
		ack := r.trk.AckFor(f.Session, f.Seq)
		r.mu.Unlock()
		ackBuf = AppendAckFrame(ackBuf[:0], ack)
		if _, err := r.pc.WriteTo(ackBuf, from); err == nil {
			r.count(func(st *metrics.UDPStats) { st.AcksSent++ })
		}
	}
	return ackBuf
}

// count applies one counter mutation under the stats lock.
func (r *Receiver) count(fn func(*metrics.UDPStats)) {
	r.mu.Lock()
	fn(&r.st)
	r.mu.Unlock()
}
