package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/cluster"
	"github.com/vossketch/vos/server"
)

// gatewayStack is a full in-process cluster: K engine-backed vosd
// stand-ins, a gateway over them, and the gateway's HTTP face.
type gatewayStack struct {
	gw       *cluster.Gateway
	backends []*server.Server
	url      string
}

func newGatewayStack(t *testing.T, k int, gwOpt cluster.Options) *gatewayStack {
	t.Helper()
	cfg := vos.EngineConfig{Sketch: vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 5}, Shards: 2}
	backends := make([]*server.Server, k)
	shards := make([]string, k)
	for i := range backends {
		eng, err := vos.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = server.New(vos.NewEngineService(eng), server.Options{})
		ts := httptest.NewServer(backends[i])
		shards[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			eng.Close()
		})
	}
	gwOpt.Client.MaxRetries = -1
	gw, err := cluster.New(&cluster.Ring{Version: 1, RouteSeed: 3, Shards: shards}, gwOpt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler(server.New(gw, server.Options{})))
	t.Cleanup(func() {
		ts.Close()
		gw.Close()
	})
	return &gatewayStack{gw: gw, backends: backends, url: ts.URL}
}

// TestClusterClientFullStack drives the whole tier through the public
// client: ingest through the gateway, query scatter-gathered answers, read
// the ring, hand a shard off to a fresh node, and verify the cluster's
// exported state still matches a single direct engine byte for byte.
func TestClusterClientFullStack(t *testing.T) {
	ctx := context.Background()
	st := newGatewayStack(t, 3, cluster.Options{})
	cl := client.NewCluster(st.url, client.Options{MaxRetries: -1})
	t.Cleanup(func() { cl.Close() })

	direct, err := vos.NewEngine(vos.EngineConfig{Sketch: vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 5}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { direct.Close() })

	var edges []vos.Edge
	for i := uint64(0); i < 3000; i++ {
		edges = append(edges, edge(i%60, i%977))
	}
	if err := cl.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := direct.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	direct.Flush()

	for u := vos.User(0); u < 60; u += 7 {
		got, err := cl.Similarity(ctx, u, u+1)
		if err != nil {
			t.Fatal(err)
		}
		if want := direct.Query(u, u+1); got != want {
			t.Fatalf("Similarity(%d,%d) over the stack = %+v, direct engine %+v", u, u+1, got, want)
		}
		card, err := cl.Cardinality(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if want := direct.Cardinality(u); card != want {
			t.Fatalf("Cardinality(%d) = %d, want %d", u, card, want)
		}
	}

	ring, err := cl.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Version != 1 || len(ring.Shards) != 3 {
		t.Fatalf("ring over the wire: %+v", ring)
	}

	// Handoff through the client to a fresh backend.
	freshEng, err := vos.NewEngine(vos.EngineConfig{Sketch: vos.Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 5}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	freshTS := httptest.NewServer(server.New(vos.NewEngineService(freshEng), server.Options{}))
	t.Cleanup(func() {
		freshTS.Close()
		freshEng.Close()
	})
	version, err := cl.Handoff(ctx, 1, freshTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("ring version after handoff over the wire: %d", version)
	}

	// State parity survives the move: the gateway's export (fetched via
	// the embedded client's StateExporter) equals the direct engine's.
	state, err := cl.ExportSketch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, want) {
		t.Fatal("cluster export after handoff differs from the direct engine")
	}
}

// TestClusterClientPartialTopK is the degraded-read pin: one backend
// draining (503) must NOT fail a scatter-gather top-K through the full
// client→gateway stack — the answer comes back with the partial flag.
func TestClusterClientPartialTopK(t *testing.T) {
	ctx := context.Background()
	// Snapshot cache off so the gather really contacts the drained node.
	st := newGatewayStack(t, 3, cluster.Options{DisableSnapshotCache: true})
	cl := client.NewCluster(st.url, client.Options{MaxRetries: -1})
	t.Cleanup(func() { cl.Close() })

	var edges []vos.Edge
	for i := uint64(0); i < 2000; i++ {
		edges = append(edges, edge(i%40, i%613))
	}
	if err := cl.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	candidates := make([]vos.User, 0, 39)
	for u := vos.User(0); u < 40; u++ {
		if u != 1 {
			candidates = append(candidates, u)
		}
	}

	// Healthy cluster: the same call reports complete.
	results, complete, err := cl.TopKPartial(ctx, 1, candidates, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("healthy cluster reported a partial answer")
	}
	if len(results) != 5 {
		t.Fatalf("healthy top-K returned %d results", len(results))
	}

	// Drain one backend: its /v1/ routes now answer 503 draining.
	if err := st.backends[2].Drain(ctx); err != nil {
		t.Fatal(err)
	}

	results, complete, err = cl.TopKPartial(ctx, 1, candidates, 5)
	if err != nil {
		t.Fatalf("scatter-gather top-K must survive one draining backend: %v", err)
	}
	if complete {
		t.Fatal("degraded top-K did not set the partial flag")
	}
	if len(results) == 0 {
		t.Fatal("degraded top-K returned nothing")
	}

	// The strict read path does fail — partial tolerance is opt-in.
	if _, err := cl.Similarity(ctx, 1, 2); err == nil {
		t.Fatal("strict similarity should fail with a backend draining")
	}
}

// TestClusterClientCheckpointUnsupported: cluster checkpoint over
// memory-only backends surfaces the backends' 501 as a typed *client.Error
// rather than fabricating a manifest.
func TestClusterClientCheckpointUnsupported(t *testing.T) {
	st := newGatewayStack(t, 2, cluster.Options{})
	cl := client.NewCluster(st.url, client.Options{MaxRetries: -1})
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.CheckpointCluster(context.Background()); err == nil {
		t.Fatal("checkpoint over memory-only backends must fail")
	}
}

// TestRetryPolicyDo pins the extracted policy's attempt accounting: n
// retries mean n+1 attempts, non-retryable errors stop immediately, and a
// cancelled context interrupts the backoff wait.
func TestRetryPolicyDo(t *testing.T) {
	p := client.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		return &client.Error{Status: 500, Code: server.CodeInternal}
	})
	if calls != 3 {
		t.Fatalf("2 retries made %d attempts, want 3", calls)
	}
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != 500 {
		t.Fatalf("exhausted retry returned %v", err)
	}

	calls = 0
	err = p.Do(context.Background(), func() error {
		calls++
		return &client.Error{Status: 400, Code: server.CodeBadRequest}
	})
	if calls != 1 || err == nil {
		t.Fatalf("non-retryable error: %d attempts, err %v", calls, err)
	}

	calls = 0
	if err := p.Do(context.Background(), func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("success path: %d attempts, err %v", calls, err)
	}

	// Negative retries disable retrying entirely.
	calls = 0
	p = client.RetryPolicy{MaxRetries: -1}
	p.Do(context.Background(), func() error {
		calls++
		return &client.Error{Status: 503, Code: server.CodeDraining}
	})
	if calls != 1 {
		t.Fatalf("MaxRetries -1 made %d attempts, want 1", calls)
	}

	// A cancelled context stops the loop during the wait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p = client.RetryPolicy{MaxRetries: 5, Backoff: time.Hour}
	err = p.Do(ctx, func() error { return &client.Error{Status: 500} })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff wait returned %v", err)
	}
}

// TestRetryable pins the shared classification the single-node client and
// the gateway's per-backend calls both use.
func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport", errors.New("connection refused"), true},
		{"500", &client.Error{Status: 500}, true},
		{"503 draining", &client.Error{Status: 503, Code: server.CodeDraining}, true},
		{"501 unsupported", &client.Error{Status: 501, Code: server.CodeUnsupported}, false},
		{"400", &client.Error{Status: 400}, false},
		{"404", &client.Error{Status: 404}, false},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
	}
	for _, tc := range cases {
		if got := client.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestClientRetryMatchesOptions: Client.Retry exposes the policy the
// client itself runs, built from its options.
func TestClientRetryMatchesOptions(t *testing.T) {
	cl := client.New("http://127.0.0.1:1", client.Options{MaxRetries: 7, RetryBackoff: 3 * time.Second})
	defer cl.Close()
	p := cl.Retry()
	if p.MaxRetries != 7 || p.Backoff != 3*time.Second {
		t.Fatalf("Retry() = %+v", p)
	}
}

// TestImportSketchNotRetried: a transient 500 on the import route must
// surface immediately — replaying an import that may have landed would
// XOR-cancel it.
func TestImportSketchNotRetried(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(500)
	}))
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, client.Options{MaxRetries: 5, RetryBackoff: time.Millisecond})
	t.Cleanup(func() { cl.Close() })
	if err := cl.ImportSketch(context.Background(), []byte("state")); err == nil {
		t.Fatal("import against a failing backend must error")
	}
	if calls != 1 {
		t.Fatalf("import route was called %d times, want exactly 1 (writes are never retried)", calls)
	}
}
