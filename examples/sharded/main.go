// Sharded concurrent ingestion with the Engine.
//
// VOS state is pure parity: the shared bit array of a stream equals the
// XOR of the arrays of ANY partition of that stream, and the cardinality
// counters add. vos.Engine packages that fact as a running system — the
// pattern a high-throughput deployment uses:
//
//  1. edges route to one of N shards by user hash (stream.ShardOf, the
//     same routing as vos.PartitionByUser),
//  2. each shard is a private sketch owned by one ingest goroutine, fed
//     through a buffered channel in batches — no shared write lock,
//  3. queries answer from a merged snapshot; merging is exact, so after
//     Flush the engine's estimates are bit-identical to a sketch that
//     consumed the whole stream sequentially.
//
// The program ingests a synthetic day of traffic sequentially and through
// engines at several shard counts, verifies the bit-identity, and prints
// per-shard health counters. On a multicore machine the engine's
// throughput grows with the shard count; on one core it tracks the
// sequential baseline (the floor).
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/vossketch/vos"
)

func main() {
	cfg := vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 99}

	// A synthetic day of traffic: 2M subscription events with 20%
	// unsubscriptions, generated feasibly.
	fmt.Println("generating 2,000,000 events…")
	edges := generate(2_000_000, 50_000, 0.2)

	// Sequential reference.
	seq := vos.MustNew(cfg)
	t0 := time.Now()
	for _, e := range edges {
		seq.Process(e)
	}
	seqTime := time.Since(t0)
	fmt.Printf("sequential single sketch: %v (%.2fM edges/s)\n\n",
		seqTime.Round(time.Millisecond), rateM(len(edges), seqTime))

	maxShards := runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS = %d\n", maxShards)
	for shards := 1; shards <= maxShards; shards *= 2 {
		runEngine(cfg, edges, shards, seq, seqTime)
	}
}

// runEngine ingests the stream into an n-shard engine with n producer
// goroutines, verifies exactness against the sequential sketch, and prints
// throughput plus per-shard counters.
func runEngine(cfg vos.Config, edges []vos.Edge, shards int, seq *vos.Sketch, seqTime time.Duration) {
	eng := vos.MustNewEngine(vos.EngineConfig{Sketch: cfg, Shards: shards})
	defer eng.Close()

	// A monitor goroutine samples the shard counters the way a dashboard
	// would: a RateMeter turns the summed applied-edge counter into
	// windowed edges/s, and we keep the peak window.
	monStop := make(chan struct{})
	monDone := make(chan float64, 1)
	go func() {
		var meter vos.RateMeter
		peak := 0.0
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monStop:
				monDone <- peak
				return
			case now := <-tick.C:
				total := vos.TotalShardStats(eng.ShardStats())
				if r := meter.Observe(total.Processed, now); r > peak {
					peak = r
				}
			}
		}
	}()

	const chunk = 2048
	per := (len(edges) + shards - 1) / shards
	t0 := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []vos.Edge) {
			defer wg.Done()
			for len(part) > 0 {
				m := min(chunk, len(part))
				if err := eng.ProcessBatch(part[:m]); err != nil {
					log.Fatal(err)
				}
				part = part[m:]
			}
		}(edges[lo:hi])
	}
	wg.Wait()
	eng.Flush()
	engTime := time.Since(t0)
	close(monStop)
	peakRate := <-monDone

	// The merged engine state must be bit-identical to the sequential
	// sketch: same array, same β, same estimates.
	a, b := seq.Stats(), eng.Stats()
	if a != b {
		log.Fatalf("MERGE MISMATCH — engine stats %+v, sequential %+v", b, a)
	}
	if q1, q2 := seq.Query(1, 2), eng.Query(1, 2); q1 != q2 {
		log.Fatal("query mismatch between engine and sequential sketch")
	}

	fmt.Printf("\nengine with %d shard(s): %v (%.2fM edges/s, %.2fx sequential) — estimates identical ✓\n",
		shards, engTime.Round(time.Millisecond), rateM(len(edges), engTime),
		seqTime.Seconds()/engTime.Seconds())
	stats := eng.ShardStats()
	for _, st := range stats {
		fmt.Printf("  %s\n", st)
	}
	total := vos.TotalShardStats(stats)
	fmt.Printf("  total: %d applied across %d shards, mean β=%.5f, peak windowed rate %.2fM edges/s\n",
		total.Processed, shards, total.Beta, peakRate/1e6)
}

func rateM(edges int, d time.Duration) float64 {
	return float64(edges) / d.Seconds() / 1e6
}

// generate builds a feasible stream: random subscriptions across users
// and items, with delFrac of events unsubscribing a live edge.
func generate(n, users int, delFrac float64) []vos.Edge {
	rng := rand.New(rand.NewSource(3))
	type key struct {
		u vos.User
		i vos.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]vos.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Delete})
			continue
		}
		k := key{vos.User(rng.Intn(users)), vos.Item(rng.Uint64() % 1_000_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Insert})
	}
	return out
}
