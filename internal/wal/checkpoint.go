package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

var ckptMagic = [8]byte{'V', 'O', 'S', 'C', 'K', 'P', 'T', '1'}

// ckptName returns the filename of the checkpoint covering positions
// [0, pos) of the stream.
func ckptName(pos uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, pos, ckptSuffix)
}

// CheckpointPath returns the path of the checkpoint covering [0, pos) —
// the naming scheme in one place, for tools pairing it with
// ListCheckpoints.
func CheckpointPath(dir string, pos uint64) string {
	return filepath.Join(dir, ckptName(pos))
}

// EncodeCheckpoint frames a serialized sketch as a checkpoint covering
// stream positions [0, pos): magic, position, sketch length, sketch bytes,
// trailing CRC-32C.
func EncodeCheckpoint(pos uint64, sketch []byte) []byte {
	out := make([]byte, 0, len(ckptMagic)+8+8+len(sketch)+4)
	out = append(out, ckptMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, pos)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(sketch)))
	out = append(out, sketch...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// DecodeCheckpoint validates a checkpoint's framing and CRC and returns the
// covered position and the embedded sketch bytes (aliasing data).
func DecodeCheckpoint(data []byte) (pos uint64, sketch []byte, err error) {
	const minLen = 8 + 8 + 8 + 4
	if len(data) < minLen {
		return 0, nil, fmt.Errorf("%w: checkpoint truncated", ErrCorrupt)
	}
	if [8]byte(data[:8]) != ckptMagic {
		return 0, nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	pos = binary.LittleEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint64(data[16:24])
	if n != uint64(len(body)-24) {
		return 0, nil, fmt.Errorf("%w: checkpoint sketch length %d, have %d bytes", ErrCorrupt, n, len(body)-24)
	}
	return pos, body[24:], nil
}

// WriteCheckpoint atomically persists a checkpoint covering [0, pos):
// write to a temp file, fsync, rename into place, fsync the directory.
// Older checkpoint files beyond the most recent two are removed.
func WriteCheckpoint(dir string, pos uint64, sketch []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data := EncodeCheckpoint(pos, sketch)
	tmp, err := os.CreateTemp(dir, "tmp-ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ckptName(pos))); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// Keep the newest two checkpoints: the one just written plus one
	// predecessor as a fallback should the new file prove unreadable.
	all, err := ListCheckpoints(dir)
	if err != nil {
		return err
	}
	for i := 0; i+2 < len(all); i++ {
		if all[i] < pos {
			if err := os.Remove(filepath.Join(dir, ckptName(all[i]))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ListCheckpoints returns the covered positions of the directory's
// checkpoint files in ascending order.
func ListCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []uint64
	for _, ent := range ents {
		if pos, ok := parseSeq(ent.Name(), ckptPrefix, ckptSuffix); ok {
			out = append(out, pos)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// LatestCheckpoint loads the newest checkpoint that validates, skipping
// corrupt ones (a crash can tear at most the file being written, which the
// atomic rename keeps out of the namespace, but disks rot). found is false
// when the directory holds no usable checkpoint.
func LatestCheckpoint(dir string) (pos uint64, sketch []byte, found bool, err error) {
	all, err := ListCheckpoints(dir)
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(all) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(all[i])))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return 0, nil, false, err
		}
		p, sk, err := DecodeCheckpoint(data)
		if err != nil {
			continue // corrupt: fall back to the previous checkpoint
		}
		if p != all[i] {
			continue // filename and payload disagree: treat as corrupt
		}
		return p, sk, true, nil
	}
	return 0, nil, false, nil
}
