package lsh

import (
	"fmt"
	"sort"

	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// Params configure the band structure.
type Params struct {
	// Bands is b, the number of bands.
	Bands int
	// Rows is r, the registers per band.
	Rows int
	// Seed drives bucket hashing.
	Seed uint64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Bands <= 0 || p.Rows <= 0 {
		return fmt.Errorf("lsh: bands and rows must be positive, got %d/%d", p.Bands, p.Rows)
	}
	return nil
}

// SignatureLen returns the required MinHash signature length k = b·r.
func (p Params) SignatureLen() int { return p.Bands * p.Rows }

// CollisionProbability returns 1 − (1 − J^r)^b, the probability that a
// pair with Jaccard similarity j collides in at least one band.
func (p Params) CollisionProbability(j float64) float64 {
	if j <= 0 {
		return 0
	}
	if j >= 1 {
		return 1
	}
	pr := 1.0
	for i := 0; i < p.Rows; i++ {
		pr *= j
	}
	q := 1.0
	for i := 0; i < p.Bands; i++ {
		q *= 1 - pr
	}
	return 1 - q
}

// Threshold returns the approximate similarity at the S-curve's steepest
// point, (1/b)^(1/r): pairs above it are likely candidates.
func (p Params) Threshold() float64 {
	// binary search on [0, 1] for t^r = 1/b
	lo, hi := 0.0, 1.0
	target := 1 / float64(p.Bands)
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		pr := 1.0
		for j := 0; j < p.Rows; j++ {
			pr *= mid
		}
		if pr < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Index is a banded LSH index over user signatures. Insert-only: rebuild
// (cheap, signatures are in the MinHash structure) after heavy deletions,
// or pair it with a dynamic sketch for the verification stage.
type Index struct {
	params  Params
	buckets []map[uint64][]stream.User // per band: bucket hash -> users
	members map[stream.User]struct{}
}

// NewIndex creates an empty index.
func NewIndex(params Params) (*Index, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	buckets := make([]map[uint64][]stream.User, params.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint64][]stream.User)
	}
	return &Index{
		params:  params,
		buckets: buckets,
		members: make(map[stream.User]struct{}),
	}, nil
}

// Params returns the index parameters.
func (ix *Index) Params() Params { return ix.params }

// Len returns the number of indexed users.
func (ix *Index) Len() int { return len(ix.members) }

// bandHash hashes one band of the signature into a bucket key.
func (ix *Index) bandHash(band int, sig []uint64) uint64 {
	h := hashing.Hash64(uint64(band), ix.params.Seed)
	for _, v := range sig[band*ix.params.Rows : (band+1)*ix.params.Rows] {
		h = hashing.Hash64(h^v, ix.params.Seed)
	}
	return h
}

// Add indexes a user's signature. The signature length must equal
// Bands·Rows; it is the caller's MinHash signature (minhash.Signature).
// Adding the same user twice is rejected — rebuild instead.
func (ix *Index) Add(u stream.User, sig []uint64) error {
	if len(sig) != ix.params.SignatureLen() {
		return fmt.Errorf("lsh: signature length %d, want %d", len(sig), ix.params.SignatureLen())
	}
	if _, dup := ix.members[u]; dup {
		return fmt.Errorf("lsh: user %d already indexed", u)
	}
	ix.members[u] = struct{}{}
	for band := 0; band < ix.params.Bands; band++ {
		key := ix.bandHash(band, sig)
		ix.buckets[band][key] = append(ix.buckets[band][key], u)
	}
	return nil
}

// Candidates returns the distinct users sharing at least one band bucket
// with the given signature, excluding self (sorted for determinism).
func (ix *Index) Candidates(self stream.User, sig []uint64) ([]stream.User, error) {
	if len(sig) != ix.params.SignatureLen() {
		return nil, fmt.Errorf("lsh: signature length %d, want %d", len(sig), ix.params.SignatureLen())
	}
	seen := make(map[stream.User]struct{})
	for band := 0; band < ix.params.Bands; band++ {
		key := ix.bandHash(band, sig)
		for _, u := range ix.buckets[band][key] {
			if u != self {
				seen[u] = struct{}{}
			}
		}
	}
	out := make([]stream.User, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Scorer estimates the similarity of a candidate pair during
// verification; the similarity package's Estimator satisfies it.
type Scorer interface {
	EstimateJaccard(u, v stream.User) float64
}

// Near runs the full candidate-generation + verification pipeline: LSH
// candidates for the signature, scored by the estimator, filtered at
// minJaccard, sorted by descending score (ties by user ID).
func (ix *Index) Near(self stream.User, sig []uint64, score Scorer, minJaccard float64) ([]stream.User, error) {
	cands, err := ix.Candidates(self, sig)
	if err != nil {
		return nil, err
	}
	type scored struct {
		u stream.User
		j float64
	}
	kept := make([]scored, 0, len(cands))
	for _, c := range cands {
		if j := score.EstimateJaccard(self, c); j >= minJaccard {
			kept = append(kept, scored{c, j})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].j != kept[j].j {
			return kept[i].j > kept[j].j
		}
		return kept[i].u < kept[j].u
	})
	out := make([]stream.User, len(kept))
	for i, s := range kept {
		out[i] = s.u
	}
	return out, nil
}
