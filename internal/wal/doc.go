// Package wal implements the durability layer of the sharded VOS engine: a
// segmented, CRC-checksummed write-ahead log of edge operations plus an
// atomically written checkpoint of engine state, so an engine can restart
// from disk and replay only the stream suffix instead of the whole graph
// stream.
//
// Layout of a log directory:
//
//	wal-<base>.seg        segments; <base> is the stream position (total
//	                      edges appended before this segment) in 20 decimal
//	                      digits, so lexicographic order is replay order
//	checkpoint-<pos>.ckpt checkpoints; <pos> is the stream position the
//	                      snapshot covers
//	lock                  advisory flock guarding the directory against a
//	                      second live log (see Options.DisableLock)
//
// Segment format: an 8-byte magic "VOSWAL01", the u64 little-endian base
// position, then records. Each record frames one appended batch:
//
//	u32 LE payload length | u32 LE CRC-32C of payload | payload
//
// where the payload is a uvarint edge count followed by count edges in the
// stream binary-codec shape — uvarint (user<<1 | opBit), uvarint item. The
// CRC makes torn or bit-rotted tails detectable: iteration stops cleanly at
// the first invalid frame of the last segment (a crash mid-append), and
// Open truncates that tail so the file ends at a record boundary again.
// Checkpoint granularity is the record (= accepted batch), so a checkpoint
// position never splits a record — which is what makes replay exact: VOS
// updates are XOR toggles, and replaying an edge twice would corrupt
// parity instead of being idempotent.
//
// Checkpoint format: an 8-byte magic "VOSCKPT1", u64 LE position, u64 LE
// state length, the state bytes, and a trailing u32 LE CRC-32C over
// everything before it. The state bytes are opaque to this package — the
// engine stores a plain merged sketch ("VOS1", core.VOS.MarshalBinary) or,
// in sliding-window mode, a bucket ring ("VWN1", core.Window.MarshalBinary).
// Checkpoints are written to a temp file, fsynced, and renamed into place,
// so a crash mid-checkpoint leaves the previous checkpoint intact; the
// newest two are retained so recovery can fall back past an unreadable one.
//
// # Concurrency and lifecycle
//
// A Log serialises its own appends internally and is safe for concurrent
// Append calls; Replay/SkipTo are start-up-time operations on a log not
// yet receiving appends. The engine layers its own gate on top (appends
// never straddle a checkpoint position — see internal/engine). After
// Close, every method fails; the directory flock is released on Close and
// by the kernel on process death, so a crash never wedges its own
// recovery.
package wal
