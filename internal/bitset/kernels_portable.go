//go:build purego || (!amd64 && !arm64)

package bitset

// Portable dispatch: the reference kernels back the public methods, either
// because the purego tag asked for them or because the target is not one
// the blocked shapes are tuned for.

const fastKernels = false

func gatherWords(dstW, src []uint64, n uint64, idx []uint64) uint64 {
	return gatherWordsRef(dstW, src, n, idx)
}

func gatherXorCountWords(src []uint64, n uint64, idx []uint64, ows []uint64) uint64 {
	return gatherXorCountRef(src, n, idx, ows)
}

func xorCountWordsKernel(a, b []uint64) uint64 {
	return xorCountWordsRef(a, b)
}
