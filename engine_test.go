package vos_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/vossketch/vos"
)

// engineTestStream builds a feasible insert+delete stream.
func engineTestStream(n, users int, delFrac float64, seed int64) []vos.Edge {
	rng := rand.New(rand.NewSource(seed))
	type key struct {
		u vos.User
		i vos.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]vos.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Delete})
			continue
		}
		k := key{vos.User(rng.Intn(users)), vos.Item(rng.Uint64() % 100_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Insert})
	}
	return out
}

// TestEngineCrashRecoveryParity is the public-API form of the durability
// guarantee, extending the TestEngineAccuracyParity harness across a
// crash: ingest half the planted insert+delete stream into a durable
// engine, hard-stop it (no Flush, no Close), reopen from disk with
// OpenEngine, finish the stream, and assert the estimates — and the
// serialized sketch bytes — are bit-identical to an uninterrupted
// single-sketch run.
func TestEngineCrashRecoveryParity(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 19, SketchBits: 1024, Seed: 13}
	edges := engineTestStream(24_000, 250, 0.3, 6)
	half := len(edges) / 2

	single := vos.MustNew(cfg)
	for _, e := range edges {
		single.Process(e)
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			// DisableLock: the crash is simulated in-process, so the
			// abandoned engine cannot release the directory flock the way
			// a real process death would.
			ecfg := vos.EngineConfig{
				Sketch:     cfg,
				Shards:     shards,
				Durability: &vos.DurabilityConfig{DisableLock: true},
			}

			crashed, err := vos.OpenEngine(dir, ecfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < half; i += 200 {
				end := i + 200
				if end > half {
					end = half
				}
				if err := crashed.ProcessBatch(edges[i:end]); err != nil {
					t.Fatal(err)
				}
			}
			// Hard stop: the engine is abandoned mid-stream. Every
			// acknowledged batch is on disk (SyncEveryBatch default).

			eng, err := vos.OpenEngine(dir, ecfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if err := eng.ProcessBatch(edges[half:]); err != nil {
				t.Fatal(err)
			}
			eng.Flush()
			for u := vos.User(0); u < 30; u++ {
				for v := u + 1; v < 30; v += 5 {
					if got, want := eng.Query(u, v), single.Query(u, v); got != want {
						t.Fatalf("recovered Query(%d,%d) = %+v, single sketch %+v", u, v, got, want)
					}
				}
			}
			got, err := eng.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered engine serializes differently from the uninterrupted sketch")
			}
		})
	}
}

// TestEngineCheckpointRestart exercises the public checkpoint workflow: a
// durable engine checkpoints mid-stream, is gracefully closed, and a
// reopened engine resumes with full parity.
func TestEngineCheckpointRestart(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 29}
	edges := engineTestStream(10_000, 150, 0.25, 8)
	dir := t.TempDir()
	ecfg := vos.EngineConfig{
		Sketch:     cfg,
		Shards:     2,
		Durability: &vos.DurabilityConfig{Sync: vos.SyncEveryN, SyncEveryN: 512},
	}

	eng, err := vos.OpenEngine(dir, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessBatch(edges[:len(edges)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessBatch(edges[len(edges)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	single := vos.MustNew(cfg)
	for _, e := range edges {
		single.Process(e)
	}
	reopened, err := vos.OpenEngine(dir, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for u := vos.User(0); u < 20; u++ {
		for v := u + 1; v < 20; v += 3 {
			if got, want := reopened.Query(u, v), single.Query(u, v); got != want {
				t.Fatalf("reopened Query(%d,%d) = %+v, want %+v", u, v, got, want)
			}
		}
	}
	if _, err := vos.MustNewEngine(vos.EngineConfig{Sketch: cfg}).Checkpoint(); err != vos.ErrEngineNoDurability {
		t.Fatalf("Checkpoint on memory-only engine = %v, want ErrEngineNoDurability", err)
	}
}

// TestEngineAccuracyParity is the public-API form of the sharding
// guarantee: a K-shard Engine returns identical estimates to a single
// Sketch over the same insert+delete stream.
func TestEngineAccuracyParity(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 19, SketchBits: 1024, Seed: 13}
	edges := engineTestStream(30_000, 300, 0.3, 4)

	single := vos.MustNew(cfg)
	for _, e := range edges {
		single.Process(e)
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng := vos.MustNewEngine(vos.EngineConfig{Sketch: cfg, Shards: shards})
			defer eng.Close()
			if err := eng.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			eng.Flush()
			for u := vos.User(0); u < 30; u++ {
				for v := u + 1; v < 30; v += 5 {
					if got, want := eng.Query(u, v), single.Query(u, v); got != want {
						t.Fatalf("engine Query(%d,%d) = %+v, single sketch %+v", u, v, got, want)
					}
				}
			}
		})
	}
}
