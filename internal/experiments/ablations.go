package experiments

import (
	"fmt"
	"math/rand"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/exact"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/oph"
	"github.com/vossketch/vos/internal/similarity"
	"github.com/vossketch/vos/internal/stream"
)

// Ablations probe the reproduction's design choices (see README.md), beyond what the
// paper plots:
//
//   - abl-lambda: sensitivity of VOS to the virtual-sketch multiplier λ at
//     fixed memory (the paper fixes λ = 2 with one sentence of
//     justification).
//   - abl-load: accuracy as the shared array fills up (β sweep) — the
//     contamination-correction stress test.
//   - abl-dense: the three OPH densification schemes on static sparse
//     sets, where densification is supposed to matter.
//   - abl-delbias: estimator bias as a function of deletion pressure, the
//     mechanism behind Figure 3's gaps.

// vosVariantRun processes the dataset through one VOS configuration and
// returns final AAPE (ŝ), ARMSE (Ĵ) and β over the tracked pairs.
func vosVariantRun(ds Dataset, pairs []exact.Pair, cfg core.Config) (aape, armse, beta float64, err error) {
	v, err := core.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	tracker, err := exact.NewPairTracker(pairs)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, e := range ds.Edges {
		v.Process(e)
		tracker.MustApply(e)
	}
	truthS := make([]float64, len(pairs))
	truthJ := make([]float64, len(pairs))
	estS := make([]float64, len(pairs))
	estJ := make([]float64, len(pairs))
	for i, p := range pairs {
		truthS[i] = float64(tracker.CommonItems(i))
		truthJ[i] = tracker.Jaccard(i)
		q := v.Query(p.U, p.V)
		estS[i] = q.Common
		estJ[i] = q.Jaccard
	}
	return metrics.AAPE(truthS, estS), metrics.ARMSE(truthJ, estJ), v.Beta(), nil
}

// AblLambda regenerates the λ-sensitivity table on the YouTube workload.
func AblLambda(opts Options) (*Table, error) {
	opts = opts.normalized()
	ds := BuildDataset(opts.profile(), opts)
	pairs, median, err := TrackedPairs(ds, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-lambda",
		Title:  "VOS accuracy vs virtual-sketch multiplier λ (fixed memory)",
		Header: []string{"lambda", "k_vos(bits)", "beta", "AAPE", "ARMSE"},
	}
	t.AddNote("dataset %s: %d elements, %d tracked pairs (median s = %d), m = 32·%d·|U| bits",
		ds.Profile.Name, len(ds.Edges), len(pairs), median, opts.K32)

	mem := 32 * uint64(opts.K32) * ds.Profile.Users
	for _, lambda := range []int{1, 2, 4, 8, 16} {
		cfg := core.Config{
			MemoryBits: mem,
			SketchBits: lambda * 32 * opts.K32,
			Seed:       uint64(opts.Seed),
		}
		aape, armse, beta, err := vosVariantRun(ds, pairs, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", lambda),
			fmt.Sprintf("%d", cfg.SketchBits),
			fmt.Sprintf("%.4f", beta),
			fmt.Sprintf("%.4f", aape),
			fmt.Sprintf("%.4f", armse),
		)
	}
	return t, nil
}

// AblLoad regenerates the array-load sweep: the same workload through
// shrinking shared arrays, pushing β up.
func AblLoad(opts Options) (*Table, error) {
	opts = opts.normalized()
	ds := BuildDataset(opts.profile(), opts)
	pairs, median, err := TrackedPairs(ds, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-load",
		Title:  "VOS accuracy vs shared-array load β (memory sweep)",
		Header: []string{"mem_fraction", "m(bits)", "beta", "AAPE", "ARMSE"},
	}
	t.AddNote("dataset %s: %d elements, %d tracked pairs (median s = %d); λ = %d, k32 = %d",
		ds.Profile.Name, len(ds.Edges), len(pairs), median, opts.Lambda, opts.K32)

	full := 32 * uint64(opts.K32) * ds.Profile.Users
	kv := opts.Lambda * 32 * opts.K32
	for _, div := range []uint64{256, 64, 16, 4, 1} {
		mem := full / div
		if mem < uint64(kv) {
			mem = uint64(kv)
		}
		cfg := core.Config{MemoryBits: mem, SketchBits: kv, Seed: uint64(opts.Seed)}
		aape, armse, beta, err := vosVariantRun(ds, pairs, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("1/%d", div),
			fmt.Sprintf("%d", mem),
			fmt.Sprintf("%.4f", beta),
			fmt.Sprintf("%.4f", aape),
			fmt.Sprintf("%.4f", armse),
		)
	}
	return t, nil
}

// AblDense compares the sparse NIPS'12 OPH estimator against the three
// densification schemes on static sparse sets across a Jaccard range.
func AblDense(opts Options) (*Table, error) {
	opts = opts.normalized()
	const (
		k      = 256
		size   = 60 // sparse: size < k leaves most bins empty
		trials = 40
	)
	t := &Table{
		ID:     "abl-dense",
		Title:  "OPH densification variants on static sparse sets",
		Header: []string{"true_J", "sparse", "rotation", "improved", "optimal"},
	}
	t.AddNote("planted pairs, |S| = %d, k = %d bins, %d trials per cell; cells are mean |Ĵ − J|",
		size, k, trials)

	for _, wantJ := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		common := gen.PlantedJaccard(size, wantJ)
		trueJ := float64(common) / float64(2*size-common)
		var errSparse, errRot, errImp, errOpt float64
		for trial := 0; trial < trials; trial++ {
			s := oph.New(k, uint64(opts.Seed)+uint64(trial))
			for _, e := range gen.PlantedPair(1, 2, size, size, common, opts.Seed+int64(trial)) {
				s.Process(e)
			}
			errSparse += absf(s.EstimateJaccard(1, 2) - trueJ)
			errRot += absf(s.DensifyRotation(1).EstimateJaccard(s.DensifyRotation(2)) - trueJ)
			errImp += absf(s.DensifyImproved(1).EstimateJaccard(s.DensifyImproved(2)) - trueJ)
			errOpt += absf(s.DensifyOptimal(1).EstimateJaccard(s.DensifyOptimal(2)) - trueJ)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", trueJ),
			fmt.Sprintf("%.4f", errSparse/trials),
			fmt.Sprintf("%.4f", errRot/trials),
			fmt.Sprintf("%.4f", errImp/trials),
			fmt.Sprintf("%.4f", errOpt/trials),
		)
	}
	return t, nil
}

// AblDelBias regenerates the deletion-pressure bias table: mean signed
// error of ŝ for every method as the deleted fraction grows.
//
// The deletions are *uncompensated*: a single mass-deletion event removes
// a fraction of all edges at the end of the stream and nothing is
// re-subscribed afterwards. This isolates the §III sampling bias — a
// MinHash/OPH register emptied by the deletion of its minimum has no later
// insertion to refill from. (A churn model that re-inserts every deleted
// edge provably restores MinHash registers by end of stream — the deleted
// minimum itself comes back and retakes its register — so it cannot
// exhibit the bias at final time; gen.Churn remains available for workload
// generation, but this ablation uses the mass-deletion form.)
func AblDelBias(opts Options) (*Table, error) {
	opts = opts.normalized()
	scaled := opts.profile().Scaled(opts.Scale / 2)
	base := gen.Bipartite(scaled, opts.Seed)

	t := &Table{
		ID:     "abl-delbias",
		Title:  "Mean signed error of ŝ vs deleted fraction (uncompensated mass deletion)",
		Header: []string{"deleted", "method", "mean_bias", "AAPE"},
	}
	t.AddNote("dataset %s shape, %d base edges; one terminal mass deletion removes the given fraction",
		scaled.Name, len(base))
	t.AddNote("expected shape: MinHash/OPH bias grows with the deleted fraction; VOS and RP stay centred")

	for _, churn := range []float64{0, 0.2, 0.5, 0.8} {
		edges := withTerminalDeletion(base, churn, opts.Seed+11)
		store := exact.NewStore()
		for _, e := range edges {
			store.MustApply(e)
		}
		top := store.TopUsers(opts.TopUsers)
		pairs := store.PairsWithCommonItems(top, opts.MinCommon, opts.MaxPairs)
		if len(pairs) == 0 {
			return nil, fmt.Errorf("experiments: no tracked pairs at deleted fraction %.1f", churn)
		}
		budget := similarity.Budget{K32: opts.K32, Users: int(scaled.Users), Lambda: opts.Lambda}
		ests, err := similarity.NewAll(budget, uint64(opts.Seed))
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			for _, est := range ests {
				est.Process(e)
			}
		}
		truthS := make([]float64, len(pairs))
		estS := make([]float64, len(pairs))
		for _, est := range ests {
			for i, p := range pairs {
				truthS[i] = float64(store.CommonItems(p.U, p.V))
				estS[i] = est.EstimateCommonItems(p.U, p.V)
			}
			t.AddRow(
				fmt.Sprintf("%.1f", churn),
				est.Name(),
				fmt.Sprintf("%+.2f", metrics.MeanBias(truthS, estS)),
				fmt.Sprintf("%.4f", metrics.AAPE(truthS, estS)),
			)
		}
	}
	return t, nil
}

// withTerminalDeletion appends one mass-deletion burst removing each edge
// independently with probability frac, in deterministic seeded order.
func withTerminalDeletion(base []stream.Edge, frac float64, seed int64) []stream.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := append([]stream.Edge(nil), base...)
	for _, e := range base {
		if rng.Float64() < frac {
			out = append(out, stream.Edge{User: e.User, Item: e.Item, Op: stream.Delete})
		}
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Exact-oracle assisted deep-dive used by tests and the inspector: run a
// dataset and return side-by-side per-pair numbers for one method.
type PairReport struct {
	Pair      exact.Pair
	TrueS     int
	EstS      float64
	TrueJ     float64
	EstJ      float64
	TrueCardU int
	TrueCardV int
}

// ComparePairs runs the dataset through one method and reports per-pair
// truth vs estimate at end of stream.
func ComparePairs(ds Dataset, pairs []exact.Pair, method string, opts Options) ([]PairReport, error) {
	opts = opts.normalized()
	budget := similarity.Budget{K32: opts.K32, Users: int(ds.Profile.Users), Lambda: opts.Lambda}
	est, err := similarity.New(method, budget, uint64(opts.Seed))
	if err != nil {
		return nil, err
	}
	store := exact.NewStore()
	for _, e := range ds.Edges {
		est.Process(e)
		if err := store.Apply(e); err != nil {
			return nil, err
		}
	}
	out := make([]PairReport, len(pairs))
	for i, p := range pairs {
		out[i] = PairReport{
			Pair:      p,
			TrueS:     store.CommonItems(p.U, p.V),
			EstS:      est.EstimateCommonItems(p.U, p.V),
			TrueJ:     store.Jaccard(p.U, p.V),
			EstJ:      est.EstimateJaccard(p.U, p.V),
			TrueCardU: store.Cardinality(p.U),
			TrueCardV: store.Cardinality(p.V),
		}
	}
	return out, nil
}
