package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/stream"
)

var winTestCfg = Config{MemoryBits: 1 << 14, SketchBits: 256, Seed: 7}

func winEdge(r *rand.Rand) stream.Edge {
	op := stream.Insert
	if r.Intn(4) == 0 {
		op = stream.Delete
	}
	return stream.Edge{
		User: stream.User(r.Intn(50)),
		Item: stream.Item(r.Intn(500)),
		Op:   op,
	}
}

// mustEqualSketchBytes asserts the two sketches serialize to identical
// bytes — the window-parity bar: same array, same counters, same config.
func mustEqualSketchBytes(t *testing.T, got, want *VOS, msg string) {
	t.Helper()
	gb, err := got.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: marshal got: %v", msg, err)
	}
	wb, err := want.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: marshal want: %v", msg, err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatalf("%s: window sketch bytes diverge from fresh in-window sketch (%d vs %d bytes)",
			msg, len(gb), len(wb))
	}
}

// TestWindowParity is the tentpole property: after any sequence of ingests
// and rotations, the live window sketch is bit-identical (serialized
// bytes) to a fresh sketch built from only the in-window edges.
func TestWindowParity(t *testing.T) {
	for _, buckets := range []int{1, 2, 3, 8} {
		r := rand.New(rand.NewSource(int64(buckets)))
		w, err := NewWindowAt(winTestCfg, buckets, time.Second, time.Unix(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		// inWindow[k] holds the edges of the k-th live bucket slot.
		inWindow := make([][]stream.Edge, buckets)
		for round := 0; round < 6*buckets; round++ {
			for i := 0; i < 200; i++ {
				e := winEdge(r)
				w.Process(e)
				inWindow[buckets-1] = append(inWindow[buckets-1], e)
			}
			fresh := MustNew(winTestCfg)
			for _, be := range inWindow {
				for _, e := range be {
					fresh.Process(e)
				}
			}
			mustEqualSketchBytes(t, w.Merged(), fresh, "B="+string(rune('0'+buckets)))

			w.Rotate()
			copy(inWindow, inWindow[1:])
			inWindow[buckets-1] = nil
		}
		if w.Rotations() != uint64(6*buckets) {
			t.Fatalf("rotations = %d, want %d", w.Rotations(), 6*buckets)
		}
	}
}

// TestWindowTumbling pins B=1 semantics: each rotation forgets everything.
func TestWindowTumbling(t *testing.T) {
	w, err := NewWindowAt(winTestCfg, 1, time.Second, time.Unix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		w.Process(winEdge(r))
	}
	if w.Merged().Stats().OnesCount == 0 {
		t.Fatal("expected a loaded array before rotation")
	}
	w.Rotate()
	st := w.Merged().Stats()
	if st.OnesCount != 0 || st.Users != 0 {
		t.Fatalf("tumbling rotation should clear everything, got ones=%d users=%d", st.OnesCount, st.Users)
	}
	mustEqualSketchBytes(t, w.Merged(), MustNew(winTestCfg), "post-tumble")
}

func TestWindowAdvanceTo(t *testing.T) {
	w, err := NewWindow(winTestCfg, 4, time.Second, time.Unix(10, 500))
	if err != nil {
		t.Fatal(err)
	}
	// Epoch alignment: the current bucket covering t=10.0000005s ends at 11s.
	if got := w.End(); !got.Equal(time.Unix(11, 0)) {
		t.Fatalf("aligned end = %v, want 11s", got)
	}
	// Clock skew: an instant before the current end never moves the window.
	if n := w.AdvanceTo(time.Unix(10, 999)); n != 0 {
		t.Fatalf("backwards advance rotated %d times", n)
	}
	if n := w.AdvanceTo(time.Unix(1, 0)); n != 0 {
		t.Fatalf("pre-window advance rotated %d times", n)
	}
	// Crossing one boundary rotates once.
	if n := w.AdvanceTo(time.Unix(11, 0)); n != 1 {
		t.Fatalf("advance to end rotated %d times, want 1", n)
	}
	if got := w.End(); !got.Equal(time.Unix(12, 0)) {
		t.Fatalf("end after advance = %v, want 12s", got)
	}
	// A gap much longer than the window: boundary count is reported in
	// full, physical rotations are capped at B, and the clock lands on the
	// right boundary.
	w.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert})
	if n := w.AdvanceTo(time.Unix(1000, 1)); n != 989 {
		t.Fatalf("long-gap advance reported %d boundaries, want 989", n)
	}
	if got := w.End(); !got.Equal(time.Unix(1001, 0)) {
		t.Fatalf("end after long gap = %v, want 1001s", got)
	}
	if st := w.Merged().Stats(); st.OnesCount != 0 || st.Users != 0 {
		t.Fatalf("long-gap advance should clear the window, got ones=%d users=%d", st.OnesCount, st.Users)
	}
}

func TestWindowMarshalRoundTrip(t *testing.T) {
	w, err := NewWindowAt(winTestCfg, 3, 2*time.Second, time.Unix(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for round := 0; round < 5; round++ {
		for i := 0; i < 150; i++ {
			w.Process(winEdge(r))
		}
		w.Rotate()
	}
	for i := 0; i < 70; i++ {
		w.Process(winEdge(r)) // current bucket partially filled
	}
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsWindowData(data) {
		t.Fatal("serialized window not recognised by IsWindowData")
	}
	got, err := UnmarshalWindow(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Buckets() != 3 || got.BucketDuration() != 2*time.Second || !got.End().Equal(w.End()) {
		t.Fatalf("round-trip metadata mismatch: B=%d d=%v end=%v", got.Buckets(), got.BucketDuration(), got.End())
	}
	mustEqualSketchBytes(t, got.Merged(), w.Merged(), "round-trip merged view")
	for k := 0; k < 3; k++ {
		mustEqualSketchBytes(t, got.Bucket(k), w.Bucket(k), "round-trip bucket")
	}
	// The restored window must keep rotating correctly.
	got.Rotate()
	w.Rotate()
	mustEqualSketchBytes(t, got.Merged(), w.Merged(), "post-round-trip rotation")
}

func TestWindowMarshalRejectsCorrupt(t *testing.T) {
	w, _ := NewWindowAt(winTestCfg, 2, time.Second, time.Unix(2, 0))
	w.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert})
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)-3],
		"trailing":  append(append([]byte{}, data...), 0),
	}
	for name, c := range cases {
		if _, err := UnmarshalWindow(c); err == nil {
			t.Errorf("%s: UnmarshalWindow accepted corrupt input", name)
		}
	}
	if _, err := UnmarshalVOS(data); err == nil {
		t.Error("UnmarshalVOS accepted window bytes")
	}
}

// TestWindowUnmarshalHostileBucketCount: a header claiming a huge bucket
// count alongside one valid bucket must fail with ErrCorrupt on the
// missing payload — allocation stays proportional to the input, the same
// hostile-header contract UnmarshalVOS enforces one layer down.
func TestWindowUnmarshalHostileBucketCount(t *testing.T) {
	w, err := NewWindowAt(winTestCfg, 1, time.Second, time.Unix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	w.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert})
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// nb lives after the 4-byte magic + bucketNS + endNS.
	forged := append([]byte{}, data...)
	binary.LittleEndian.PutUint64(forged[4+8+8:], uint64(len(data))/8) // largest nb the plausibility bound admits
	if _, err := UnmarshalWindow(forged); err == nil {
		t.Fatal("hostile bucket count accepted")
	}
	// Mismatched bucket configs must also be rejected: two valid buckets
	// serialized with different seeds cannot form one window.
	other := MustNew(Config{MemoryBits: winTestCfg.MemoryBits, SketchBits: winTestCfg.SketchBits, Seed: 99})
	ob, _ := other.MarshalBinary()
	wb, _ := w.Bucket(0).MarshalBinary()
	var buf []byte
	buf = append(buf, data[:4+8+8]...)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], 2)
	buf = append(buf, scratch[:]...)
	for _, b := range [][]byte{wb, ob} {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(b)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, b...)
	}
	if _, err := UnmarshalWindow(buf); err == nil {
		t.Fatal("window with mismatched bucket configs accepted")
	}
}

func TestUnmerge(t *testing.T) {
	a := MustNew(winTestCfg)
	b := MustNew(winTestCfg)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a.Process(winEdge(r))
	}
	before, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		b.Process(winEdge(r))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Unmerge(b); err != nil {
		t.Fatal(err)
	}
	after, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("Merge followed by Unmerge did not restore the sketch")
	}
	other := MustNew(Config{MemoryBits: 1 << 10, SketchBits: 64, Seed: 7})
	if err := a.Unmerge(other); err == nil {
		t.Fatal("Unmerge accepted a mismatched config")
	}
}

func TestWindowConstructorValidation(t *testing.T) {
	if _, err := NewWindow(winTestCfg, 0, time.Second, time.Unix(0, 0)); err == nil {
		t.Error("accepted 0 buckets")
	}
	if _, err := NewWindow(winTestCfg, 4, 0, time.Unix(0, 0)); err == nil {
		t.Error("accepted zero bucket duration")
	}
	if _, err := NewWindow(Config{}, 4, time.Second, time.Unix(0, 0)); err == nil {
		t.Error("accepted invalid sketch config")
	}
}
