package core

import (
	"github.com/vossketch/vos/internal/bitset"
	"github.com/vossketch/vos/internal/stream"
)

// Batch queries: a similarity search evaluates one user against many
// candidates. Query recovers both users' virtual sketches per call, so u's
// k array positions would be rehashed |candidates| times; QueryMany
// recovers u once into a dense snapshot and reuses it, halving hash work
// and improving locality. Results are identical to per-pair Query calls.

// Recovered is a dense snapshot of one user's virtual odd sketch, reusable
// across queries against a fixed sketch state. It is invalidated by any
// subsequent Process call (the shared array changes underneath it);
// re-recover after updates.
type Recovered struct {
	user stream.User
	bits *bitset.Bitset
	card int64
	beta float64
}

// User returns the user the snapshot belongs to.
func (r *Recovered) User() stream.User { return r.user }

// Recover snapshots user u's virtual odd sketch Ô_u (k bits) together
// with the cardinality and array load at recovery time.
func (v *VOS) Recover(u stream.User) *Recovered {
	k := v.cfg.SketchBits
	bits := bitset.New(uint64(k))
	for j := 0; j < k; j++ {
		if v.arr.Get(v.position(u, j)) {
			bits.Set(uint64(j))
		}
	}
	return &Recovered{user: u, bits: bits, card: v.card[u], beta: v.Beta()}
}

// QueryRecovered estimates the similarity between a recovered snapshot
// and user w, equivalent to Query(r.User(), w) against the sketch state
// at recovery time.
func (v *VOS) QueryRecovered(r *Recovered, w stream.User) Estimate {
	k := v.cfg.SketchBits
	z := 0
	for j := 0; j < k; j++ {
		if r.bits.Get(uint64(j)) != v.arr.Get(v.position(w, j)) {
			z++
		}
	}
	return v.estimateFrom(z, r.card, v.card[w], r.beta)
}

// QueryMany estimates u against every candidate in one pass, recovering u
// once. The result order matches candidates; querying u against itself
// yields the degenerate self estimate like Query does.
func (v *VOS) QueryMany(u stream.User, candidates []stream.User) []Estimate {
	r := v.Recover(u)
	out := make([]Estimate, len(candidates))
	for i, w := range candidates {
		out[i] = v.QueryRecovered(r, w)
	}
	return out
}
