package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Insert.String() != "+" || Delete.String() != "-" {
		t.Errorf("op strings: %q %q", Insert, Delete)
	}
	if !Insert.Valid() || !Delete.Valid() || Op(7).Valid() {
		t.Error("Op.Valid misclassifies")
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Errorf("unknown op renders %q", got)
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{User: 3, Item: 9, Op: Delete}
	if got := e.String(); got != "(3, 9, -)" {
		t.Errorf("Edge.String() = %q", got)
	}
}

func TestSliceSource(t *testing.T) {
	edges := []Edge{
		{1, 10, Insert},
		{2, 20, Insert},
		{1, 10, Delete},
	}
	s := NewSliceSource(edges)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s)
	if len(got) != 3 || got[2] != edges[2] {
		t.Fatalf("collect mismatch: %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted source yielded an element")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != edges[0] {
		t.Error("reset did not rewind")
	}
}

func TestCollectN(t *testing.T) {
	s := NewSliceSource([]Edge{{1, 1, Insert}, {2, 2, Insert}, {3, 3, Insert}})
	if got := CollectN(s, 2); len(got) != 2 {
		t.Errorf("CollectN(2) returned %d", len(got))
	}
	if got := CollectN(s, 10); len(got) != 1 {
		t.Errorf("CollectN past end returned %d", len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Edge, bool) {
		if n >= 3 {
			return Edge{}, false
		}
		n++
		return Edge{User: User(n), Item: 1, Op: Insert}, true
	})
	if got := len(Collect(src)); got != 3 {
		t.Errorf("FuncSource yielded %d", got)
	}
}

func TestForEach(t *testing.T) {
	var seen []Edge
	ForEach(NewSliceSource([]Edge{{1, 2, Insert}, {3, 4, Delete}}), func(e Edge) {
		seen = append(seen, e)
	})
	if len(seen) != 2 || seen[1].Op != Delete {
		t.Errorf("ForEach saw %v", seen)
	}
}

func TestStats(t *testing.T) {
	st := NewStats()
	st.Observe(Edge{1, 10, Insert})
	st.Observe(Edge{1, 11, Insert})
	st.Observe(Edge{2, 10, Insert})
	st.Observe(Edge{1, 10, Delete})
	if st.Inserts != 3 || st.Deletes != 1 {
		t.Errorf("counts: +%d −%d", st.Inserts, st.Deletes)
	}
	if st.Users() != 2 || st.Items() != 2 {
		t.Errorf("distinct: users=%d items=%d", st.Users(), st.Items())
	}
	if st.LiveEdges() != 2 {
		t.Errorf("live = %d", st.LiveEdges())
	}
	if st.Elements() != 4 {
		t.Errorf("elements = %d", st.Elements())
	}
	if !strings.Contains(st.String(), "elements=4") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestValidatorAcceptsFeasible(t *testing.T) {
	edges := []Edge{
		{1, 10, Insert},
		{1, 11, Insert},
		{1, 10, Delete},
		{1, 10, Insert}, // re-subscription after unsubscription is legal
	}
	if err := Validate(edges); err != nil {
		t.Fatalf("feasible stream rejected: %v", err)
	}
}

func TestValidatorRejectsDuplicateInsert(t *testing.T) {
	err := Validate([]Edge{{1, 10, Insert}, {1, 10, Insert}})
	if err == nil {
		t.Fatal("duplicate insert accepted")
	}
	fe, ok := err.(*FeasibilityError)
	if !ok {
		t.Fatalf("wrong error type %T", err)
	}
	if fe.Position != 1 {
		t.Errorf("position = %d, want 1", fe.Position)
	}
	if !strings.Contains(fe.Error(), "duplicate subscription") {
		t.Errorf("message = %q", fe.Error())
	}
}

func TestValidatorRejectsDeleteOfAbsent(t *testing.T) {
	err := Validate([]Edge{{1, 10, Delete}})
	if err == nil {
		t.Fatal("delete of absent edge accepted")
	}
	if !strings.Contains(err.Error(), "unsubscription of absent edge") {
		t.Errorf("message = %q", err)
	}
}

func TestValidatorRejectsInvalidOp(t *testing.T) {
	v := NewValidator()
	if err := v.Observe(Edge{1, 1, Op(9)}); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestValidatorContinuesAfterViolation(t *testing.T) {
	v := NewValidator()
	_ = v.Observe(Edge{1, 10, Insert})
	if err := v.Observe(Edge{1, 10, Insert}); err == nil {
		t.Fatal("expected violation")
	}
	// State unchanged by the bad element: the edge is still live.
	if err := v.Observe(Edge{1, 10, Delete}); err != nil {
		t.Fatalf("delete after skipped violation failed: %v", err)
	}
	if v.LiveEdges() != 0 {
		t.Errorf("live = %d", v.LiveEdges())
	}
}

func TestValidatingSourcePanics(t *testing.T) {
	src := NewValidatingSource(NewSliceSource([]Edge{{1, 1, Delete}}))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on infeasible element")
		}
	}()
	src.Next()
}

func TestValidatingSourcePassesThrough(t *testing.T) {
	edges := []Edge{{1, 1, Insert}, {1, 1, Delete}}
	src := NewValidatingSource(NewSliceSource(edges))
	got := Collect(src)
	if len(got) != 2 {
		t.Errorf("passed %d elements", len(got))
	}
}

func TestTextRoundTrip(t *testing.T) {
	edges := []Edge{
		{1, 10, Insert},
		{2, 20, Delete},
		{18446744073709551615, 18446744073709551614, Insert}, // max uint64
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(edges) {
		t.Fatalf("got %d edges", len(got))
	}
	for i := range edges {
		if got[i] != edges[i] {
			t.Errorf("edge %d: %v != %v", i, got[i], edges[i])
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n+ 1 2\n  \n- 1 2\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d edges", len(got))
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad op":       "* 1 2\n",
		"wrong fields": "+ 1\n",
		"bad user":     "+ x 2\n",
		"bad item":     "+ 1 y\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	err := quick.Check(func(users, items []uint32, dels []bool) bool {
		n := len(users)
		if len(items) < n {
			n = len(items)
		}
		if len(dels) < n {
			n = len(dels)
		}
		edges := make([]Edge, n)
		for i := 0; i < n; i++ {
			op := Insert
			if dels[i] {
				op = Delete
			}
			edges[i] = Edge{User: User(users[i]), Item: Item(items[i]), Op: op}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range edges {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Edge{{1, 2, Insert}, {3, 4, Delete}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{0}, data[1:]...),
		"truncated": data[:len(data)-1],
		"trailing":  append(append([]byte(nil), data...), 0xff),
	}
	for name, d := range cases {
		if _, err := ReadBinary(bytes.NewReader(d)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

// TestReadBinaryForgedCount: the decoder reaches untrusted input through
// POST /v1/edges, so a tiny body declaring a huge element count must be
// rejected as malformed before the count drives any allocation — a
// ~16-byte request must not reserve gigabytes.
func TestReadBinaryForgedCount(t *testing.T) {
	for _, count := range []uint64{1, 1 << 20, 1 << 30} {
		forged := append([]byte(nil), binaryMagic[:]...)
		forged = binary.AppendUvarint(forged, count)
		// No elements follow: any count > 0 exceeds what the body holds.
		if _, err := ReadBinary(bytes.NewReader(forged)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("count %d over empty body: want ErrBadFormat, got %v", count, err)
		}
	}
	// Borderline: a body of 2n bytes can hold at most n elements.
	forged := append([]byte(nil), binaryMagic[:]...)
	forged = binary.AppendUvarint(forged, 3)
	forged = append(forged, 1, 2, 3, 4) // 4 bytes: capacity for 2 elements, not 3
	if _, err := ReadBinary(bytes.NewReader(forged)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("count 3 over 4-byte body: want ErrBadFormat, got %v", err)
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty stream round-tripped to %d elements", len(got))
	}
}
