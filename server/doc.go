// Package server exposes a vos.SimilarityService over a versioned HTTP+JSON
// API — the network front door of the module. It is deliberately thin: all
// sketch semantics live behind the service interface, the server adds the
// wire concerns a production deployment needs and nothing else:
//
//   - versioned routes under /v1/ (see Routes) with a uniform typed error
//     envelope {"error":{"code":...,"message":...}} — clients branch on
//     the code, never on message text,
//   - single-event and batch ingest in three formats (JSON, NDJSON, and
//     the VOSSTRM1 binary stream codec) with backpressure: a bounded
//     in-flight ingest byte budget sheds load with 429/backpressure
//     instead of letting concurrent bulk loads exhaust memory,
//   - sliding-window plumbing for windowed services (vos.Windowed):
//     timestamped ingest — per-edge "ts" fields or the X-Vos-Batch-Ts
//     header — advances event time before the batch lands, GET /v1/stats
//     reports window_seconds/window_buckets, and a query whose "at"
//     instant predates the live window answers the typed 422
//     outside_window envelope instead of silently serving partial state,
//   - request contexts plumbed into the service, so a disconnected or
//     timed-out caller actually aborts its in-flight top-K fan-out,
//   - health (/v1/healthz) and readiness (/v1/readyz) probes plus
//     graceful drain: Drain flips readiness, rejects new work with the
//     "draining" code (distinct from "unavailable", so a rotating
//     instance is never mistaken for a closed engine), and waits for
//     in-flight requests so a deployment can rotate instances without
//     dropping queries,
//   - per-endpoint observability at /v1/metrics (request counts, error
//     counts, latency, and windowed request rates via metrics.RateMeter)
//     and optional request logging.
//
// The wire types in types.go are the canonical protocol description, and
// docs/openapi.yaml is the same contract as an OpenAPI 3.1 document (kept
// honest by openapi_test.go: every registered route and envelope code
// must appear in the spec). The matching Go client is package client;
// cmd/vosd wires this server to a durable engine behind flags.
//
// A Server is an http.Handler; all methods are safe for concurrent use.
// Its lifecycle is Drain-then-close-the-service: Drain does not close the
// backing service, so queries admitted before the readiness flip still
// answer from live state.
package server
