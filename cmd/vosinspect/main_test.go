package main

import (
	"testing"

	"github.com/vossketch/vos"
)

// TestDumpWALRecoversEngineState: dumpWAL on a crashed engine's directory
// reconstructs the same state engine recovery would — checkpoint plus
// replayed WAL suffix — without mutating the directory.
func TestDumpWALRecoversEngineState(t *testing.T) {
	dir := t.TempDir()
	cfg := vos.Config{MemoryBits: 1 << 16, SketchBits: 256, Seed: 5}
	// DisableLock: the engine is abandoned in-process below; dumpWAL
	// itself is read-only and takes no lock.
	eng, err := vos.OpenEngine(dir, vos.EngineConfig{
		Sketch:     cfg,
		Shards:     2,
		Durability: &vos.DurabilityConfig{DisableLock: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	single := vos.MustNew(cfg)
	var edges []vos.Edge
	for i := 0; i < 400; i++ {
		e := vos.Edge{User: vos.User(i % 7), Item: vos.Item(i), Op: vos.Insert}
		edges = append(edges, e)
		single.Process(e)
	}
	if err := eng.ProcessBatch(edges[:200]); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessBatch(edges[200:]); err != nil {
		t.Fatal(err)
	}
	// Hard stop: no Close, so the suffix lives only in the WAL.

	sk, err := dumpWAL(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sk.Stats(), single.Stats(); got != want {
		t.Fatalf("recovered stats %+v, want %+v", got, want)
	}
	if got, want := sk.Query(1, 2), single.Query(1, 2); got != want {
		t.Fatalf("recovered Query(1,2) = %+v, want %+v", got, want)
	}

	// No checkpoint and no WAL: falls back to the provided config.
	empty := t.TempDir()
	sk, err = dumpWAL(empty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Stats().Users != 0 {
		t.Fatalf("empty dir recovered %d users, want 0", sk.Stats().Users)
	}
}

func TestParsePair(t *testing.T) {
	u, v, err := parsePair("17, 42")
	if err != nil || u != 17 || v != 42 {
		t.Errorf("parsePair = %d, %d, %v", u, v, err)
	}
	for _, bad := range []string{"", "1", "1,2,3", "x,2", "1,y"} {
		if _, _, err := parsePair(bad); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}
