package rp

import (
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// sampler is one capacity-1 Random Pairing sampler.
//
// RP bookkeeping: c1 counts uncompensated deletions that removed the
// sampled item, c2 uncompensated deletions of unsampled items. While
// c1+c2 > 0 the sampler is "in debt": new insertions first compensate
// prior deletions (joining the sample with probability c1/(c1+c2)) instead
// of running the plain reservoir step. This is exactly what keeps the
// sample uniform over the evolving set.
type sampler struct {
	item   stream.Item
	filled bool
	c1, c2 uint32
}

// userState holds a user's k samplers, the set size n_u, and the user's
// private PRNG stream (derived from the sketch seed and user ID, so state
// is independent of map iteration order and of other users).
type userState struct {
	samplers []sampler
	n        int64
	rng      uint64 // splitmix64 state
}

// Sketch runs k RP samplers per user over a fully dynamic stream.
type Sketch struct {
	k    int
	seed uint64
	st   map[stream.User]*userState
}

// New creates an RP sketch with k samplers per user.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("rp: k must be positive")
	}
	return &Sketch{k: k, seed: seed, st: make(map[stream.User]*userState)}
}

// K returns the number of samplers per user.
func (s *Sketch) K() int { return s.k }

// BitsPerUser returns the §V accounting: k registers of 32 bits (the
// deletion-debt counters are shared bookkeeping the paper's equalisation
// ignores for all methods alike).
func (s *Sketch) BitsPerUser() uint64 { return 32 * uint64(s.k) }

func (s *Sketch) state(u stream.User) *userState {
	st := s.st[u]
	if st == nil {
		st = &userState{
			samplers: make([]sampler, s.k),
			rng:      hashing.Hash64(uint64(u), s.seed),
		}
		s.st[u] = st
	}
	return st
}

// coin returns a uniform float64 in [0, 1) from the user's PRNG stream.
func (st *userState) coin() float64 {
	return hashing.Float01(hashing.SplitMix64(&st.rng))
}

// Process folds one element into the sketch in O(k): every sampler of the
// touched user takes an independent RP step.
func (s *Sketch) Process(e stream.Edge) {
	st := s.state(e.User)
	switch e.Op {
	case stream.Insert:
		st.n++
		for j := range st.samplers {
			sp := &st.samplers[j]
			if sp.c1+sp.c2 == 0 {
				// No deletion debt: plain capacity-1 reservoir step.
				if !sp.filled || st.coin() < 1/float64(st.n) {
					sp.item = e.Item
					sp.filled = true
				}
			} else {
				// Compensation phase: the insertion replaces one prior
				// deletion, joining the sample w.p. c1/(c1+c2).
				if st.coin() < float64(sp.c1)/float64(sp.c1+sp.c2) {
					sp.item = e.Item
					sp.filled = true
					sp.c1--
				} else {
					sp.c2--
				}
			}
		}
	case stream.Delete:
		st.n--
		for j := range st.samplers {
			sp := &st.samplers[j]
			if sp.filled && sp.item == e.Item {
				sp.filled = false
				sp.c1++
			} else {
				sp.c2++
			}
		}
	}
}

// Cardinality returns the tracked n_u.
func (s *Sketch) Cardinality(u stream.User) int64 {
	if st := s.st[u]; st != nil {
		return st.n
	}
	return 0
}

// Sample returns sampler j's current item for user u, with ok=false when
// the sampler is empty. Exposed for the uniformity tests.
func (s *Sketch) Sample(u stream.User, j int) (stream.Item, bool) {
	st := s.st[u]
	if st == nil || !st.samplers[j].filled {
		return 0, false
	}
	return st.samplers[j].item, true
}

// EstimateCommonItems implements the §III estimator
// ŝ = n_u·n_v·(1/k)·Σ 1(φ_j(S_u) = φ_j(S_v)). An RP sampler can be
// legitimately empty while in deletion debt (its sampled item was deleted
// and no compensating insertion has arrived), so the average runs over the
// sampler pairs where both sides hold a sample — each such pair is an
// unbiased Bernoulli(s/(n_u·n_v)) trial, and filled status is independent
// of which item is held, so the conditioning preserves unbiasedness.
func (s *Sketch) EstimateCommonItems(u, v stream.User) float64 {
	su, sv := s.st[u], s.st[v]
	if su == nil || sv == nil {
		return 0
	}
	matches, bothFilled := 0, 0
	for j := 0; j < s.k; j++ {
		a, b := &su.samplers[j], &sv.samplers[j]
		if a.filled && b.filled {
			bothFilled++
			if a.item == b.item {
				matches++
			}
		}
	}
	if bothFilled == 0 {
		return 0
	}
	return float64(su.n) * float64(sv.n) * float64(matches) / float64(bothFilled)
}

// EstimateJaccard converts ŝ through J = s/(n_u + n_v − s), clamped to
// [0, 1] (the raw ŝ can exceed the feasible range on a lucky collision
// because n_u·n_v/k ≫ 1 at practical k).
func (s *Sketch) EstimateJaccard(u, v stream.User) float64 {
	est := s.EstimateCommonItems(u, v)
	nu, nv := s.Cardinality(u), s.Cardinality(v)
	maxCommon := float64(nu)
	if nv < nu {
		maxCommon = float64(nv)
	}
	if est > maxCommon {
		est = maxCommon
	}
	if est < 0 {
		est = 0
	}
	union := float64(nu+nv) - est
	if union <= 0 {
		return 0
	}
	j := est / union
	if j > 1 {
		return 1
	}
	return j
}
