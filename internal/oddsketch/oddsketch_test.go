package oddsketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToggleCancels(t *testing.T) {
	s := New(64, 1)
	s.Toggle(42)
	s.Toggle(42)
	if s.OnesFraction() != 0 {
		t.Error("double toggle did not cancel")
	}
}

func TestXorHomomorphismProperty(t *testing.T) {
	// odd(S1) ⊕ odd(S2) must equal odd(S1 Δ S2).
	err := quick.Check(func(rawA, rawB []uint16) bool {
		const k = 128
		setA := dedup(rawA)
		setB := dedup(rawB)
		a := FromItems(setA, k, 7)
		b := FromItems(setB, k, 7)

		symDiff := symmetricDifference(setA, setB)
		want := FromItems(symDiff, k, 7)

		got := a.Clone()
		got.Xor(b)
		for j := 0; j < k; j++ {
			if got.Bit(j) != want.Bit(j) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestXorOnesMatchesXor(t *testing.T) {
	a := FromItems([]uint64{1, 2, 3, 4}, 32, 9)
	b := FromItems([]uint64{3, 4, 5, 6}, 32, 9)
	z := a.XorOnes(b)
	c := a.Clone()
	c.Xor(b)
	ones := 0
	for j := 0; j < 32; j++ {
		if c.Bit(j) {
			ones++
		}
	}
	if z != ones {
		t.Errorf("XorOnes %d, Xor popcount %d", z, ones)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Average the estimate over independent seeds; the mean relative
	// error should be small when nΔ ≪ k.
	const (
		k      = 1024
		nDelta = 120
		trials = 40
	)
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		seed := rng.Uint64()
		// Disjoint halves: A has items [0, 60), B has [60, 120); common
		// tail shared by both must not affect the estimate.
		itemsA := make([]uint64, 0, 260)
		itemsB := make([]uint64, 0, 260)
		for i := uint64(0); i < nDelta/2; i++ {
			itemsA = append(itemsA, i)
			itemsB = append(itemsB, nDelta/2+i)
		}
		for i := uint64(1000); i < 1200; i++ { // 200 shared items
			itemsA = append(itemsA, i)
			itemsB = append(itemsB, i)
		}
		a := FromItems(itemsA, k, seed)
		b := FromItems(itemsB, k, seed)
		sum += a.EstimateSymmetricDifference(b)
	}
	avg := sum / trials
	if rel := math.Abs(avg-nDelta) / nDelta; rel > 0.10 {
		t.Errorf("mean estimate %.1f for nΔ=%d (rel err %.2f)", avg, nDelta, rel)
	}
}

func TestEstimateIdenticalSetsIsZero(t *testing.T) {
	items := []uint64{5, 6, 7, 8, 9}
	a := FromItems(items, 64, 2)
	b := FromItems(items, 64, 2)
	if got := a.EstimateSymmetricDifference(b); got != 0 {
		t.Errorf("identical sets estimated nΔ=%v", got)
	}
	if a.Saturated(b) {
		t.Error("identical sets reported saturated")
	}
}

func TestEstimateSaturationClamped(t *testing.T) {
	// Wildly different huge sets: α ≈ 1/2, estimate must stay finite.
	var itemsA, itemsB []uint64
	for i := uint64(0); i < 5000; i++ {
		itemsA = append(itemsA, i)
		itemsB = append(itemsB, 1_000_000+i)
	}
	a := FromItems(itemsA, 64, 3)
	b := FromItems(itemsB, 64, 3)
	est := a.EstimateSymmetricDifference(b)
	if math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("saturated estimate not finite: %v", est)
	}
	if !a.Saturated(b) {
		t.Log("note: saturation flag false for this seed (α can dip below 1/2 by chance)")
	}
}

func TestEstimateFromOnesEdgeCases(t *testing.T) {
	if EstimateFromOnes(0, 64) != 0 {
		t.Error("z=0 should estimate 0")
	}
	if EstimateFromOnes(-1, 64) != 0 {
		t.Error("negative z should clamp to 0")
	}
	v := EstimateFromOnes(64, 64) // alpha=1, fully saturated
	if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
		t.Errorf("saturated EstimateFromOnes = %v", v)
	}
	// Monotone in z up to the clamp.
	prev := -1.0
	for z := 0; z <= 32; z++ {
		e := EstimateFromOnes(z, 64)
		if e < prev {
			t.Fatalf("estimate not monotone at z=%d", z)
		}
		prev = e
	}
}

func TestIncompatiblePanics(t *testing.T) {
	a := New(64, 1)
	b := New(64, 2)
	c := New(32, 1)
	for name, fn := range map[string]func(){
		"different seed": func() { a.XorOnes(b) },
		"different k":    func() { a.Xor(c) },
		"bad k":          func() { New(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSlotDeterministic(t *testing.T) {
	s := New(100, 5)
	for it := uint64(0); it < 50; it++ {
		if s.Slot(it) != s.Slot(it) || s.Slot(it) >= 100 {
			t.Fatalf("slot misbehaves for %d", it)
		}
	}
}

func dedup(raw []uint16) []uint64 {
	seen := make(map[uint64]struct{}, len(raw))
	var out []uint64
	for _, r := range raw {
		v := uint64(r)
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

func symmetricDifference(a, b []uint64) []uint64 {
	inA := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		inA[x] = struct{}{}
	}
	inB := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		inB[x] = struct{}{}
	}
	var out []uint64
	for _, x := range a {
		if _, ok := inB[x]; !ok {
			out = append(out, x)
		}
	}
	for _, x := range b {
		if _, ok := inA[x]; !ok {
			out = append(out, x)
		}
	}
	return out
}

func TestEstimateCardinality(t *testing.T) {
	const (
		k      = 1024
		n      = 100
		trials = 30
	)
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		items := make([]uint64, n)
		for i := range items {
			items[i] = uint64(trial*10000 + i)
		}
		s := FromItems(items, k, uint64(trial))
		sum += s.EstimateCardinality()
	}
	avg := sum / trials
	if math.Abs(avg-n)/n > 0.10 {
		t.Errorf("mean cardinality estimate %.1f, want ~%d", avg, n)
	}
	if New(64, 1).EstimateCardinality() != 0 {
		t.Error("empty sketch should estimate 0")
	}
}
