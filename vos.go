// Package vos implements VOS (virtual odd sketch), a fast, memory-compact
// sketch for estimating user similarities — common-item counts and Jaccard
// coefficients — over fully dynamic bipartite graph streams, i.e. streams
// of subscriptions AND unsubscriptions.
//
// It is a from-scratch Go reproduction of:
//
//	Peng Jia, Pinghui Wang, Jing Tao, Xiaohong Guan.
//	"A Fast Sketch Method for Mining User Similarities over Fully
//	Dynamic Graph Streams." ICDE 2019 (arXiv:1901.00650).
//
// # Why VOS
//
// Classic similarity sketches (MinHash, one permutation hashing) are
// sampling methods: they keep the minimum-hash item per register. A
// deletion of that minimum cannot be undone without the full set, so under
// unsubscriptions the samples drift from uniform and estimates become
// biased. VOS instead maintains the parity (odd sketch) of each user's
// item set: insert and delete are the same XOR toggle and cancel exactly,
// so the sketch state depends only on the current set — deletions are
// free. Per-user sketches are stored virtually in one shared bit array,
// and queries correct for the resulting contamination using the array's
// global load β.
//
// Processing an element is O(1); querying a pair is O(k) for a virtual
// sketch of k bits.
//
// # Scaling out
//
// Sketch is single-threaded. ConcurrentSketch adds a read-write mutex for
// one writer and many readers. Engine shards the stream across N private
// sketches with one ingest goroutine each and answers queries from an
// exactly merged snapshot — because VOS merging is exact for any partition
// of the stream, sharded ingest costs no accuracy. See examples/sharded.
//
// # Sliding windows
//
// Because the state is pure parity, a sliding window — "who is similar
// to u over the last hour" — is structural: WindowedSketch keeps a ring
// of time-bucketed sub-sketches, queries their XOR-merge, and retires
// the oldest bucket by XOR-ing it back out in O(sketch), with no
// per-edge expiry tracking. EngineConfig.Window is the sharded form.
//
// # Serving
//
// SimilarityService is the context-aware serving interface all deployment
// shapes satisfy: NewSketchService, NewConcurrentService, and
// NewEngineService adapt the in-process types, package server exposes any
// SimilarityService over a versioned HTTP API, package client implements
// it over the wire, and cmd/vosd is the runnable daemon. Optional
// capabilities (Checkpointer, Windowed) are probed at runtime. See the
// README's "Serving" section and docs/ARCHITECTURE.md for the layer map.
//
// # Quick start
//
//	sk := vos.MustNew(vos.Config{MemoryBits: 1 << 22, SketchBits: 4096, Seed: 1})
//	sk.Process(vos.Edge{User: alice, Item: video1, Op: vos.Insert})
//	sk.Process(vos.Edge{User: bob, Item: video1, Op: vos.Insert})
//	sk.Process(vos.Edge{User: alice, Item: video1, Op: vos.Delete}) // unsubscribe
//	est := sk.Query(alice, bob)
//	fmt.Println(est.Common, est.Jaccard)
//
// See examples/ for complete programs and README.md for
// the architecture map and reproduction methodology.
package vos

import (
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// User identifies a user (left node) of the bipartite graph.
type User = stream.User

// Item identifies an item (right node) of the bipartite graph.
type Item = stream.Item

// Op is a stream action: Insert (subscribe) or Delete (unsubscribe).
type Op = stream.Op

// Stream actions.
const (
	// Insert is the "+" action: user subscribes to item.
	Insert = stream.Insert
	// Delete is the "−" action: user unsubscribes from item.
	Delete = stream.Delete
)

// Edge is one stream element (u, i, a).
type Edge = stream.Edge

// Sketch is the VOS sketch. See the package documentation for the model
// and core.VOS for implementation details. Not safe for concurrent use;
// see NewConcurrent for a locked wrapper and NewEngine for sharded,
// multicore ingestion.
type Sketch = core.VOS

// Config parameterises a Sketch: total shared memory m in bits, virtual
// per-user sketch size k in bits, a seed, and the hash family generating
// the per-user position tables (see HashFamily).
type Config = core.Config

// HashFamily selects the position-generation backend of a sketch — how the
// k user hashes f_1 … f_k are evaluated. It is part of a sketch's identity:
// it is recorded in serialized sketches and checkpoints, and state built
// under different families is never merged, compared, or loaded across
// (see ErrFamilyMismatch).
type HashFamily = hashing.Kind

const (
	// FamilyClassic (the zero value) evaluates k independently seeded
	// hashes per position table — the original backend.
	FamilyClassic = hashing.KindClassic
	// FamilyFast fills a position table from one strong hash of the user
	// key expanded by a counter-based generator — O(1) amortized hash work
	// per slot, in the spirit of Dahlgaard–Knudsen–Thorup fast similarity
	// sketching. Estimates keep the same accuracy (the experiment suite
	// parity-gates them); only the positions differ from FamilyClassic.
	FamilyFast = hashing.KindFast
)

// ParseHashFamily maps the wire/flag names "classic" and "fast" onto a
// HashFamily, the inverse of HashFamily.String.
func ParseHashFamily(s string) (HashFamily, error) { return hashing.ParseKind(s) }

// ErrFamilyMismatch reports an attempt to merge, compare, or load sketch
// state across different hash families. Use errors.Is to detect it.
var ErrFamilyMismatch = core.ErrFamilyMismatch

// ErrCorruptSketch reports serialized sketch bytes that do not decode:
// every Unmarshal (and StateImporter.ImportSketch) failure on malformed
// input wraps it. Use errors.Is to detect it.
var ErrCorruptSketch = core.ErrCorrupt

// Estimate bundles the outputs of a similarity query: the common-item
// estimate (raw and clamped), the Jaccard estimate, the symmetric
// difference, and the internal α/β diagnostics.
type Estimate = core.Estimate

// Recovered is a packed snapshot of one user's recovered virtual sketch,
// produced by Sketch.RecoverSketch. A similarity search recovers the probe
// user once and compares every candidate against the packed bits with a
// word-level XOR + popcount (Sketch.QueryRecovered, Sketch.TopK) instead
// of re-hashing the probe's k positions per pair. Snapshots are valid
// until the next write (Process or Merge).
type Recovered = core.Recovered

// TopKResult pairs a candidate user with its similarity estimate, the
// element type of Sketch.TopK and Engine.TopK: highest estimated Jaccard
// first, ties broken by user ID.
type TopKResult = core.TopKResult

// Stats summarises sketch state (array load β, memory, user count).
type Stats = core.Stats

// New creates a VOS sketch. MemoryBits and SketchBits must be positive
// with SketchBits ≤ MemoryBits.
func New(cfg Config) (*Sketch, error) { return core.New(cfg) }

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Sketch { return core.MustNew(cfg) }

// PaperConfig builds the paper's §V memory-equalised configuration: the
// budget a 32-bit-register baseline would spend on numUsers users with
// k32 registers each (m = 32·k32·numUsers bits), with a virtual sketch of
// lambda·32·k32 bits (the paper uses lambda = 2).
func PaperConfig(numUsers, k32, lambda int, seed uint64) Config {
	return core.PaperConfig(numUsers, k32, lambda, seed)
}

// Unmarshal decodes a sketch serialized with Sketch.MarshalBinary.
func Unmarshal(data []byte) (*Sketch, error) { return core.UnmarshalVOS(data) }

// UserFromString maps an external string identifier (a username, URL, …)
// into the User key space with a fixed hash, so string-keyed applications
// can use the sketches directly. The mapping is stable across processes.
func UserFromString(s string) User {
	return User(hashing.HashString(s, 0x75736572734b6579))
}

// ItemFromString maps an external string identifier into the Item key
// space; see UserFromString.
func ItemFromString(s string) Item {
	return Item(hashing.HashString(s, 0x6974656d734b6579))
}
