// Package hashing provides the deterministic, seeded hash primitives that
// every sketch in this repository is built on: 64-bit mixers, families of k
// independent hash functions, 2-universal hashing over a prime field, and
// exact random permutations (Feistel networks with cycle walking).
//
// Everything here is pure computation: no global state, no math/rand
// dependence at query time, and identical results across runs and
// architectures for a given seed. Sketch reproducibility — the ability to
// rebuild a sketch from the same stream and get bit-identical state — depends
// on these properties.
package hashing

import "math/bits"

// SplitMix64 advances a splitmix64 state and returns the next output.
// It is the canonical generator used to derive independent sub-seeds from a
// single user-provided seed (Steele et al., "Fast Splittable Pseudorandom
// Number Generators", OOPSLA'14).
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 is a stateless bijective finalizer (the splitmix64 output stage).
// Because it is a bijection on 64-bit values it never introduces collisions
// on its own; all collision behaviour comes from range reduction.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 hashes a 64-bit key under a 64-bit seed. The construction XORs the
// seed into the key, applies two rounds of mixing with distinct odd
// multipliers, and folds the seed back in between rounds so that different
// seeds yield (empirically) independent functions.
func Hash64(key, seed uint64) uint64 {
	x := key ^ (seed * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 33)) * 0xff51afd7ed558ccd
	x ^= seed
	x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// HashString hashes an arbitrary byte string under a seed using a 64-bit
// FNV-1a core followed by the Mix64 finalizer. It is used to map external
// identifiers (user names, item URLs, shingles) into the uint64 key space of
// the sketches.
func HashString(s string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Hash64(h, seed)
}

// HashBytes is HashString for byte slices, avoiding a copy.
func HashBytes(b []byte, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return Hash64(h, seed)
}

// Reduce maps a 64-bit hash onto [0, n) without modulo bias using the
// high bits of the 128-bit product (Lemire's multiply-shift reduction).
// n must be > 0.
func Reduce(h uint64, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}

// HashToRange hashes key under seed directly into [0, n).
func HashToRange(key, seed, n uint64) uint64 {
	return Reduce(Hash64(key, seed), n)
}

// Float01 converts a hash to a float64 uniformly distributed in [0, 1).
// Only the top 53 bits participate, so the result is exactly representable.
func Float01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Family is a family of k pseudo-independent hash functions derived from one
// seed. Member j is the function x -> Hash64(x, seeds[j]).
//
// Sketches that conceptually need "k independent hash functions h_1 … h_k"
// (MinHash registers, the f_1 … f_k user hashes of VOS) use a Family.
type Family struct {
	seeds []uint64
}

// NewFamily derives a family of k hash functions from seed.
func NewFamily(k int, seed uint64) *Family {
	if k <= 0 {
		panic("hashing: family size must be positive")
	}
	state := seed
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = SplitMix64(&state)
	}
	return &Family{seeds: seeds}
}

// K returns the number of functions in the family.
func (f *Family) K() int { return len(f.seeds) }

// Hash applies member j of the family to key. j must be in [0, K()).
func (f *Family) Hash(j int, key uint64) uint64 {
	return Hash64(key, f.seeds[j])
}

// HashRange applies member j and reduces the result onto [0, n).
func (f *Family) HashRange(j int, key, n uint64) uint64 {
	return Reduce(Hash64(key, f.seeds[j]), n)
}

// HashRangeInto evaluates members 0..len(dst)-1 on key, reduced onto
// [0, n), writing member j's value to dst[j]. It is the batched form of
// HashRange for callers that need a user's whole position vector (sketch
// recovery, position-table fills): the seeds slice is walked inline with
// the Lemire reduction fused in, so the loop carries no per-member method
// call or repeated bounds check. dst must not be longer than K().
//
// dst[j] == f.HashRange(j, key, n) for every j, exactly.
func (f *Family) HashRangeInto(dst []uint64, key, n uint64) {
	// Hash64 and Reduce are small enough that the compiler inlines both
	// here, so this loop body matches HashRange exactly by construction.
	seeds := f.seeds[:len(dst)]
	for j, seed := range seeds {
		dst[j] = Reduce(Hash64(key, seed), n)
	}
}

// Seed returns the derived seed of member j, for diagnostics and
// serialization.
func (f *Family) Seed(j int) uint64 { return f.seeds[j] }

// MersennePrime61 is 2^61 - 1, the modulus of the 2-universal family below.
const MersennePrime61 = (1 << 61) - 1

// TwoUniversal is a 2-universal hash function h(x) = ((a*x + b) mod p) over
// the Mersenne prime field p = 2^61 - 1, as used by the optimal-densification
// variant of OPH (Shrivastava, ICML'17) and available to any component that
// needs provable pairwise independence rather than empirical mixing quality.
type TwoUniversal struct {
	a, b uint64
}

// NewTwoUniversal draws (a, b) from the seed with a ∈ [1, p) and b ∈ [0, p).
func NewTwoUniversal(seed uint64) TwoUniversal {
	state := seed
	a := SplitMix64(&state)%(MersennePrime61-1) + 1
	b := SplitMix64(&state) % MersennePrime61
	return TwoUniversal{a: a, b: b}
}

// Hash evaluates the function at x. The input is first folded into the field.
func (t TwoUniversal) Hash(x uint64) uint64 {
	x = mod61(x)
	return mod61Add(mulMod61(t.a, x), t.b)
}

// HashRange evaluates the function and reduces onto [0, n).
func (t TwoUniversal) HashRange(x, n uint64) uint64 {
	// Scale the field element onto the range; the field has 61 bits so
	// shift up to use the full 64-bit reduction.
	return Reduce(t.Hash(x)<<3, n)
}

// mod61 reduces x modulo 2^61-1 using the Mersenne identity
// x mod (2^61-1) = (x >> 61) + (x & (2^61-1)), iterated.
func mod61(x uint64) uint64 {
	x = (x >> 61) + (x & MersennePrime61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// mod61Add adds two field elements.
func mod61Add(a, b uint64) uint64 {
	s := a + b // cannot overflow: both < 2^61
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// mulMod61 multiplies two field elements using a 128-bit intermediate.
// With a, b < 2^61 the product is hi*2^64 + lo where hi < 2^58, and since
// 2^64 ≡ 2^3 (mod 2^61-1) the product reduces to 8*hi + (lo>>61) + (lo&p).
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	r := (hi << 3) + (lo >> 61) + (lo & MersennePrime61)
	return mod61(r)
}
