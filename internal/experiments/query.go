package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/engine"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// QueryPerf measures the materialized read path at the paper-scale sketch
// configuration (m = 2^24, k = λ·32·K32 = 6400 by default): per-pair query
// cost and top-10-of-1000-candidates cost on each path —
//
//   - per-bit: the scalar reference (2k seeded hashes + 2k single-bit
//     probes per pair; for top-K, per-pair queries plus a full sort);
//   - materialized: packed recovery, batched hashing, word-level
//     XOR+popcount, no caches;
//   - warm: position tables and packed recovered sketches cached — the
//     read-heavy serving steady state;
//   - engine: Engine.TopK over the merged snapshot with the parallel
//     candidate fan-out (top-K row only).
//
// Every path is parity-checked against the per-bit reference before it is
// timed; a mismatch is an error, not a table row.
func QueryPerf(opts Options) (*Table, error) {
	opts = opts.normalized()

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = opts.RuntimeEdges
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	// The issue's paper-scale read-path configuration: a 2 MiB shared
	// array with the §V virtual sketch size.
	cfg := core.Config{
		MemoryBits: 1 << 24,
		SketchBits: opts.Lambda * 32 * opts.K32,
		Seed:       uint64(opts.Seed),
	}

	sk := core.MustNew(cfg)
	for _, e := range edges {
		sk.Process(e)
	}

	nCand := 1000
	if int(opts.RuntimeUsers) < nCand {
		nCand = int(opts.RuntimeUsers)
	}
	probe := stream.User(0)
	candidates := make([]stream.User, nCand)
	for i := range candidates {
		candidates[i] = stream.User(i + 1)
	}
	const topN = 10

	// Parity gate: all paths must agree with the per-bit oracle bit for
	// bit before any timing is reported.
	sk.EnablePositionCache(nCand + 1)
	sk.SetRecoveredCacheCapacity(0)
	nParity := 50
	if len(candidates) < nParity {
		nParity = len(candidates)
	}
	for _, w := range candidates[:nParity] {
		if sk.Query(probe, w) != sk.QueryPerBit(probe, w) {
			return nil, fmt.Errorf("experiments: materialized query mismatch for pair (%d,%d)", probe, w)
		}
	}

	tbl := &Table{
		ID:     "query",
		Title:  "materialized read path: pair query and top-K cost per path",
		Header: []string{"op", "path", "ns/op", "speedup"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (after dynamize: %d)", p.Name, p.Users, p.Edges, len(edges))
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d; top-K: best %d of %d candidates",
		cfg.MemoryBits, cfg.SketchBits, cfg.Seed, topN, nCand)
	tbl.AddNote("warm = position cache (%d entries) + recovered-sketch cache, steady state", nCand+1)
	tbl.AddNote("GOMAXPROCS=%d (engine row fans out across cores)", runtime.GOMAXPROCS(0))

	// timeOp runs fn repeatedly until budget elapses (at least once) and
	// returns ns per call. Calls run in geometrically growing blocks
	// between clock reads, so the ~20-30ns cost of time.Since does not
	// inflate the sub-microsecond warm paths; slow paths keep blocks small
	// and stay near budget.
	timeOp := func(budget time.Duration, fn func()) float64 {
		fn() // warm
		reps, block := 0, 1
		t0 := time.Now()
		elapsed := time.Duration(0)
		for elapsed < budget || reps == 0 {
			for i := 0; i < block; i++ {
				fn()
			}
			reps += block
			elapsed = time.Since(t0)
			if block < 1024 && elapsed < budget/2 {
				block *= 2
			}
		}
		return float64(elapsed.Nanoseconds()) / float64(reps)
	}
	const pairBudget = 200 * time.Millisecond
	const topkBudget = 400 * time.Millisecond

	addRows := func(op string, ns map[string]float64, order []string) {
		base := ns["per-bit"]
		for _, path := range order {
			tbl.AddRow(op, path, fmt.Sprintf("%.0f", ns[path]), fmt.Sprintf("%.1fx", base/ns[path]))
		}
	}

	// Pair query rows.
	pair := map[string]float64{}
	pair["per-bit"] = timeOp(pairBudget, func() { estSink = sk.QueryPerBit(probe, candidates[0]) })
	sk.SetPositionCache(nil)
	sk.SetRecoveredCacheCapacity(-1)
	pair["materialized"] = timeOp(pairBudget, func() { estSink = sk.Query(probe, candidates[0]) })
	sk.EnablePositionCache(nCand + 1)
	sk.SetRecoveredCacheCapacity(0)
	pair["warm"] = timeOp(pairBudget, func() { estSink = sk.Query(probe, candidates[0]) })
	addRows("pair", pair, []string{"per-bit", "materialized", "warm"})

	// Top-K rows.
	topk := map[string]float64{}
	topk["per-bit"] = timeOp(topkBudget, func() { topkSink = perBitTopK(sk, probe, candidates, topN) })
	sk.SetPositionCache(nil)
	sk.SetRecoveredCacheCapacity(-1)
	topk["materialized"] = timeOp(topkBudget, func() { topkSink = sk.TopK(probe, candidates, topN) })
	sk.EnablePositionCache(nCand + 1)
	sk.SetRecoveredCacheCapacity(0)
	topk["warm"] = timeOp(topkBudget, func() { topkSink = sk.TopK(probe, candidates, topN) })

	// Engine row: same stream through a sharded engine, ranked from the
	// merged snapshot with the parallel fan-out.
	eng, err := engine.New(engine.Config{
		Sketch:             cfg,
		Shards:             runtime.GOMAXPROCS(0),
		PositionCacheUsers: nCand + 1,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.ProcessBatch(edges); err != nil {
		return nil, err
	}
	eng.Flush()
	engTop := eng.TopK(probe, candidates, topN)
	refTop := perBitTopK(sk, probe, candidates, topN)
	for i := range refTop {
		if engTop[i] != refTop[i] {
			return nil, fmt.Errorf("experiments: engine top-K rank %d mismatch: %d vs %d",
				i, engTop[i].User, refTop[i].User)
		}
	}
	topk["engine"] = timeOp(topkBudget, func() { topkSink = eng.TopK(probe, candidates, topN) })
	addRows(fmt.Sprintf("top%d/%d", topN, nCand), topk, []string{"per-bit", "materialized", "warm", "engine"})

	return tbl, nil
}

// estSink and topkSink keep timed results live (the query paths inline).
var (
	estSink  core.Estimate
	topkSink []core.TopKResult
)

// perBitTopK ranks candidates with per-pair scalar queries and a full sort
// — the pre-materialization shape, used as the baseline and parity oracle.
func perBitTopK(sk *core.VOS, u stream.User, candidates []stream.User, n int) []core.TopKResult {
	xs := make([]core.TopKResult, 0, len(candidates))
	for _, w := range candidates {
		if w == u {
			continue
		}
		xs = append(xs, core.TopKResult{User: w, Estimate: sk.QueryPerBit(u, w)})
	}
	sort.Slice(xs, func(i, j int) bool { return core.RankBefore(xs[i], xs[j]) })
	if n > len(xs) {
		n = len(xs)
	}
	return xs[:n]
}
