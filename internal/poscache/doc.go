// Package poscache caches per-user []uint64 tables for the materialized
// VOS query path. It serves two table kinds with one LRU implementation:
//
//   - Position tables (Get/Put): a user's array positions f_1(u) … f_k(u)
//     depend only on the user key, the sketch seed, and the array length m
//     — never on the array contents — so once computed they are valid for
//     the lifetime of any sketch built from the same Config, across
//     updates, merges, window rotations, and snapshot rebuilds.
//     Recomputing them is the hashing cost of a query (k seeded hashes,
//     k = thousands at paper scale); caching them lets hot users skip
//     hashing entirely. One cache may therefore be shared by every shard
//     of an engine and every merged snapshot — sharing across different
//     Configs returns wrong positions; don't.
//
//   - Recovered sketches (GetVersioned/PutVersioned): a user's packed
//     recovered bits DO depend on the array contents, so entries carry the
//     sketch's write-version stamp and a lookup hits only when the stamp
//     still matches — any update invalidates every outstanding entry at
//     once, for free, by bumping the version. On a quiescent sketch (an
//     engine query snapshot, a read-heavy serving period) this turns a
//     repeat pair comparison into a pure word-level XOR+popcount, ~k/64
//     operations, with no hashing and no array probes at all. The aux
//     slot stores the packed popcount alongside, so a hit also skips the
//     k-bit recount.
//
// Sizing: a position table costs SketchBits·8 bytes per entry (50 KiB at
// the paper's k = 6400); a packed recovered sketch costs SketchBits/8
// bytes (800 B). See New for the capacity contract.
//
// # Concurrency
//
// A Cache is safe for concurrent use: query paths race on it from many
// goroutines (engine snapshots, parallel top-K workers). Cached slices are
// immutable by contract — callers must treat a returned table as
// read-only, and must not modify a slice after handing it to Put.
package poscache
