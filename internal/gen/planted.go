package gen

import (
	"fmt"
	"math/rand"

	"github.com/vossketch/vos/internal/stream"
)

// PlantedPair constructs a two-user stream with an exactly known overlap:
// user a subscribes to sizeA items, user b to sizeB items, and exactly
// common of them are shared. The true similarity values are therefore
//
//	s_ab = common,  J = common / (sizeA + sizeB − common).
//
// Estimator accuracy tests are built on planted pairs because they decouple
// "is the estimator right" from "is the workload generator right".
func PlantedPair(a, b stream.User, sizeA, sizeB, common int, seed int64) []stream.Edge {
	if common > sizeA || common > sizeB || common < 0 {
		panic(fmt.Sprintf("gen: planted overlap %d impossible for sizes %d/%d", common, sizeA, sizeB))
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]stream.Edge, 0, sizeA+sizeB)
	// Items are laid out in disjoint ID ranges: [0, common) shared,
	// then private tails. A random base offset avoids accidental
	// alignment across multiple planted pairs in one stream.
	base := uint64(rng.Int63n(1 << 40))
	next := base
	for j := 0; j < common; j++ {
		it := stream.Item(next)
		next++
		edges = append(edges, stream.Edge{User: a, Item: it, Op: stream.Insert})
		edges = append(edges, stream.Edge{User: b, Item: it, Op: stream.Insert})
	}
	for j := 0; j < sizeA-common; j++ {
		edges = append(edges, stream.Edge{User: a, Item: stream.Item(next), Op: stream.Insert})
		next++
	}
	for j := 0; j < sizeB-common; j++ {
		edges = append(edges, stream.Edge{User: b, Item: stream.Item(next), Op: stream.Insert})
		next++
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// PlantedJaccard returns sizes and common count approximating a target
// Jaccard for two equal-size sets of the given size:
// J = c / (2n − c)  ⇒  c = 2nJ / (1 + J).
func PlantedJaccard(size int, jaccard float64) (common int) {
	if jaccard < 0 || jaccard > 1 {
		panic(fmt.Sprintf("gen: jaccard %v out of [0, 1]", jaccard))
	}
	c := int(2*float64(size)*jaccard/(1+jaccard) + 0.5)
	if c > size {
		c = size
	}
	return c
}

// PlantedCluster constructs a stream in which every listed user subscribes
// to size items, common of them shared by the whole cluster (a shared core
// plus per-user private tails). Every within-cluster pair then has the
// exactly known similarity
//
//	s = common,  J = common / (2·size − common),
//
// and users from disjoint clusters share nothing. Top-K recall harnesses
// are built on planted clusters: each member's true nearest neighbours are
// its cluster mates, so ground truth needs no exhaustive set arithmetic.
func PlantedCluster(users []stream.User, size, common int, seed int64) []stream.Edge {
	if common > size || common < 0 {
		panic(fmt.Sprintf("gen: planted core %d impossible for size %d", common, size))
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]stream.Edge, 0, len(users)*size)
	// Same disjoint-range layout as PlantedPair: [base, base+common) is the
	// shared core, private tails follow, random base against alignment.
	base := uint64(rng.Int63n(1 << 40))
	next := base + uint64(common)
	for _, u := range users {
		for j := 0; j < common; j++ {
			edges = append(edges, stream.Edge{User: u, Item: stream.Item(base + uint64(j)), Op: stream.Insert})
		}
		for j := 0; j < size-common; j++ {
			edges = append(edges, stream.Edge{User: u, Item: stream.Item(next), Op: stream.Insert})
			next++
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// DeleteSome returns deletion elements for a uniformly random fraction frac
// of the given user's currently subscribed items (as recorded in items),
// for building hand-crafted dynamic scenarios in tests.
func DeleteSome(u stream.User, items []stream.Item, frac float64, seed int64) []stream.Edge {
	rng := rand.New(rand.NewSource(seed))
	var out []stream.Edge
	for _, it := range items {
		if rng.Float64() < frac {
			out = append(out, stream.Edge{User: u, Item: it, Op: stream.Delete})
		}
	}
	return out
}
