package gen

import (
	"fmt"
	"math/rand"

	"github.com/vossketch/vos/internal/stream"
)

// DynamizeConfig controls the transformation of an insert-only edge list
// into a fully dynamic stream with mass-deletion events, following the
// experimental model of Trièst (De Stefani et al., KDD'16) that the paper
// adopts in §V with q = 1/2,000,000 and d = 0.5.
type DynamizeConfig struct {
	// EventProb is q: after each emitted element a mass-deletion event
	// fires with this probability, so events occur on average every 1/q
	// elements.
	EventProb float64
	// DeleteFrac is d: during an event each live edge is deleted
	// independently with this probability.
	DeleteFrac float64
	// Reinsert controls whether deleted edges are queued for
	// re-subscription later in the stream. The paper's model (following
	// Trièst) does not re-insert mass-deleted edges, so the experiments
	// leave this false; enabling it produces extra churn for ablations.
	// Note that with re-insertion the expected stream length grows by a
	// factor 1/(1 − 2·q·d·|live|) and diverges when that product nears 1,
	// so Dynamize stops re-queueing once the output reaches 50x the base
	// length.
	Reinsert bool
	// Seed drives the event coin flips and requeue positions.
	Seed int64
}

// PaperDynamize returns the paper's §V parameters scaled to a stream of the
// given base size: d = 0.5 and q chosen so the expected number of events
// over the stream matches the full-scale setting (the paper's inputs are
// 5M-220M edges with q = 1/2M, i.e. roughly 2.5-110 events per run; we pin
// the expectation to 3 events per run, near the YouTube-at-full-scale
// figure, independent of scale). Deleted edges are not re-inserted,
// matching the Trièst model the paper adopts.
func PaperDynamize(baseEdges int, seed int64) DynamizeConfig {
	const expectedEvents = 3.0
	q := expectedEvents / float64(baseEdges)
	if q > 0.01 {
		q = 0.01 // don't let tiny test streams degenerate into all-delete noise
	}
	return DynamizeConfig{EventProb: q, DeleteFrac: 0.5, Reinsert: false, Seed: seed}
}

// Dynamize converts a feasible insert-only edge list into a fully dynamic
// stream. The base insertion order is preserved (callers shuffle upstream);
// deletions appear as contiguous bursts at event points; re-inserted edges
// are spliced uniformly at random into the not-yet-consumed suffix.
//
// The output stream is always feasible. With Reinsert, the final live edge
// set equals the input edge set.
func Dynamize(base []stream.Edge, cfg DynamizeConfig) []stream.Edge {
	if cfg.EventProb < 0 || cfg.EventProb > 1 {
		panic(fmt.Sprintf("gen: event probability %v out of [0, 1]", cfg.EventProb))
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac > 1 {
		panic(fmt.Sprintf("gen: delete fraction %v out of [0, 1]", cfg.DeleteFrac))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// pending holds insertions yet to be emitted, consumed back-to-front.
	// Start from a reversed copy so consumption follows the input order.
	pending := make([]stream.Edge, len(base))
	for i, e := range base {
		if e.Op != stream.Insert {
			panic(fmt.Sprintf("gen: Dynamize input must be insert-only, got %s at %d", e, i))
		}
		pending[len(base)-1-i] = e
	}

	live := newEdgeSet(len(base))
	out := make([]stream.Edge, 0, len(base)+len(base)/2)

	for len(pending) > 0 {
		e := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		live.add(e.User, e.Item)
		out = append(out, e)

		if cfg.EventProb > 0 && rng.Float64() < cfg.EventProb {
			// Mass deletion: visit the live edges in random order and
			// delete each with probability d.
			victims := live.sample(rng, cfg.DeleteFrac)
			for _, v := range victims {
				live.remove(v.User, v.Item)
				out = append(out, stream.Edge{User: v.User, Item: v.Item, Op: stream.Delete})
			}
			if cfg.Reinsert && len(out) < 50*len(base) {
				for _, v := range victims {
					// Splice at a uniform position of the unconsumed
					// suffix (consumption is from the back).
					pending = append(pending, stream.Edge{User: v.User, Item: v.Item, Op: stream.Insert})
					j := rng.Intn(len(pending))
					last := len(pending) - 1
					pending[j], pending[last] = pending[last], pending[j]
				}
			}
		}
	}
	return out
}

// edgeKey identifies an undirected user-item edge.
type edgeKey struct {
	User stream.User
	Item stream.Item
}

// edgeSet is a set of live edges supporting O(1) add/remove and uniform
// sampling, implemented as the classic slice+index-map pair.
type edgeSet struct {
	list []edgeKey
	idx  map[edgeKey]int
}

func newEdgeSet(capHint int) *edgeSet {
	return &edgeSet{
		list: make([]edgeKey, 0, capHint),
		idx:  make(map[edgeKey]int, capHint),
	}
}

func (s *edgeSet) add(u stream.User, i stream.Item) {
	k := edgeKey{u, i}
	if _, ok := s.idx[k]; ok {
		return
	}
	s.idx[k] = len(s.list)
	s.list = append(s.list, k)
}

func (s *edgeSet) remove(u stream.User, i stream.Item) {
	k := edgeKey{u, i}
	pos, ok := s.idx[k]
	if !ok {
		return
	}
	last := len(s.list) - 1
	s.list[pos] = s.list[last]
	s.idx[s.list[pos]] = pos
	s.list = s.list[:last]
	delete(s.idx, k)
}

func (s *edgeSet) size() int { return len(s.list) }

// sample returns each live edge independently with probability frac, in
// random order.
func (s *edgeSet) sample(rng *rand.Rand, frac float64) []edgeKey {
	if frac <= 0 {
		return nil
	}
	out := make([]edgeKey, 0, int(float64(len(s.list))*frac)+1)
	for _, k := range s.list {
		if frac >= 1 || rng.Float64() < frac {
			out = append(out, k)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Churn produces a smoother alternative dynamic model for ablations:
// after the base stream's warm-up prefix, each subsequent element is
// followed with probability churnProb by the deletion of one uniformly
// random live edge, whose re-insertion is queued like in Dynamize. Used by
// the abl-delbias experiment to dial deletion pressure continuously.
func Churn(base []stream.Edge, churnProb float64, seed int64) []stream.Edge {
	// churnProb must stay clear of 1: each event re-queues one insertion,
	// so at probability 1 the pending queue would never drain.
	if churnProb < 0 || churnProb >= 0.95 {
		panic(fmt.Sprintf("gen: churn probability %v out of [0, 0.95)", churnProb))
	}
	rng := rand.New(rand.NewSource(seed))
	pending := make([]stream.Edge, len(base))
	for i, e := range base {
		if e.Op != stream.Insert {
			panic(fmt.Sprintf("gen: Churn input must be insert-only, got %s at %d", e, i))
		}
		pending[len(base)-1-i] = e
	}
	live := newEdgeSet(len(base))
	out := make([]stream.Edge, 0, len(base)*2)
	warmup := len(base) / 10

	for len(pending) > 0 {
		e := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		live.add(e.User, e.Item)
		out = append(out, e)

		if len(out) > warmup && live.size() > 1 && rng.Float64() < churnProb {
			k := live.list[rng.Intn(live.size())]
			live.remove(k.User, k.Item)
			out = append(out, stream.Edge{User: k.User, Item: k.Item, Op: stream.Delete})
			pending = append(pending, stream.Edge{User: k.User, Item: k.Item, Op: stream.Insert})
			j := rng.Intn(len(pending))
			last := len(pending) - 1
			pending[j], pending[last] = pending[last], pending[j]
		}
	}
	return out
}
