// User-based collaborative filtering from sketched similarities.
//
// The paper motivates similarity estimation with collaborative filtering
// (TrustSVD, AAAI'15): recommend items that the users most similar to you
// are subscribed to. This example implements the classic user-based CF
// loop on top of the Estimator interface:
//
//  1. stream watch/unwatch events into a VOS sketch,
//  2. for a target user, find the most similar users (by estimated
//     Jaccard),
//  3. score candidate movies by how many similar users watch them,
//     weighted by similarity,
//  4. recommend the top unwatched movies.
//
// Users have genre tastes, so recommendation quality is auditable: a
// recommendation is a "genre hit" when the movie belongs to one of the
// target's two preferred genres.
//
// Run with:
//
//	go run ./examples/collabfilter
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/vossketch/vos"
)

const (
	numGenres      = 12
	moviesPerGenre = 400
	numViewers     = 1500
	watchesPerUser = 60
	tasteBias      = 0.75 // fraction of watches within the user's 2 genres
	neighborhood   = 20   // similar users consulted per recommendation
	recommendN     = 8
	auditViewers   = 4
)

func movieID(genre, idx int) vos.Item {
	return vos.Item(genre*moviesPerGenre + idx)
}

func genreOf(m vos.Item) int { return int(m) / moviesPerGenre }

func main() {
	rng := rand.New(rand.NewSource(21))

	budget := vos.Budget{K32: 100, Users: numViewers, Lambda: 2}
	sketch := vos.MustNewEstimator(vos.MethodVOS, budget, 5)

	// watched[u] drives feasible event generation and final candidate
	// filtering (a real system keeps watch history in its database; the
	// similarity tier is what gets sketched).
	watched := make([]map[vos.Item]struct{}, numViewers)
	tastes := make([][2]int, numViewers)
	for u := 0; u < numViewers; u++ {
		watched[u] = make(map[vos.Item]struct{}, watchesPerUser)
		g1 := rng.Intn(numGenres)
		g2 := (g1 + 1 + rng.Intn(numGenres-1)) % numGenres
		tastes[u] = [2]int{g1, g2}
	}

	// Stream watch events; afterwards every user un-watches a slice of
	// their out-of-taste picks (cleaning up their library), exercising
	// the dynamic path.
	events := 0
	for u := 0; u < numViewers; u++ {
		for len(watched[u]) < watchesPerUser {
			var m vos.Item
			if rng.Float64() < tasteBias {
				g := tastes[u][rng.Intn(2)]
				m = movieID(g, rng.Intn(moviesPerGenre))
			} else {
				m = movieID(rng.Intn(numGenres), rng.Intn(moviesPerGenre))
			}
			if _, dup := watched[u][m]; dup {
				continue
			}
			watched[u][m] = struct{}{}
			sketch.Process(vos.Edge{User: vos.User(u), Item: m, Op: vos.Insert})
			events++
		}
	}
	unwatches := 0
	for u := 0; u < numViewers; u++ {
		for m := range watched[u] {
			g := genreOf(m)
			if g != tastes[u][0] && g != tastes[u][1] && rng.Float64() < 0.5 {
				delete(watched[u], m)
				sketch.Process(vos.Edge{User: vos.User(u), Item: m, Op: vos.Delete})
				unwatches++
			}
		}
	}
	fmt.Printf("streamed %d watches and %d un-watches for %d viewers\n\n", events, unwatches, numViewers)

	everyone := make([]vos.User, numViewers)
	for u := range everyone {
		everyone[u] = vos.User(u)
	}

	totalHits, totalRecs := 0, 0
	for a := 0; a < auditViewers; a++ {
		u := vos.User(rng.Intn(numViewers))
		recs := recommend(sketch, u, everyone, watched)
		hits := 0
		fmt.Printf("viewer %4d (tastes: genre %d and %d) gets:\n", u, tastes[u][0], tastes[u][1])
		for _, m := range recs {
			g := genreOf(m)
			mark := " "
			if g == tastes[u][0] || g == tastes[u][1] {
				mark = "✓"
				hits++
			}
			fmt.Printf("  %s movie %5d (genre %2d)\n", mark, m, g)
		}
		fmt.Printf("  genre hits: %d/%d (random baseline ≈ %.1f)\n\n",
			hits, len(recs), float64(recommendN)*2/numGenres)
		totalHits += hits
		totalRecs += len(recs)
	}
	fmt.Printf("overall genre precision: %d/%d\n", totalHits, totalRecs)
}

// recommend implements user-based CF: neighbors by estimated Jaccard, then
// similarity-weighted voting over their watched movies.
func recommend(sketch vos.Estimator, u vos.User, everyone []vos.User,
	watched []map[vos.Item]struct{}) []vos.Item {

	neighbors := vos.TopSimilar(sketch, u, everyone, neighborhood)
	scores := make(map[vos.Item]float64)
	for _, nb := range neighbors {
		w := sketch.EstimateJaccard(u, nb)
		if w <= 0 {
			continue
		}
		for m := range watched[nb] {
			if _, seen := watched[u][m]; !seen {
				scores[m] += w
			}
		}
	}
	type mv struct {
		m vos.Item
		s float64
	}
	xs := make([]mv, 0, len(scores))
	for m, s := range scores {
		xs = append(xs, mv{m, s})
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].s != xs[j].s {
			return xs[i].s > xs[j].s
		}
		return xs[i].m < xs[j].m
	})
	n := recommendN
	if n > len(xs) {
		n = len(xs)
	}
	out := make([]vos.Item, n)
	for i := 0; i < n; i++ {
		out[i] = xs[i].m
	}
	return out
}
