package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/cluster"
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/server"
)

// ClusterOptions tunes the cluster experiment.
type ClusterOptions struct {
	// Edges is the workload size per cluster run (default 120000).
	Edges int
	// Nodes is the node-count sweep (default 1, 2, 3, 4). The 1-node row
	// is the gateway-overhead baseline; every multi-node row also performs
	// a live shard handoff at half-stream.
	Nodes []int
	// BatchSize is the ingest batch handed to the gateway per call
	// (default 256).
	BatchSize int
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Edges <= 0 {
		o.Edges = 120_000
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{1, 2, 3, 4}
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	return o
}

// Cluster measures the gateway tier over real loopback HTTP: for each
// node count it stands up K engine-backed vosd equivalents behind an
// internal/cluster gateway, fans the workload in through the gateway,
// hands a shard off to a fresh node at half-stream (multi-node rows), and
// times both the sharded ingest and the scatter-gather read path (cold
// gather vs cached snapshot).
//
// Every row is parity-gated before it is reported: the cluster's merged
// export must be bit-identical to a single in-process sketch fed the same
// stream, and sampled similarity answers must match it exactly — the
// tentpole guarantee (XOR-mergeable state makes distribution invisible to
// queries), measured rather than assumed. Any divergence is an error, not
// a row.
func Cluster(opts Options, copts ClusterOptions) (*Table, error) {
	opts = opts.normalized()
	copts = copts.withDefaults()

	p, err := gen.ProfileByName(opts.Dataset)
	if err != nil {
		return nil, err
	}
	p.Users = opts.RuntimeUsers
	p.Items = opts.RuntimeUsers * 4
	p.Edges = uint64(copts.Edges)
	base := gen.Bipartite(p, opts.Seed)
	edges := gen.Dynamize(base, gen.PaperDynamize(len(base), opts.Seed+1))

	cfg := core.PaperConfig(int(opts.RuntimeUsers), opts.K32, opts.Lambda, uint64(opts.Seed))

	// The single-engine oracle every cluster run must reproduce bit for bit.
	oracle := core.MustNew(cfg)
	oracle.ProcessBatch(edges)
	want, err := oracle.MarshalBinary()
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "cluster",
		Title: fmt.Sprintf("cluster gateway: scatter-gather over K vosd-equivalent nodes, %d edges over loopback", len(edges)),
		Header: []string{"nodes", "edges", "handoff", "ingest-wall", "edges/s", "ns/edge",
			"gather-cold", "query-cached", "parity"},
	}
	tbl.AddNote("dataset=%s users=%d edges=%d (after dynamize) batch=%d",
		p.Name, p.Users, len(edges), copts.BatchSize)
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d", cfg.MemoryBits, cfg.SketchBits, cfg.Seed)
	tbl.AddNote("parity gate: cluster export bit-identical to the single-engine oracle + sampled query equality")

	for _, k := range copts.Nodes {
		if err := clusterRun(tbl, cfg, edges, k, copts.BatchSize, want, oracle); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// clusterBackend is one engine-backed node on a real loopback listener.
type clusterBackend struct {
	eng *vos.Engine
	srv *http.Server
	url string
}

func startClusterBackend(cfg core.Config) (*clusterBackend, error) {
	eng, err := vos.NewEngine(vos.EngineConfig{Sketch: cfg, Shards: 2})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		return nil, err
	}
	srv := &http.Server{Handler: server.New(vos.NewEngineService(eng), server.Options{})}
	go srv.Serve(ln)
	return &clusterBackend{eng: eng, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func (b *clusterBackend) stop() {
	b.srv.Close()
	b.eng.Close()
}

// clusterRun times one K-node cluster over the workload and gates on
// bit-exact parity with the oracle. Multi-node runs move one shard to a
// fresh node at half-stream, so the reported numbers include a live
// handoff — the configuration a real rebalance runs in.
func clusterRun(tbl *Table, cfg core.Config, edges []stream.Edge, k, batch int, want []byte, oracle *core.VOS) error {
	backends := make([]*clusterBackend, 0, k+1)
	defer func() {
		for _, b := range backends {
			b.stop()
		}
	}()
	shards := make([]string, k)
	for i := 0; i < k; i++ {
		b, err := startClusterBackend(cfg)
		if err != nil {
			return err
		}
		backends = append(backends, b)
		shards[i] = b.url
	}
	gw, err := cluster.New(&cluster.Ring{Version: 1, RouteSeed: uint64(k), Shards: shards},
		cluster.Options{})
	if err != nil {
		return err
	}
	defer gw.Close()
	ctx := context.Background()

	ingest := func(span []stream.Edge) error {
		for off := 0; off < len(span); off += batch {
			end := off + batch
			if end > len(span) {
				end = len(span)
			}
			if err := gw.Ingest(ctx, span[off:end]); err != nil {
				return fmt.Errorf("cluster: ingest (k=%d): %w", k, err)
			}
		}
		return nil
	}

	half := len(edges) / 2
	handoff := "-"
	t0 := time.Now()
	if err := ingest(edges[:half]); err != nil {
		return err
	}
	if k > 1 {
		// Live handoff mid-stream: shard k-1 moves to a fresh node.
		fresh, err := startClusterBackend(cfg)
		if err != nil {
			return err
		}
		backends = append(backends, fresh)
		h0 := time.Now()
		if _, err := gw.Handoff(ctx, k-1, fresh.url); err != nil {
			return fmt.Errorf("cluster: handoff (k=%d): %w", k, err)
		}
		handoff = time.Since(h0).Round(time.Millisecond).String()
	}
	if err := ingest(edges[half:]); err != nil {
		return err
	}
	elapsed := time.Since(t0)

	// Cold gather: the first read scatter-gathers and merges every node's
	// serialized sketch. Cached: repeat reads hit the snapshot cache until
	// the next ingest.
	g0 := time.Now()
	if _, err := gw.Similarity(ctx, 1, 2); err != nil {
		return fmt.Errorf("cluster: cold gather (k=%d): %w", k, err)
	}
	gatherCold := time.Since(g0)
	q0 := time.Now()
	const cachedQueries = 50
	for i := 0; i < cachedQueries; i++ {
		if _, err := gw.Similarity(ctx, stream.User(i), stream.User(i+1)); err != nil {
			return fmt.Errorf("cluster: cached query (k=%d): %w", k, err)
		}
	}
	queryCached := time.Since(q0) / cachedQueries

	// Parity gates: serialized state, then sampled answers.
	got, err := gw.ExportSketch(ctx)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("cluster: %d-node export diverged from the single-engine oracle", k)
	}
	for u := stream.User(0); u < 40; u += 3 {
		est, err := gw.Similarity(ctx, u, u+1)
		if err != nil {
			return err
		}
		if est != oracle.Query(u, u+1) {
			return fmt.Errorf("cluster: %d-node Similarity(%d,%d) diverged from the oracle", k, u, u+1)
		}
		card, err := gw.Cardinality(ctx, u)
		if err != nil {
			return err
		}
		if card != oracle.Cardinality(u) {
			return fmt.Errorf("cluster: %d-node Cardinality(%d) diverged from the oracle", k, u)
		}
	}

	tbl.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", len(edges)), handoff,
		elapsed.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", float64(len(edges))/elapsed.Seconds()),
		fmt.Sprintf("%.0f", float64(elapsed.Nanoseconds())/float64(len(edges))),
		gatherCold.Round(time.Microsecond).String(),
		queryCached.Round(time.Microsecond).String(),
		"yes")
	return nil
}
