package lsh

import (
	"testing"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func TestBandIndexValidation(t *testing.T) {
	if _, err := NewBandIndex(Params{Bands: 0, Rows: 4}, 64); err == nil {
		t.Error("zero bands accepted")
	}
	if _, err := NewBandIndex(Params{Bands: 4, Rows: 4}, 0); err == nil {
		t.Error("zero signature bits accepted")
	}
	if _, err := NewBandIndex(Params{Bands: 4, Rows: 4}, 15); err == nil {
		t.Error("band structure wider than the signature accepted")
	}
	// Bands·Rows overflowing int must be rejected, not used as slice math.
	if _, err := NewBandIndex(Params{Bands: 1 << 62, Rows: 16}, 64); err == nil {
		t.Error("overflowing bands x rows accepted")
	}
	ix, err := NewBandIndex(Params{Bands: 4, Rows: 4, Seed: 9}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Params().Bands != 4 || ix.SignatureBits() != 64 {
		t.Fatalf("index misconfigured: %+v / %d", ix.Params(), ix.SignatureBits())
	}
	if err := ix.Put(1, []uint64{}); err == nil {
		t.Error("short packed signature accepted by Put")
	}
	if _, err := ix.Candidates(1, []uint64{}); err == nil {
		t.Error("short packed signature accepted by Candidates")
	}
}

func TestBandKeysDeterministicAndValidated(t *testing.T) {
	p := Params{Bands: 8, Rows: 16, Seed: 3}
	words := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef}
	a, err := BandKeys(p, words, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BandKeys(p, words, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != p.Bands {
		t.Fatalf("got %d keys, want %d", len(a), p.Bands)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("band %d key not deterministic", i)
		}
	}
	// A single flipped bit must change exactly its band's key.
	flipped := []uint64{words[0] ^ (1 << 20), words[1]}
	c, err := BandKeys(p, flipped, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if want := i == 20/p.Rows; (a[i] != c[i]) != want {
			t.Fatalf("bit 20 flip changed band %d (want only band %d)", i, 20/p.Rows)
		}
	}
	if _, err := BandKeys(p, words[:1], 128); err == nil {
		t.Error("short slice accepted")
	}
	if _, err := BandKeys(Params{Bands: 3, Rows: 3}, words, -1); err == nil {
		t.Error("negative signature bits accepted")
	}
}

// TestExtractBits pins the little-endian cross-word extraction against a
// scalar per-bit reference.
func TestExtractBits(t *testing.T) {
	words := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef, 0xfedcba9876543210}
	bitAt := func(i int) uint64 { return (words[i/64] >> (i % 64)) & 1 }
	for _, tc := range []struct{ off, n int }{
		{0, 64}, {0, 1}, {63, 1}, {63, 2}, {60, 24}, {64, 64}, {100, 64}, {127, 33}, {150, 42},
	} {
		got := extractBits(words, tc.off, tc.n)
		var want uint64
		for j := 0; j < tc.n; j++ {
			want |= bitAt(tc.off+j) << j
		}
		if got != want {
			t.Errorf("extractBits(off=%d, n=%d) = %x, want %x", tc.off, tc.n, got, want)
		}
	}
}

func TestBandIndexPutRemoveCandidates(t *testing.T) {
	ix, err := NewBandIndex(Params{Bands: 4, Rows: 8, Seed: 7}, 64)
	if err != nil {
		t.Fatal(err)
	}
	sig := []uint64{0x1122334455667788}
	other := []uint64{^uint64(0)}
	if err := ix.Put(1, sig); err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(2, sig); err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(3, other); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 || !ix.Has(2) || ix.Has(9) {
		t.Fatalf("membership broken: len=%d", ix.Len())
	}
	cands, err := ix.Candidates(1, sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0] != 2 {
		t.Fatalf("Candidates = %v, want [2]", cands)
	}
	// Replacement: moving user 2 to a different signature must retire its
	// old banding — no ghost candidacy under the old signature.
	if err := ix.Put(2, other); err != nil {
		t.Fatal(err)
	}
	cands, _ = ix.Candidates(1, sig)
	if len(cands) != 0 {
		t.Fatalf("superseded banding still surfaces: %v", cands)
	}
	cands, _ = ix.Candidates(3, other)
	if len(cands) != 1 || cands[0] != 2 {
		t.Fatalf("re-banded user not found: %v", cands)
	}
	// Removal: lazy, but never visible.
	ix.Remove(2)
	if ix.Has(2) || ix.Len() != 2 {
		t.Fatalf("remove broken: len=%d", ix.Len())
	}
	cands, _ = ix.Candidates(3, other)
	if len(cands) != 0 {
		t.Fatalf("removed user still surfaces: %v", cands)
	}
	ix.Remove(42) // absent: no-op
	// ForEachMember sees exactly the live members, early stop honoured.
	seen := map[stream.User]bool{}
	ix.ForEachMember(func(u stream.User) bool { seen[u] = true; return true })
	if len(seen) != 2 || !seen[1] || !seen[3] {
		t.Fatalf("ForEachMember = %v", seen)
	}
	calls := 0
	ix.ForEachMember(func(stream.User) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

// TestBandIndexCompaction pins that probing compacts stale entries in
// place and that churn without probes triggers the sweep backstop, so the
// entry count stays bounded by a constant factor of the live membership.
func TestBandIndexCompaction(t *testing.T) {
	p := Params{Bands: 2, Rows: 4, Seed: 5}
	ix, err := NewBandIndex(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	sig := []uint64{0xa5}
	// Churn one user far past the sweep threshold while indexing enough
	// members that the small-index exemption does not apply.
	for u := stream.User(0); u < 200; u++ {
		if err := ix.Put(u, []uint64{uint64(u)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if err := ix.Put(1, sig); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Sweeps == 0 {
		t.Fatalf("churn never swept: %+v", st)
	}
	if max := 2 * ix.Len() * p.Bands; st.Entries > max {
		t.Fatalf("entries %d exceed sweep bound %d", st.Entries, max)
	}
	// Probe-side compaction: superseded entries met on a probe are dropped
	// from their buckets. A fresh index below the sweep backstop's
	// small-index exemption keeps the sweep out of the way, so the probe is
	// the only thing that can reclaim them.
	ix2, err := NewBandIndex(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ix2.Put(1, sig); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix2.Put(2, sig); err != nil {
		t.Fatal(err)
	}
	before := ix2.Stats().Entries
	if _, err := ix2.Candidates(2, sig); err != nil {
		t.Fatal(err)
	}
	after := ix2.Stats().Entries
	if want := 2 * p.Bands; after != want || after >= before {
		t.Fatalf("probe did not compact to live entries: %d -> %d (want %d)", before, after, want)
	}
}

// TestBandIndexCollisionProbabilityBound is the S-curve property test over
// real recovered sketches: plant pairs whose per-bit agreement clears the
// S-curve threshold (1/b)^(1/r) by a margin, band them under many
// independent seeds, and check the empirical collision rate is at least
// the analytic CollisionProbability bound (minus sampling slack). The
// bound treats band bits as independent samples of the agreement rate;
// recovered-sketch bits are one parity bit per virtual slot, which is
// exactly that.
func TestBandIndexCollisionProbabilityBound(t *testing.T) {
	p := Params{Bands: 8, Rows: 4}
	const trials = 150
	const margin = 0.05
	threshold := p.Threshold()

	collisions, prSum := 0, 0.0
	for trial := 0; trial < trials; trial++ {
		sk := core.MustNew(core.Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: uint64(trial + 1)})
		common := gen.PlantedJaccard(400, 0.85)
		for _, e := range gen.PlantedPair(1, 2, 400, 400, common, int64(trial)) {
			sk.Process(e)
		}
		ra, rb := sk.RecoverSketch(1), sk.RecoverSketch(2)
		wa, wb := ra.Words(), rb.Words()

		// Per-bit agreement over the banded range, the S-curve's x-axis.
		bits := p.SignatureLen()
		agree := 0
		for j := 0; j < bits; j++ {
			if (wa[j/64]>>(j%64))&1 == (wb[j/64]>>(j%64))&1 {
				agree++
			}
		}
		pAgree := float64(agree) / float64(bits)
		if pAgree < threshold+margin {
			// The workload is planted to clear the threshold; a trial that
			// does not is a setup bug, not a property violation.
			t.Fatalf("trial %d: agreement %.3f below threshold %.3f + margin", trial, pAgree, threshold)
		}
		prSum += p.CollisionProbability(pAgree)

		ix, err := NewBandIndex(Params{Bands: p.Bands, Rows: p.Rows, Seed: uint64(1000 + trial)}, sk.Config().SketchBits)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Put(2, wb); err != nil {
			t.Fatal(err)
		}
		cands, err := ix.Candidates(1, wa)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c == 2 {
				collisions++
			}
		}
	}
	empirical := float64(collisions) / trials
	bound := prSum / trials
	// Three-sigma sampling slack on a Bernoulli mean near the bound.
	slack := 3 * 0.5 / 12.2 // ≈ 3·sqrt(p(1-p)/trials) at worst case p=0.5
	if empirical < bound-slack {
		t.Fatalf("empirical collision rate %.3f below CollisionProbability bound %.3f - %.3f",
			empirical, bound, slack)
	}
}
