package minhash

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func process(s *Sketch, edges []stream.Edge) {
	for _, e := range edges {
		s.Process(e)
	}
}

func TestStaticJaccardAccuracy(t *testing.T) {
	// Insertion-only streams: MinHash is unbiased. Average over seeds.
	const (
		trials = 25
		k      = 256
		size   = 400
	)
	for _, wantJ := range []float64{0.1, 0.5, 0.9} {
		common := gen.PlantedJaccard(size, wantJ)
		trueJ := float64(common) / float64(2*size-common)
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			s := New(k, uint64(trial))
			process(s, gen.PlantedPair(1, 2, size, size, common, int64(trial)))
			sum += s.EstimateJaccard(1, 2)
		}
		avg := sum / trials
		if math.Abs(avg-trueJ) > 0.04 {
			t.Errorf("J=%.2f: mean estimate %.3f", trueJ, avg)
		}
	}
}

func TestCommonItemsIdentity(t *testing.T) {
	const size, common = 300, 150
	s := New(512, 3)
	process(s, gen.PlantedPair(1, 2, size, size, common, 5))
	est := s.EstimateCommonItems(1, 2)
	if math.Abs(est-common)/common > 0.25 {
		t.Errorf("ŝ = %.1f, want ~%d", est, common)
	}
	if s.Cardinality(1) != size || s.Cardinality(2) != size {
		t.Error("cardinality tracking wrong")
	}
}

func TestDeletionEmptiesRegister(t *testing.T) {
	s := New(16, 1)
	s.Process(stream.Edge{User: 1, Item: 77, Op: stream.Insert})
	// Every register now holds item 77; deleting it empties all.
	s.Process(stream.Edge{User: 1, Item: 77, Op: stream.Delete})
	sig := s.Signature(1)
	for j, h := range sig {
		if h != math.MaxUint64 {
			t.Errorf("register %d not emptied: %x", j, h)
		}
	}
	if s.Cardinality(1) != 0 {
		t.Errorf("cardinality %d", s.Cardinality(1))
	}
}

func TestDeletionOfNonMinimumKeepsRegister(t *testing.T) {
	s := New(8, 2)
	s.Process(stream.Edge{User: 1, Item: 1, Op: stream.Insert})
	s.Process(stream.Edge{User: 1, Item: 2, Op: stream.Insert})
	before := s.Signature(1)
	// For each register, deleting the item that is NOT the minimum must
	// leave the register unchanged. Delete both items from a clone-like
	// second user to find which one is the min per register; simpler:
	// delete item 2, then registers whose min was item 1 are unchanged.
	s.Process(stream.Edge{User: 1, Item: 2, Op: stream.Delete})
	after := s.Signature(1)
	changed := 0
	for j := range before {
		if before[j] != after[j] {
			changed++
			if after[j] != math.MaxUint64 {
				t.Errorf("register %d changed to a non-empty value", j)
			}
		}
	}
	if changed == len(before) {
		t.Error("all registers emptied; min detection broken")
	}
}

func TestDeletionBiasExists(t *testing.T) {
	// The documented §III flaw: after deletions, registers empty out and
	// the estimator loses matches it should keep, underestimating J.
	// Two identical sets (J=1): subscribe 200 shared items, then
	// unsubscribe 150 of them from both users. True J of the remaining
	// 50 shared items is still 1.0, but emptied registers never refill.
	const k = 128
	sumJ := 0.0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		s := New(k, uint64(trial))
		for i := 0; i < 200; i++ {
			s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
			s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Insert})
		}
		for i := 0; i < 150; i++ {
			s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Delete})
			s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Delete})
		}
		sumJ += s.EstimateJaccard(1, 2)
	}
	avgJ := sumJ / trials
	if avgJ > 0.6 {
		t.Errorf("expected strong underestimate of J=1 after deletions, got %.3f"+
			" (bias disappeared; baseline no longer reproduces the paper's flaw)", avgJ)
	}
}

func TestEstimateUnknownUsers(t *testing.T) {
	s := New(8, 1)
	if s.EstimateJaccard(5, 6) != 0 {
		t.Error("unknown users should estimate 0")
	}
}

func TestFromSet(t *testing.T) {
	items := []stream.Item{10, 20, 30}
	a := FromSet(items, 64, 9)
	b := FromSet(items, 64, 9)
	sa, sb := a.Signature(0), b.Signature(0)
	for j := range sa {
		if sa[j] != sb[j] {
			t.Fatal("FromSet not deterministic")
		}
		if sa[j] == math.MaxUint64 {
			t.Fatal("register empty after inserts")
		}
	}
	if a.EstimateJaccard(0, 0) != 1 {
		t.Error("self Jaccard should be 1")
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	New(0, 1)
}

func TestBBitAccuracy(t *testing.T) {
	const (
		trials = 20
		k      = 512
		size   = 300
	)
	for _, b := range []uint{1, 2, 8} {
		for _, wantJ := range []float64{0.2, 0.8} {
			common := gen.PlantedJaccard(size, wantJ)
			trueJ := float64(common) / float64(2*size-common)
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				s := New(k, uint64(trial))
				process(s, gen.PlantedPair(1, 2, size, size, common, int64(trial)))
				ga := NewBBit(s, 1, b)
				gb := NewBBit(s, 2, b)
				sum += ga.EstimateJaccard(gb)
			}
			avg := sum / trials
			tol := 0.05
			if b == 1 {
				tol = 0.10 // 1-bit estimates are noisier
			}
			if math.Abs(avg-trueJ) > tol {
				t.Errorf("b=%d J=%.2f: mean estimate %.3f", b, trueJ, avg)
			}
		}
	}
}

func TestBBitStorage(t *testing.T) {
	s := FromSet([]stream.Item{1, 2, 3}, 100, 1)
	g := NewBBit(s, 0, 4)
	if g.BitsTotal() != 400 {
		t.Errorf("BitsTotal = %d", g.BitsTotal())
	}
	if s.BitsPerUser() != 3200 {
		t.Errorf("BitsPerUser = %d", s.BitsPerUser())
	}
}

func TestBBitPanics(t *testing.T) {
	s := FromSet([]stream.Item{1}, 8, 1)
	for name, fn := range map[string]func(){
		"b too small": func() { NewBBit(s, 0, 0) },
		"b too large": func() { NewBBit(s, 0, 33) },
		"mismatched": func() {
			a := NewBBit(s, 0, 2)
			c := NewBBit(s, 0, 3)
			a.EstimateJaccard(c)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkProcessK100(b *testing.B) {
	s := New(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Edge{User: stream.User(i % 1000), Item: stream.Item(i), Op: stream.Insert})
	}
}
