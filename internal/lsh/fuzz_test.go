package lsh

import (
	"encoding/binary"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

// FuzzBandExtraction throws arbitrary packed bytes and arbitrary band
// shapes at the banding surface: BandKeys, and an index fed through
// Put/Candidates with the same material. Invalid shapes and short slices
// must error; nothing may panic or read out of bounds. Accepted inputs
// must band deterministically, and colliding with yourself is the one
// collision banding can never miss.
func FuzzBandExtraction(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint16(64), uint64(1), []byte{})
	f.Add(uint8(8), uint8(16), uint16(128), uint64(7), bytesOf(0xdeadbeefcafef00d, 0x0123456789abcdef))
	f.Add(uint8(0), uint8(3), uint16(9), uint64(0), []byte{1, 2, 3})
	f.Add(uint8(32), uint8(8), uint16(256), uint64(42), make([]byte, 32))
	f.Add(uint8(2), uint8(63), uint16(130), uint64(3), bytesOf(^uint64(0), 0, ^uint64(0)))

	f.Fuzz(func(t *testing.T, bands, rows uint8, sigBits uint16, seed uint64, data []byte) {
		words := make([]uint64, (len(data)+7)/8)
		for i, b := range data {
			words[i/8] |= uint64(b) << ((i % 8) * 8)
		}
		p := Params{Bands: int(bands), Rows: int(rows), Seed: seed}

		keys, err := BandKeys(p, words, int(sigBits))
		if err != nil {
			// Invalid shape or short signature: the index constructor must
			// agree that this input is unusable at this width.
			if ix, err2 := NewBandIndex(p, int(sigBits)); err2 == nil {
				if err3 := ix.Put(1, words); err3 == nil {
					t.Fatalf("BandKeys rejected (%v) what Put accepted", err)
				}
			}
			return
		}
		if len(keys) != p.Bands {
			t.Fatalf("got %d keys for %d bands", len(keys), p.Bands)
		}
		again, err := BandKeys(p, words, int(sigBits))
		if err != nil {
			t.Fatalf("second BandKeys call failed: %v", err)
		}
		for i := range keys {
			if keys[i] != again[i] {
				t.Fatalf("band %d key not deterministic", i)
			}
		}

		ix, err := NewBandIndex(p, int(sigBits))
		if err != nil {
			t.Fatalf("BandKeys accepted what NewBandIndex rejected: %v", err)
		}
		if err := ix.Put(1, words); err != nil {
			t.Fatalf("BandKeys accepted what Put rejected: %v", err)
		}
		if err := ix.Put(2, words); err != nil {
			t.Fatal(err)
		}
		cands, err := ix.Candidates(1, words)
		if err != nil {
			t.Fatalf("BandKeys accepted what Candidates rejected: %v", err)
		}
		found := false
		for _, c := range cands {
			if c == stream.User(1) {
				t.Fatal("probe returned itself")
			}
			found = found || c == stream.User(2)
		}
		if !found {
			t.Fatal("identical signature did not collide")
		}
	})
}

// bytesOf packs words little-endian, matching the recovered-sketch layout.
func bytesOf(words ...uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}
