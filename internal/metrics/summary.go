package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a distributional view of per-pair errors: beyond the paper's
// single-number AAPE/ARMSE, the ablation write-ups and the inspector
// report where the error mass sits (a method with good mean but heavy p99
// behaves very differently in production).
type Summary struct {
	Count         int
	Mean          float64
	P50, P90, P99 float64
	Max           float64
}

// Summarize computes the summary of a sample. NaNs are rejected (they
// indicate an upstream bug, not a data property).
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("metrics: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	for _, x := range sorted {
		if math.IsNaN(x) {
			return Summary{}, fmt.Errorf("metrics: NaN in sample")
		}
	}
	sort.Float64s(sorted)
	mean := 0.0
	for _, x := range sorted {
		mean += x
	}
	mean /= float64(len(sorted))
	return Summary{
		Count: len(sorted),
		Mean:  mean,
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P99:   quantile(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}, nil
}

// quantile returns the q-quantile of a sorted sample by linear
// interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// AbsoluteErrors returns |truth − estimate| pairwise.
func AbsoluteErrors(truth, estimate []float64) []float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: AbsoluteErrors length mismatch %d vs %d", len(truth), len(estimate)))
	}
	out := make([]float64, len(truth))
	for i := range truth {
		out[i] = math.Abs(truth[i] - estimate[i])
	}
	return out
}

// RelativeErrors returns |truth − estimate| / |truth| for pairs with
// nonzero truth, in input order (zero-truth pairs are skipped, matching
// the AAPE convention).
func RelativeErrors(truth, estimate []float64) []float64 {
	if len(truth) != len(estimate) {
		panic(fmt.Sprintf("metrics: RelativeErrors length mismatch %d vs %d", len(truth), len(estimate)))
	}
	out := make([]float64, 0, len(truth))
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		out = append(out, math.Abs(truth[i]-estimate[i])/math.Abs(truth[i]))
	}
	return out
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}
