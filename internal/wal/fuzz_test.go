package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

// FuzzDecodeEdges throws arbitrary bytes at the record-payload decoder: it
// must never panic, failures must be typed ErrCorrupt, and any payload it
// accepts must round-trip through the writer's encoding. (Byte identity is
// not required — the decoder tolerates non-minimal varints, which the
// writer never produces and the record CRC keeps out of real logs.)
func FuzzDecodeEdges(f *testing.F) {
	f.Add(appendEdges(nil, testEdges(0, 3)))
	f.Add(appendEdges(nil, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := DecodeEdges(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt decode failure: %v", err)
			}
			return
		}
		again, err := DecodeEdges(appendEdges(nil, edges))
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed length %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}

// FuzzDecodeCheckpoint fuzzes the checkpoint frame decoder: no panics,
// typed errors, and accepted frames round-trip through EncodeCheckpoint.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(EncodeCheckpoint(42, []byte("sketch bytes")))
	f.Add(EncodeCheckpoint(0, nil))
	f.Add([]byte{})
	f.Add(append(ckptMagic[:], make([]byte, 20)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		pos, sketch, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt decode failure: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeCheckpoint(pos, sketch), data) {
			t.Fatal("accepted checkpoint does not round-trip")
		}
	})
}

// FuzzReadSegment feeds arbitrary file contents through the segment
// reader: it must never panic, and whatever records it accepts before
// stopping must round-trip through the writer path.
func FuzzReadSegment(f *testing.F) {
	// A well-formed two-record segment as the structured seed.
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	l.Append(testEdges(0, 4))
	l.Append(testEdges(4, 2))
	l.Close()
	good, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	f.Add([]byte{})
	f.Add(segMagic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segName(0))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		info, err := InspectSegment(path)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt inspect failure: %v", err)
			}
			return
		}
		// Accepted (possibly torn) segments must also scan consistently:
		// the valid prefix holds exactly the counted edges.
		edges, validLen, err := scanSegment(path)
		if err != nil {
			t.Fatalf("InspectSegment accepted but scanSegment failed: %v", err)
		}
		if edges != info.Edges {
			t.Fatalf("scan found %d edges, inspect found %d", edges, info.Edges)
		}
		if validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds file size %d", validLen, len(data))
		}
		var replayed uint64
		err = readSegment(path, func(batch []stream.Edge) error {
			replayed += uint64(len(batch))
			return nil
		})
		if err != nil && !errors.Is(err, errTornTail) {
			t.Fatalf("readSegment after successful inspect: %v", err)
		}
		if replayed != info.Edges {
			t.Fatalf("replayed %d edges, inspect found %d", replayed, info.Edges)
		}
	})
}
