package experiments

import "testing"

// TestUDPSoakSmoke runs the full soak — HTTP row, clean datagram row,
// fault-injected row — at a tiny scale. The experiment self-gates: any
// undetected loss, counter drift from the injected fault plan, or sketch
// divergence from the in-process oracle is an error, so a returned table
// IS the assertion. The shape checks below only pin the report format.
func TestUDPSoakSmoke(t *testing.T) {
	tbl, err := UDPSoak(tinyOptions(), UDPSoakOptions{Edges: 4000, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows, want http, udp, udp-faults", len(tbl.Rows))
	}
	for i, transport := range []string{"http", "udp", "udp-faults"} {
		if tbl.Rows[i][0] != transport {
			t.Fatalf("row %d is %q, want %q", i, tbl.Rows[i][0], transport)
		}
		if parity := tbl.Rows[i][len(tbl.Rows[i])-1]; parity != "yes" {
			t.Fatalf("row %d parity = %q", i, parity)
		}
	}
	// The clean datagram row must report a spotless ledger.
	udp := tbl.Rows[1]
	for _, col := range []int{8, 9, 10} { // gaps, replays, late
		if udp[col] != "0" {
			t.Fatalf("clean udp row has %s = %q, want 0", tbl.Header[col], udp[col])
		}
	}
}
