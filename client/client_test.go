package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/server"
)

// countingBackend records /v1/edges calls and their edge counts, and
// serves scripted responses elsewhere.
type countingBackend struct {
	ingests      atomic.Int64
	edges        atomic.Int64
	failSimCalls atomic.Int64 // remaining similarity calls to fail with 500
	simCalls     atomic.Int64
}

func (b *countingBackend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(server.RouteEdges, func(w http.ResponseWriter, r *http.Request) {
		edges, err := stream.ReadBinary(r.Body)
		if err != nil {
			http.Error(w, err.Error(), 400)
			return
		}
		b.ingests.Add(1)
		b.edges.Add(int64(len(edges)))
		json.NewEncoder(w).Encode(server.IngestResponse{Accepted: len(edges)})
	})
	mux.HandleFunc(server.RouteSimilarity, func(w http.ResponseWriter, r *http.Request) {
		b.simCalls.Add(1)
		if b.failSimCalls.Add(-1) >= 0 {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(server.ErrorEnvelope{Error: server.ErrorBody{
				Code: server.CodeInternal, Message: "scripted failure"}})
			return
		}
		json.NewEncoder(w).Encode(server.EstimateToWire(vos.Estimate{Jaccard: 0.5}))
	})
	mux.HandleFunc(server.RouteCardinality, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(400)
		json.NewEncoder(w).Encode(server.ErrorEnvelope{Error: server.ErrorBody{
			Code: server.CodeBadRequest, Message: "scripted 400"}})
	})
	return mux
}

func edge(u, i uint64) vos.Edge {
	return vos.Edge{User: vos.User(u), Item: vos.Item(i), Op: vos.Insert}
}

// TestIngestBatching: full batches ship immediately, the residue waits for
// Flush — the engine's linger-buffer shape on the wire.
func TestIngestBatching(t *testing.T) {
	b := &countingBackend{}
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 100, Linger: -1})
	defer cl.Close()

	ctx := context.Background()
	batch := make([]vos.Edge, 250)
	for i := range batch {
		batch[i] = edge(1, uint64(i))
	}
	if err := cl.Ingest(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if got := b.ingests.Load(); got != 2 {
		t.Fatalf("250 edges at BatchSize 100: %d ship requests, want 2", got)
	}
	if got := b.edges.Load(); got != 200 {
		t.Fatalf("shipped %d edges before Flush, want 200", got)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := b.ingests.Load(), int64(3); got != want {
		t.Fatalf("after Flush: %d ship requests, want %d", got, want)
	}
	if got := b.edges.Load(); got != 250 {
		t.Fatalf("shipped %d edges after Flush, want 250", got)
	}
	// Empty flush is a no-op, not a zero-edge request.
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := b.ingests.Load(); got != 3 {
		t.Fatalf("empty Flush shipped a request (total %d)", got)
	}
}

// TestLingerShipsPartialBatches: with a linger interval, a partial batch
// reaches the server without an explicit Flush.
func TestLingerShipsPartialBatches(t *testing.T) {
	b := &countingBackend{}
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 1 << 20, Linger: 2 * time.Millisecond})
	defer cl.Close()

	if err := cl.Ingest(context.Background(), []vos.Edge{edge(1, 2)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.edges.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("pending edge never shipped by the linger ticker")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryOnTransient: 5xx responses on reads are retried with backoff
// until success; the write path never retries.
func TestRetryOnTransient(t *testing.T) {
	b := &countingBackend{}
	b.failSimCalls.Store(2)
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{MaxRetries: 2, RetryBackoff: time.Millisecond, Linger: -1})
	defer cl.Close()

	est, err := cl.Similarity(context.Background(), 1, 2)
	if err != nil {
		t.Fatalf("similarity after transient failures: %v", err)
	}
	if est.Jaccard != 0.5 {
		t.Fatalf("estimate %+v", est)
	}
	if got := b.simCalls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (2 failures + success)", got)
	}
}

// TestRetryExhaustion: when every attempt fails, the last typed error
// surfaces.
func TestRetryExhaustion(t *testing.T) {
	b := &countingBackend{}
	b.failSimCalls.Store(100)
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{MaxRetries: 1, RetryBackoff: time.Millisecond, Linger: -1})
	defer cl.Close()

	_, err := cl.Similarity(context.Background(), 1, 2)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 500 || apiErr.Code != server.CodeInternal {
		t.Fatalf("want *client.Error 500/internal, got %v", err)
	}
	if got := b.simCalls.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2 (MaxRetries=1)", got)
	}
}

// TestNoRetryOn4xx: a 4xx envelope is the caller's bug; exactly one
// attempt, typed error back.
func TestNoRetryOn4xx(t *testing.T) {
	b := &countingBackend{}
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{MaxRetries: 5, RetryBackoff: time.Millisecond, Linger: -1})
	defer cl.Close()

	_, err := cl.Cardinality(context.Background(), 1)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Code != server.CodeBadRequest {
		t.Fatalf("want *client.Error 400/bad_request, got %v", err)
	}
}

// TestErrorSentinelMapping: envelope codes map back onto the vos and
// context sentinels through errors.Is, so remote and in-process services
// fail the same way to callers.
func TestErrorSentinelMapping(t *testing.T) {
	cases := []struct {
		code   string
		status int
		target error
	}{
		{server.CodeUnavailable, 503, vos.ErrClosed},
		{server.CodeUnavailable, 503, vos.ErrQueryUnavailable},
		{server.CodeDraining, 503, vos.ErrQueryUnavailable},
		{server.CodeCanceled, server.StatusClientClosedRequest, context.Canceled},
		{server.CodeTimeout, 504, context.DeadlineExceeded},
	}
	for _, tc := range cases {
		err := &client.Error{Status: tc.status, Code: tc.code, Message: "x"}
		if !errors.Is(err, tc.target) {
			t.Errorf("code %q should match %v via errors.Is", tc.code, tc.target)
		}
	}
	err := &client.Error{Status: 400, Code: server.CodeBadRequest, Message: "x"}
	if errors.Is(err, vos.ErrClosed) {
		t.Error("bad_request must not match ErrClosed")
	}
	// Draining is transient rotation, not engine shutdown: it must stay
	// distinguishable from a genuinely closed engine.
	err = &client.Error{Status: 503, Code: server.CodeDraining, Message: "x"}
	if errors.Is(err, vos.ErrClosed) {
		t.Error("draining must not match ErrClosed")
	}
}

// TestNonEnvelopeError: a non-JSON error body still comes back typed.
func TestNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusBadGateway)
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{MaxRetries: -1, Linger: -1})
	defer cl.Close()

	_, err := cl.Stats(context.Background())
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("want *client.Error with status 502, got %v", err)
	}
}

// TestContextCancellationNotRetried: a cancelled context surfaces
// immediately as context.Canceled, never as a retry loop.
func TestContextCancellationNotRetried(t *testing.T) {
	calls := atomic.Int64{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-r.Context().Done()
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{MaxRetries: 5, RetryBackoff: time.Millisecond, Linger: -1})
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := cl.Similarity(ctx, 1, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts on a dead context, want 1", got)
	}
}

// TestClosedClient: Ingest after Close returns the lifecycle sentinel.
func TestClosedClient(t *testing.T) {
	b := &countingBackend{}
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{Linger: -1})
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := cl.Ingest(context.Background(), []vos.Edge{edge(1, 2)}); !errors.Is(err, vos.ErrClosed) {
		t.Fatalf("Ingest after Close: want ErrClosed, got %v", err)
	}
}

// TestCloseFlushes: edges buffered below BatchSize still reach the server
// when the client closes.
func TestCloseFlushes(t *testing.T) {
	b := &countingBackend{}
	ts := httptest.NewServer(b.handler())
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 1 << 20, Linger: -1})
	if err := cl.Ingest(context.Background(), []vos.Edge{edge(1, 2), edge(3, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.edges.Load(); got != 2 {
		t.Fatalf("%d edges shipped by Close, want 2", got)
	}
}

// TestReady probes readiness against a real server before and after Drain.
func TestReady(t *testing.T) {
	eng, err := vos.NewEngine(vos.EngineConfig{Sketch: vos.Config{MemoryBits: 1 << 16, SketchBits: 128, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(vos.NewEngineService(eng), server.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{Linger: -1})
	defer cl.Close()

	ctx := context.Background()
	if !cl.Ready(ctx) {
		t.Fatal("fresh server not ready")
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.Ready(ctx) {
		t.Fatal("drained server still reports ready")
	}
}

// TestAgainstRealServer drives the client against the real server+engine
// stack: TopK parity with the in-process engine, and Checkpoint against a
// memory-only engine surfacing the typed unsupported error.
func TestAgainstRealServer(t *testing.T) {
	eng, err := vos.NewEngine(vos.EngineConfig{
		Sketch: vos.Config{MemoryBits: 1 << 18, SketchBits: 512, Seed: 7},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 64, Linger: -1})
	defer cl.Close()

	ctx := context.Background()
	var edges []vos.Edge
	for u := uint64(1); u <= 20; u++ {
		for i := uint64(0); i < 30; i++ {
			edges = append(edges, edge(u, u*10+i))
		}
	}
	if err := cl.Ingest(ctx, edges); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	candidates := []vos.User{2, 3, 4, 5, 6, 7, 8, 9, 10}
	got, err := cl.TopK(ctx, 1, candidates, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.TopK(1, candidates, 4)
	if len(got) != len(want) {
		t.Fatalf("TopK sizes: wire %d, in-process %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("TopK[%d]: wire %+v, in-process %+v", i, got[i], want[i])
		}
	}

	// Memory-only engine: checkpoint is the capability gap, typed.
	_, err = cl.Checkpoint(ctx)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeUnsupported {
		t.Fatalf("Checkpoint on memory-only engine: want unsupported envelope, got %v", err)
	}
	if apiErr.Error() == "" || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("error formatting: %+v", apiErr)
	}
}

// TestLingerErrorSurfaces: a background flush failure is parked and
// returned by the next Ingest instead of vanishing.
func TestLingerErrorSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(500)
		json.NewEncoder(w).Encode(server.ErrorEnvelope{Error: server.ErrorBody{
			Code: server.CodeInternal, Message: "scripted ingest failure"}})
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 1 << 20, Linger: time.Millisecond})
	defer cl.Close()

	if err := cl.Ingest(context.Background(), []vos.Edge{edge(1, 2)}); err != nil {
		t.Fatal(err) // buffered only, no wire contact yet
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := cl.Ingest(context.Background(), nil)
		if err != nil {
			var apiErr *client.Error
			if !errors.As(err, &apiErr) || apiErr.Code != server.CodeInternal {
				t.Fatalf("parked linger error: got %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background flush error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShipAcceptedMismatch: a server that under-acknowledges is an error,
// not a silent partial write.
func TestShipAcceptedMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.IngestResponse{Accepted: 0})
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 1, Linger: -1})
	defer cl.Close()
	err := cl.Ingest(context.Background(), []vos.Edge{edge(1, 2)})
	if err == nil || !strings.Contains(err.Error(), "accepted 0 of 1") {
		t.Fatalf("under-acknowledged batch: got %v", err)
	}
}

// TestIngestRequeuesUnattemptedBatches: when an early batch's ship fails,
// batches that were never attempted return to the buffer instead of being
// silently dropped — only the ambiguous (attempted) batch is lost to the
// no-retry policy.
func TestIngestRequeuesUnattemptedBatches(t *testing.T) {
	var calls, edgesSeen atomic.Int64
	failFirst := atomic.Bool{}
	failFirst.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failFirst.CompareAndSwap(true, false) {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(server.ErrorEnvelope{Error: server.ErrorBody{
				Code: server.CodeInternal, Message: "scripted"}})
			return
		}
		edges, err := stream.ReadBinary(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		edgesSeen.Add(int64(len(edges)))
		json.NewEncoder(w).Encode(server.IngestResponse{Accepted: len(edges)})
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 10, Linger: -1})
	defer cl.Close()

	batch := make([]vos.Edge, 30) // 3 full batches
	for i := range batch {
		batch[i] = edge(1, uint64(i))
	}
	ctx := context.Background()
	if err := cl.Ingest(ctx, batch); err == nil {
		t.Fatal("first Ingest should surface the scripted failure")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d ship attempts after failure, want 1 (no write retries)", got)
	}
	// Batches 2 and 3 (20 edges) must still be buffered: Flush delivers
	// them. Batch 1 (10 edges) was attempted and is ambiguous — gone.
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := edgesSeen.Load(); got != 20 {
		t.Fatalf("server saw %d edges after recovery Flush, want 20 (the 2 unattempted batches)", got)
	}
}

// TestFlushKeepsBufferOnParkedError: Flush surfacing a parked background
// error must not consume edges buffered after the failure — the next
// Flush delivers them.
func TestFlushKeepsBufferOnParkedError(t *testing.T) {
	var edgesSeen atomic.Int64
	fail := atomic.Bool{}
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(server.ErrorEnvelope{Error: server.ErrorBody{
				Code: server.CodeInternal, Message: "scripted"}})
			return
		}
		edges, err := stream.ReadBinary(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		edgesSeen.Add(int64(len(edges)))
		json.NewEncoder(w).Encode(server.IngestResponse{Accepted: len(edges)})
	}))
	defer ts.Close()
	cl := client.New(ts.URL, client.Options{BatchSize: 1 << 20, Linger: time.Millisecond})
	defer cl.Close()

	ctx := context.Background()
	if err := cl.Ingest(ctx, []vos.Edge{edge(1, 2)}); err != nil {
		t.Fatal(err) // buffered; the linger ticker will attempt and fail
	}
	// Wait for a background failure to park.
	deadline := time.Now().Add(5 * time.Second)
	var parked error
	for parked == nil {
		if time.Now().After(deadline) {
			t.Fatal("no background error parked")
		}
		time.Sleep(2 * time.Millisecond)
		cl2 := cl // parked error surfaces via Flush
		if err := cl2.Flush(ctx); err != nil {
			parked = err
		}
	}
	// Buffer a fresh edge AFTER the failure; heal the server; Flush must
	// deliver it even though the previous Flush returned the parked error.
	fail.Store(false)
	if err := cl.Ingest(ctx, []vos.Edge{edge(3, 4)}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for edgesSeen.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("post-failure edge never delivered")
		}
		if err := cl.Flush(ctx); err != nil {
			t.Logf("flush during recovery: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
