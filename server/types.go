package server

import (
	"fmt"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/metrics"
)

// Wire types of the /v1/ API. They are defined here — in the server
// package — as the single canonical description of the protocol; package
// client imports them rather than maintaining a parallel copy, so the two
// ends of the wire cannot drift.
//
// Estimates travel as full float64 JSON numbers. encoding/json emits the
// shortest decimal that round-trips the exact float64, so a decoded
// estimate is bit-identical to the one the engine produced — the property
// the client↔server parity tests pin.

// EdgeJSON is one stream element on the wire: {"user":u,"item":i,"op":"+"}.
// Op is "+" (insert, the default when omitted) or "-" (delete).
//
// Ts optionally carries the element's event time as fractional Unix
// seconds. Against a windowed service the largest timestamp of a batch
// advances the sliding window (rotating buckets the stream time has moved
// past) before the batch is ingested; every edge then lands in the
// current bucket, so late (clock-skewed) timestamps are accepted and
// simply attributed to the present. Unwindowed services ignore Ts.
type EdgeJSON struct {
	User uint64  `json:"user"`
	Item uint64  `json:"item"`
	Op   string  `json:"op,omitempty"`
	Ts   float64 `json:"ts,omitempty"`
}

// Edge converts to the stream element type. It rejects unknown ops.
func (e EdgeJSON) Edge() (vos.Edge, error) {
	op := vos.Insert
	switch e.Op {
	case "+", "":
	case "-":
		op = vos.Delete
	default:
		return vos.Edge{}, fmt.Errorf(`op must be "+" or "-", got %q`, e.Op)
	}
	return vos.Edge{User: vos.User(e.User), Item: vos.Item(e.Item), Op: op}, nil
}

// EdgeToWire converts a stream element to its wire form.
func EdgeToWire(e vos.Edge) EdgeJSON {
	w := EdgeJSON{User: uint64(e.User), Item: uint64(e.Item), Op: "+"}
	if e.Op == vos.Delete {
		w.Op = "-"
	}
	return w
}

// IngestResponse acknowledges POST /v1/edges.
type IngestResponse struct {
	// Accepted is the number of edges folded into the service.
	Accepted int `json:"accepted"`
}

// EstimateJSON is vos.Estimate on the wire, every field included so a
// remote caller sees exactly what an in-process caller would.
type EstimateJSON struct {
	Common              float64 `json:"common"`
	CommonClamped       float64 `json:"common_clamped"`
	Jaccard             float64 `json:"jaccard"`
	SymmetricDifference float64 `json:"symmetric_difference"`
	Alpha               float64 `json:"alpha"`
	Beta                float64 `json:"beta"`
	CardinalityU        int64   `json:"cardinality_u"`
	CardinalityV        int64   `json:"cardinality_v"`
	Saturated           bool    `json:"saturated,omitempty"`
}

// Estimate converts back to the engine type.
func (e EstimateJSON) Estimate() vos.Estimate {
	return vos.Estimate{
		Common:              e.Common,
		CommonClamped:       e.CommonClamped,
		Jaccard:             e.Jaccard,
		SymmetricDifference: e.SymmetricDifference,
		Alpha:               e.Alpha,
		Beta:                e.Beta,
		CardinalityU:        e.CardinalityU,
		CardinalityV:        e.CardinalityV,
		Saturated:           e.Saturated,
	}
}

// EstimateToWire converts an engine estimate to its wire form.
func EstimateToWire(e vos.Estimate) EstimateJSON {
	return EstimateJSON{
		Common:              e.Common,
		CommonClamped:       e.CommonClamped,
		Jaccard:             e.Jaccard,
		SymmetricDifference: e.SymmetricDifference,
		Alpha:               e.Alpha,
		Beta:                e.Beta,
		CardinalityU:        e.CardinalityU,
		CardinalityV:        e.CardinalityV,
		Saturated:           e.Saturated,
	}
}

// TopKRequest is the POST /v1/topk body. At, when nonzero, asserts the
// query is about that instant (fractional Unix seconds): a windowed
// service answers from the live window only if At is inside it and
// replies "outside_window" otherwise; an unwindowed service rejects At
// with "bad_request" (it has no notion of retained time).
//
// Mode selects the scan: "" or "exact" (the default) ranks the supplied
// Candidates exactly; "ann" is candidates-free — the service generates
// candidates from its approximate top-K index, so Candidates must be
// empty ("bad_request" otherwise). A service without the index answers
// mode "ann" with 501 "unsupported"; any other mode is "bad_request".
type TopKRequest struct {
	User       uint64   `json:"user"`
	Candidates []uint64 `json:"candidates"`
	N          int      `json:"n"`
	At         float64  `json:"at,omitempty"`
	Mode       string   `json:"mode,omitempty"`
}

// TopKResultJSON is one ranked candidate of the /v1/topk response.
type TopKResultJSON struct {
	User     uint64       `json:"user"`
	Estimate EstimateJSON `json:"estimate"`
}

// CardinalityResponse is the GET /v1/cardinality answer.
type CardinalityResponse struct {
	User        uint64 `json:"user"`
	Cardinality int64  `json:"cardinality"`
}

// StatsResponse is the GET /v1/stats answer, vos.Stats on the wire.
// WindowSeconds and WindowBuckets are present (nonzero) only when the
// backing service runs in sliding-window mode; the stats then describe
// the live window's state, not the whole stream's.
type StatsResponse struct {
	MemoryBits    uint64  `json:"memory_bits"`
	SketchBits    int     `json:"sketch_bits"`
	OnesCount     uint64  `json:"ones_count"`
	Beta          float64 `json:"beta"`
	Users         int     `json:"users"`
	MemoryBytes   uint64  `json:"memory_bytes"`
	WindowSeconds float64 `json:"window_seconds,omitempty"`
	WindowBuckets int     `json:"window_buckets,omitempty"`
	// HashFamily is the sketch's position-generation backend ("classic" or
	// "fast"); see vos.HashFamily.
	HashFamily string `json:"hash_family"`
	// UDP is the UDP ingest plane's counter snapshot, present only when
	// the serving process runs a datagram listener (vosd -udp-listen).
	UDP *UDPStatsJSON `json:"udp,omitempty"`
}

// UDPStatsJSON is metrics.UDPStats on the wire: the datagram ingest
// plane's delivery ledger. gaps_detected, replays_dropped, stale_dropped,
// admit_rejected, and sink_errors all zero means every frame the plane
// received has been applied exactly once — the sketch has not diverged
// from what the senders sent.
type UDPStatsJSON struct {
	FramesReceived  uint64 `json:"frames_received"`
	FramesApplied   uint64 `json:"frames_applied"`
	EdgesApplied    uint64 `json:"edges_applied"`
	Malformed       uint64 `json:"malformed"`
	GapsDetected    uint64 `json:"gaps_detected"`
	ReplaysDropped  uint64 `json:"replays_dropped"`
	LateApplied     uint64 `json:"late_applied"`
	StaleDropped    uint64 `json:"stale_dropped"`
	AdmitRejected   uint64 `json:"admit_rejected"`
	SinkErrors      uint64 `json:"sink_errors"`
	AcksSent        uint64 `json:"acks_sent"`
	Sessions        int    `json:"sessions"`
	SessionsEvicted uint64 `json:"sessions_evicted"`
}

// UDPStatsToWire converts the metrics snapshot to its wire form.
func UDPStatsToWire(s metrics.UDPStats) UDPStatsJSON {
	return UDPStatsJSON{
		FramesReceived:  s.FramesReceived,
		FramesApplied:   s.FramesApplied,
		EdgesApplied:    s.EdgesApplied,
		Malformed:       s.Malformed,
		GapsDetected:    s.GapsDetected,
		ReplaysDropped:  s.ReplaysDropped,
		LateApplied:     s.LateApplied,
		StaleDropped:    s.StaleDropped,
		AdmitRejected:   s.AdmitRejected,
		SinkErrors:      s.SinkErrors,
		AcksSent:        s.AcksSent,
		Sessions:        s.Sessions,
		SessionsEvicted: s.SessionsEvicted,
	}
}

// Stats converts back to the engine type. An unrecognised (or absent)
// hash_family maps to the classic family — the only possibility for
// servers predating the field.
func (s StatsResponse) Stats() vos.Stats {
	st := vos.Stats{
		MemoryBits:    s.MemoryBits,
		SketchBits:    s.SketchBits,
		OnesCount:     s.OnesCount,
		Beta:          s.Beta,
		Users:         s.Users,
		MemoryBytes:   s.MemoryBytes,
		WindowSeconds: s.WindowSeconds,
		WindowBuckets: s.WindowBuckets,
	}
	if f, err := vos.ParseHashFamily(s.HashFamily); err == nil {
		st.Family = f
	}
	return st
}

// StatsToWire converts engine stats to their wire form.
func StatsToWire(s vos.Stats) StatsResponse {
	return StatsResponse{
		MemoryBits:    s.MemoryBits,
		SketchBits:    s.SketchBits,
		OnesCount:     s.OnesCount,
		Beta:          s.Beta,
		Users:         s.Users,
		MemoryBytes:   s.MemoryBytes,
		WindowSeconds: s.WindowSeconds,
		WindowBuckets: s.WindowBuckets,
		HashFamily:    s.Family.String(),
	}
}

// CheckpointResponse is the POST /v1/checkpoint answer.
type CheckpointResponse struct {
	// Position is the WAL position the checkpoint covers.
	Position uint64 `json:"position"`
}

// HealthResponse is the GET /v1/healthz and /v1/readyz answer.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "draining"
}

// ImportResponse is the POST /v1/cluster/import answer.
type ImportResponse struct {
	// Bytes is the serialized-sketch size that was merged and (on durable
	// engines) checkpointed before this acknowledgement.
	Bytes int `json:"bytes"`
}

// RingResponse is the GET /v1/cluster/ring answer (gateway tier): the
// live shard→node table, in the same shape as the on-disk ring document.
type RingResponse struct {
	Version   uint64   `json:"version"`
	RouteSeed uint64   `json:"route_seed"`
	Shards    []string `json:"shards"`
}

// HandoffRequest is the POST /v1/cluster/handoff body (gateway tier):
// move cluster shard Shard onto the fresh backend at To.
type HandoffRequest struct {
	Shard int `json:"shard"`
	// To is the target backend's base URL; it must be a fresh node not
	// already in the ring (its state is merged wholesale, so a node
	// already owning a shard would double-count — and XOR-cancel — state).
	To string `json:"to"`
}

// HandoffResponse is the POST /v1/cluster/handoff answer.
type HandoffResponse struct {
	// Version is the ring version after the move.
	Version uint64 `json:"version"`
}

// ClusterNodeCheckpointJSON is one shard's row in a cluster checkpoint.
type ClusterNodeCheckpointJSON struct {
	Shard    int    `json:"shard"`
	Node     string `json:"node"`
	Position uint64 `json:"position"`
}

// ClusterCheckpointResponse is the POST /v1/cluster/checkpoint answer
// (gateway tier): every backend checkpointed under a full ingest quiesce,
// recorded as a manifest.
type ClusterCheckpointResponse struct {
	RingVersion uint64                      `json:"ring_version"`
	Shards      []ClusterNodeCheckpointJSON `json:"shards"`
}

// Error codes of the /v1/ error envelope. Every non-2xx response carries
// {"error":{"code":<one of these>,"message":...}}; clients branch on Code,
// never on message text.
const (
	// CodeBadRequest: malformed body, unknown op, invalid parameters.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the route.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such route.
	CodeNotFound = "not_found"
	// CodeTooLarge: one ingest payload exceeds Options.MaxBatchBytes.
	CodeTooLarge = "too_large"
	// CodeBackpressure: the in-flight ingest byte budget
	// (Options.MaxInFlightBytes) is exhausted; retry after a delay.
	CodeBackpressure = "backpressure"
	// CodeUnavailable: the service is closed or the query path cannot
	// answer in the engine's current state.
	CodeUnavailable = "unavailable"
	// CodeDraining: this instance is draining out of rotation ahead of a
	// shutdown or deploy; retry against another instance. Kept distinct
	// from CodeUnavailable so a transiently rotating instance is never
	// mistaken for a permanently closed engine.
	CodeDraining = "draining"
	// CodeOutsideWindow: the query's "at" instant predates the live
	// sliding window — the edges that would answer it have been retired
	// and exist nowhere in the engine. Unlike CodeBadRequest the request
	// is well-formed; the caller must drop the time constraint or the
	// operator must widen the window. Maps onto vos.ErrOutsideWindow.
	CodeOutsideWindow = "outside_window"
	// CodeCanceled: the request context was cancelled mid-query.
	CodeCanceled = "canceled"
	// CodeTimeout: the request context's deadline expired mid-query.
	CodeTimeout = "timeout"
	// CodeUnsupported: the route needs an optional capability (e.g.
	// checkpointing) the backing service does not implement.
	CodeUnsupported = "unsupported"
	// CodeInternal: everything else.
	CodeInternal = "internal"
)

// ErrorBody is the payload of the error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform non-2xx response shape:
// {"error":{"code":...,"message":...}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
