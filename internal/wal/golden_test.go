package wal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixture files")

// goldenBatches are the fixed records the WAL-segment fixture pins.
func goldenBatches() [][]stream.Edge {
	return [][]stream.Edge{
		{
			{User: 1, Item: 10, Op: stream.Insert},
			{User: 2, Item: 10, Op: stream.Insert},
			{User: 1, Item: 11, Op: stream.Insert},
		},
		{
			{User: 1, Item: 10, Op: stream.Delete},
			{User: 300, Item: 70_000, Op: stream.Insert},
		},
		{
			{User: 1 << 40, Item: 1 << 50, Op: stream.Delete},
		},
	}
}

// writeGoldenSegment produces the fixture's segment file in a temp dir and
// returns its bytes.
func writeGoldenSegment(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches() {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenSegmentFormat pins the WAL segment wire format (magic, base
// header, length+CRC frames, varint payload) with checked-in fixture
// bytes, so a format break is caught as a diff rather than as a silent
// inability to replay old logs after an upgrade.
func TestGoldenSegmentFormat(t *testing.T) {
	path := filepath.Join("testdata", "segment.golden")
	data := writeGoldenSegment(t)
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("WAL segment format changed: writer produced %d bytes, fixture has %d.\n"+
			"If the change is intentional, bump the segment magic and regenerate with -update.",
			len(data), len(want))
	}

	// The checked-in bytes must replay to the exact recorded stream.
	tmp := filepath.Join(t.TempDir(), segName(0))
	if err := os.WriteFile(tmp, want, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]stream.Edge
	if err := readSegment(tmp, func(edges []stream.Edge) error {
		got = append(got, append([]stream.Edge(nil), edges...))
		return nil
	}); err != nil {
		t.Fatalf("replay fixture: %v", err)
	}
	wantBatches := goldenBatches()
	if len(got) != len(wantBatches) {
		t.Fatalf("fixture replays %d records, want %d", len(got), len(wantBatches))
	}
	for i := range wantBatches {
		if len(got[i]) != len(wantBatches[i]) {
			t.Fatalf("record %d has %d edges, want %d", i, len(got[i]), len(wantBatches[i]))
		}
		for j := range wantBatches[i] {
			if got[i][j] != wantBatches[i][j] {
				t.Fatalf("record %d edge %d = %v, want %v", i, j, got[i][j], wantBatches[i][j])
			}
		}
	}
}

// TestGoldenCheckpointFormat pins the checkpoint frame the same way.
func TestGoldenCheckpointFormat(t *testing.T) {
	path := filepath.Join("testdata", "checkpoint.golden")
	data := EncodeCheckpoint(123_456, []byte("embedded sketch payload"))
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("checkpoint frame format changed; bump the magic and regenerate with -update if intentional")
	}
	pos, sketch, err := DecodeCheckpoint(want)
	if err != nil || pos != 123_456 || string(sketch) != "embedded sketch payload" {
		t.Fatalf("fixture decodes to pos=%d sketch=%q err=%v", pos, sketch, err)
	}
}
