// A similarity query service on the sharded engine: N ingest shards
// absorb the event stream while an HTTP API serves similarity queries
// from the engine's exactly merged snapshot — the deployment shape the
// paper's O(1)-update / O(k)-query split is designed for, scaled past one
// core by vos.Engine.
//
// Endpoints:
//
//	POST /event?user=U&item=I&op=+|-   ingest one subscription event
//	GET  /similarity?u=U&v=V           estimate s_uv and Jaccard
//	GET  /stats                        merged sketch state (β, memory, users)
//	GET  /shards                       per-shard ingest counters and load
//
// The similarity handler flushes the engine first, trading a little query
// latency for read-your-writes consistency — the right default for a demo
// and for low-write services; high-write deployments would skip the flush
// and serve from a bounded-staleness snapshot (EngineConfig.SnapshotMaxLag).
//
// The program starts the server on a local port, drives a simulated
// workload against it over HTTP, issues a few queries, and shuts down —
// so `go run ./examples/similarityserver` is self-contained and exits.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"time"

	"github.com/vossketch/vos"
)

// server wraps the sharded engine with the HTTP API.
type server struct {
	engine *vos.Engine
}

func (s *server) handleEvent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	u, errU := parseID(q.Get("user"))
	i, errI := parseID(q.Get("item"))
	if errU != nil || errI != nil {
		http.Error(w, "user and item must be unsigned integers", http.StatusBadRequest)
		return
	}
	var op vos.Op
	switch q.Get("op") {
	case "+", "":
		op = vos.Insert
	case "-":
		op = vos.Delete
	default:
		http.Error(w, "op must be + or -", http.StatusBadRequest)
		return
	}
	if err := s.engine.Process(vos.Edge{User: vos.User(u), Item: vos.Item(i), Op: op}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := parseID(q.Get("u"))
	v, errV := parseID(q.Get("v"))
	if errU != nil || errV != nil {
		http.Error(w, "u and v must be unsigned integers", http.StatusBadRequest)
		return
	}
	// Read-your-writes: apply everything accepted so far, then answer
	// from the exact merged snapshot.
	s.engine.Flush()
	est := s.engine.Query(vos.User(u), vos.User(v))
	writeJSON(w, map[string]any{
		"common_items":  est.CommonClamped,
		"jaccard":       est.Jaccard,
		"cardinality_u": est.CardinalityU,
		"cardinality_v": est.CardinalityV,
		"saturated":     est.Saturated,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Stats()
	writeJSON(w, map[string]any{
		"memory_bits": st.MemoryBits,
		"sketch_bits": st.SketchBits,
		"beta":        st.Beta,
		"users":       st.Users,
		"shards":      s.engine.Shards(),
	})
}

func (s *server) handleShards(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.ShardStats()
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		out[i] = map[string]any{
			"shard":       st.Shard,
			"enqueued":    st.Enqueued,
			"processed":   st.Processed,
			"backlog":     st.Backlog(),
			"beta":        st.Beta,
			"users":       st.Users,
			"edges_per_s": st.EdgesPerSec,
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func parseID(s string) (uint64, error) {
	var x uint64
	_, err := fmt.Sscanf(s, "%d", &x)
	return x, err
}

func main() {
	eng, err := vos.NewEngine(vos.EngineConfig{
		Sketch: vos.Config{
			MemoryBits: 1 << 22,
			SketchBits: 4096,
			Seed:       3,
		},
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	srv := &server{engine: eng}

	mux := http.NewServeMux()
	mux.HandleFunc("/event", srv.handleEvent)
	mux.HandleFunc("/similarity", srv.handleSimilarity)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/shards", srv.handleShards)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	fmt.Printf("similarity service listening on %s (4 ingest shards)\n\n", base)

	// Drive a workload over the wire: two overlapping users plus noise,
	// including unsubscriptions.
	client := &http.Client{Timeout: 5 * time.Second}
	post := func(user, item uint64, op string) {
		u := fmt.Sprintf("%s/event?user=%d&item=%d&op=%s", base, user, item, url.QueryEscape(op))
		resp, err := client.Post(u, "", nil)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	rng := rand.New(rand.NewSource(4))
	for i := uint64(0); i < 300; i++ {
		post(1, i, "+")
	}
	for i := uint64(150); i < 450; i++ {
		post(2, i, "+")
	}
	for i := uint64(0); i < 2000; i++ { // background users
		post(100+i%50, rng.Uint64()%100000, "+")
	}
	for i := uint64(150); i < 200; i++ { // user 1 unsubscribes 50 shared
		post(1, i, "-")
	}
	fmt.Println("ingested 2650 events over HTTP (300 + 300 subscriptions, noise, 50 unsubscriptions)")

	get := func(path string) string {
		resp, err := client.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1024]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}
	fmt.Println("\nGET /similarity?u=1&v=2")
	fmt.Println("  " + get("/similarity?u=1&v=2"))
	fmt.Println("  (true common items: 100, true Jaccard: 100/450 ≈ 0.222)")
	fmt.Println("GET /stats")
	fmt.Println("  " + get("/stats"))
	fmt.Println("GET /shards")
	fmt.Println("  " + get("/shards"))

	if err := httpSrv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver stopped")
}
