package vos

import "github.com/vossketch/vos/internal/unigraph"

// NeighborSketch estimates neighbor-set similarities over fully dynamic
// REGULAR (unipartite) graph streams — edges between users, appearing and
// disappearing — via the paper's §II reduction: an undirected edge (u, v)
// is two subscriptions, u→v and v→u. Queries compare out-neighborhoods.
type NeighborSketch = unigraph.Sketch

// GraphEdge is one regular-graph stream element.
type GraphEdge = unigraph.Edge

// NewNeighborSketch creates an undirected regular-graph sketch; one graph
// element costs two O(1) VOS updates.
func NewNeighborSketch(cfg Config) (*NeighborSketch, error) {
	return unigraph.New(cfg)
}

// NewDirectedNeighborSketch creates the directed variant: edge (u, v) adds
// v to u's out-neighborhood only.
func NewDirectedNeighborSketch(cfg Config) (*NeighborSketch, error) {
	return unigraph.NewDirected(cfg)
}
