package stream

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzReadBinary exercises the binary decoder with arbitrary input: it
// must never panic, rejections must carry the typed ErrBadFormat, and
// everything it accepts must round-trip.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	_ = WriteBinary(&seedBuf, []Edge{{1, 2, Insert}, {3, 4, Delete}})
	good := seedBuf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("VOSSTRM1garbage"))
	f.Add(good[:len(good)-1]) // truncated final varint
	// Implausible element count — copied, not appended in place: append
	// to good[:8] would scribble over the backing array the seeds above
	// alias, corrupting them before fuzzing starts.
	f.Add(append(append([]byte(nil), good[:8]...), 0xff, 0x7f))

	f.Fuzz(func(t *testing.T, data []byte) {
		edges, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("non-ErrBadFormat decode failure: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, edges); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed length %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("round trip changed element %d", i)
			}
		}
	})
}

// FuzzReadText does the same for the text decoder.
func FuzzReadText(f *testing.F) {
	f.Add("+ 1 2\n- 1 2\n")
	f.Add("# comment\n\n+ 0 0\n")
	f.Add("not a stream")

	f.Fuzz(func(t *testing.T, data string) {
		edges, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, edges); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed length")
		}
	})
}
