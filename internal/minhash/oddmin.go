package minhash

import (
	"math"

	"github.com/vossketch/vos/internal/oddsketch"
	"github.com/vossketch/vos/internal/stream"
)

// OddMinHash is the original odd sketch construction of Mitzenmacher,
// Pagh & Pham (WWW'14): build a MinHash signature of k registers first,
// then compress the signature itself into a z-bit odd sketch by toggling
// the bit ψ(j, h*_j) for every register j. Two users' odd sketches then
// estimate the number of *differing registers* via the odd sketch
// estimator, which converts to Jaccard:
//
//	E[#differing registers] = k·(1 − J)
//	n̂Δ(registers) = −(z/2)·ln(1 − 2α)   (α = differing-bit fraction)
//	Ĵ = 1 − n̂Δ/(2k)  … the factor 2 because each differing register
//	                    contributes 2 to the symmetric difference of the
//	                    (j, value) pair sets.
//
// VOS (internal/core) differs in two ways the paper §IV spells out: it
// builds the odd sketch over the *item set directly* (no MinHash stage, so
// deletions cancel) and stores it virtually in shared memory. OddMinHash
// is therefore the static ancestor: accurate for high similarities at very
// few bits, but deletion-biased through its MinHash stage just like plain
// MinHash. It is included as a related-work reference point and for the
// compaction ablation.
type OddMinHash struct {
	sketch *oddsketch.Sketch
	k      int // MinHash registers summarised
}

// NewOddMinHash compresses user u's current MinHash signature into a
// zBits-bit odd sketch. Comparable only across equal (k, zBits, seed).
func NewOddMinHash(s *Sketch, u stream.User, zBits int, seed uint64) *OddMinHash {
	sig := s.Signature(u)
	o := oddsketch.New(zBits, seed)
	for j, h := range sig {
		// Fold the register index into the toggled key so equal values
		// in different registers do not collide.
		o.Toggle(uint64(j)<<40 ^ h)
	}
	return &OddMinHash{sketch: o, k: s.k}
}

// BitsTotal returns the storage cost in bits.
func (o *OddMinHash) BitsTotal() uint64 { return uint64(o.sketch.K()) }

// EstimateJaccard estimates J from the two compressed signatures.
func (o *OddMinHash) EstimateJaccard(other *OddMinHash) float64 {
	if o.k != other.k {
		panic("minhash: odd sketches built over different k")
	}
	z := o.sketch.XorOnes(other.sketch)
	// Each differing register contributes two toggled keys (one per
	// side), so the register-set symmetric difference is nΔ/2.
	nDelta := oddsketch.EstimateFromOnes(z, o.sketch.K())
	j := 1 - nDelta/(2*float64(o.k))
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}

// OddMinHashError returns the WWW'14 standard-error approximation for an
// odd sketch of z bits summarising k registers at true Jaccard j:
// the variance of the register-difference estimate is approximately
// (z/4)·(e^{4k(1−j)/z} − 1), which propagates to Ĵ with factor 1/(2k).
func OddMinHashError(k, zBits int, j float64) float64 {
	varDiff := float64(zBits) / 4 * (math.Exp(4*float64(k)*(1-j)/float64(zBits)) - 1)
	return math.Sqrt(varDiff) / (2 * float64(k))
}
