package weighted

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactJaccard(t *testing.T) {
	x := Vector{1: 2.0, 2: 1.0}
	y := Vector{1: 1.0, 3: 3.0}
	// min: min(2,1)=1 on elem 1. max: max(2,1)=2 + 1 (elem 2) + 3 (elem 3) = 6.
	if got, want := Jaccard(x, y), 1.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("J = %v, want %v", got, want)
	}
	if Jaccard(Vector{}, Vector{}) != 0 {
		t.Error("empty-empty should be 0")
	}
	if Jaccard(x, x) != 1 {
		t.Error("self similarity should be 1")
	}
}

func TestJaccardSymmetricProperty(t *testing.T) {
	// Weights are folded into (0, 1e6] — the sums in Jaccard must not
	// overflow, which is part of the documented contract (finite sums).
	tame := func(w float64) (float64, bool) {
		w = math.Abs(w)
		if w == 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return 0, false
		}
		return math.Mod(w, 1e6) + 0.001, true
	}
	err := quick.Check(func(keys []uint8, wsA, wsB []float64) bool {
		x, y := Vector{}, Vector{}
		for i, k := range keys {
			if i < len(wsA) {
				if w, ok := tame(wsA[i]); ok {
					x[uint64(k)] = w
				}
			}
			if i < len(wsB) {
				if w, ok := tame(wsB[i]); ok {
					y[uint64(k)] = w
				}
			}
		}
		a, b := Jaccard(x, y), Jaccard(y, x)
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= 1+1e-12
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSignatureValidation(t *testing.T) {
	if _, err := NewSignature(Vector{1: 1}, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewSignature(Vector{}, 8, 1); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := NewSignature(Vector{1: -1}, 8, 1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewSignature(Vector{1: 0}, 8, 1); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewSignature(Vector{1: math.NaN()}, 8, 1); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestSignatureDeterministic(t *testing.T) {
	v := Vector{1: 0.5, 2: 3.0, 9: 1.25}
	a, err := NewSignature(v, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSignature(v, 32, 7)
	for j := 0; j < 32; j++ {
		if a.Sample(j) != b.Sample(j) {
			t.Fatal("signature not deterministic")
		}
	}
	if a.EstimateJaccard(b) != 1 {
		t.Error("identical vectors should match on every sample")
	}
}

func TestEstimateMatchesExact(t *testing.T) {
	// Random sparse weight vectors; the k-sample estimate should agree
	// with the exact generalized Jaccard within binomial noise.
	const k = 2048
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		x, y := Vector{}, Vector{}
		for i := uint64(0); i < 60; i++ {
			if rng.Float64() < 0.7 {
				x[i] = rng.Float64()*4 + 0.1
			}
			if rng.Float64() < 0.7 {
				y[i] = rng.Float64()*4 + 0.1
			}
		}
		exact := Jaccard(x, y)
		sa, err := NewSignature(x, k, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSignature(y, k, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		got := sa.EstimateJaccard(sb)
		// 4σ binomial tolerance.
		tol := 4 * math.Sqrt(exact*(1-exact)/k)
		if tol < 0.02 {
			tol = 0.02
		}
		if math.Abs(got-exact) > tol {
			t.Errorf("trial %d: estimate %.4f, exact %.4f (tol %.4f)", trial, got, exact, tol)
		}
	}
}

func TestBinaryWeightsReduceToSetJaccard(t *testing.T) {
	// With all weights 1, generalized Jaccard equals set Jaccard.
	x := Vector{}
	y := Vector{}
	for i := uint64(0); i < 100; i++ {
		x[i] = 1
	}
	for i := uint64(50); i < 150; i++ {
		y[i] = 1
	}
	want := 50.0 / 150.0
	if got := Jaccard(x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("exact binary J = %v, want %v", got, want)
	}
	sa, _ := NewSignature(x, 4096, 3)
	sb, _ := NewSignature(y, 4096, 3)
	if got := sa.EstimateJaccard(sb); math.Abs(got-want) > 0.035 {
		t.Errorf("estimated binary J = %v, want ~%v", got, want)
	}
}

func TestScaleSensitivity(t *testing.T) {
	// Generalized Jaccard is NOT scale-invariant: doubling one vector's
	// weights halves the similarity of identical vectors. The estimator
	// must track that.
	x := Vector{1: 1, 2: 1, 3: 1}
	y := Vector{1: 2, 2: 2, 3: 2}
	want := 0.5
	if got := Jaccard(x, y); math.Abs(got-want) > 1e-12 {
		t.Fatalf("exact J = %v, want %v", got, want)
	}
	sa, _ := NewSignature(x, 4096, 9)
	sb, _ := NewSignature(y, 4096, 9)
	if got := sa.EstimateJaccard(sb); math.Abs(got-want) > 0.04 {
		t.Errorf("estimated J = %v, want ~%v", got, want)
	}
}

func TestIncompatibleSignaturesPanic(t *testing.T) {
	a, _ := NewSignature(Vector{1: 1}, 8, 1)
	b, _ := NewSignature(Vector{1: 1}, 8, 2)
	c, _ := NewSignature(Vector{1: 1}, 16, 1)
	for name, other := range map[string]*Signature{"seed": b, "k": c} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch: expected panic", name)
				}
			}()
			a.EstimateJaccard(other)
		}()
	}
}

func BenchmarkSignature(b *testing.B) {
	v := Vector{}
	for i := uint64(0); i < 100; i++ {
		v[i] = float64(i%7) + 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSignature(v, 64, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
