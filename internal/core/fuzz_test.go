package core

import (
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

// FuzzUnmarshalVOS throws arbitrary bytes at the sketch decoder: it must
// never panic, and any sketch it accepts must re-marshal to a decodable
// form with identical state.
func FuzzUnmarshalVOS(f *testing.F) {
	v := MustNew(Config{MemoryBits: 1024, SketchBits: 64, Seed: 3})
	v.Process(edgeFor(1, 2, true))
	v.Process(edgeFor(2, 3, true))
	seed, _ := v.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("VOS1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalVOS(data)
		if err != nil {
			return
		}
		re, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted sketch failed: %v", err)
		}
		again, err := UnmarshalVOS(re)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if again.Config() != got.Config() || again.Stats() != got.Stats() {
			t.Fatal("round trip changed sketch state")
		}
	})
}

// edgeFor is a fuzz-test helper building one edge.
func edgeFor(u, i uint64, insert bool) stream.Edge {
	op := stream.Insert
	if !insert {
		op = stream.Delete
	}
	return stream.Edge{User: stream.User(u), Item: stream.Item(i), Op: op}
}
