package core

import (
	"sort"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

// materializedWorkload builds a dynamized multi-user sketch plus the list
// of users it contains, the shared fixture of the parity tests.
func materializedWorkload(t testing.TB, cfg Config) (*VOS, []stream.User) {
	t.Helper()
	v := MustNew(cfg)
	p := gen.YouTube
	p.Users = 80
	p.Items = 400
	p.Edges = 4000
	base := gen.Bipartite(p, 21)
	for _, e := range gen.Dynamize(base, gen.PaperDynamize(len(base), 22)) {
		v.Process(e)
	}
	users := make([]stream.User, 0, 80)
	for u := stream.User(0); u < 80; u++ {
		users = append(users, u)
	}
	return v, users
}

// TestQueryParityPerBitVsMaterialized pins the tentpole invariant: the
// packed word-level read path and the scalar per-bit path compute α from
// the same recovered bits, so every field of every estimate — including
// clamps and the Saturated flag — must be bit-identical, across every
// cache configuration (none, position cache, recovered-sketch cache).
func TestQueryParityPerBitVsMaterialized(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 9})
	check := func(label string, probes, candidates []stream.User) {
		t.Helper()
		for _, u := range probes {
			for _, w := range candidates {
				ref := v.QueryPerBit(u, w)
				if got := v.Query(u, w); got != ref {
					t.Fatalf("%s: Query(%d,%d) = %+v, per-bit %+v", label, u, w, got, ref)
				}
			}
		}
	}
	v.SetRecoveredCacheCapacity(-1) // isolate the gather path first
	check("no caches", users[:20], users)

	// Position cache smaller than the user set: the full sweep exercises
	// misses and evictions, the narrow sweep repeat-queries a window that
	// fits so hits occur too.
	v.EnablePositionCache(16)
	check("poscache cold", users[:20], users)
	check("poscache narrow", users[:4], users[:10])
	st := v.PositionCache().Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("cache exercised no hit/miss/eviction paths: %+v", st)
	}

	// Recovered-sketch cache on top: repeat sweeps serve from packed words.
	v.SetRecoveredCacheCapacity(0)
	check("rec cold", users[:20], users)
	check("rec warm", users[:20], users)
	if rst, ok := v.RecoveredCacheStats(); !ok || rst.Hits == 0 {
		t.Fatalf("warm sweep never hit the recovered-sketch cache: %+v", rst)
	}
}

// TestRecoveredCacheInvalidatedByWrites pins the version stamping: a write
// between queries must invalidate cached recovered sketches — both
// Process and Merge — so the materialized path never serves stale bits.
func TestRecoveredCacheInvalidatedByWrites(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 9})
	v.EnablePositionCache(128)
	parity := func(label string) {
		t.Helper()
		for _, u := range users[:10] {
			for _, w := range users[:30] {
				if got, ref := v.Query(u, w), v.QueryPerBit(u, w); got != ref {
					t.Fatalf("%s: Query(%d,%d) = %+v, per-bit %+v", label, u, w, got, ref)
				}
			}
		}
	}
	parity("warm-up")
	parity("cached")
	// Flip bits of users the cache has definitely served.
	for i := 0; i < 40; i++ {
		v.Process(stream.Edge{User: users[i%10], Item: stream.Item(9000 + i), Op: stream.Insert})
	}
	parity("after Process")
	other := MustNew(v.Config())
	for i := 0; i < 40; i++ {
		other.Process(stream.Edge{User: users[i%10], Item: stream.Item(9500 + i), Op: stream.Insert})
	}
	if err := v.Merge(other); err != nil {
		t.Fatal(err)
	}
	parity("after Merge")
}

// TestQueryParitySaturated drives a deliberately overloaded sketch (tiny
// array, long stream) so α/β clamping engages, and requires parity there
// too — the clamp is part of the estimator both paths share.
func TestQueryParitySaturated(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 10, SketchBits: 64, Seed: 9})
	sawSaturated := false
	for _, u := range users[:20] {
		for _, w := range users {
			ref := v.QueryPerBit(u, w)
			if ref.Saturated {
				sawSaturated = true
			}
			if got := v.Query(u, w); got != ref {
				t.Fatalf("Query(%d,%d) = %+v, per-bit %+v", u, w, got, ref)
			}
		}
	}
	if !sawSaturated {
		t.Fatal("workload never saturated the sketch; the clamped branch went untested")
	}
}

func TestPositionsMatchPerMemberHashing(t *testing.T) {
	v := MustNew(Config{MemoryBits: 1 << 20, SketchBits: 257, Seed: 5})
	for _, u := range []stream.User{0, 1, 7, 1 << 40} {
		pos := v.Positions(u)
		if len(pos) != 257 {
			t.Fatalf("len = %d", len(pos))
		}
		for j, p := range pos {
			if want := v.position(u, j); p != want {
				t.Fatalf("user %d slot %d: %d, want %d", u, j, p, want)
			}
		}
	}
}

// TestRecoverSketchMatchesRecoverBit checks the packed gather against the
// public single-bit recovery, slot by slot.
func TestRecoverSketchMatchesRecoverBit(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 200, Seed: 3})
	for _, u := range users[:10] {
		r := v.RecoverSketch(u)
		for j := 0; j < v.K(); j++ {
			if r.bits.Get(uint64(j)) != v.RecoverBit(u, j) {
				t.Fatalf("user %d slot %d differs", u, j)
			}
		}
	}
}

// TestRecoveredCacheHitCarriesCount pins the cached popcount: a cache hit
// wraps the stored words with the ones count recorded at fill time
// (FromWordsCountedUnsafe, skipping a k-bit recount), so Count on a served
// snapshot must match a fresh bit-by-bit recount.
func TestRecoveredCacheHitCarriesCount(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 9})
	v.SetRecoveredCacheCapacity(0)
	for _, u := range users[:10] {
		cold := v.RecoverSketch(u) // fills the cache
		hit := v.RecoverSketch(u)  // serves from it
		recount := uint64(0)
		for j := 0; j < v.K(); j++ {
			if hit.bits.Get(uint64(j)) {
				recount++
			}
		}
		if hit.bits.Count() != recount || cold.bits.Count() != recount {
			t.Fatalf("user %d: cached count %d, cold %d, recount %d",
				u, hit.bits.Count(), cold.bits.Count(), recount)
		}
	}
	if rst, ok := v.RecoveredCacheStats(); !ok || rst.Hits == 0 {
		t.Fatalf("repeat RecoverSketch never hit the cache: %+v", rst)
	}
}

// topKReference ranks candidates by per-pair scalar queries and a full
// sort — the semantics TopK must reproduce.
func topKReference(v *VOS, u stream.User, candidates []stream.User, n int) []TopKResult {
	var xs []TopKResult
	for _, w := range candidates {
		if w == u {
			continue
		}
		xs = append(xs, TopKResult{User: w, Estimate: v.QueryPerBit(u, w)})
	}
	sort.Slice(xs, func(i, j int) bool { return better(xs[i], xs[j]) })
	if n < 0 {
		n = 0
	}
	if n > len(xs) {
		n = len(xs)
	}
	return xs[:n]
}

func TestTopKMatchesFullSortReference(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 9})
	probe := users[3]
	for _, n := range []int{0, 1, 3, 10, len(users) - 1, len(users), len(users) + 5} {
		got := v.TopK(probe, users, n) // users includes the probe: must be skipped
		want := topKReference(v, probe, users, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d rank %d: got {%d %+v}, want {%d %+v}",
					n, i, got[i].User, got[i].Estimate, want[i].User, want[i].Estimate)
			}
		}
	}
}

func TestTopKEmptyAndDegenerate(t *testing.T) {
	v, users := materializedWorkload(t, Config{MemoryBits: 1 << 16, SketchBits: 512, Seed: 9})
	if got := v.TopK(1, nil, 5); len(got) != 0 {
		t.Errorf("nil candidates: %d results", len(got))
	}
	if got := v.TopK(1, []stream.User{1}, 5); len(got) != 0 {
		t.Errorf("self-only candidates: %d results", len(got))
	}
	if got := v.TopK(1, users, 0); len(got) != 0 {
		t.Errorf("n=0: %d results", len(got))
	}
	// A huge or negative n — e.g. straight from an untrusted request body —
	// must clamp instead of panicking in the heap's capacity allocation.
	want := topKReference(v, 1, users, len(users))
	if got := v.TopK(1, users, 1<<62); len(got) != len(want) {
		t.Errorf("huge n: %d results, want %d", len(got), len(want))
	}
	if got := v.TopK(1, users, -1); len(got) != 0 {
		t.Errorf("negative n: %d results, want 0", len(got))
	}
}

// TestUsersCountsCardEntries pins the O(1) Users(): the prune in Process
// and Merge guarantees no zero-cardinality entries survive, so the map
// length is the user count even through insert/delete churn.
func TestUsersCountsCardEntries(t *testing.T) {
	v := MustNew(Config{MemoryBits: 1 << 12, SketchBits: 32, Seed: 1})
	v.Process(stream.Edge{User: 1, Item: 10, Op: stream.Insert})
	v.Process(stream.Edge{User: 2, Item: 10, Op: stream.Insert})
	if v.Users() != 2 {
		t.Fatalf("Users() = %d, want 2", v.Users())
	}
	// Delete-before-insert reordering passes through a negative counter;
	// the entry must still vanish once it cancels.
	v.Process(stream.Edge{User: 2, Item: 11, Op: stream.Delete})
	v.Process(stream.Edge{User: 2, Item: 10, Op: stream.Delete})
	v.Process(stream.Edge{User: 2, Item: 11, Op: stream.Insert})
	if v.Users() != 1 {
		t.Fatalf("Users() after cancellation = %d, want 1", v.Users())
	}
}
