package similarity

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func testBudget() Budget {
	return Budget{K32: 50, Users: 500, Lambda: 2}
}

func TestBudgetMath(t *testing.T) {
	b := Budget{K32: 100, Users: 5000, Lambda: 2}
	if b.TotalBits() != 32*100*5000 {
		t.Errorf("TotalBits = %d", b.TotalBits())
	}
	if b.VOSSketchBits() != 6400 {
		t.Errorf("VOSSketchBits = %d", b.VOSSketchBits())
	}
}

func TestNewAllMethods(t *testing.T) {
	for _, m := range append([]string{MethodExact}, Methods...) {
		e, err := New(m, testBudget(), 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if e.Name() != m {
			t.Errorf("Name() = %q, want %q", e.Name(), m)
		}
	}
	// Case-insensitive lookup.
	if _, err := New("vos", testBudget(), 1); err != nil {
		t.Errorf("lowercase lookup failed: %v", err)
	}
	if _, err := New("bogus", testBudget(), 1); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := New(MethodVOS, Budget{}, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad method")
		}
	}()
	MustNew("bogus", testBudget(), 1)
}

func TestNewAllOrder(t *testing.T) {
	ests, err := NewAll(testBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 {
		t.Fatalf("NewAll returned %d estimators", len(ests))
	}
	for i, m := range Methods {
		if ests[i].Name() != m {
			t.Errorf("position %d: %s, want %s", i, ests[i].Name(), m)
		}
	}
}

func TestAllMethodsTrackCardinality(t *testing.T) {
	edges := gen.PlantedPair(1, 2, 40, 30, 10, 3)
	ests, _ := NewAll(testBudget(), 7)
	ests = append(ests, Estimator(NewExact()))
	for _, est := range ests {
		for _, e := range edges {
			est.Process(e)
		}
		if est.Cardinality(1) != 40 || est.Cardinality(2) != 30 {
			t.Errorf("%s: cardinalities %d/%d", est.Name(), est.Cardinality(1), est.Cardinality(2))
		}
	}
}

func TestAllMethodsRoughAccuracyStatic(t *testing.T) {
	// Insertion-only regime: every method should land in the right
	// neighbourhood (RP gets wide tolerance: its variance at K32=50 is
	// large by design).
	const size, common = 200, 100
	trueJ := float64(common) / float64(2*size-common)
	edges := gen.PlantedPair(1, 2, size, size, common, 5)

	b := Budget{K32: 200, Users: 100, Lambda: 2}
	type tolerance struct{ s, j float64 }
	tol := map[string]tolerance{
		MethodVOS:     {s: 30, j: 0.10},
		MethodMinHash: {s: 30, j: 0.10},
		MethodOPH:     {s: 30, j: 0.10},
		MethodRP:      {s: 90, j: 0.30},
	}
	sums := map[string]float64{}
	sumj := map[string]float64{}
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		ests, err := NewAll(b, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for _, est := range ests {
			for _, e := range edges {
				est.Process(e)
			}
			sums[est.Name()] += est.EstimateCommonItems(1, 2)
			sumj[est.Name()] += est.EstimateJaccard(1, 2)
		}
	}
	for name, tl := range tol {
		avgS := sums[name] / trials
		avgJ := sumj[name] / trials
		if math.Abs(avgS-common) > tl.s {
			t.Errorf("%s: mean ŝ = %.1f, want %d ± %.0f", name, avgS, common, tl.s)
		}
		if math.Abs(avgJ-trueJ) > tl.j {
			t.Errorf("%s: mean Ĵ = %.3f, want %.3f ± %.2f", name, avgJ, trueJ, tl.j)
		}
	}
}

func TestExactOracle(t *testing.T) {
	x := NewExact()
	for _, e := range gen.PlantedPair(1, 2, 30, 20, 10, 9) {
		x.Process(e)
	}
	if x.EstimateCommonItems(1, 2) != 10 {
		t.Errorf("exact common = %v", x.EstimateCommonItems(1, 2))
	}
	wantJ := 10.0 / 40.0
	if x.EstimateJaccard(1, 2) != wantJ {
		t.Errorf("exact J = %v", x.EstimateJaccard(1, 2))
	}
	if x.Store().Cardinality(1) != 30 {
		t.Error("store not exposed correctly")
	}
}

func TestTopSimilar(t *testing.T) {
	x := NewExact()
	// u=1 shares 3 items with 2, 1 item with 3, 0 with 4.
	add := func(u stream.User, items ...stream.Item) {
		for _, it := range items {
			x.Process(stream.Edge{User: u, Item: it, Op: stream.Insert})
		}
	}
	add(1, 10, 11, 12, 13)
	add(2, 10, 11, 12)
	add(3, 13, 99)
	add(4, 77)
	got := TopSimilar(x, 1, []stream.User{1, 2, 3, 4}, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("TopSimilar = %v", got)
	}
	if all := TopSimilar(x, 1, []stream.User{2, 3, 4}, 10); len(all) != 3 {
		t.Errorf("over-ask returned %d", len(all))
	}
}

func TestTopSimilarBatchPathMatchesLoop(t *testing.T) {
	// The VOS adapter implements BatchJaccard; its TopSimilar result must
	// equal the generic per-pair path.
	b := Budget{K32: 100, Users: 50, Lambda: 2}
	est := MustNew(MethodVOS, b, 3)
	for _, e := range gen.PlantedPair(1, 2, 100, 100, 60, 4) {
		est.Process(e)
	}
	for u := stream.User(3); u < 20; u++ {
		for i := 0; i < 40; i++ {
			est.Process(stream.Edge{
				User: u,
				Item: stream.Item(uint64(u)*100000 + uint64(i)),
				Op:   stream.Insert,
			})
		}
	}
	candidates := make([]stream.User, 0, 20)
	for u := stream.User(1); u < 20; u++ {
		candidates = append(candidates, u)
	}

	if _, ok := est.(BatchJaccard); !ok {
		t.Fatal("VOS adapter should implement BatchJaccard")
	}
	gotBatch := TopSimilar(est, 1, candidates, 5)

	// Force the generic path through a wrapper that hides the batch
	// interface.
	generic := plainEstimator{est}
	gotLoop := TopSimilar(generic, 1, candidates, 5)

	if len(gotBatch) != len(gotLoop) {
		t.Fatalf("lengths differ: %d vs %d", len(gotBatch), len(gotLoop))
	}
	for i := range gotBatch {
		if gotBatch[i] != gotLoop[i] {
			t.Errorf("rank %d: batch %d, loop %d", i, gotBatch[i], gotLoop[i])
		}
	}
	if gotBatch[0] != 2 {
		t.Errorf("top similar = %d, want 2", gotBatch[0])
	}
}

// plainEstimator hides any optional interfaces of the wrapped estimator.
type plainEstimator struct{ e Estimator }

func (p plainEstimator) Name() string          { return p.e.Name() }
func (p plainEstimator) Process(e stream.Edge) { p.e.Process(e) }
func (p plainEstimator) EstimateCommonItems(u, v stream.User) float64 {
	return p.e.EstimateCommonItems(u, v)
}
func (p plainEstimator) EstimateJaccard(u, v stream.User) float64 {
	return p.e.EstimateJaccard(u, v)
}
func (p plainEstimator) Cardinality(u stream.User) int64 { return p.e.Cardinality(u) }
