//go:build !unix

package wal

// Non-unix builds have no flock(2); the directory lock degrades to a
// no-op and single-writer discipline is the operator's responsibility.
type dirLock struct{}

func acquireDirLock(string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) release() error { return nil }
