package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements two interchange formats for graph streams:
//
//   - a text format, one element per line: "<op> <user> <item>" with op in
//     {+, -}; lines starting with '#' and blank lines are ignored. Human
//     readable, diff-able, convenient for small fixtures.
//   - a binary format: a magic header followed by varint-encoded elements
//     (op bit folded into the user varint's low bit). Compact and fast,
//     used by cmd/streamgen for multi-million-edge workloads.

// WriteText writes edges in the text format.
func WriteText(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", e.Op, uint64(e.User), uint64(e.Item)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format. Malformed lines produce an error that
// names the line number.
func ReadText(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("stream: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		var op Op
		switch fields[0] {
		case "+":
			op = Insert
		case "-":
			op = Delete
		default:
			return nil, fmt.Errorf("stream: line %d: bad op %q", lineNo, fields[0])
		}
		u, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad user: %v", lineNo, err)
		}
		i, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad item: %v", lineNo, err)
		}
		out = append(out, Edge{User: User(u), Item: Item(i), Op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

var binaryMagic = [8]byte{'V', 'O', 'S', 'S', 'T', 'R', 'M', '1'}

// ErrBadFormat reports a malformed binary stream file.
var ErrBadFormat = errors.New("stream: bad binary format")

// AppendElement appends the binary encoding of one element — uvarint
// (user<<1 | opBit), then uvarint item — to buf. This is the single
// definition of the per-element wire shape, shared by the stream file
// format (WriteBinary/ReadBinary) and the WAL record payload
// (internal/wal): the two formats are byte-compatible at the element
// level by construction, not by parallel maintenance.
func AppendElement(buf []byte, e Edge) []byte {
	var scratch [binary.MaxVarintLen64]byte
	opBit := uint64(0)
	if e.Op == Delete {
		opBit = 1
	}
	n := binary.PutUvarint(scratch[:], uint64(e.User)<<1|opBit)
	buf = append(buf, scratch[:n]...)
	n = binary.PutUvarint(scratch[:], uint64(e.Item))
	return append(buf, scratch[:n]...)
}

// DecodeElement decodes one element from the front of data, returning it
// and the number of bytes consumed; n <= 0 reports truncated or invalid
// input. The inverse of AppendElement.
func DecodeElement(data []byte) (Edge, int) {
	uo, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return Edge{}, 0
	}
	it, n2 := binary.Uvarint(data[n1:])
	if n2 <= 0 {
		return Edge{}, 0
	}
	op := Insert
	if uo&1 == 1 {
		op = Delete
	}
	return Edge{User: User(uo >> 1), Item: Item(it), Op: op}, n1 + n2
}

// WriteBinary writes edges in the binary format: magic, element count, then
// each element per AppendElement.
func WriteBinary(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(edges)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := bw.Write(AppendElement(buf[:0], e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) ([]Edge, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: wrong magic", ErrBadFormat)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	const sanityCap = 1 << 31
	if count > sanityCap {
		return nil, fmt.Errorf("%w: implausible element count %d", ErrBadFormat, count)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	// Each element occupies at least two bytes (a one-byte uvarint each for
	// the user+op word and the item), so a count the remaining bytes cannot
	// possibly hold is malformed. ReadBinary is exposed to untrusted input
	// (POST /v1/edges), so the pre-allocation below must never trust count
	// beyond what the body could actually encode — a forged 16-byte header
	// must not reserve gigabytes.
	if count > uint64(len(rest))/2 {
		return nil, fmt.Errorf("%w: count %d exceeds capacity of %d remaining bytes", ErrBadFormat, count, len(rest))
	}
	out := make([]Edge, 0, count)
	for idx := uint64(0); idx < count; idx++ {
		e, n := DecodeElement(rest)
		if n <= 0 {
			return nil, fmt.Errorf("%w: element %d truncated", ErrBadFormat, idx)
		}
		rest = rest[n:]
		out = append(out, e)
	}
	// Trailing garbage means the file was not produced by WriteBinary.
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing data after %d elements", ErrBadFormat, count)
	}
	return out, nil
}
