// Command vosgw is the VOS cluster gateway: a routing tier that serves
// the same versioned /v1/ HTTP API as a single vosd, backed by a ring of
// per-shard vosd nodes (internal/cluster). Ingest fans out to each user's
// owning backend by the ring's shard hash; reads scatter-gather every
// backend's serialized sketch and answer from the XOR-merge — so a K-node
// cluster answers bit-identical to a single engine over the same stream.
//
// Typical invocations:
//
//	vosgw -listen :8070 -ring /etc/vosgw/ring.json
//	vosgw -listen :8070 -ring ring.json -manifest manifest.json
//	vosgw -listen :8070 -ring ring.json -udp-listen :9070
//
// The ring document is JSON:
//
//	{
//	  "version": 1,
//	  "route_seed": 1,
//	  "shards": ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]
//	}
//
// shards[i] is the backend owning cluster shard i; the shard count and
// route_seed are fixed for the cluster's life (they define the user
// partition). The gateway rewrites the file atomically on every handoff
// (POST /v1/cluster/handoff), bumping version.
//
// Beyond the standard API, the gateway serves GET /v1/cluster/ring,
// POST /v1/cluster/handoff (move a shard to a fresh node:
// checkpoint-ship + merge, exact by XOR-mergeability), and
// POST /v1/cluster/checkpoint (quiesce ingest, checkpoint every backend,
// record a cluster manifest). With -udp-listen it also accepts VOSSTRM1
// datagram ingest, sharing the HTTP handlers' admission budget.
//
// The gateway needs no sketch flags: it learns the sketch configuration
// from the backends' own exported state, so the backends are the single
// source of truth for cluster identity.
//
// On SIGINT/SIGTERM it drains like vosd: readiness flips to 503,
// in-flight requests finish (bounded by -drain-timeout), then the
// listener and the backend clients close. The listen address is printed
// on stdout once serving ("vosgw listening on http://..."), which scripts
// and the smoke tests use with -listen 127.0.0.1:0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/admit"
	"github.com/vossketch/vos/internal/cluster"
	"github.com/vossketch/vos/internal/netproto"
	"github.com/vossketch/vos/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the exit code, so tests can drive the daemon.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vosgw", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:8070", "TCP listen address (use port 0 for an ephemeral port)")
		udpListen = fs.String("udp-listen", "", "UDP listen address for VOSSTRM1 datagram ingest (empty disables; use port 0 for an ephemeral port)")
		ringPath  = fs.String("ring", "", "path to the ring document (shard→node table, JSON; required)")
		manifest  = fs.String("manifest", "", "path where cluster checkpoints record their manifest (empty disables)")

		batchSize    = fs.Int("backend-batch-size", 0, "edges per backend ingest batch (0 = default 256)")
		maxRetries   = fs.Int("backend-max-retries", 0, "read retries per backend after transport errors/5xx (0 = default 2, negative disables)")
		retryBackoff = fs.Duration("backend-retry-backoff", 0, "first backend retry delay, doubled per retry (0 = default 50ms)")
		backendTO    = fs.Duration("backend-timeout", 30*time.Second, "per-backend HTTP request timeout")

		maxBatchBytes    = fs.Int64("max-batch-bytes", 0, "per-request ingest body cap (0 = default 8 MiB)")
		maxInFlightBytes = fs.Int64("max-inflight-bytes", 0, "summed worst-case in-flight ingest memory before backpressure (0 = default 128 MiB)")
		readTimeout      = fs.Duration("read-timeout", 30*time.Second, "max time to read a full request, headers and body (0 disables)")
		drainTimeout     = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
		verbose          = fs.Bool("verbose", false, "log one line per request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ringPath == "" {
		return fmt.Errorf("vosgw: -ring is required (the shard→node table)")
	}

	gw, err := cluster.Open(*ringPath, cluster.Options{
		ManifestPath: *manifest,
		Client: client.Options{
			HTTPClient:   &http.Client{Timeout: *backendTO},
			BatchSize:    *batchSize,
			MaxRetries:   *maxRetries,
			RetryBackoff: *retryBackoff,
		},
	})
	if err != nil {
		return fmt.Errorf("vosgw: %w", err)
	}

	// One admission controller for every ingest transport, exactly like
	// vosd: HTTP handlers and the UDP receiver share one in-flight byte
	// budget for the process.
	adm := admit.NewController(*maxBatchBytes, *maxInFlightBytes)
	opts := server.Options{Admission: adm}
	if *verbose {
		opts.Logger = log.New(os.Stderr, "vosgw: ", log.LstdFlags)
	}

	var udpRecv *netproto.Receiver
	udpRunErr := make(chan error, 1)
	if *udpListen != "" {
		pc, err := net.ListenPacket("udp", *udpListen)
		if err != nil {
			gw.Close()
			return fmt.Errorf("vosgw: -udp-listen: %w", err)
		}
		udpRecv = netproto.NewReceiver(pc, netproto.Config{
			Sink:  func(edges []vos.Edge) error { return gw.Ingest(context.Background(), edges) },
			Admit: adm,
		})
		go func() { udpRunErr <- udpRecv.Run() }()
		opts.UDPStats = udpRecv.Stats
	}
	srv := server.New(gw, opts)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		if udpRecv != nil {
			udpRecv.Close()
		}
		gw.Close()
		return err
	}
	httpSrv := &http.Server{
		// Gateway-only routes wrap the standard API handler; exact paths
		// win over its catch-all.
		Handler:           gw.Handler(srv),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	ring := gw.Ring()
	fmt.Fprintf(stdout, "vosgw listening on http://%s (shards=%d, ring=v%d)\n",
		ln.Addr(), ring.NumShards(), ring.Version)
	if udpRecv != nil {
		fmt.Fprintf(stdout, "vosgw udp ingest on %s (VOSSTRM1 datagrams)\n", udpRecv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if udpRecv != nil {
			udpRecv.Close()
		}
		gw.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "vosgw: %v — draining\n", s)
	}

	// Graceful shutdown mirrors vosd: the UDP plane first (Close waits for
	// the frame being applied), then drain, then the listener, then the
	// backend clients.
	if udpRecv != nil {
		if err := udpRecv.Close(); err != nil {
			log.Printf("vosgw: udp close: %v", err)
		}
		if err := <-udpRunErr; err != nil {
			log.Printf("vosgw: udp receiver: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("vosgw: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("vosgw: http shutdown: %v", err)
	}
	if err := gw.Close(); err != nil {
		return fmt.Errorf("vosgw: close: %w", err)
	}
	fmt.Fprintln(stdout, "vosgw: stopped")
	return nil
}
